"""Unit tests for the Table 1 taxonomy."""

from repro.whisper.taxonomy import (
    TABLE1_ROWS,
    AttackClass,
    render_table1,
    transient_only_classes,
)


class TestRows:
    def test_tet_rows_are_this_paper(self):
        tet_rows = [row for row in TABLE1_ROWS if row.this_paper]
        assert len(tet_rows) == 2
        assert all(row.transient_only for row in tet_rows)

    def test_tet_rows_are_stateless(self):
        """§3.3's claim: TET SCAs are stateless AND transient-only."""
        for row in TABLE1_ROWS:
            if row.this_paper:
                assert not row.stateful

    def test_only_tet_is_transient_only(self):
        """The novelty claim: the first transient-only covert channel."""
        for row in TABLE1_ROWS:
            assert row.transient_only == row.this_paper

    def test_flush_reload_is_direct_stateful(self):
        cache = next(row for row in TABLE1_ROWS if "Flush+Reload" in row.example)
        assert cache.direct and cache.stateful

    def test_binoculars_is_indirect_stateless(self):
        row = next(row for row in TABLE1_ROWS if "Binoculars" in row.example)
        assert not row.direct and not row.stateful

    def test_direct_and_indirect_tet_split(self):
        direct = next(r for r in TABLE1_ROWS if r.this_paper and r.direct)
        indirect = next(r for r in TABLE1_ROWS if r.this_paper and not r.direct)
        assert "TET-MD" in direct.example
        assert "TET-KASLR" in indirect.example


class TestRendering:
    def test_render_contains_quadrants(self):
        table = render_table1()
        assert "Direct" in table and "Indirect" in table
        assert "Transient-Only" in table

    def test_render_mentions_all_examples(self):
        table = render_table1()
        for row in TABLE1_ROWS:
            first_example = row.example.split(",")[0].strip()
            assert first_example in table

    def test_transient_only_helper(self):
        classes = transient_only_classes()
        assert {c.example for c in classes} == {
            "TET-MD, TET-ZBL, TET-RSB",
            "TET-KASLR",
        }

    def test_custom_rows(self):
        rows = [AttackClass("X", "XAttack", direct=True, stateful=True, transient_only=False)]
        assert "XAttack" in render_table1(rows)
