"""Unit tests for the line fill buffers."""

from repro.memory.lfb import LineFillBuffer


def line(content: bytes) -> bytes:
    return content + b"\x00" * (64 - len(content))


class TestLfb:
    def test_empty_sample_is_none(self):
        assert LineFillBuffer().sample_stale() is None

    def test_sample_returns_recorded_byte(self):
        lfb = LineFillBuffer()
        lfb.record_fill(0x1000, line(b"A"), thread_id=0)
        assert lfb.sample_stale(0) == ord("A")

    def test_offset_selects_byte_within_line(self):
        lfb = LineFillBuffer()
        lfb.record_fill(0x1000, line(b"ABCD"), thread_id=0)
        assert lfb.sample_stale(2) == ord("C")

    def test_capacity_is_bounded(self):
        lfb = LineFillBuffer(entries=4)
        for index in range(10):
            lfb.record_fill(index * 64, line(bytes([index])), 0)
        assert len(lfb) == 4

    def test_oldest_entries_rotate_out(self):
        lfb = LineFillBuffer(entries=2)
        lfb.record_fill(0, line(b"\x01"), 0)
        lfb.record_fill(64, line(b"\x02"), 0)
        lfb.record_fill(128, line(b"\x03"), 0)
        samples = {lfb.sample_stale(0) for _ in range(10)}
        assert 1 not in samples
        assert samples <= {2, 3}

    def test_sampling_rotates_through_entries(self):
        lfb = LineFillBuffer(entries=4)
        lfb.record_fill(0, line(b"\x01"), 0)
        lfb.record_fill(64, line(b"\x02"), 0)
        samples = [lfb.sample_stale(0) for _ in range(4)]
        assert set(samples) == {1, 2}

    def test_entries_tracked_per_thread(self):
        lfb = LineFillBuffer()
        lfb.record_fill(0, line(b"x"), thread_id=0)
        lfb.record_fill(64, line(b"y"), thread_id=1)
        assert lfb.entries_from_thread(0) == 1
        assert lfb.entries_from_thread(1) == 1

    def test_clear(self):
        lfb = LineFillBuffer()
        lfb.record_fill(0, line(b"x"), 0)
        lfb.clear()
        assert len(lfb) == 0
        assert lfb.sample_stale() is None

    def test_snapshot_is_immutable_copy(self):
        lfb = LineFillBuffer()
        data = bytearray(line(b"S"))
        lfb.record_fill(0, data, 0)
        data[0] = 0  # mutate the caller's buffer afterwards
        assert lfb.sample_stale(0) == ord("S")
