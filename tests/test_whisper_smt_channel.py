"""Functional tests for the §4.4 SMT covert channel."""

import random

import pytest

from repro.sim.machine import Machine
from repro.whisper.smt_channel import MODES, SmtChannelStats, SmtCovertChannel


class TestModes:
    def test_known_modes(self):
        assert set(MODES) == {"reliable", "secsmt"}

    def test_unknown_mode_rejected(self, machine):
        with pytest.raises(ValueError):
            SmtCovertChannel(machine, mode="turbo")


class TestReliableMode:
    def test_roundtrip_random_bits(self):
        machine = Machine("i7-7700", seed=61)
        channel = SmtCovertChannel(machine, mode="reliable")
        rng = random.Random(8)
        bits = [rng.randint(0, 1) for _ in range(24)]
        stats = channel.transmit(bits)
        assert stats.bits_received == bits
        assert stats.error_rate == 0.0

    def test_all_ones_and_all_zeros(self):
        machine = Machine("i7-7700", seed=62)
        channel = SmtCovertChannel(machine, mode="reliable")
        assert channel.transmit([1] * 8).bits_received == [1] * 8
        assert channel.transmit([0] * 8).bits_received == [0] * 8

    def test_byte_interface(self):
        machine = Machine("i7-7700", seed=63)
        channel = SmtCovertChannel(machine, mode="reliable")
        stats = channel.transmit_bytes(b"\xa5")
        assert stats.bits_sent == 8
        assert stats.bits_received == [1, 0, 1, 0, 0, 1, 0, 1]

    def test_stats_shape(self):
        machine = Machine("i7-7700", seed=64)
        channel = SmtCovertChannel(machine, mode="reliable")
        stats = channel.transmit([1, 0])
        assert isinstance(stats, SmtChannelStats)
        assert stats.cycles > 0 and stats.seconds > 0
        assert len(stats.samples) == 2
        assert "bit error rate" in str(stats)


class TestSecSmtMode:
    def test_fast_mode_is_faster(self):
        machine = Machine("i7-7700", seed=65)
        reliable = SmtCovertChannel(machine, mode="reliable")
        fast = SmtCovertChannel(machine, mode="secsmt")
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        slow_stats = reliable.transmit(bits)
        fast_stats = fast.transmit(bits)
        assert fast_stats.bytes_per_second > slow_stats.bytes_per_second

    def test_fast_mode_error_never_worse_than_half(self):
        """The paper's SecSMT config trades accuracy for rate (28% error);
        in the noise-free simulator it should stay clearly below chance."""
        machine = Machine("i7-7700", seed=66)
        channel = SmtCovertChannel(machine, mode="secsmt")
        rng = random.Random(9)
        bits = [rng.randint(0, 1) for _ in range(32)]
        stats = channel.transmit(bits)
        assert stats.error_rate < 0.5


class TestRepetitionCoding:
    """The paper's future work: 'speed up with high accuracy'."""

    def test_repetition_must_be_odd(self, machine):
        with pytest.raises(ValueError):
            SmtCovertChannel(machine, repetition=2)
        with pytest.raises(ValueError):
            SmtCovertChannel(machine, repetition=0)

    def test_repetition_roundtrip(self):
        machine = Machine("i7-7700", seed=69)
        channel = SmtCovertChannel(machine, mode="secsmt", repetition=3)
        bits = [1, 0, 0, 1, 1, 0, 1, 0]
        stats = channel.transmit(bits)
        assert stats.bits_received == bits
        assert stats.error_rate == 0.0

    def test_repetition_costs_rate(self):
        machine = Machine("i7-7700", seed=70)
        plain = SmtCovertChannel(machine, mode="secsmt", repetition=1)
        coded = SmtCovertChannel(machine, mode="secsmt", repetition=3)
        bits = [1, 0] * 4
        plain_stats = plain.transmit(bits)
        coded_stats = coded.transmit(bits)
        assert coded_stats.bytes_per_second < plain_stats.bytes_per_second


class TestSignalSeparation:
    def test_one_symbols_are_slower_than_zero_symbols(self):
        machine = Machine("i7-7700", seed=67)
        channel = SmtCovertChannel(machine, mode="reliable")
        stats = channel.transmit([1, 0, 1, 0, 1, 0])
        ones = [s for s, b in zip(stats.samples, [1, 0, 1, 0, 1, 0]) if b]
        zeros = [s for s, b in zip(stats.samples, [1, 0, 1, 0, 1, 0]) if not b]
        assert min(ones) > max(zeros)

    def test_threshold_lies_between_symbol_clusters(self):
        machine = Machine("i7-7700", seed=68)
        channel = SmtCovertChannel(machine, mode="reliable")
        stats = channel.transmit([1, 0, 1, 0])
        ones = [s for s, b in zip(stats.samples, [1, 0, 1, 0]) if b]
        zeros = [s for s, b in zip(stats.samples, [1, 0, 1, 0]) if not b]
        assert max(zeros) < stats.threshold < min(ones)
