"""Differential identity: the lockstep batch executor vs the scalar core.

The batch executor never gets to *be* the reference: the scalar
``Core`` run is the bit-identity oracle (exactly as ``decode_plan=False``
is for the plan cache), and every follower lane the shadow replay keeps
alive must read back byte-for-byte what a hermetic scalar run of that
lane computes -- architectural registers, PMU counters, cycle timeline,
and at the trial level, ``TrialResult.totes``/``cycles``.

Random programs come from the same generator the decode-plan suite uses
(faults under TSX suppression, speculation windows, stores feeding later
loads), driven per lane with divergent initial registers so taint flows
through ALU/flag/memory state.  Runs under Hypothesis when installed; a
seeded-``random`` fallback drives the same property with fixed seeds
otherwise (the repo convention).
"""

import os
import random

import pytest

from repro.kernel.kaslr import user_mapped_slots
from repro.runtime.batch import (
    BatchStats,
    LockstepBatch,
    plan_packs,
    run_channel_pack,
    run_trials_batched,
)
from repro.runtime.spec import MachineSpec
from repro.runtime.tasks import (
    ChannelTrial,
    KaslrTrial,
    clear_worker_contexts,
    run_trial,
)
from repro.sim.machine import Machine

from tests.test_decode_plan_properties import PAGE_IMAGE, random_program_text

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


#: Registers the differential harness reads back (the full GPR file minus
#: nothing -- divergence anywhere is a failure).
from repro.isa.registers import GPRS

#: Per-lane initial registers: r12/r13 are the pinned data/null pointers;
#: the rest diverge per lane so taint actually flows.
def _lane_regs(page: int, lanes: int):
    return [
        {
            "r12": page,
            "r13": 0,
            "r9": 3 + lane * 17,
            "rax": (lane * 0x9E3779B9) & ((1 << 64) - 1),
            "r8": lane,
        }
        for lane in range(lanes)
    ]


def _fresh_context(seed: int):
    """A hermetic (machine, page, program) triple for one observation."""
    rng = random.Random(seed)
    machine = Machine("i7-7700", seed=7)
    page = machine.alloc_data()
    program = machine.load_program(random_program_text(rng))
    return machine, page, program


def _scalar_lane(seed: int, regs, runs: int):
    """The oracle: one lane run scalar on its own machine, *runs* times
    back-to-back (memory persists between runs, like a batch's)."""
    machine, page, program = _fresh_context(seed)
    machine.reset_uarch(noise_seed=99)
    machine.write_data(page, PAGE_IMAGE)
    for _ in range(runs):
        result = machine.run(program, regs=dict(regs))
    return {
        "regs": {name: result.regs.read(name) for name in GPRS},
        "pmu": dict(machine.core.pmu.counts),
        "cycles": machine.core.global_cycle,
    }


def check_batch_equals_scalar(seed: int, lanes: int = 5, runs: int = 2) -> None:
    machine, page, program = _fresh_context(seed)
    machine.reset_uarch(noise_seed=99)
    machine.write_data(page, PAGE_IMAGE)
    lane_regs = _lane_regs(page, lanes)
    batch = LockstepBatch(machine, program, lanes)
    for _ in range(runs):
        run = batch.run(lane_regs)
    leader_pmu = dict(machine.core.pmu.counts)
    leader_cycles = machine.core.global_cycle
    assert batch.alive[0], "the leader lane can never be evicted"
    for lane in range(lanes):
        scalar = _scalar_lane(seed, lane_regs[lane], runs)
        if not batch.alive[lane]:
            # Evicted lanes make no claims -- the production path re-runs
            # them scalar, which is trivially identical.  Just check the
            # eviction was recorded.
            assert lane in batch.evict_reasons
            continue
        got = {name: run.lane_reg(lane, name) for name in GPRS}
        assert got == scalar["regs"], (
            f"seed {seed} lane {lane}: shadow registers diverged "
            f"({batch.evict_reasons})"
        )
        # Timing state is shared with the leader by construction; the
        # assertion is that the scalar run agrees with it.
        assert leader_pmu == scalar["pmu"], f"seed {seed} lane {lane}: PMU diverged"
        assert leader_cycles == scalar["cycles"], (
            f"seed {seed} lane {lane}: cycle timeline diverged"
        )


if HAVE_HYPOTHESIS:

    class TestLockstepEqualsScalar:
        @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
        @settings(max_examples=10, deadline=None)
        def test_lanes_match_hermetic_scalar_runs(self, seed):
            check_batch_equals_scalar(seed)

else:  # pragma: no cover - exercised only without hypothesis

    class TestLockstepEqualsScalar:
        @pytest.mark.parametrize("seed", list(range(10)))
        def test_lanes_match_hermetic_scalar_runs(self, seed):
            check_batch_equals_scalar(seed)


def test_seed_254_batch_path():
    """The pinned decode-plan/legacy reproducer, third path: the batch
    shadow replays seed 254's retired-store-before-xbegin program without
    inheriting the (fixed) harness residue bug."""
    check_batch_equals_scalar(254)


def test_wide_pack_uses_numpy_backend_when_available():
    """Above the lane threshold the SoA math may go through numpy; both
    backends must produce identical shadow state."""
    seed = 11
    machine, page, program = _fresh_context(seed)
    machine.reset_uarch(noise_seed=99)
    machine.write_data(page, PAGE_IMAGE)
    lanes = 9
    lane_regs = _lane_regs(page, lanes)
    batch = LockstepBatch(machine, program, lanes)
    forced = []
    for use_numpy in (False, batch.use_numpy):
        m, p, prog = _fresh_context(seed)
        m.reset_uarch(noise_seed=99)
        m.write_data(p, PAGE_IMAGE)
        b = LockstepBatch(m, prog, lanes)
        b.use_numpy = use_numpy
        run = b.run(_lane_regs(p, lanes))
        forced.append(
            (
                tuple(b.alive),
                tuple(
                    tuple(run.lane_reg(lane, name) for name in GPRS)
                    for lane in range(lanes)
                    if b.alive[lane]
                ),
            )
        )
    assert forced[0] == forced[1]


# -- trial-level identity ------------------------------------------------------


def _channel_payloads():
    """A scan whose byte sits inside the test range, so one lane's Jcc
    really does diverge (the eviction + scalar-fallback path)."""
    spec = MachineSpec("i7-7700", seed=1)
    return [
        ChannelTrial(spec=spec, byte=7, test=test, batches=2, trial_index=test)
        for test in range(20)
    ]


class TestChannelPackIdentity:
    @pytest.mark.parametrize("batch_size", [1, 4, 17])
    def test_batched_trials_equal_scalar_trials(self, batch_size):
        payloads = _channel_payloads()
        clear_worker_contexts()
        scalar = [run_trial(p) for p in payloads]
        clear_worker_contexts()
        stats = BatchStats()
        batched = run_trials_batched(payloads, batch_size, stats)
        assert batched == scalar
        if batch_size > 1:
            assert stats.packs > 0
            # The matching test value (7) diverges at its Jcc and must
            # have been evicted, not approximated.
            assert stats.evicted_lanes >= 1

    def test_pack_results_positionally_aligned(self):
        payloads = _channel_payloads()
        clear_worker_contexts()
        results = run_channel_pack(payloads[:6])
        clear_worker_contexts()
        assert results == [run_trial(p) for p in payloads[:6]]

    def test_plan_packs_preserves_order_and_size(self):
        payloads = _channel_payloads()
        groups = plan_packs(payloads, 8)
        assert [t for g in groups for t in g] == payloads
        assert max(len(g) for g in groups) <= 8
        # Mixed-key neighbours never share a pack.
        other = ChannelTrial(
            spec=MachineSpec("i7-7700", seed=2),
            byte=7,
            test=0,
            batches=2,
            trial_index=0,
        )
        groups = plan_packs(payloads[:3] + [other] + payloads[3:6], 8)
        for group in groups:
            assert len({(t.spec, t.byte) for t in group}) == 1

    def test_batch_size_one_is_scalar(self):
        payloads = _channel_payloads()[:4]
        groups = plan_packs(payloads, 1)
        assert all(len(g) == 1 for g in groups)


# -- KASLR pack identity (translation shadow + leader trace cache) -------------


def _kaslr_payloads(seed, slots, cr3_switch, suppression, warm_probes=1):
    """KASLR-style sweep payloads: one double-probe per candidate slot."""
    from repro.kernel.layout import slot_base

    spec = MachineSpec("i7-7700", seed=seed, kpti=True)
    return [
        KaslrTrial(
            spec=spec,
            va=slot_base(slot),
            cr3_switch=cr3_switch,
            trial_index=index,
            warm_probes=warm_probes,
            suppression=suppression,
        )
        for index, slot in enumerate(slots)
    ]


def check_kaslr_batch_equals_scalar(
    seed, slots, cr3_switch, suppression, batch_size=8
):
    """The KASLR differential property: batched double-probes over an
    arbitrary slot mix (mapped, unmapped, and out-of-image candidates)
    are byte-identical to hermetic scalar trials, mapped candidates are
    evicted (never approximated), and disabling the leader trace cache
    changes nothing."""
    payloads = _kaslr_payloads(seed, slots, cr3_switch, suppression)
    clear_worker_contexts()
    scalar = [run_trial(p) for p in payloads]
    clear_worker_contexts()
    stats = BatchStats()
    batched = run_trials_batched(payloads, batch_size, stats)
    assert batched == scalar
    # Which slots actually resolve from user space this boot: exactly
    # those lanes cannot be walk-isomorphic to an unmapped leader.
    layout = _kaslr_layout(payloads[0].spec)
    mapped = user_mapped_slots(layout, kpti=True)
    n_mapped = sum(1 for slot in slots if slot in mapped)
    if 0 < n_mapped < len(slots):
        assert stats.evictions.get("translation-divergence", 0) >= 1
    clear_worker_contexts()
    os.environ["REPRO_BATCH_LEADER_CACHE"] = "0"
    try:
        assert run_trials_batched(payloads, batch_size) == scalar
    finally:
        os.environ.pop("REPRO_BATCH_LEADER_CACHE", None)
        clear_worker_contexts()


def _kaslr_layout(spec):
    from repro.runtime.tasks import _kaslr_context

    return _kaslr_context(spec, "direct", None).machine.kernel.layout


def _slot_mix(rng, layout):
    """A small sweep slice straddling interesting territory: slots near
    the hidden kernel image (some user-mapped under KPTI via the
    trampoline remnant), plus far-away definitely-unmapped ones."""
    base = layout.slot
    near = rng.sample(range(max(0, base - 2), min(512, base + 18)), 6)
    far = rng.sample(range(0, 64), 3)
    return near + far


def check_kaslr_random_case(seed):
    rng = random.Random(seed)
    spec = MachineSpec("i7-7700", seed=seed % 97, kpti=True)
    layout = _kaslr_layout(spec)
    slots = _slot_mix(rng, layout)
    check_kaslr_batch_equals_scalar(
        seed % 97,
        slots,
        cr3_switch=rng.random() < 0.5,
        suppression=rng.choice([None, "tsx"]),
    )


if HAVE_HYPOTHESIS:

    class TestKaslrPackEqualsScalar:
        @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
        @settings(max_examples=5, deadline=None)
        def test_random_sweeps_match_hermetic_scalar_trials(self, seed):
            check_kaslr_random_case(seed)

else:  # pragma: no cover - exercised only without hypothesis

    class TestKaslrPackEqualsScalar:
        @pytest.mark.parametrize("seed", list(range(5)))
        def test_random_sweeps_match_hermetic_scalar_trials(self, seed):
            check_kaslr_random_case(seed)


class TestKaslrPackStructure:
    def test_mapped_candidate_evicts_unmapped_survive(self):
        """A sweep straddling the trampoline slot: the one user-mapped
        candidate evicts with the translation-divergence reason; every
        unmapped lane rides the leader's walk shape."""
        spec = MachineSpec("i7-7700", seed=21, kpti=True)
        layout = _kaslr_layout(spec)
        mapped = user_mapped_slots(layout, kpti=True)
        assert len(mapped) == 1  # KPTI: just the trampoline remnant
        (tramp_slot,) = mapped
        slots = list(range(tramp_slot - 3, tramp_slot + 5))
        payloads = _kaslr_payloads(21, slots, False, None)
        clear_worker_contexts()
        scalar = [run_trial(p) for p in payloads]
        clear_worker_contexts()
        stats = BatchStats()
        assert run_trials_batched(payloads, len(payloads), stats) == scalar
        assert stats.evictions == {"translation-divergence": 1}
        clear_worker_contexts()

    def test_leader_cache_hits_across_same_structure_packs(self):
        """Every pack after the first in a uniform sweep replays the
        memoized leader: misses stay at one."""
        payloads = _kaslr_payloads(3, list(range(24)), False, None)
        clear_worker_contexts()
        scalar = [run_trial(p) for p in payloads]
        clear_worker_contexts()
        stats = BatchStats()
        assert run_trials_batched(payloads, 8, stats) == scalar
        assert stats.leader_cache_misses == 1
        assert stats.leader_cache_hits == stats.packs - 1
        clear_worker_contexts()

    def test_sets_eviction_stays_scalar(self):
        """'sets' eviction has per-address conflict structure the pack
        planner must not batch."""
        payloads = [
            KaslrTrial(
                spec=MachineSpec("i7-7700", seed=5, kpti=True),
                va=0xFFFFFFFF80000000 + i * 0x200000,
                cr3_switch=False,
                trial_index=i,
                eviction="sets",
            )
            for i in range(4)
        ]
        assert all(len(g) == 1 for g in plan_packs(payloads, 8))
