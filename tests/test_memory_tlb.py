"""Unit and property tests for the TLBs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.paging import PageSize, Pte
from repro.memory.tlb import SplitTlb, Tlb


def pte(pfn=1, global_=False, size=PageSize.SIZE_4K):
    return Pte(pfn=pfn, global_=global_, page_size=size)


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb("T", 16, 4, PageSize.SIZE_4K)
        assert tlb.lookup(0x5000) is None
        tlb.fill(0x5000, pte())
        entry = tlb.lookup(0x5123)  # same page
        assert entry is not None

    def test_different_pages_are_different_entries(self):
        tlb = Tlb("T", 16, 4, PageSize.SIZE_4K)
        tlb.fill(0x5000, pte(pfn=5))
        assert tlb.lookup(0x6000) is None

    def test_invalidate(self):
        tlb = Tlb("T", 16, 4, PageSize.SIZE_4K)
        tlb.fill(0x5000, pte())
        assert tlb.invalidate(0x5000) is True
        assert tlb.lookup(0x5000) is None

    def test_flush_clears_everything(self):
        tlb = Tlb("T", 16, 4, PageSize.SIZE_4K)
        tlb.fill(0x5000, pte())
        tlb.fill(0x6000, pte())
        tlb.flush()
        assert tlb.resident_entries == 0

    def test_flush_keep_global(self):
        tlb = Tlb("T", 16, 4, PageSize.SIZE_4K)
        tlb.fill(0x5000, pte(global_=True))
        tlb.fill(0x6000, pte(global_=False))
        tlb.flush(keep_global=True)
        assert tlb.lookup(0x5000) is not None
        assert tlb.lookup(0x6000) is None

    def test_capacity_respected(self):
        tlb = Tlb("T", 8, 2, PageSize.SIZE_4K)
        for index in range(64):
            tlb.fill(index * 0x1000, pte())
        assert tlb.resident_entries <= 8

    def test_lru_within_set(self):
        tlb = Tlb("T", 2, 2, PageSize.SIZE_4K)  # 1 set, 2 ways
        tlb.fill(0x1000, pte(pfn=1))
        tlb.fill(0x2000, pte(pfn=2))
        tlb.lookup(0x1000)  # refresh
        tlb.fill(0x3000, pte(pfn=3))
        assert tlb.lookup(0x1000) is not None
        assert tlb.lookup(0x2000) is None

    def test_2m_page_granularity(self):
        tlb = Tlb("T", 16, 4, PageSize.SIZE_2M)
        tlb.fill(0x4020_0000, pte(size=PageSize.SIZE_2M))
        assert tlb.lookup(0x4020_0000 + 0x1F_FFFF) is not None


class TestSplitTlb:
    def test_fill_routes_by_page_size(self):
        split = SplitTlb("D")
        split.fill(0x5000, pte())
        split.fill(0x4000_0000, pte(size=PageSize.SIZE_2M))
        assert split.tlb_4k.resident_entries == 1
        assert split.tlb_2m.resident_entries == 1

    def test_lookup_checks_both_arrays(self):
        split = SplitTlb("D")
        split.fill(0x4000_0000, pte(size=PageSize.SIZE_2M))
        assert split.lookup(0x4010_0000) is not None

    def test_invalidate_hits_both(self):
        split = SplitTlb("D")
        split.fill(0x5000, pte())
        split.invalidate(0x5000)
        assert split.lookup(0x5000) is None

    def test_flush_keep_global(self):
        split = SplitTlb("D")
        split.fill(0x5000, pte(global_=True))
        split.fill(0x6000, pte())
        split.flush(keep_global=True)
        assert split.lookup(0x5000) is not None
        assert split.lookup(0x6000) is None

    def test_hit_counters(self):
        split = SplitTlb("D")
        split.fill(0x5000, pte())
        split.lookup(0x5000)
        assert split.hits >= 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2**28), min_size=1, max_size=100))
def test_fill_then_lookup_most_recent_always_hits(vas):
    tlb = Tlb("T", 64, 4, PageSize.SIZE_4K)
    for va in vas:
        tlb.fill(va, pte())
        assert tlb.lookup(va) is not None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2**28), min_size=1, max_size=200), st.integers(2, 64))
def test_capacity_invariant(vas, entries):
    tlb = Tlb("T", entries, 2, PageSize.SIZE_4K)
    for va in vas:
        tlb.fill(va, pte())
    assert tlb.resident_entries <= max(1, entries // 2) * 2
