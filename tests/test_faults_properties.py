"""Property-based tests for the fault-injection layer.

Runs under Hypothesis when it is installed; a seeded-``random`` fallback
exercises the same properties (fewer cases, fixed seed) when it is not,
so the suite never gains a hard dependency -- the same arrangement as
``test_analysis_properties.py``.

The properties:

* the retry/backoff schedule is a pure function of ``(seed, attempt)``
  and always lands in ``[expected/2, expected]`` where ``expected =
  min(cap, base * 2**attempt)``;
* a :class:`FaultPlan` decision is a pure function of ``(plan seed,
  payload, attempt)`` -- never of scheduling, worker identity, or how
  often it is asked;
* the quarantine list is invariant under worker-count permutation;
* injected store corruption (bit-flips, truncation) is *always* caught
  by the record checksum path: damaged records drop with a warning,
  surviving records replay their exact original values.
"""

import random

import pytest

from repro.campaign import ResultStore
from repro.faults import (
    TRIAL_FAULTS,
    FaultPlan,
    FaultyStore,
    ResiliencePolicy,
    backoff_delay,
)
from repro.runtime import TrialPool, TrialResult

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


# -- shared property checks ----------------------------------------------------


def check_backoff_is_pure_and_bounded(seed, attempt, base, cap):
    first = backoff_delay(seed, attempt, base=base, cap=cap)
    second = backoff_delay(seed, attempt, base=base, cap=cap)
    assert first == second  # pure: no clock, no shared RNG
    expected = min(cap, base * 2**attempt)
    assert expected / 2 <= first <= expected


def check_plan_decision_is_pure(seed, payload, attempt):
    plan = FaultPlan.chaos(seed=seed, rate=0.5)
    twin = FaultPlan.chaos(seed=seed, rate=0.5)
    decision = plan.decide(payload, attempt)
    assert decision == plan.decide(payload, attempt)
    assert decision == twin.decide(payload, attempt)  # value semantics
    assert decision is None or decision in TRIAL_FAULTS


def check_store_corruption_always_detected(tmp_path, seed, tag, records=24):
    """Write through a corrupting store; a fresh load must drop every
    damaged record with a warning and replay the rest exactly."""
    plan = FaultPlan(
        seed=seed, bitflip_rate=0.25, truncate_rate=0.25
    )
    faulty = FaultyStore(str(tmp_path / tag), plan)
    originals = {
        f"key{i:04d}": TrialResult(totes=(i, i * 7), cycles=i * 100)
        for i in range(records)
    }
    faulty.put_many(sorted(originals.items()))
    assert faulty.corrupted, "plan was expected to damage some records"
    damaged = {key for key, _ in faulty.corrupted}

    reloaded = ResultStore(str(tmp_path / tag))
    with pytest.warns(UserWarning, match="corrupt store record"):
        survivors = {key: reloaded.get(key) for key in originals
                     if key in reloaded}
    for key in damaged:
        assert key not in survivors  # detected, degraded to re-execution
    for key, outcome in survivors.items():
        assert outcome == originals[key]  # never a silently wrong replay
    assert len(survivors) == records - len(damaged)


def _flaky_len(payload):
    return TrialResult(totes=(len(payload),), cycles=len(payload))


def check_quarantine_is_worker_count_invariant(tmp_path, seed, counts=(1, 2, 4)):
    plan = FaultPlan.chaos(seed=seed, rate=0.45)
    snapshots = []
    for workers in counts:
        with TrialPool(
            workers=workers, policy=ResiliencePolicy(max_retries=1)
        ) as pool:
            pool.install_faults(plan)
            pool.map(_flaky_len, [f"payload-{i}" for i in range(24)])
            snapshots.append(
                (
                    [
                        (e.index, e.attempts, e.faults, e.error)
                        for e in pool.quarantine
                    ],
                    pool.fault_stats.as_dict(),
                )
            )
    assert snapshots[0] == snapshots[1] == snapshots[2]


# -- plan shape (plain unit properties) ----------------------------------------


class TestFaultPlanShape:
    def test_zero_rates_never_fire(self):
        plan = FaultPlan(seed=1)
        assert not plan.injects_trials
        assert not plan.injects_store
        assert all(
            plan.decide(f"p{i}", attempt) is None
            for i in range(64)
            for attempt in range(3)
        )

    def test_total_rate_one_always_fires(self):
        plan = FaultPlan(seed=2, raise_rate=1.0)
        assert all(plan.decide(f"p{i}", 0) == "raise" for i in range(32))

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1, raise_rate=0.7, hang_rate=0.7)
        with pytest.raises(ValueError):
            FaultPlan(seed=1, garbage_rate=-0.1)

    def test_chaos_mixes_categories(self):
        plan = FaultPlan.chaos(seed=3, rate=0.8)
        kinds = {
            plan.decide(f"p{i}", attempt)
            for i in range(128)
            for attempt in range(2)
        }
        assert set(TRIAL_FAULTS) <= kinds

    def test_attempts_draw_independently(self):
        """Per-attempt draws differ -- that is why retries usually clear
        an injected fault instead of looping on it forever."""
        plan = FaultPlan.chaos(seed=4, rate=0.5)
        fates = [
            tuple(plan.decide(f"p{i}", attempt) for attempt in range(4))
            for i in range(64)
        ]
        assert any(len(set(fate)) > 1 for fate in fates)

    def test_backoff_disabled_by_default_policy(self):
        assert ResiliencePolicy().delay(0) == 0.0
        assert backoff_delay(123, 5, base=0.0) == 0.0


# -- seeded fallback (always runs) ---------------------------------------------


class TestSeededProperties:
    def test_backoff_schedule(self):
        rng = random.Random(0xFA171)
        for _ in range(200):
            check_backoff_is_pure_and_bounded(
                seed=rng.getrandbits(64),
                attempt=rng.randrange(8),
                base=rng.uniform(0.001, 0.5),
                cap=rng.uniform(0.5, 2.0),
            )

    def test_plan_decisions(self):
        rng = random.Random(0xFA172)
        for _ in range(200):
            check_plan_decision_is_pure(
                seed=rng.getrandbits(64),
                payload=f"payload-{rng.getrandbits(32)}",
                attempt=rng.randrange(4),
            )

    def test_store_corruption_detected(self, tmp_path):
        rng = random.Random(0xFA173)
        for round_index in range(6):
            check_store_corruption_always_detected(
                tmp_path, seed=rng.getrandbits(64), tag=f"s{round_index}"
            )

    def test_quarantine_worker_invariance(self, tmp_path):
        rng = random.Random(0xFA174)
        for _ in range(3):
            check_quarantine_is_worker_count_invariant(
                tmp_path, seed=rng.getrandbits(64)
            )


# -- hypothesis (when available) -----------------------------------------------


if HAVE_HYPOTHESIS:

    class TestHypothesisProperties:
        @given(
            seed=st.integers(min_value=0, max_value=2**64 - 1),
            attempt=st.integers(min_value=0, max_value=12),
            base=st.floats(min_value=0.001, max_value=0.5),
            cap=st.floats(min_value=0.5, max_value=4.0),
        )
        @settings(max_examples=200, deadline=None)
        def test_backoff_schedule(self, seed, attempt, base, cap):
            check_backoff_is_pure_and_bounded(seed, attempt, base, cap)

        @given(
            seed=st.integers(min_value=0, max_value=2**64 - 1),
            payload=st.text(min_size=0, max_size=40),
            attempt=st.integers(min_value=0, max_value=6),
        )
        @settings(max_examples=200, deadline=None)
        def test_plan_decisions(self, seed, payload, attempt):
            check_plan_decision_is_pure(seed, payload, attempt)

        @given(seed=st.integers(min_value=0, max_value=2**64 - 1))
        @settings(max_examples=10, deadline=None)
        def test_store_corruption_detected(self, seed, tmp_path_factory):
            tmp_path = tmp_path_factory.mktemp("faulty")
            check_store_corruption_always_detected(tmp_path, seed, "h")
