"""The TrialPool determinism contract: serial == parallel, bit for bit.

Every test here compares the same campaign run through
``TrialPool(workers=1)`` (the serial reference executor) and
``TrialPool(workers=4)`` (real worker processes).  The contract is not
"statistically similar" -- it is full structural equality of results,
including every raw ToTE sample, because each trial's outcome is a pure
function of ``(MachineSpec, payload)``.
"""

import os

import pytest

from repro.runtime import (
    ChannelTrial,
    MachineSpec,
    ProcessExecutor,
    SerialExecutor,
    TrialPool,
    WorkerLostError,
    derive_seed,
    run_channel_trial,
)
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel

VALUES = range(48)  # a fast sub-scan; full 256-value scans are marked slow


def _scan(workers: int, byte: int = 0x2A):
    machine = Machine("i7-7700", seed=99)
    with TrialPool(workers=workers) as pool:
        channel = TetCovertChannel(machine, batches=2, values=VALUES, pool=pool)
        return channel.send_byte(byte)


class TestExecutorSelection:
    def test_one_worker_is_serial(self):
        assert isinstance(TrialPool(workers=1).executor, SerialExecutor)

    def test_many_workers_is_process(self):
        pool = TrialPool(workers=4)
        assert isinstance(pool.executor, ProcessExecutor)
        pool.close()

    def test_workers_floor_is_one(self):
        assert TrialPool(workers=0).workers == 1
        assert TrialPool(workers=-3).workers == 1

    def test_context_manager_closes(self):
        with TrialPool(workers=2) as pool:
            assert pool.map(len, ["ab", "c"]) == [2, 1]
        assert pool.executor._pool is None

    def test_empty_payloads(self):
        with TrialPool(workers=2) as pool:
            assert pool.map(len, []) == []

    def test_trials_executed_counter(self):
        """The pool counts dispatched trials (campaign reports use the
        counter to tell live execution from store replays)."""
        with TrialPool(workers=1) as pool:
            assert pool.trials_executed == 0
            pool.map(len, ["ab", "c"])
            pool.map(len, ["def"])
            assert pool.trials_executed == 3
        with TrialPool(workers=2) as pool:
            pool.map(len, ["ab", "c", "d"])
            assert pool.trials_executed == 3


def _exit_on_sentinel(payload):
    """A trial function whose worker dies -- for real -- on one payload."""
    if payload == "die":
        os._exit(43)
    return len(payload)


def _raise_on_sentinel(payload):
    if payload == "boom":
        raise ValueError("boom payload")
    return len(payload)


class TestWorkerLoss:
    def test_worker_death_raises_with_payload_index(self):
        """A dead worker surfaces as WorkerLostError naming the payload
        it took down -- never an opaque hang (the multiprocessing.Pool
        failure mode this crew replaces)."""
        with TrialPool(workers=2) as pool:
            with pytest.raises(WorkerLostError) as info:
                pool.map(_exit_on_sentinel, ["ab", "c", "die", "wxyz"])
            assert info.value.payload_index == 2
            assert "payload 2" in str(info.value)

    def test_pool_usable_after_worker_death(self):
        """The casualty is respawned before the raise, so the same pool
        keeps working."""
        with TrialPool(workers=2) as pool:
            with pytest.raises(WorkerLostError):
                pool.map(_exit_on_sentinel, ["die", "ab"])
            assert pool.map(_exit_on_sentinel, ["ab", "c"]) == [2, 1]

    def test_worker_exception_propagates(self):
        with TrialPool(workers=2) as pool:
            with pytest.raises(RuntimeError, match="boom payload"):
                pool.map(_raise_on_sentinel, ["ab", "boom", "c"])
            assert pool.map(_raise_on_sentinel, ["abc"]) == [3]


class TestSerialParallelEquivalence:
    def test_byte_scan_identical(self):
        """workers=1 and workers=4 produce the same ByteScanResult --
        value, confidence, votes, and every raw ToTE sample."""
        serial = _scan(workers=1)
        parallel = _scan(workers=4)
        assert serial.value == parallel.value == 0x2A
        assert serial.confidence == parallel.confidence
        assert serial.votes == parallel.votes
        assert serial.totes_by_test == parallel.totes_by_test

    def test_trial_function_is_pure(self):
        """The same trial payload yields the same result on repeat runs
        (the property the pool's scheduling-independence rests on)."""
        spec = MachineSpec(seed=5)
        trial = ChannelTrial(spec=spec, byte=0x11, test=0x11, batches=3, trial_index=7)
        assert run_channel_trial(trial) == run_channel_trial(trial)

    def test_trial_index_controls_noise_stream(self):
        """Distinct trial indices derive distinct noise seeds."""
        spec = MachineSpec(seed=5, noise_amplitude=3)
        seeds = {spec.trial_seed(i) for i in range(64)}
        assert len(seeds) == 64

    @pytest.mark.slow
    def test_full_byte_scan_identical(self):
        machine = Machine("i7-7700", seed=3)
        with TrialPool(workers=1) as p1:
            one = TetCovertChannel(machine, batches=3, pool=p1).send_byte(0xC4)
        machine2 = Machine("i7-7700", seed=3)
        with TrialPool(workers=4) as p4:
            four = TetCovertChannel(machine2, batches=3, pool=p4).send_byte(0xC4)
        assert one == four
        assert one.value == 0xC4


class TestKaslrEquivalence:
    @pytest.mark.slow
    def test_kpti_break_identical(self):
        from repro.whisper.attacks.kaslr import TetKaslr

        results = []
        for workers in (1, 4):
            machine = Machine("i7-7700", seed=21, kaslr=True, kpti=True)
            with TrialPool(workers=workers) as pool:
                results.append(TetKaslr(machine, pool=pool).break_kaslr_kpti())
        one, four = results
        assert one.found_base == four.found_base
        assert one.totes_by_slot == four.totes_by_slot
        assert one.mapped_slots == four.mapped_slots
        assert one.success and four.success


class TestSeedDerivation:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(1234, 0) == derive_seed(1234, 0)

    def test_derive_seed_spreads(self):
        """splitmix64 mixing: nearby (root, index) pairs land far apart."""
        outs = {derive_seed(root, index) for root in range(4) for index in range(64)}
        assert len(outs) == 4 * 64

    def test_derive_seed_is_64_bit(self):
        for index in (0, 1, 2**31, 2**62):
            assert 0 <= derive_seed(0xDEADBEEF, index) < 2**64

    def test_spec_roundtrip(self):
        machine = Machine("i9-13900K", seed=42, kaslr=True, kpti=True)
        spec = MachineSpec.of(machine)
        rebuilt = spec.build()
        assert rebuilt.model.name == machine.model.name
        assert rebuilt.kernel.layout.base == machine.kernel.layout.base


class TestBatchStanddown:
    """``batch.standdown`` events: a requested-but-bypassed batch path
    must be visible in telemetry, never a silent slow run."""

    def _payloads(self):
        spec = MachineSpec("i7-7700", seed=1)
        return [
            ChannelTrial(
                spec=spec, byte=0x2A, test=test, batches=2, trial_index=test
            )
            for test in range(4)
        ]

    def _standdowns(self, records):
        return [
            record["attrs"]
            for record in records
            if record.get("kind") == "event"
            and record.get("name") == "batch.standdown"
        ]

    def _map_observed(self, pool, fn, payloads, faults=None):
        from repro import telemetry

        telemetry.enable()
        try:
            if faults is not None:
                pool.install_faults(faults)
            pool.map(fn, payloads)
            return self._standdowns(telemetry.recorder().drain())
        finally:
            telemetry.disable()

    def test_wrapped_fn_stands_down_with_reason(self):
        payloads = self._payloads()
        with TrialPool(workers=1, batch_size=4) as pool:
            events = self._map_observed(
                pool, lambda trial: run_channel_trial(trial), payloads
            )
        assert events == [{"reason": "wrapped-fn", "payloads": 4}]

    def test_resilience_policy_stands_down(self):
        from repro.faults import ResiliencePolicy

        payloads = self._payloads()
        policy = ResiliencePolicy(max_retries=0, backoff_base=0.0)
        with TrialPool(workers=1, batch_size=4, policy=policy) as pool:
            events = self._map_observed(pool, run_channel_trial, payloads)
        assert events == [{"reason": "resilience-policy", "payloads": 4}]

    def test_fault_injection_stands_down(self):
        from repro.faults import FaultPlan

        payloads = self._payloads()
        with TrialPool(workers=1, batch_size=4) as pool:
            events = self._map_observed(
                pool,
                run_channel_trial,
                payloads,
                faults=FaultPlan.chaos(seed=7, rate=0.0),
            )
        assert events == [{"reason": "fault-injection", "payloads": 4}]

    def test_batched_map_emits_no_standdown(self):
        payloads = self._payloads()
        with TrialPool(workers=1, batch_size=4) as pool:
            events = self._map_observed(pool, run_channel_trial, payloads)
        assert events == []
