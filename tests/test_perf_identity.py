"""Golden byte-identity: the hot-path overhaul must not move one ToTE.

The decode-plan cache, the copy-on-write speculation snapshots, the
inlined PMU/MMU fast paths and the pool's adaptive chunking are all
*timing-model-neutral* optimisations: they may only change how fast the
simulator computes a trial, never what the trial computes.  This module
pins that contract two ways:

* **golden constants**: ToTE tuples and cycle counts for fixed
  ``ChannelTrial``/``KaslrTrial`` payloads, captured from the
  pre-overhaul tree.  Any optimisation that shifts a number here has
  changed the simulated microarchitecture, not just its implementation.
* **execution-shape identity** (the ``w1``/``w8`` pattern from
  ``test_faults_chaos.py``): the same payload list run serially, pooled
  per-payload, and pooled with explicit chunking yields structurally
  equal results -- chunk grouping is scheduling, not semantics.

The lockstep batch executor joins the same contract: ``batch_size``
lanes {1, 4, 17} across serial, pooled and resumed (split-map) runs must
all yield the scalar bytes -- pack formation, like chunking, may only
change how trials are scheduled, never what they compute.
"""

import pytest

from repro.runtime import TrialPool
from repro.runtime.spec import MachineSpec
from repro.runtime.tasks import ChannelTrial, KaslrTrial, run_trial
from repro.sim.machine import Machine

#: (model, seed, secret byte, test value, trial index) -> (totes, cycles),
#: captured before the hot-path overhaul landed.
GOLDEN_CHANNEL = [
    (("i7-7700", 1, 0x54, 0x54, 0), ((278, 278, 278), 4588)),
    (("i7-7700", 1, 0x54, 0x32, 1), ((270, 270, 270), 4564)),
    (("i7-7700", 1, 0xA7, 0x00, 5), ((270, 270, 270), 4564)),
    (("i9-13900K", 7, 0x54, 0x54, 0), ((556, 556, 556), 7075)),
    (("i9-13900K", 7, 0x54, 0x32, 1), ((547, 547, 547), 7048)),
    (("i9-13900K", 7, 0xA7, 0x00, 5), ((547, 547, 547), 7048)),
]

#: (va offset from the randomised base, cr3 switch, trial index) on an
#: ``i7-7700, seed=21, kaslr+kpti`` boot (base 0xFFFFFFFF8A800000).
GOLDEN_KASLR = [
    ((0x0, False, 0), ((270,), 10055)),
    ((0x0, True, 1), ((276,), 10142)),
    ((0x200000, False, 4), ((270,), 10055)),
]

KASLR_BASE = 0xFFFFFFFF8A800000


def _channel_payload(model, seed, secret, test, index) -> ChannelTrial:
    return ChannelTrial(
        spec=MachineSpec(model, seed=seed),
        byte=secret,
        test=test,
        batches=3,
        trial_index=index,
    )


class TestGoldenConstants:
    @pytest.mark.parametrize("key,expected", GOLDEN_CHANNEL)
    def test_channel_trial_matches_pre_overhaul_bytes(self, key, expected):
        model, seed, secret, test, index = key
        result = run_trial(_channel_payload(model, seed, secret, test, index))
        assert (tuple(result.totes), result.cycles) == expected

    @pytest.mark.parametrize("key,expected", GOLDEN_KASLR)
    def test_kaslr_trial_matches_pre_overhaul_bytes(self, key, expected):
        machine = Machine("i7-7700", seed=21, kaslr=True, kpti=True)
        assert machine.kernel.layout.base == KASLR_BASE
        offset, cr3_switch, index = key
        trial = KaslrTrial(
            spec=MachineSpec.of(machine),
            va=KASLR_BASE + offset,
            cr3_switch=cr3_switch,
            trial_index=index,
            warm_probes=3,
        )
        result = run_trial(trial)
        assert (tuple(result.totes), result.cycles) == expected


class TestExecutionShapeIdentity:
    """Serial vs pooled vs explicitly-chunked: same bytes, every shape."""

    def _payloads(self):
        spec = MachineSpec("i7-7700", seed=1)
        return [
            ChannelTrial(
                spec=spec, byte=0x54, test=test, batches=2, trial_index=test
            )
            for test in range(12)
        ]

    def test_serial_pooled_chunked_identical(self):
        payloads = self._payloads()
        shapes = {}
        for label, kwargs in (
            ("serial", {"workers": 1}),
            ("pooled", {"workers": 4}),
            ("chunked", {"workers": 2, "chunk_size": 5}),
        ):
            with TrialPool(**kwargs) as pool:
                shapes[label] = pool.map(run_trial, payloads)
        assert shapes["serial"] == shapes["pooled"] == shapes["chunked"]

    def test_adaptive_chunking_is_invisible(self):
        """A second map on a warmed pool (where the adaptive heuristic
        may group payloads) matches the first (unchunked) map."""
        payloads = self._payloads()
        with TrialPool(workers=2) as pool:
            first = pool.map(run_trial, payloads)
            second = pool.map(run_trial, payloads)
        assert first == second


class TestBatchShapeIdentity:
    """Lockstep batching at {1, 4, 17} lanes: same bytes, every shape.

    17 deliberately exceeds the 12-payload cell (one undersized pack)
    and the numpy lane threshold; 4 splits the cell into ragged packs;
    1 must be indistinguishable from no batching at all.
    """

    def _payloads(self):
        spec = MachineSpec("i7-7700", seed=1)
        return [
            ChannelTrial(
                spec=spec, byte=0x54, test=test, batches=2, trial_index=test
            )
            for test in range(12)
        ]

    def _scalar(self, payloads):
        with TrialPool(workers=1) as pool:
            return pool.map(run_trial, payloads)

    @pytest.mark.parametrize("batch_size", [1, 4, 17])
    def test_serial_pooled_resumed_identical(self, batch_size):
        payloads = self._payloads()
        scalar = self._scalar(payloads)
        shapes = {}
        for label, kwargs in (
            ("serial", {"workers": 1, "batch_size": batch_size}),
            ("pooled", {"workers": 4, "batch_size": batch_size}),
        ):
            with TrialPool(**kwargs) as pool:
                shapes[label] = pool.map(run_trial, payloads)
                assert pool.trials_executed == len(payloads)
        # "Resumed": a checkpoint boundary mid-scan -- the pool sees the
        # pending tail as a fresh map, so packs form over a different
        # payload stream than the cold run's.  Split at 5 to cut inside
        # a 4-lane pack.
        with TrialPool(workers=1, batch_size=batch_size) as pool:
            shapes["resumed"] = pool.map(run_trial, payloads[:5]) + pool.map(
                run_trial, payloads[5:]
            )
        for label, results in shapes.items():
            assert results == scalar, (batch_size, label)

    def test_golden_constants_hold_under_batching(self):
        """The pre-overhaul golden bytes, through a 4-lane pack."""
        payloads = [
            _channel_payload(*key)
            for key, _ in GOLDEN_CHANNEL
            if key[0] == "i7-7700" and key[1] == 1
        ]
        with TrialPool(workers=1, batch_size=4) as pool:
            results = pool.map(run_trial, payloads)
        expected = [
            value
            for key, value in GOLDEN_CHANNEL
            if key[0] == "i7-7700" and key[1] == 1
        ]
        assert [
            (tuple(result.totes), result.cycles) for result in results
        ] == expected


class TestKaslrBatchShapeIdentity:
    """KASLR packs at {1, 8, 17} lanes: same bytes, every shape.

    The translation shadow and the cross-pack leader trace cache may
    only reschedule a sweep, never move a ToTE or a cycle count.  The
    12-slot slice straddles the hidden image (slots 80..91 on the
    seed-21 boot), so it contains exactly one user-mapped candidate --
    the KPTI trampoline remnant at slot 91 -- exercising the
    eviction-plus-scalar-fallback path inside a live pack.
    """

    def _payloads(self):
        spec = MachineSpec("i7-7700", seed=21, kaslr=True, kpti=True)
        return [
            KaslrTrial(
                spec=spec,
                va=KASLR_BASE - 0x800000 + i * 0x200000,
                cr3_switch=False,
                trial_index=i,
            )
            for i in range(12)
        ]

    def _scalar(self, payloads):
        with TrialPool(workers=1) as pool:
            return pool.map(run_trial, payloads)

    @pytest.mark.parametrize("batch_size", [1, 8, 17])
    def test_serial_pooled_resumed_identical(self, batch_size):
        payloads = self._payloads()
        scalar = self._scalar(payloads)
        shapes = {}
        for label, kwargs in (
            ("serial", {"workers": 1, "batch_size": batch_size}),
            ("pooled", {"workers": 4, "batch_size": batch_size}),
        ):
            with TrialPool(**kwargs) as pool:
                shapes[label] = pool.map(run_trial, payloads)
                assert pool.trials_executed == len(payloads)
        # "Resumed" splits at 5, cutting inside an 8-lane pack -- the
        # warm second map also replays the first map's cached leader.
        with TrialPool(workers=1, batch_size=batch_size) as pool:
            shapes["resumed"] = pool.map(run_trial, payloads[:5]) + pool.map(
                run_trial, payloads[5:]
            )
        for label, results in shapes.items():
            assert results == scalar, (batch_size, label)

    def test_golden_constants_hold_under_batching(self):
        """The pre-overhaul KASLR golden bytes through a live pack; the
        two cr3-free probes are adjacent so they share one."""
        order = [0, 2, 1]  # (0x0,False), (0x200000,False), (0x0,True)
        spec = MachineSpec("i7-7700", seed=21, kaslr=True, kpti=True)
        payloads = [
            KaslrTrial(
                spec=spec,
                va=KASLR_BASE + GOLDEN_KASLR[i][0][0],
                cr3_switch=GOLDEN_KASLR[i][0][1],
                trial_index=GOLDEN_KASLR[i][0][2],
                warm_probes=3,
            )
            for i in order
        ]
        with TrialPool(workers=1, batch_size=4) as pool:
            results = pool.map(run_trial, payloads)
        assert [
            (tuple(result.totes), result.cycles) for result in results
        ] == [GOLDEN_KASLR[i][1] for i in order]
