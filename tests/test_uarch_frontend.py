"""Unit tests for the frontend's DSB/MITE/MS delivery model."""

from repro.isa.assembler import assemble
from repro.memory.mmu import Mmu
from repro.memory.paging import AddressSpace
from repro.memory.physical import PhysicalMemory
from repro.uarch.config import cpu_model
from repro.uarch.frontend import Frontend
from repro.uarch.pmu import PmuCounters
from tests.conftest import small_hierarchy


def make_frontend():
    model = cpu_model("i7-7700")
    physical = PhysicalMemory()
    hierarchy = small_hierarchy()
    space = AddressSpace("f")
    space.map_page(0x400000, 0x10000, user=True)
    mmu = Mmu(physical, hierarchy)
    mmu.set_address_space(space)
    pmu = PmuCounters()
    return Frontend(model, mmu, pmu), pmu, model


def instr(text):
    return assemble(text).instructions[0]


class TestDelivery:
    def test_cold_line_is_mite(self):
        frontend, pmu, _ = make_frontend()
        delivery = frontend.deliver(0x400000, instr("nop"), 0)
        assert delivery.source == "mite"

    def test_second_visit_is_dsb(self):
        frontend, _, _ = make_frontend()
        frontend.deliver(0x400000, instr("nop"), 0)
        frontend.reset_clock(0)
        delivery = frontend.deliver(0x400000, instr("nop"), 0)
        assert delivery.source == "dsb"

    def test_same_line_keeps_source(self):
        frontend, _, _ = make_frontend()
        first = frontend.deliver(0x400000, instr("nop"), 0)
        second = frontend.deliver(0x400004, instr("nop"), 0)
        assert second.source == first.source

    def test_microcoded_goes_to_ms(self):
        frontend, pmu, _ = make_frontend()
        frontend.deliver(0x400000, instr("nop"), 0)
        delivery = frontend.deliver(0x400004, instr("mfence"), 0)
        assert delivery.source == "ms"
        assert pmu.read("IDQ.MS_UOPS") >= 1

    def test_dsb_uops_counted(self):
        frontend, pmu, _ = make_frontend()
        frontend.deliver(0x400000, instr("nop"), 0)
        frontend.reset_clock(0)
        frontend.deliver(0x400000, instr("nop"), 0)
        assert pmu.read("IDQ.DSB_UOPS") >= 1

    def test_width_limit_advances_clock(self):
        frontend, _, model = make_frontend()
        cycles = [
            frontend.deliver(0x400000, instr("nop"), 0).cycle
            for _ in range(model.issue_width * 3)
        ]
        assert cycles[-1] > cycles[0]

    def test_monotone_delivery(self):
        frontend, _, _ = make_frontend()
        last = -1
        for index in range(32):
            cycle = frontend.deliver(0x400000 + index * 4, instr("nop"), 0).cycle
            assert cycle >= last
            last = cycle

    def test_earliest_respected(self):
        frontend, _, _ = make_frontend()
        delivery = frontend.deliver(0x400000, instr("nop"), 500)
        assert delivery.cycle >= 500


class TestResteerAndStalls:
    def test_block_until_delays_delivery(self):
        frontend, _, _ = make_frontend()
        frontend.block_until(1000)
        delivery = frontend.deliver(0x400000, instr("nop"), 0)
        assert delivery.cycle >= 1000

    def test_resteer_clear_cycles_counted_by_core(self, machine=None):
        """CLEAR_RESTEER accounting lives at the core's resolution sites."""
        from repro.sim.machine import Machine
        from tests.conftest import run_source

        machine = Machine("i7-7700", seed=13)
        source = """
    mov rax, r9
    cmp rax, 1
    je one
    mov rbx, 2
one:
    hlt
"""
        program = machine.load_program(source)
        machine.run(program, regs={"r9": 0})
        before = machine.pmu.read("INT_MISC.CLEAR_RESTEER_CYCLES")
        machine.run(program, regs={"r9": 1})  # flips direction: mispredict
        after = machine.pmu.read("INT_MISC.CLEAR_RESTEER_CYCLES")
        assert after - before >= machine.model.mispredict_resteer

    def test_resteer_forces_line_refetch(self):
        frontend, _, _ = make_frontend()
        frontend.deliver(0x400000, instr("nop"), 0)
        frontend.prime_dsb(0x400000)
        frontend.block_until(frontend.delivery_floor, resteer=True)
        # After a resteer the line is re-looked-up (DSB hit, but a fetch).
        delivery = frontend.deliver(0x400004, instr("nop"), 0)
        assert delivery.source in ("dsb", "mite")

    def test_icache_stall_counted_for_cold_fetch(self):
        frontend, pmu, _ = make_frontend()
        frontend.deliver(0x400000, instr("nop"), 0)
        assert pmu.read("ICACHE_16B.IFDATA_STALL") > 0


class TestDsbCapacity:
    def test_dsb_eviction(self):
        frontend, _, model = make_frontend()
        # Touch more lines than the DSB holds.
        for line in range(model.dsb_lines + 8):
            frontend.deliver(0x400000 + line * 16, instr("nop"), 0)
        assert not frontend.dsb_contains(0x400000)
        assert frontend.dsb_contains(0x400000 + (model.dsb_lines + 7) * 16)

    def test_prime_dsb(self):
        frontend, _, _ = make_frontend()
        frontend.prime_dsb(0x400000)
        assert frontend.dsb_contains(0x400004)
