"""Golden byte-identity suite for the distributed campaign tier.

The load-bearing invariant of ``repro.distrib``:

    ``merge(shard_0 .. shard_{n-1})`` yields a report *byte-identical*
    to a single-host run, for any ``n`` and any segment order.

Pinned here over the two acceptance campaigns -- ci-smoke with real
trials and the e3-matrix grid at full scale (stub trials, as in
``test_faults_chaos.py``) -- for 1-, 3- and 8-way splits, through both
the library path (``run_shard``/``merge_stores``) and the asyncio
coordinator.  The merged store *file* is also pinned byte-identical
across segment orders, because the merge writes canonical sorted-key
records.

Satellites ride along: the ResultStore merge edge cases (dedup,
divergent-body conflict, empty segment, failure-only segment) and the
schema-version fence (merges across mismatched ``schema_version``
refuse).
"""

import dataclasses
import json
import os

import pytest

from repro.campaign import (
    REPORT_SCHEMA_VERSION,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    Shard,
    builtin_campaign,
    channel_cell,
)
from repro.distrib import (
    Coordinator,
    MergeConflict,
    SchemaMismatch,
    StubWorker,
    merge_stores,
    read_manifest,
    run_shard,
    segment_root,
)
from repro.faults import payload_fingerprint
from repro.runtime import MachineSpec, TrialFailure, TrialResult

SPLITS = (1, 3, 8)


def _stub_trial(trial):
    """Deterministic stand-in for run_trial (see test_faults_chaos)."""
    fingerprint = payload_fingerprint(trial)
    return TrialResult(
        totes=(fingerprint % 997, (fingerprint >> 16) % 997),
        cycles=fingerprint % 100_000,
    )


def artifact_pair(report):
    return report.to_json(), report.render_text()


def single_host(spec, root, **runner_kwargs):
    report, _ = CampaignRunner(
        spec, store=ResultStore(str(root)), **runner_kwargs
    ).run()
    return artifact_pair(report)


def sharded_then_merged(spec, of, base, order=None, **runner_kwargs):
    """Run every shard into its own segment, merge, collect the report."""
    roots = []
    for index in range(of):
        root = str(base / f"seg{index}")
        run_shard(spec, Shard(index, of), root, **runner_kwargs)
        roots.append(root)
    if order is not None:
        roots = [roots[i] for i in order]
    dest = str(base / "merged")
    stats = merge_stores(roots, dest)
    report = CampaignRunner(spec, store=ResultStore(dest)).collect()
    assert report is not None, "merged store must cover the full grid"
    return artifact_pair(report), stats, dest


class TestGoldenIdentity:
    @pytest.mark.parametrize("of", SPLITS)
    def test_ci_smoke_real_trials(self, tmp_path, of):
        """ci-smoke with REAL trials: n-way merge == single host, bytes."""
        spec = builtin_campaign("ci-smoke")
        golden = single_host(spec, tmp_path / "single")
        merged, stats, _ = sharded_then_merged(spec, of, tmp_path)
        assert merged == golden
        assert stats.unique == spec.trial_count()
        assert stats.coverage == {of: list(range(of))}

    @pytest.mark.parametrize("of", SPLITS)
    def test_e3_matrix_full_grid(self, tmp_path, of):
        """The e3-matrix acceptance grid (5120 trials, stubbed)."""
        spec = builtin_campaign("e3-matrix")
        golden = single_host(spec, tmp_path / "single", trial_fn=_stub_trial)
        merged, stats, _ = sharded_then_merged(
            spec, of, tmp_path, trial_fn=_stub_trial
        )
        assert merged == golden
        assert stats.unique == spec.trial_count()

    def test_merged_store_bytes_order_insensitive(self, tmp_path):
        """The merged results.jsonl is byte-identical for any segment
        order -- canonical sorted-key output, not append order."""
        spec = builtin_campaign("ci-smoke")
        _, _, forward = sharded_then_merged(
            spec, 3, tmp_path / "f", order=[0, 1, 2]
        )
        _, _, backward = sharded_then_merged(
            spec, 3, tmp_path / "b", order=[2, 0, 1]
        )
        with open(os.path.join(forward, "results.jsonl"), "rb") as handle:
            forward_bytes = handle.read()
        with open(os.path.join(backward, "results.jsonl"), "rb") as handle:
            backward_bytes = handle.read()
        assert forward_bytes == backward_bytes

    def test_incremental_ingest_equals_one_shot_merge(self, tmp_path):
        """Coordinator-style one-segment-at-a-time ingest lands on the
        same bytes as a single merge of all segments."""
        spec = builtin_campaign("ci-smoke")
        roots = []
        for index in range(3):
            root = str(tmp_path / f"seg{index}")
            run_shard(spec, Shard(index, 3), root)
            roots.append(root)
        one_shot = str(tmp_path / "oneshot")
        merge_stores(roots, one_shot)
        incremental = str(tmp_path / "incremental")
        for root in reversed(roots):
            merge_stores([root], incremental)
        with open(os.path.join(one_shot, "results.jsonl"), "rb") as handle:
            expected = handle.read()
        with open(os.path.join(incremental, "results.jsonl"), "rb") as handle:
            assert handle.read() == expected

    def test_coordinator_stub_fleet_matches_single_host(self, tmp_path):
        """The asyncio coordinator end to end (in-process stub workers):
        merged store, full report, byte-identical artifacts."""
        spec = builtin_campaign("ci-smoke")
        golden = single_host(spec, tmp_path / "single")
        dest = str(tmp_path / "fleet")
        coordinator = Coordinator(
            spec, dest, shards=3, worker=StubWorker(spec)
        )
        result = coordinator.run()
        assert result.completed == 3 and result.retries == 0
        assert result.report is not None
        assert artifact_pair(result.report) == golden
        assert result.metrics["fleet.shards.of"]["value"] == 3


# -- satellite: ResultStore merge edge cases -----------------------------------


def write_store(root, records):
    store = ResultStore(str(root))
    store.put_many(records)
    return str(root)


class TestMergeEdgeCases:
    def test_duplicate_key_identical_body_dedups(self, tmp_path):
        result = TrialResult(totes=(1, 2), cycles=30)
        a = write_store(tmp_path / "a", [("k1", result), ("k2", result)])
        b = write_store(tmp_path / "b", [("k1", result)])
        stats = merge_stores([a, b], str(tmp_path / "m"))
        assert stats.records == 3
        assert stats.unique == 2
        assert stats.deduped == 1
        assert ResultStore(str(tmp_path / "m")).get("k1") == result

    def test_duplicate_key_divergent_body_is_a_hard_error(self, tmp_path):
        a = write_store(
            tmp_path / "a", [("k1", TrialResult(totes=(1,), cycles=10))]
        )
        b = write_store(
            tmp_path / "b", [("k1", TrialResult(totes=(2,), cycles=10))]
        )
        with pytest.raises(MergeConflict) as info:
            merge_stores([a, b], str(tmp_path / "m"))
        assert info.value.key == "k1"
        assert str(tmp_path / "a") in (info.value.first_root,
                                       info.value.second_root)
        # The refusal left no merged store behind a torn write.
        assert not os.path.exists(os.path.join(tmp_path / "m", "results.jsonl"))

    def test_result_vs_failure_under_one_key_is_a_conflict(self, tmp_path):
        """A success and a failure under the same content address is the
        determinism violation the conflict path exists for."""
        a = write_store(
            tmp_path / "a", [("k1", TrialResult(totes=(1,), cycles=10))]
        )
        b = write_store(
            tmp_path / "b",
            [("k1", TrialFailure(attempts=2, faults=("raise", "raise"),
                                 error="boom"))],
        )
        with pytest.raises(MergeConflict):
            merge_stores([a, b], str(tmp_path / "m"))

    def test_empty_segment_contributes_nothing(self, tmp_path):
        a = write_store(
            tmp_path / "a", [("k1", TrialResult(totes=(1,), cycles=10))]
        )
        empty = tmp_path / "empty"
        empty.mkdir()  # a segment that never reached its first checkpoint
        stats = merge_stores([a, str(empty)], str(tmp_path / "m"))
        assert stats.segments == 2
        assert stats.records == 1
        assert stats.unique == 1

    def test_failure_only_segment_merges_losslessly(self, tmp_path):
        failure = TrialFailure(
            attempts=3, faults=("hang", "timeout", "raise"), error="wedged"
        )
        a = write_store(tmp_path / "a", [("k1", failure), ("k2", failure)])
        stats = merge_stores([a], str(tmp_path / "m"))
        assert stats.unique == 2
        assert stats.failures == 2
        merged = ResultStore(str(tmp_path / "m"))
        assert merged.get("k1") == failure
        assert merged.get("k2") == failure


# -- satellite: schema-version fencing -----------------------------------------


class TestSchemaVersion:
    def _two_segments(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        roots = []
        for index in range(2):
            root = str(tmp_path / f"seg{index}")
            run_shard(spec, Shard(index, 2), root)
            roots.append(root)
        return roots

    def test_manifests_carry_the_schema_version(self, tmp_path):
        roots = self._two_segments(tmp_path)
        for root in roots:
            manifest = read_manifest(root)
            assert manifest is not None
            assert manifest.schema_version == REPORT_SCHEMA_VERSION

    def test_merge_rejects_mismatched_schema_versions(self, tmp_path):
        roots = self._two_segments(tmp_path)
        path = os.path.join(roots[1], "manifest.json")
        with open(path) as handle:
            record = json.load(handle)
        record["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(record, handle)
        with pytest.raises(SchemaMismatch, match="schema_version"):
            merge_stores(roots, str(tmp_path / "m"))
        # The fence is opt-out for bare pre-distrib stores only.
        merge_stores(roots, str(tmp_path / "m2"), check_manifests=False)

    def test_merge_rejects_cross_campaign_segments(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        other = CampaignSpec(
            name="other",
            cells=(
                channel_cell(
                    MachineSpec(seed=9), payload=b"\x01", batches=2,
                    values=range(4),
                ),
            ),
        )
        a = str(tmp_path / "a")
        b = str(tmp_path / "b")
        run_shard(spec, Shard(0, 1), a)
        run_shard(other, Shard(0, 1), b)
        with pytest.raises(Exception, match="different campaigns"):
            merge_stores([a, b], str(tmp_path / "m"))

    def test_campaign_report_artifact_carries_schema_version(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        report, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path)), trial_fn=_stub_trial
        ).run()
        artifact = json.loads(report.to_json())
        assert artifact["schema_version"] == REPORT_SCHEMA_VERSION

    def test_reproduction_report_merge_stamps_schema_version(self, tmp_path):
        from repro.perf import merge_report_metrics

        path = str(tmp_path / "reproduction_report.json")
        merge_report_metrics(path, "perf_bench", {"trials_per_second": 1.0})
        with open(path) as handle:
            report = json.load(handle)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["perf_bench"]["trials_per_second"] == 1.0

    def test_reproduction_report_refuses_cross_version_merge(self, tmp_path):
        """Sections written under a different schema version are dropped,
        never merged into -- a mixed-version report would be unreadable
        by either schema's consumers."""
        from repro.perf import merge_report_metrics

        path = str(tmp_path / "reproduction_report.json")
        with open(path, "w") as handle:
            json.dump(
                {
                    "schema_version": REPORT_SCHEMA_VERSION + 1,
                    "old_bench": {"stale": True},
                },
                handle,
            )
        merge_report_metrics(path, "perf_bench", {"trials_per_second": 2.0})
        with open(path) as handle:
            report = json.load(handle)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert "old_bench" not in report
        assert report["perf_bench"] == {"trials_per_second": 2.0}

        # Same-version sections DO merge and survive.
        merge_report_metrics(path, "runtime_scaling", {"host_cpus": 4})
        with open(path) as handle:
            report = json.load(handle)
        assert report["perf_bench"] == {"trials_per_second": 2.0}
        assert report["runtime_scaling"] == {"host_cpus": 4}


# -- satellite: lockstep batching through the distributed tier -----------------


class TestBatchThroughDistrib:
    """``TrialPool(batch_size=N)`` on the shard side of a split.

    Two invariants: the merged artifacts stay byte-identical to a scalar
    single-host run (batching is scheduling, so it must be invisible to
    the store and the report), while the ``batch_size`` the run used
    *does* survive where it belongs -- the ``campaign.run`` telemetry
    span and the reproduction report's ``perf_bench`` section.
    """

    def test_batched_shards_merge_to_scalar_bytes(self, tmp_path):
        from repro.runtime import TrialPool

        spec = builtin_campaign("ci-smoke")
        golden = single_host(spec, tmp_path / "single")
        with TrialPool(workers=1, batch_size=4) as pool:
            merged, stats, _ = sharded_then_merged(
                spec, 3, tmp_path, pool=pool
            )
        assert merged == golden
        assert stats.unique == spec.trial_count()

    def test_batched_kaslr_shards_merge_to_scalar_bytes(self, tmp_path):
        """The KASLR analogue: a full 512-slot KPTI sweep, 3-way split,
        each shard run through 8-lane translation-shadow packs (with the
        leader trace cache live), merges to the bytes of a scalar
        single-host run."""
        from repro.campaign import kaslr_cell
        from repro.runtime import TrialPool

        spec = CampaignSpec(
            name="kaslr-batch-golden",
            cells=(
                kaslr_cell(
                    MachineSpec("i7-7700", seed=21, kpti=True),
                    strategy="kpti-trampoline",
                ),
            ),
        )
        golden = single_host(spec, tmp_path / "single")
        with TrialPool(workers=1, batch_size=8) as pool:
            merged, stats, _ = sharded_then_merged(
                spec, 3, tmp_path, pool=pool
            )
        assert merged == golden
        assert stats.unique == spec.trial_count()

    def test_shard_span_records_batch_size(self, tmp_path):
        from repro import telemetry
        from repro.runtime import TrialPool

        spec = builtin_campaign("ci-smoke")
        telemetry.enable()
        try:
            with TrialPool(workers=1, batch_size=4) as pool:
                run_shard(spec, Shard(0, 2), str(tmp_path / "seg"), pool=pool)
            records = telemetry.recorder().drain()
        finally:
            telemetry.disable()
        runs = [
            record
            for record in records
            if record.get("name") == "campaign.run"
        ]
        assert runs, "the shard must open a campaign.run span"
        assert all(
            record.get("attrs", {}).get("batch_size") == 4 for record in runs
        )
        # The pack spans the batch executor opens ride along underneath.
        packs = [
            record
            for record in records
            if record.get("name") == "batch.pack"
        ]
        assert packs
        assert all(
            record.get("attrs", {}).get("batch_size") == 4 for record in packs
        )

    def test_batch_size_survives_report_merge(self, tmp_path):
        """perf_bench metrics carry batch_size through the reproduction
        report's section-merge idiom (the shard/merge report path)."""
        from repro.perf import merge_report_metrics

        path = str(tmp_path / "reproduction_report.json")
        merge_report_metrics(
            path, "perf_bench", {"batch_size": 17, "trials_per_second": 5.0}
        )
        merge_report_metrics(path, "runtime_scaling", {"host_cpus": 4})
        with open(path) as handle:
            report = json.load(handle)
        assert report["perf_bench"]["batch_size"] == 17
        assert report["runtime_scaling"] == {"host_cpus": 4}


# -- shard-local runner behaviour ----------------------------------------------


class TestShardRunner:
    def test_shard_status_counts_only_its_slice(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        runner = CampaignRunner(
            spec, store=ResultStore(str(tmp_path)), shard=Shard(0, 3)
        )
        status = runner.status()
        assert status.total == Shard(0, 3).size(spec.trial_count())
        assert status.cached == 0

    def test_shard_segments_are_disjoint_and_resume(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        keys = set()
        for index in range(3):
            root = str(tmp_path / f"seg{index}")
            store, stats = run_shard(spec, Shard(index, 3), root)
            segment_keys = set(store._load())
            assert not keys & segment_keys  # disjoint slices
            keys |= segment_keys
            # A second run replays everything from the segment store.
            _, resumed = run_shard(spec, Shard(index, 3), root)
            assert resumed.executed == 0
            assert resumed.cached == stats.total
        assert len(keys) == spec.trial_count()

    def test_segment_root_convention(self, tmp_path):
        root = segment_root(str(tmp_path), Shard(2, 5))
        assert root == os.path.join(str(tmp_path), "segments", "shard2of5")


def test_shard_validation():
    with pytest.raises(ValueError):
        Shard(0, 0)
    with pytest.raises(ValueError):
        Shard(3, 3)
    with pytest.raises(ValueError):
        Shard(-1, 2)
    assert dataclasses.asdict(Shard(1, 4)) == {"index": 1, "of": 4}
