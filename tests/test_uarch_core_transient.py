"""Transient-execution semantics: suppression, rollback, side effects.

These tests pin down the properties Whisper is built on: transient work
never reaches architectural state, *does* leave microarchitectural
residue, and its timing is observable from outside the window.
"""

import pytest

from repro.sim.machine import Machine
from repro.uarch.core import SimulationError
from tests.conftest import run_source


def tsx_gadget(machine, body, prologue=""):
    """Wrap *body* in the standard rdtsc/xbegin scaffolding."""
    return machine.load_program(f"""
{prologue}
    rdtsc
    mov r14, rax
    xbegin out
{body}
    xend
out:
    rdtsc
    mov r15, rax
    hlt
""")


class TestTsxSuppression:
    def test_fault_in_transaction_resumes_at_fallback(self, machine):
        program = tsx_gadget(machine, "    mov rax, [r13]")
        result = machine.run(program, regs={"r13": 0})
        assert result.halted
        assert len(result.faults) == 1

    def test_transaction_without_fault_commits(self, machine):
        data = machine.alloc_data()
        program = tsx_gadget(machine, f"""
    mov rbx, {hex(data)}
    mov rax, 123
    mov [rbx], rax
""")
        machine.run(program)
        assert machine.read_data(data, 1) == b"\x7b"

    def test_aborted_transaction_rolls_back_registers(self, machine):
        program = machine.load_program("""
    mov rax, 1
    xbegin out
    mov rax, 999
    mov rbx, [r13]       ; faults -> abort
    xend
out:
    hlt
""")
        result = machine.run(program, regs={"r13": 0})
        assert result.regs.read("rax") == 1

    def test_aborted_transaction_rolls_back_stores(self, machine):
        data = machine.alloc_data()
        machine.write_data(data, b"\x11")
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    xbegin out
    mov rax, 0x99
    mov [rbx], rax       ; transactional store
    mov rcx, [r13]       ; faults -> abort
    xend
out:
    hlt
""")
        machine.run(program, regs={"r13": 0})
        assert machine.read_data(data, 1) == b"\x11"

    def test_xend_outside_transaction_raises(self, machine):
        program = machine.load_program("xend\nhlt")
        with pytest.raises(SimulationError, match="xend"):
            machine.run(program)

    def test_tsx_unavailable_on_amd(self, amd_machine):
        program = amd_machine.load_program("xbegin out\nout: hlt")
        with pytest.raises(SimulationError, match="TSX"):
            amd_machine.run(program)


class TestSignalSuppression:
    def test_fault_dispatches_to_handler(self, machine):
        program = machine.load_program("""
    mov rax, [r13]       ; faults
    mov rbx, 1           ; never reached architecturally
handler:
    mov rcx, 2
    hlt
""")
        machine.set_signal_handler(program, "handler")
        result = machine.run(program, regs={"r13": 0})
        assert result.regs.read("rcx") == 2
        assert result.regs.read("rbx") == 0

    def test_unhandled_fault_raises(self, machine):
        machine.clear_signal_handler()
        program = machine.load_program("mov rax, [r13]\nhlt")
        with pytest.raises(SimulationError, match="unhandled fault"):
            machine.run(program, regs={"r13": 0})

    def test_signal_costs_more_than_tsx(self, machine):
        tsx = tsx_gadget(machine, "    mov rax, [r13]")
        signal = machine.load_program("""
    rdtsc
    mov r14, rax
    mov rbx, [r13]
handler:
    rdtsc
    mov r15, rax
    hlt
""")
        machine.set_signal_handler(signal, "handler")
        tote = lambda r: r.regs.read("r15") - r.regs.read("r14")
        # Warm both paths, then compare.
        for _ in range(3):
            machine.run(tsx, regs={"r13": 0})
            machine.run(signal, regs={"r13": 0})
        tsx_time = tote(machine.run(tsx, regs={"r13": 0}))
        signal_time = tote(machine.run(signal, regs={"r13": 0}))
        assert signal_time > tsx_time


class TestTransientSideEffects:
    def test_transient_load_fills_the_cache(self, machine):
        """The basis of every Flush+Reload attack -- and real behaviour."""
        data = machine.alloc_data()
        probe = machine.alloc_data()
        program = tsx_gadget(machine, f"""
    mov rbx, {hex(probe)}
    mov rax, [r13]       ; faults; everything below is transient
    mov rcx, [rbx]       ; transient probe access
""")
        machine.flush_caches()
        paddr = machine.mmu.translate_peek(probe)
        assert not machine.hierarchy.data_resident(paddr)
        machine.run(program, regs={"r13": 0})
        assert machine.hierarchy.data_resident(paddr)
        del data

    def test_transient_writes_never_reach_memory(self, machine):
        data = machine.alloc_data()
        machine.write_data(data, b"\x42")
        program = tsx_gadget(machine, f"""
    mov rbx, {hex(data)}
    mov rax, [r13]       ; faults first (older in program order)
    mov rcx, 0x99
    mov [rbx], rcx       ; transient store
""")
        machine.run(program, regs={"r13": 0})
        assert machine.read_data(data, 1) == b"\x42"

    def test_transient_execution_trains_the_predictor(self, machine):
        """Speculative PHT update: transient branches leave BPU state."""
        before = machine.core.bpu.pht._table.copy()
        program = tsx_gadget(machine, """
    mov rax, [r13]
    cmp rbx, 1
    je somewhere
somewhere:
    nop
""")
        machine.run(program, regs={"r13": 0, "rbx": 1})
        assert machine.core.bpu.pht._table != before

    def test_mapped_faulting_probe_fills_tlb(self, machine):
        """The TET-KASLR primitive at core level."""
        kernel_va = machine.kernel.secret_va
        program = tsx_gadget(machine, "    mov rax, [r13]")
        machine.flush_tlb(charge_cycles=False)
        machine.run(program, regs={"r13": kernel_va})
        assert machine.mmu.dtlb.lookup(kernel_va) is not None

    def test_unmapped_faulting_probe_does_not_fill_tlb(self, machine):
        unmapped = machine.kernel.layout.base - 0x200000
        program = tsx_gadget(machine, "    mov rax, [r13]")
        machine.flush_tlb(charge_cycles=False)
        machine.run(program, regs={"r13": unmapped})
        assert machine.mmu.dtlb.lookup(unmapped) is None


class TestTransientWindowEvents:
    def test_flush_event_reported(self, machine):
        program = tsx_gadget(machine, "    mov rax, [r13]\n    nop\n    nop")
        result = machine.run(program, regs={"r13": 0}, record_trace=True)
        assert len(result.events.flushes) == 1
        flush = result.events.flushes[0]
        assert flush.suppression == "tsx"
        assert flush.flush_end >= flush.flush_start

    def test_transient_records_are_squashed(self, machine):
        program = tsx_gadget(machine, "    mov rax, [r13]\n    mov rbx, 7")
        result = machine.run(program, regs={"r13": 0}, record_trace=True)
        squashed = [r for r in result.records if r.squashed]
        assert any(str(r.instruction) == "mov_ri rbx, 7" for r in squashed)

    def test_nested_transient_mispredict_is_a_nested_clear(self, machine):
        data = machine.alloc_data()
        machine.write_data(data, b"\x05")
        program = tsx_gadget(
            machine,
            """
    mov rax, [r13]       ; open the window
    cmp rbx, 5           ; rbx is 5 -> je taken
    je target
    nop
target:
    nop
""",
        )
        # Train not-taken first so the final run mispredicts.
        for _ in range(4):
            machine.run(program, regs={"r13": 0, "rbx": 4})
        result = machine.run(program, regs={"r13": 0, "rbx": 5}, record_trace=True)
        assert result.events.flushes[0].nested_clears >= 1
        assert any(e.nested_in_transient for e in result.events.redirects)

    def test_transient_window_bounded_by_rob(self, machine):
        body = "    mov rax, [r13]\n" + "    nop\n" * 600
        program = tsx_gadget(machine, body)
        result = machine.run(program, regs={"r13": 0}, record_trace=True)
        flush = result.events.flushes[0]
        assert flush.drained_uops <= machine.model.rob_size


class TestMeltdownForwarding:
    def test_vulnerable_core_forwards_cached_kernel_data(self, machine):
        machine.warm_kernel_secret()
        secret_byte = machine.kernel.secret[0]
        program = tsx_gadget(machine, "    loadb r8, [r13]\n    nop")
        result = machine.run(
            program, regs={"r13": machine.kernel.secret_va}, record_trace=True
        )
        faulting = [r for r in result.records if r.fault is not None]
        assert faulting[0].transient_value == secret_byte

    def test_fixed_core_forwards_zero(self, fixed_machine):
        fixed_machine.warm_kernel_secret()
        program = tsx_gadget(fixed_machine, "    loadb r8, [r13]\n    nop")
        result = fixed_machine.run(
            program, regs={"r13": fixed_machine.kernel.secret_va}, record_trace=True
        )
        faulting = [r for r in result.records if r.fault is not None]
        assert faulting[0].transient_value == 0

    def test_uncached_secret_is_not_forwarded(self, machine):
        machine.flush_caches()
        machine.mmu.lfb.clear()
        program = tsx_gadget(machine, "    loadb r8, [r13]\n    nop")
        result = machine.run(
            program, regs={"r13": machine.kernel.secret_va}, record_trace=True
        )
        faulting = [r for r in result.records if r.fault is not None]
        assert faulting[0].transient_value == 0
