"""Whole-system determinism: same seed, same everything.

The reproduction's claims are only auditable if every experiment replays
bit-for-bit.  These tests re-run representative experiments on freshly
built machines with identical seeds and require identical outcomes --
including the PMU counters and the cycle-exact timings.
"""

from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.channel import TetCovertChannel


def test_identical_runs_produce_identical_cycles():
    def run():
        machine = Machine("i7-7700", seed=77)
        program = machine.load_program("""
    mov rcx, 20
top:
    add rax, 3
    sub rcx, 1
    cmp rcx, 0
    jne top
    hlt
""")
        results = [machine.run(program) for _ in range(3)]
        return [(r.cycles, r.regs.read("rax")) for r in results]

    assert run() == run()


def test_identical_machines_have_identical_kaslr_layouts():
    first = Machine("i9-10980XE", seed=31337)
    second = Machine("i9-10980XE", seed=31337)
    assert first.kernel.layout.base == second.kernel.layout.base
    assert first.kernel.layout.symbols == second.kernel.layout.symbols


def test_different_seeds_randomise_the_layout():
    bases = {Machine("i7-7700", seed=s).kernel.layout.base for s in range(8)}
    assert len(bases) > 4


def test_channel_transmission_replays_exactly():
    def run():
        machine = Machine("i7-7700", seed=88)
        channel = TetCovertChannel(machine, batches=2)
        stats = channel.transmit(b"det")
        return stats.received, stats.cycles

    assert run() == run()


def test_attack_replays_including_pmu_state():
    def run():
        machine = Machine("i7-7700", seed=99, secret=b"REPLAY")
        result = TetMeltdown(machine, batches=2).leak(length=3)
        return result.data, result.cycles, machine.pmu.read("UOPS_ISSUED.ANY")

    assert run() == run()


def test_kaslr_break_replays_exactly():
    def run():
        machine = Machine("i9-10980XE", seed=55, kpti=True)
        result = TetKaslr(machine).break_kaslr_kpti()
        return result.found_base, result.cycles, tuple(sorted(result.totes_by_slot.items()))

    assert run() == run()


def test_tote_timeline_is_monotone_across_runs():
    machine = Machine("i7-7700", seed=66)
    program = machine.load_program("rdtsc\nmov r14, rax\nhlt")
    stamps = [machine.run(program).regs.read("r14") for _ in range(5)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 5
