"""Unit tests for the SMT core model (§4.4's substrate)."""

import pytest

from repro.sim.machine import Machine
from repro.uarch.core import SimulationError
from repro.uarch.smt import SmtCore, _overlap_cycles
from repro.whisper.gadgets import GadgetBuilder


class TestOverlap:
    def test_no_windows(self):
        assert _overlap_cycles([], 0, 100) == 0

    def test_full_containment(self):
        assert _overlap_cycles([(10, 20)], 0, 100) == 10

    def test_clipping(self):
        assert _overlap_cycles([(90, 150)], 0, 100) == 10
        assert _overlap_cycles([(0, 50)], 40, 100) == 10

    def test_merging_overlapping_windows(self):
        assert _overlap_cycles([(10, 30), (20, 40)], 0, 100) == 30

    def test_disjoint_windows_sum(self):
        assert _overlap_cycles([(10, 20), (50, 60)], 0, 100) == 20

    def test_window_outside_range(self):
        assert _overlap_cycles([(200, 300)], 0, 100) == 0


class TestSmtCore:
    def test_requires_smt_model(self):
        machine = Machine("i7-7700", seed=5)
        smt = machine.smt()
        assert isinstance(smt, SmtCore)

    def test_threads_share_the_mmu(self):
        machine = Machine("i7-7700", seed=5)
        smt = machine.smt()
        assert smt.thread0.mmu is smt.thread1.mmu

    def test_threads_share_one_pmu(self):
        machine = Machine("i7-7700", seed=5)
        smt = machine.smt()
        assert smt.thread0.pmu is smt.thread1.pmu

    def test_faulting_trojan_slows_the_spy(self):
        machine = Machine("i7-7700", seed=5)
        smt = machine.smt()
        builder = GadgetBuilder(machine)
        spy = builder.nop_loop(iterations=48)
        faulty = builder.fault_burst(faults=4)
        idle = builder.idle_loop(iterations=192)
        # Warm up.
        for _ in range(2):
            smt.run_pair(idle, spy)
            smt.run_pair(faulty, spy, trojan_regs={"r13": 0})
        quiet = smt.run_pair(idle, spy)
        noisy = smt.run_pair(faulty, spy, trojan_regs={"r13": 0})
        assert noisy.spy_effective_cycles > quiet.spy_effective_cycles
        assert noisy.disruption_cycles > 0

    def test_disruption_never_negative(self):
        machine = Machine("i7-7700", seed=6)
        smt = machine.smt()
        builder = GadgetBuilder(machine)
        spy = builder.nop_loop(iterations=16)
        idle = builder.idle_loop(iterations=16)
        outcome = smt.run_pair(idle, spy)
        assert outcome.disruption_cycles >= 0
        assert outcome.spy_effective_cycles >= outcome.spy.cycles

    def test_zombieload_sees_sibling_lfb_entries(self):
        """Cross-thread leak path: the sibling's fills are sampleable."""
        machine = Machine("i7-7700", seed=7)
        victim_va = machine.alloc_data()
        machine.victim_store(victim_va, b"\xc3", thread_id=1)
        assert machine.mmu.lfb.entries_from_thread(1) >= 1
        assert machine.mmu.lfb.sample_stale(0) is not None
