"""Integration: the attack × CPU success matrix of Table 2, at test scale.

Each cell runs the real attack end-to-end on a freshly booted machine and
checks the ✓/✗ verdict against the paper.  Benchmarks regenerate the full
table; here a short secret keeps the suite fast.
"""

import pytest

from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb
from repro.whisper.attacks.zombieload import TetZombieload
from repro.whisper.channel import TetCovertChannel

#: Table 2, transcribed: (cpu, attack) -> expected success.  "?" cells
#: (not verified in the paper) are omitted here and reported by the bench.
TABLE2 = {
    ("i7-6700", "TET-CC"): True,
    ("i7-6700", "TET-MD"): True,
    ("i7-6700", "TET-ZBL"): True,
    ("i7-6700", "TET-RSB"): True,
    ("i7-6700", "TET-KASLR"): True,
    ("i7-7700", "TET-CC"): True,
    ("i7-7700", "TET-MD"): True,
    ("i7-7700", "TET-ZBL"): True,
    ("i7-7700", "TET-RSB"): True,
    ("i7-7700", "TET-KASLR"): True,
    ("i9-10980XE", "TET-CC"): True,
    ("i9-10980XE", "TET-MD"): False,
    ("i9-10980XE", "TET-ZBL"): False,
    ("i9-10980XE", "TET-KASLR"): True,
    ("i9-13900K", "TET-CC"): True,
    ("i9-13900K", "TET-MD"): False,
    ("i9-13900K", "TET-ZBL"): False,
    ("i9-13900K", "TET-RSB"): True,
    ("ryzen-5600G", "TET-CC"): True,
    ("ryzen-5600G", "TET-MD"): False,
    ("ryzen-5600G", "TET-ZBL"): False,
    ("ryzen-5600G", "TET-KASLR"): False,
    # Table 2 lists the 5600G and 5900 as one Zen 3 row.
    ("ryzen-5900", "TET-CC"): True,
    ("ryzen-5900", "TET-MD"): False,
    ("ryzen-5900", "TET-KASLR"): False,
}

SECRET = b"T2"


def run_cell(cpu: str, attack: str) -> bool:
    machine = Machine(cpu, seed=2024, secret=SECRET)
    if attack == "TET-CC":
        channel = TetCovertChannel(machine, batches=3)
        return channel.transmit(SECRET).error_rate == 0.0
    if attack == "TET-MD":
        return TetMeltdown(machine, batches=3).leak(length=len(SECRET)).success
    if attack == "TET-ZBL":
        zbl = TetZombieload(machine, batches=5)
        zbl.install_victim_secret(SECRET)
        return zbl.leak().success
    if attack == "TET-RSB":
        rsb = TetSpectreRsb(machine)
        rsb.install_secret(SECRET)
        return rsb.leak().success
    if attack == "TET-KASLR":
        return TetKaslr(machine).break_kaslr().success
    raise ValueError(attack)


@pytest.mark.parametrize("cpu,attack", sorted(TABLE2))
def test_table2_cell(cpu, attack):
    expected = TABLE2[(cpu, attack)]
    assert run_cell(cpu, attack) == expected, (
        f"{attack} on {cpu}: expected {'✓' if expected else '✗'}"
    )
