"""Property-based tests for the §4.3.1 decoder (ArgExtremeDecoder).

Runs under Hypothesis when it is installed; a seeded-``random`` fallback
exercises the same properties (fewer cases, fixed seed) when it is not,
so the suite never gains a hard dependency.

The properties:

* a test value whose samples dominate every other by more than the noise
  bound is always decoded, in both ``vote`` and ``mean`` statistics;
* argmin mode is the mirror image of argmax;
* exact ties break deterministically (insertion order), so decoding is a
  pure function of its input;
* confidence is the exact fraction of batches that voted for the winner;
* ragged or empty inputs raise instead of mis-decoding.
"""

import random

import pytest

from repro.whisper.analysis import ArgExtremeDecoder

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


BASELINE = 270  # a typical non-matching ToTE; exact value is irrelevant


def make_scan(winner, tests, batches, margin, noise, rng):
    """A synthetic ToTE scan: *winner* beats the rest by > *margin*
    while every sample jitters by at most *noise* (< margin / 2)."""
    totes = {}
    for test in tests:
        signal = margin if test == winner else 0
        totes[test] = [
            BASELINE + signal + rng.randint(-noise, noise) for _ in range(batches)
        ]
    return totes


def check_argmax_recovers_winner(winner, tests, batches, margin, noise, rng):
    totes = make_scan(winner, tests, batches, margin, noise, rng)
    for statistic in ("vote", "mean"):
        result = ArgExtremeDecoder("max", statistic=statistic).decode(totes)
        assert result.value == winner, (statistic, totes)
        if statistic == "vote":
            assert result.confidence == 1.0


def check_argmin_mirrors_argmax(winner, tests, batches, margin, noise, rng):
    totes = make_scan(winner, tests, batches, margin, noise, rng)
    flipped = {
        test: [2 * BASELINE - sample for sample in samples]
        for test, samples in totes.items()
    }
    assert ArgExtremeDecoder("min").decode(flipped).value == winner


def check_confidence_is_vote_fraction(tests, batches, rng):
    """With per-batch winners planted explicitly, confidence equals the
    plant fraction of the most frequent winner."""
    tests = list(tests)
    planted = [rng.choice(tests) for _ in range(batches)]
    totes = {test: [BASELINE] * batches for test in tests}
    for batch, winner in enumerate(planted):
        totes[winner][batch] = BASELINE + 50
    result = ArgExtremeDecoder("max").decode(totes)
    top_count = max(planted.count(t) for t in set(planted))
    assert result.value in planted
    assert result.confidence == pytest.approx(top_count / batches)
    assert sum(result.votes.values()) == batches


class TestSeededProperties:
    """The fallback driver: same properties, fixed-seed random cases."""

    def test_argmax_recovers_winner(self):
        rng = random.Random(0xA11CE)
        for _ in range(50):
            tests = rng.sample(range(256), rng.randint(2, 32))
            check_argmax_recovers_winner(
                winner=rng.choice(tests),
                tests=tests,
                batches=rng.randint(1, 9),
                margin=rng.randint(8, 40),
                noise=rng.randint(0, 3),
                rng=rng,
            )

    def test_argmin_mirrors_argmax(self):
        rng = random.Random(0xB0B)
        for _ in range(50):
            tests = rng.sample(range(256), rng.randint(2, 32))
            check_argmin_mirrors_argmax(
                winner=rng.choice(tests),
                tests=tests,
                batches=rng.randint(1, 9),
                margin=rng.randint(8, 40),
                noise=rng.randint(0, 3),
                rng=rng,
            )

    def test_confidence_is_vote_fraction(self):
        rng = random.Random(0xCAFE)
        for _ in range(50):
            check_confidence_is_vote_fraction(
                tests=rng.sample(range(256), rng.randint(2, 16)),
                batches=rng.randint(1, 12),
                rng=rng,
            )


if HAVE_HYPOTHESIS:

    scan_shapes = st.tuples(
        st.lists(st.integers(0, 255), min_size=2, max_size=32, unique=True),
        st.integers(1, 9),  # batches
        st.integers(8, 40),  # margin
        st.integers(0, 3),  # noise bound (< margin / 2)
        st.integers(0, 2**32 - 1),  # jitter seed
    )

    class TestHypothesisProperties:
        @settings(max_examples=60, deadline=None)
        @given(shape=scan_shapes, winner_index=st.integers(0, 31))
        def test_argmax_recovers_winner(self, shape, winner_index):
            tests, batches, margin, noise, seed = shape
            check_argmax_recovers_winner(
                winner=tests[winner_index % len(tests)],
                tests=tests,
                batches=batches,
                margin=margin,
                noise=noise,
                rng=random.Random(seed),
            )

        @settings(max_examples=60, deadline=None)
        @given(shape=scan_shapes, winner_index=st.integers(0, 31))
        def test_argmin_mirrors_argmax(self, shape, winner_index):
            tests, batches, margin, noise, seed = shape
            check_argmin_mirrors_argmax(
                winner=tests[winner_index % len(tests)],
                tests=tests,
                batches=batches,
                margin=margin,
                noise=noise,
                rng=random.Random(seed),
            )

        @settings(max_examples=60, deadline=None)
        @given(
            tests=st.lists(st.integers(0, 255), min_size=2, max_size=16, unique=True),
            batches=st.integers(1, 12),
            seed=st.integers(0, 2**32 - 1),
        )
        def test_confidence_is_vote_fraction(self, tests, batches, seed):
            check_confidence_is_vote_fraction(
                tests=tests, batches=batches, rng=random.Random(seed)
            )


class TestTieBreaking:
    def test_exact_tie_breaks_by_insertion_order(self):
        """All-equal samples: the first-inserted test value wins, every
        time -- decoding is a pure function of the input dict."""
        totes = {test: [BASELINE, BASELINE] for test in (7, 3, 11)}
        decoder = ArgExtremeDecoder("max")
        assert decoder.decode(totes).value == 7
        assert decoder.decode(totes).value == 7

    def test_tie_between_two_winners_is_deterministic(self):
        totes = {
            1: [BASELINE + 10, BASELINE],
            2: [BASELINE, BASELINE + 10],
            3: [BASELINE, BASELINE],
        }
        results = [ArgExtremeDecoder("max").decode(totes) for _ in range(3)]
        assert len({r.value for r in results}) == 1
        assert results[0].confidence == pytest.approx(0.5)

    def test_mean_statistic_tie_is_deterministic(self):
        totes = {5: [BASELINE] * 3, 9: [BASELINE] * 3}
        decoder = ArgExtremeDecoder("max", statistic="mean")
        assert decoder.decode(totes).value == decoder.decode(totes).value == 5


class TestVoteVersusMean:
    def test_agree_on_clean_signal(self):
        rng = random.Random(42)
        for _ in range(20):
            tests = rng.sample(range(256), 16)
            winner = rng.choice(tests)
            totes = make_scan(winner, tests, batches=5, margin=20, noise=0, rng=rng)
            vote = ArgExtremeDecoder("max", statistic="vote").decode(totes)
            mean = ArgExtremeDecoder("max", statistic="mean").decode(totes)
            assert vote.value == mean.value == winner

    def test_mean_survives_minority_batch_corruption(self):
        """One corrupted batch flips a vote but barely moves the mean."""
        totes = {
            0x41: [BASELINE + 10, BASELINE + 10, BASELINE + 10],
            0x42: [BASELINE, BASELINE, BASELINE + 12],
        }
        assert ArgExtremeDecoder("max", statistic="mean").decode(totes).value == 0x41
        vote = ArgExtremeDecoder("max", statistic="vote").decode(totes)
        assert vote.value == 0x41
        assert vote.confidence == pytest.approx(2 / 3)


class TestInvalidInput:
    def test_empty_scan_raises(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("max").decode({})

    def test_ragged_batches_raise(self):
        with pytest.raises(ValueError, match="ragged"):
            ArgExtremeDecoder("max").decode({1: [BASELINE], 2: [BASELINE, BASELINE]})

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("median")

    def test_bad_statistic_rejected(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("max", statistic="mode")
