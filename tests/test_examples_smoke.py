"""Smoke-run every example script: they must execute cleanly.

Examples are documentation that executes; a release whose examples crash
is broken no matter what the unit tests say.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "pmu_root_cause.py",
    "smt_and_rsb.py",
    "break_kaslr.py",
    "leak_kernel_memory.py",
    "telemetry_tour.py",
]


def run_example(name: str, timeout: int = 300) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_cleanly(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_decodes_the_demo_byte():
    result = run_example("quickstart.py")
    assert "decoded byte : 0x53" in result.stdout
    assert "received b'whisper'" in result.stdout


def test_break_kaslr_tells_the_full_story():
    result = run_example("break_kaslr.py")
    assert result.stdout.count("BROKEN") >= 4
    assert "failed" in result.stdout  # the AMD / defeated-scan cases


def test_cross_process_leak_story():
    result = run_example("cross_process_leak.py", timeout=420)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "b'hunter2'" in result.stdout
    assert "VIABLE" in result.stdout
    assert "MISSES" in result.stdout  # the FGKASLR coda
