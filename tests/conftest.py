"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.cache import CacheGeometry, CacheHierarchy
from repro.memory.mmu import Mmu
from repro.memory.paging import AddressSpace, PageSize
from repro.memory.physical import PhysicalMemory
from repro.sim.machine import Machine


def small_hierarchy(dram_latency: int = 180) -> CacheHierarchy:
    """A compact hierarchy for memory-subsystem unit tests."""
    return CacheHierarchy(
        CacheGeometry("L1", 4 * 1024, 4, 4),
        CacheGeometry("L1I", 4 * 1024, 4, 4),
        CacheGeometry("L2", 32 * 1024, 8, 12),
        CacheGeometry("LLC", 256 * 1024, 8, 42),
        dram_latency=dram_latency,
    )


def make_mmu(fill_tlb_on_fault: bool = True):
    """A fresh MMU with one user page and one supervisor page mapped.

    Returns (mmu, space, addresses) where addresses is a dict with
    ``user``, ``kernel`` (mapped supervisor 2 MiB page) and ``unmapped``.
    """
    physical = PhysicalMemory()
    hierarchy = small_hierarchy()
    space = AddressSpace("test")
    space.map_page(0x10000, 0x20000, user=True)
    space.map_page(
        0xFFFF_FFFF_8100_0000,
        0x40000000,
        size=PageSize.SIZE_2M,
        user=False,
        global_=True,
        tag="kernel",
    )
    mmu = Mmu(physical, hierarchy, fill_tlb_on_faulting_access=fill_tlb_on_fault)
    mmu.set_address_space(space)
    addresses = {
        "user": 0x10000,
        "kernel": 0xFFFF_FFFF_8100_0000,
        "unmapped": 0xFFFF_FFFF_9000_0000,
    }
    return mmu, space, addresses


@pytest.fixture
def machine():
    """A default vulnerable Intel machine with a fixed seed."""
    return Machine("i7-7700", seed=1234)


@pytest.fixture
def fixed_machine():
    """A Meltdown/MDS-fixed Intel machine (Comet Lake)."""
    return Machine("i9-10980XE", seed=1234)


@pytest.fixture
def amd_machine():
    """A Zen 3 machine: no TSX, permission-checked TLB fills."""
    return Machine("ryzen-5600G", seed=1234)


def run_source(machine_obj: Machine, source: str, regs=None, **kwargs):
    """Assemble+load+run a snippet; return the RunResult."""
    program = machine_obj.load_program(source)
    return machine_obj.run(program, regs=regs, **kwargs)
