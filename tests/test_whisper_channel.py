"""Functional tests for TET-CC, the covert channel."""

import pytest

from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel
from repro.whisper.gadgets import Suppression


class TestSingleByte:
    def test_send_byte_recovers_value(self, machine):
        channel = TetCovertChannel(machine, batches=3)
        assert channel.send_byte(0x53).value == 0x53

    def test_send_different_bytes_sequentially(self, machine):
        channel = TetCovertChannel(machine, batches=3)
        for value in (0x00, 0x7F, 0xFF, 0x42):
            assert channel.send_byte(value).value == value

    def test_scan_reports_confidence(self, machine):
        channel = TetCovertChannel(machine, batches=3)
        result = channel.send_byte(0xA5)
        assert 0.0 < result.confidence <= 1.0

    def test_restricted_value_set(self, machine):
        channel = TetCovertChannel(machine, batches=2, values=range(0, 64))
        assert channel.send_byte(33).value == 33


class TestTransmission:
    def test_payload_roundtrip(self, machine):
        channel = TetCovertChannel(machine, batches=3)
        stats = channel.transmit(b"Hi!")
        assert stats.received == b"Hi!"
        assert stats.error_rate == 0.0

    def test_stats_fields(self, machine):
        channel = TetCovertChannel(machine, batches=2)
        stats = channel.transmit(b"ab")
        assert stats.payload_length == 2
        assert stats.cycles > 0
        assert stats.seconds > 0
        assert stats.bytes_per_second > 0
        assert "B/s" in str(stats)

    def test_throughput_consistency(self, machine):
        channel = TetCovertChannel(machine, batches=2)
        stats = channel.transmit(b"xy")
        assert stats.bytes_per_second == pytest.approx(
            stats.payload_length / stats.seconds
        )

    def test_empty_payload_reports_zero_throughput(self, machine):
        """A zero-cycle transmission is 0 B/s, not inf (regression)."""
        channel = TetCovertChannel(machine, batches=2)
        stats = channel.transmit(b"")
        assert stats.cycles == 0
        assert stats.seconds == 0.0
        assert stats.bytes_per_second == 0.0
        assert stats.error_rate == 0.0


class TestWarmUp:
    def test_warm_up_leaves_pmu_untouched(self, machine):
        """Warm-up advances time but restores every PMU counter, so a
        measured scan's PMU deltas reflect only measured work."""
        channel = TetCovertChannel(machine, batches=2)
        baseline = machine.pmu.snapshot()
        channel._warm_up()
        assert machine.pmu.snapshot() == baseline
        assert machine.core.global_cycle > 0

    def test_transmit_excludes_warmup_cycles(self):
        """transmit's measured window starts after warm-up: an already
        warmed channel reports the same cycle count as a cold one."""
        from repro.sim.machine import Machine

        def run(prewarm):
            machine = Machine("i7-7700", seed=4242)
            channel = TetCovertChannel(machine, batches=2, values=range(32))
            if prewarm:
                channel._warm_up()
            return channel.transmit(b"\x05").cycles

        assert run(prewarm=True) == run(prewarm=False)

    def test_warm_up_happens_once(self, machine):
        channel = TetCovertChannel(machine, batches=2, values=range(16))
        channel.scan_byte()
        cycle = machine.core.global_cycle
        channel.scan_byte()
        # Second scan costs about the same as the first minus warm-up:
        # no re-warm, only measured work.
        assert machine.core.global_cycle > cycle
        assert channel._warmed


class TestAcrossMachines:
    @pytest.mark.parametrize(
        "model", ["i7-6700", "i7-7700", "i9-10980XE", "i9-13900K", "ryzen-5600G"]
    )
    def test_channel_works_on_every_table2_machine(self, model):
        """Table 2: TET-CC is ✓ on all five machines."""
        machine = Machine(model, seed=77)
        channel = TetCovertChannel(machine, batches=3)
        assert channel.send_byte(0x5A).value == 0x5A

    def test_signal_suppression_variant(self, machine):
        channel = TetCovertChannel(
            machine, batches=3, suppression=Suppression.SIGNAL
        )
        assert channel.send_byte(0x37).value == 0x37
