"""Unit tests for opcode metadata and condition-code evaluation."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import COND_ALIASES, OP_INFO, Cond, Op, UopClass


class TestOpInfoTable:
    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OP_INFO, f"{op} missing from OP_INFO"

    def test_loads_are_marked(self):
        assert OP_INFO[Op.LOAD].is_load
        assert OP_INFO[Op.LOAD_BYTE].is_load
        assert OP_INFO[Op.RET].is_load  # ret pops the return address

    def test_stores_are_marked(self):
        assert OP_INFO[Op.STORE].is_store
        assert OP_INFO[Op.CALL].is_store  # call pushes the return address

    def test_branches_are_marked(self):
        for op in (Op.JMP, Op.JCC, Op.CALL, Op.RET):
            assert OP_INFO[op].is_branch

    def test_fences_serialise(self):
        for op in (Op.MFENCE, Op.LFENCE, Op.SFENCE):
            assert OP_INFO[op].serialising

    def test_microcoded_ops(self):
        for op in (Op.MFENCE, Op.CLFLUSH, Op.RDTSC, Op.SYSCALL):
            assert OP_INFO[op].microcoded

    def test_uop_counts_positive(self):
        for op, info in OP_INFO.items():
            assert info.uop_count >= 1, f"{op} has no uops"

    def test_latencies_positive(self):
        for op, info in OP_INFO.items():
            assert info.base_latency >= 1

    def test_port_classes_are_sane(self):
        assert OP_INFO[Op.ADD].uop_class is UopClass.ALU
        assert OP_INFO[Op.LOAD].uop_class is UopClass.LOAD
        assert OP_INFO[Op.JCC].uop_class is UopClass.BRANCH


class TestConditions:
    def test_e_is_zf(self):
        assert Cond.E.evaluate(True, False, False, False)
        assert not Cond.E.evaluate(False, False, False, False)

    def test_ne_is_not_zf(self):
        assert Cond.NE.evaluate(False, False, False, False)

    def test_c_is_cf(self):
        assert Cond.C.evaluate(False, True, False, False)
        assert not Cond.NC.evaluate(False, True, False, False)

    def test_signed_less(self):
        assert Cond.L.evaluate(False, False, True, False)  # SF != OF
        assert not Cond.L.evaluate(False, False, True, True)

    def test_signed_greater(self):
        assert Cond.G.evaluate(False, False, False, False)
        assert not Cond.G.evaluate(True, False, False, False)  # ZF kills G

    def test_le_is_complement_of_g(self):
        for zf, sf, of in itertools.product([False, True], repeat=3):
            g = Cond.G.evaluate(zf, False, sf, of)
            le = Cond.LE.evaluate(zf, False, sf, of)
            assert g != le

    def test_ge_is_complement_of_l(self):
        for zf, sf, of in itertools.product([False, True], repeat=3):
            assert Cond.GE.evaluate(zf, False, sf, of) != Cond.L.evaluate(zf, False, sf, of)

    def test_aliases_point_at_real_conditions(self):
        assert COND_ALIASES["z"] is Cond.E
        assert COND_ALIASES["nz"] is Cond.NE
        assert COND_ALIASES["b"] is Cond.C


@given(
    st.sampled_from(list(Cond)),
    st.booleans(), st.booleans(), st.booleans(), st.booleans(),
)
def test_every_condition_evaluates_to_bool(cond, zf, cf, sf, of):
    assert isinstance(cond.evaluate(zf, cf, sf, of), bool)


@given(st.booleans(), st.booleans(), st.booleans(), st.booleans())
def test_complementary_pairs_disagree(zf, cf, sf, of):
    pairs = [
        (Cond.E, Cond.NE), (Cond.C, Cond.NC), (Cond.S, Cond.NS),
        (Cond.O, Cond.NO), (Cond.L, Cond.GE), (Cond.LE, Cond.G),
    ]
    for positive, negative in pairs:
        assert positive.evaluate(zf, cf, sf, of) != negative.evaluate(zf, cf, sf, of)
