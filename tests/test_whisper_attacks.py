"""Functional tests for TET-MD, TET-ZBL and TET-RSB."""

import pytest

from repro.sim.machine import Machine
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb
from repro.whisper.attacks.zombieload import TetZombieload


class TestTetMeltdown:
    def test_leaks_the_kernel_secret(self):
        machine = Machine("i7-7700", seed=41, secret=b"KernelBytes")
        attack = TetMeltdown(machine, batches=3)
        result = attack.leak(length=6)
        assert result.data == b"Kernel"
        assert result.success
        assert result.error_rate == 0.0

    def test_leak_at_offset(self):
        machine = Machine("i7-7700", seed=41, secret=b"ABCDEFGH")
        attack = TetMeltdown(machine, batches=3)
        result = attack.leak(va=machine.kernel.secret_va + 2, length=3)
        assert result.data == b"CDE"

    def test_fails_on_meltdown_fixed_cpu(self):
        machine = Machine("i9-10980XE", seed=41, secret=b"NOPELEAK")
        attack = TetMeltdown(machine, batches=2)
        result = attack.leak(length=4)
        assert not result.success

    def test_fails_on_amd(self):
        machine = Machine("ryzen-5600G", seed=41, secret=b"NOPELEAK")
        attack = TetMeltdown(machine, batches=2)
        result = attack.leak(length=3)
        assert not result.success

    def test_stats_populated(self):
        machine = Machine("i7-7700", seed=41)
        attack = TetMeltdown(machine, batches=2)
        result = attack.leak(length=2)
        assert result.cycles > 0 and result.seconds > 0
        assert len(result.scans) == 2
        assert "B/s" in str(result)

    def test_longer_tote_at_the_match(self):
        """TET-MD's sign: the trigger makes the window LONGER (§4.3.1)."""
        machine = Machine("i7-7700", seed=42, secret=b"Q")
        attack = TetMeltdown(machine, batches=3)
        scan = attack.scan_byte(machine.kernel.secret_va)
        secret = ord("Q")
        match_tote = max(scan.totes_by_test[secret])
        other = [
            max(samples)
            for test, samples in scan.totes_by_test.items()
            if test != secret
        ]
        assert match_tote > max(other) - 1  # it wins the argmax


class TestTetZombieload:
    def test_leaks_the_victim_line(self):
        machine = Machine("i7-7700", seed=43)
        attack = TetZombieload(machine, batches=5)
        attack.install_victim_secret(b"InFlight")
        result = attack.leak()
        assert result.data == b"InFlight"
        assert result.success

    def test_fails_on_mds_fixed_cpu(self):
        machine = Machine("i9-10980XE", seed=43)
        attack = TetZombieload(machine, batches=3)
        attack.install_victim_secret(b"NOPE")
        result = attack.leak()
        assert not result.success

    def test_secret_must_fit_one_line(self):
        machine = Machine("i7-7700", seed=43)
        attack = TetZombieload(machine)
        with pytest.raises(ValueError):
            attack.install_victim_secret(b"x" * 65)

    def test_leak_requires_installed_secret(self):
        machine = Machine("i7-7700", seed=43)
        with pytest.raises(RuntimeError):
            TetZombieload(machine).leak()

    def test_shorter_tote_at_the_match(self):
        """TET-ZBL's sign: the trigger makes the window SHORTER (§4.3.2)."""
        machine = Machine("i7-7700", seed=44)
        attack = TetZombieload(machine, batches=3)
        attack.install_victim_secret(b"W")
        scan = attack.scan_offset(0)
        assert scan.value == ord("W")
        match_tote = min(scan.totes_by_test[ord("W")])
        others = [
            min(samples)
            for test, samples in scan.totes_by_test.items()
            if test != ord("W")
        ]
        assert match_tote < min(others) + 1  # it wins the argmin


class TestTetSpectreRsb:
    def test_leaks_the_sandboxed_secret(self):
        machine = Machine("i9-13900K", seed=45)
        attack = TetSpectreRsb(machine)
        attack.install_secret(b"Sandboxed")
        result = attack.leak(length=6)
        assert result.data == b"Sandbo"
        assert result.success

    def test_works_without_tsx(self):
        """TET-RSB needs no fault suppression at all (no fault happens)."""
        machine = Machine("i9-13900K", seed=45)
        assert not machine.model.has_tsx
        attack = TetSpectreRsb(machine)
        attack.install_secret(b"Z")
        assert attack.leak().data == b"Z"

    def test_works_on_skylake(self):
        machine = Machine("i7-6700", seed=45)
        attack = TetSpectreRsb(machine)
        attack.install_secret(b"OK")
        assert attack.leak().data == b"OK"

    def test_leak_requires_installed_secret(self):
        machine = Machine("i9-13900K", seed=45)
        with pytest.raises(RuntimeError):
            TetSpectreRsb(machine).leak()

    def test_single_batch_suffices(self):
        """The paper reports <0.1% error with plain argmax (Listing 1)."""
        machine = Machine("i9-13900K", seed=46)
        attack = TetSpectreRsb(machine, batches=1)
        attack.install_secret(b"\x00\x7f\xff")
        result = attack.leak()
        assert result.error_rate == 0.0

    def test_rsb_faster_than_meltdown(self):
        """§4.1's ordering: TET-RSB is the fastest TET attack."""
        rsb_machine = Machine("i7-7700", seed=47, secret=b"AB")
        md_machine = Machine("i7-7700", seed=47, secret=b"AB")
        rsb = TetSpectreRsb(rsb_machine)
        rsb.install_secret(b"AB")
        md = TetMeltdown(md_machine)
        rsb_result = rsb.leak()
        md_result = md.leak(length=2)
        assert rsb_result.bytes_per_second > md_result.bytes_per_second
