"""Unit and property tests for the 4-level page tables."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.paging import AddressSpace, PageSize

KERNEL_VA = 0xFFFF_FFFF_8000_0000


class TestMapping:
    def test_lookup_unmapped_is_none(self):
        space = AddressSpace()
        assert space.lookup(0x1000) is None

    def test_map_and_lookup_4k(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        pte = space.lookup(0x5123)
        assert pte is not None
        assert pte.physical_address(0x5123) == 0x9123

    def test_map_and_lookup_2m(self):
        space = AddressSpace()
        space.map_page(KERNEL_VA, 0x4000_0000, size=PageSize.SIZE_2M)
        pte = space.lookup(KERNEL_VA + 0x12_3456)
        assert pte is not None
        assert pte.page_size == PageSize.SIZE_2M
        assert pte.physical_address(KERNEL_VA + 0x12_3456) == 0x4012_3456

    def test_va_truncated_to_page_boundary(self):
        space = AddressSpace()
        space.map_page(0x5FFF, 0x9000)
        assert space.lookup(0x5000) is not None

    def test_unmap(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        assert space.unmap(0x5000) is True
        assert space.lookup(0x5000) is None
        assert space.unmap(0x5000) is False

    def test_flags_preserved(self):
        space = AddressSpace()
        space.map_page(0x7000, 0xA000, writable=False, user=True, global_=True, nx=True, tag="x")
        pte = space.lookup(0x7000)
        assert (pte.writable, pte.user, pte.global_, pte.nx, pte.tag) == (
            False, True, True, True, "x",
        )

    def test_remap_replaces(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        space.map_page(0x5000, 0xB000)
        assert space.lookup(0x5000).physical_address(0x5000) == 0xB000

    def test_adjacent_pages_do_not_collide(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        space.map_page(0x6000, 0xC000)
        assert space.lookup(0x5000).physical_address(0x5000) == 0x9000
        assert space.lookup(0x6000).physical_address(0x6000) == 0xC000

    def test_mapped_ranges_count(self):
        space = AddressSpace()
        for index in range(5):
            space.map_page(0x10000 + index * 0x1000, 0x20000)
        assert space.mapped_ranges_count() == 5


class TestWalkPath:
    def test_full_walk_for_4k_page(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        steps, pte = space.walk_path(0x5000)
        assert pte is not None
        assert len(steps) == 4
        assert steps[-1].is_leaf and steps[-1].present

    def test_three_level_walk_for_2m_page(self):
        space = AddressSpace()
        space.map_page(KERNEL_VA, 0x4000_0000, size=PageSize.SIZE_2M)
        steps, pte = space.walk_path(KERNEL_VA)
        assert pte is not None
        assert len(steps) == 3

    def test_unmapped_walk_terminates_at_missing_level(self):
        space = AddressSpace()
        steps, pte = space.walk_path(0x5000)
        assert pte is None
        assert len(steps) == 1  # PML4 entry absent

    def test_unmapped_sibling_walks_deep(self):
        space = AddressSpace()
        space.map_page(KERNEL_VA, 0x4000_0000, size=PageSize.SIZE_2M)
        # Same PD, different entry: the walk descends to the PD level.
        steps, pte = space.walk_path(KERNEL_VA + 0x20_0000)
        assert pte is None
        assert len(steps) == 3

    def test_entry_paddrs_are_unique_per_level(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        steps, _ = space.walk_path(0x5000)
        assert len({step.entry_paddr for step in steps}) == len(steps)


class TestClone:
    def test_clone_preserves_mappings(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000, tag="orig")
        clone = space.clone_shared()
        assert clone.lookup(0x5000).tag == "orig"

    def test_clone_is_independent(self):
        space = AddressSpace()
        space.map_page(0x5000, 0x9000)
        clone = space.clone_shared()
        clone.unmap(0x5000)
        assert space.lookup(0x5000) is not None
        assert clone.lookup(0x5000) is None

    def test_clone_new_mappings_do_not_leak_back(self):
        space = AddressSpace()
        clone = space.clone_shared()
        clone.map_page(0x8000, 0xF000)
        assert space.lookup(0x8000) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2**35), st.integers(0, 2**30)),
        min_size=1,
        max_size=24,
        unique_by=lambda pair: pair[0] >> 12,
    )
)
def test_many_mappings_all_resolve(pairs):
    space = AddressSpace()
    for va, pa in pairs:
        space.map_page(va, pa)
    for va, pa in pairs:
        pte = space.lookup(va)
        assert pte is not None
        page_va = va & ~0xFFF
        assert pte.physical_address(page_va) == pa & ~0xFFF


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**40))
def test_walk_path_agrees_with_lookup(va):
    space = AddressSpace()
    space.map_page(0x12345000, 0x400000)
    steps, walk_pte = space.walk_path(va)
    assert walk_pte == space.lookup(va)
    assert 1 <= len(steps) <= 4
