"""Tests for the extension features: prefetch/EntryBleed, the §3.2 Jcc
conjecture, defense interactions, and transient-rollback properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.entrybleed import EntryBleedKaslr
from repro.isa.opcodes import Cond, Op
from repro.sim.machine import Machine
from repro.whisper.attacks.meltdown import TetMeltdown
from tests.conftest import run_source


class TestPrefetch:
    def test_assembles(self, machine):
        program = machine.load_program("prefetch [r13]\nhlt")
        assert program.instructions[0].op is Op.PREFETCH

    def test_never_faults(self, machine):
        machine.clear_signal_handler()
        result = run_source(machine, "prefetch [r13]\nhlt", regs={"r13": 0})
        assert result.halted and not result.faults

    def test_fills_cache_for_permitted_address(self, machine):
        data = machine.alloc_data()
        machine.flush_caches()
        run_source(machine, f"mov r13, {hex(data)}\nprefetch [r13]\nhlt")
        assert machine.hierarchy.data_resident(machine.mmu.translate_peek(data))

    def test_fills_tlb_for_kernel_address_on_intel(self, machine):
        kernel_va = machine.kernel.layout.base
        machine.flush_tlb(charge_cycles=False)
        run_source(machine, f"mov r13, {hex(kernel_va)}\nprefetch [r13]\nhlt")
        assert machine.mmu.dtlb.lookup(kernel_va) is not None

    def test_does_not_fill_tlb_for_kernel_address_on_amd(self, amd_machine):
        kernel_va = amd_machine.kernel.layout.base
        amd_machine.flush_tlb(charge_cycles=False)
        run_source(
            amd_machine, f"mov r13, {hex(kernel_va)}\nprefetch [r13]\nhlt"
        )
        assert amd_machine.mmu.dtlb.lookup(kernel_va) is None

    def test_does_not_read_kernel_data_into_cache(self, machine):
        """A supervisor page's *data* must not be prefetched by user code."""
        kernel_va = machine.kernel.secret_va
        machine.flush_caches()
        run_source(machine, f"mov r13, {hex(kernel_va)}\nprefetch [r13]\nhlt")
        assert not machine.hierarchy.data_resident(machine.kernel.secret_paddr())


class TestEntryBleedBaseline:
    def test_breaks_kpti(self):
        machine = Machine("i9-10980XE", seed=121, kpti=True)
        assert EntryBleedKaslr(machine).break_kaslr().success

    def test_syscall_leaves_trampoline_hot(self):
        machine = Machine("i9-10980XE", seed=122, kpti=True)
        machine.flush_tlb(charge_cycles=False)
        machine.do_syscall()
        trampoline = machine.kernel.layout.trampoline_va
        assert machine.mmu.dtlb.lookup(trampoline) is not None

    def test_fails_under_flare(self):
        """FLARE was built to stop the prefetch family -- and does."""
        machine = Machine("i9-10980XE", seed=123, kpti=True, flare=True)
        assert not EntryBleedKaslr(machine).break_kaslr().success

    def test_works_on_amd_unlike_tet(self):
        """The syscall's TLB fill is architectural, so EntryBleed does not
        need fill-on-fault -- a real contrast with TET-KASLR on Zen 3."""
        machine = Machine("ryzen-5600G", seed=124, kpti=True)
        assert EntryBleedKaslr(machine).break_kaslr().success


class TestJccConjecture:
    """§3.2: 'We believe that all the conditional jump instructions of
    x86 chips could be exploited' -- testable on the simulator."""

    @pytest.mark.parametrize("cond", list(Cond))
    def test_every_condition_code_carries_the_channel(self, cond):
        machine = Machine("i7-7700", seed=131)
        # A gadget whose Jcc direction depends on r9 (0 -> flags set one
        # way, 1 -> the other); inside a transient window.
        source = f"""
    mov rax, r9
    cmp rax, 1              ; sets flags from r9
    rdtsc
    mov r14, rax
    xbegin out
    mov r8, [r13]           ; open the window
    j{cond.value} target
    nop
target:
    nop
out:
    rdtsc
    mov r15, rax
    hlt
"""
        program = machine.load_program(source)
        tote = lambda r9: machine.run(program, regs={"r13": 0, "r9": r9}).regs.read(
            "r15"
        ) - machine.run(program, regs={"r13": 0, "r9": r9}).regs.read("r14")
        # Flags after `cmp r9, 1`: zf = (r9 == 1), cf = sf = (r9 < 1).
        taken = {r9: cond.evaluate(r9 == 1, r9 < 1, r9 < 1, False) for r9 in (0, 1)}
        if taken[0] == taken[1]:
            pytest.skip(f"{cond} direction independent of r9 in this gadget")
        # Train toward r9=0's direction, then flip: the flip mispredicts
        # inside the window and must shift the ToTE.
        def measured(r9):
            result = machine.run(program, regs={"r13": 0, "r9": r9})
            return result.regs.read("r15") - result.regs.read("r14")

        for _ in range(6):
            measured(0)
        quiet = measured(0)
        for _ in range(3):
            measured(0)
        loud = measured(1)
        assert loud != quiet, f"j{cond.value} produced no timing difference"


class TestDefenseInteractions:
    def test_kpti_stops_tet_meltdown(self):
        """§6.2: 'For TET-MD ... the KPTI ... [is] efficient mitigation'.

        With KPTI the kernel secret is simply unmapped in the user table:
        the faulting load is a not-present fault and nothing forwards."""
        machine = Machine("i7-7700", seed=141, kpti=True, secret=b"SAFE")
        attack = TetMeltdown(machine, batches=2)
        result = attack.leak(length=3)
        assert not result.success

    def test_kpti_machine_still_leaks_via_rsb(self):
        """KPTI does nothing for same-address-space transient leaks."""
        from repro.whisper.attacks.spectre_rsb import TetSpectreRsb

        machine = Machine("i7-7700", seed=142, kpti=True)
        attack = TetSpectreRsb(machine)
        attack.install_secret(b"RSB")
        assert attack.leak().success

    def test_flare_full_coverage_also_falls_to_cr3_variant(self):
        from repro.whisper.attacks.kaslr import TetKaslr

        machine = Machine(
            "i9-10980XE", seed=143, kpti=True, flare=True, flare_coverage="full"
        )
        assert TetKaslr(machine).break_kaslr_flare().success


@st.composite
def transient_body(draw):
    """A random transient block: arithmetic, stores, branches, nops."""
    lines = []
    count = draw(st.integers(1, 10))
    for index in range(count):
        choice = draw(st.integers(0, 4))
        if choice == 0:
            lines.append(f"    mov rbx, {draw(st.integers(0, 1 << 30))}")
        elif choice == 1:
            lines.append(f"    add rcx, {draw(st.integers(0, 999))}")
        elif choice == 2:
            lines.append("    nop")
        elif choice == 3:
            lines.append("    mov [r12], rbx")  # transient store
        else:
            label = f"t{index}"
            lines.append(f"    cmp rcx, {draw(st.integers(0, 3))}")
            lines.append(f"    jne {label}")
            lines.append(f"{label}:")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None)
@given(transient_body())
def test_transient_rollback_is_total(body):
    """Whatever happens inside the window, architectural state after the
    abort equals the state before the faulting load."""
    machine = Machine("i7-7700", seed=151)
    scratch = machine.alloc_data()
    machine.write_data(scratch, b"\xaa" * 8)
    source = f"""
    mov r12, {hex(scratch)}
    mov rbx, 1
    mov rcx, 2
    xbegin out
    mov rax, [r13]          ; faults: everything below is transient
{body}
out:
    hlt
"""
    program = machine.load_program(source)
    result = machine.run(program, regs={"r13": 0})
    assert result.regs.read("rbx") == 1
    assert result.regs.read("rcx") == 2
    assert machine.read_data(scratch, 8) == b"\xaa" * 8
