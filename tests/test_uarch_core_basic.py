"""Functional tests for the out-of-order core: committed-path semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.registers import MASK64
from repro.uarch.core import SimulationError
from tests.conftest import run_source


class TestArithmetic:
    def test_mov_and_add(self, machine):
        result = run_source(machine, "mov rax, 7\nadd rax, 3\nhlt")
        assert result.regs.read("rax") == 10

    def test_sub_and_flags(self, machine):
        result = run_source(machine, "mov rax, 5\nsub rax, 5\nhlt")
        assert result.regs.read("rax") == 0
        assert result.regs.read_flag("zf") is True

    def test_sub_borrow_sets_carry(self, machine):
        result = run_source(machine, "mov rax, 1\nsub rax, 2\nhlt")
        assert result.regs.read("rax") == MASK64
        assert result.regs.read_flag("cf") is True

    def test_logic_ops(self, machine):
        result = run_source(machine, """
    mov rax, 0xF0
    mov rbx, 0x0F
    or rax, rbx
    mov rcx, 0xFF
    and rcx, 0x0F
    mov rdx, 0xFF
    xor rdx, rdx
    hlt
""")
        assert result.regs.read("rax") == 0xFF
        assert result.regs.read("rcx") == 0x0F
        assert result.regs.read("rdx") == 0

    def test_shifts(self, machine):
        result = run_source(machine, "mov rax, 3\nshl rax, 4\nmov rbx, 0x100\nshr rbx, 4\nhlt")
        assert result.regs.read("rax") == 48
        assert result.regs.read("rbx") == 16

    def test_add_wraps_64_bits(self, machine):
        result = run_source(machine, f"mov rax, {MASK64}\nadd rax, 2\nhlt")
        assert result.regs.read("rax") == 1
        assert result.regs.read_flag("cf") is True

    def test_cmp_does_not_write_dest(self, machine):
        result = run_source(machine, "mov rax, 9\ncmp rax, 4\nhlt")
        assert result.regs.read("rax") == 9

    def test_lea(self, machine):
        result = run_source(machine, "mov rbx, 0x100\nmov rcx, 4\nlea rax, [rbx + rcx*8 + 2]\nhlt")
        assert result.regs.read("rax") == 0x100 + 32 + 2


class TestControlFlow:
    def test_taken_conditional(self, machine):
        result = run_source(machine, """
    mov rax, 1
    cmp rax, 1
    je good
    mov rbx, 99
good:
    hlt
""")
        assert result.regs.read("rbx") == 0

    def test_not_taken_conditional(self, machine):
        result = run_source(machine, """
    mov rax, 1
    cmp rax, 2
    je skip
    mov rbx, 42
skip:
    hlt
""")
        assert result.regs.read("rbx") == 42

    def test_loop_counts_correctly(self, machine):
        result = run_source(machine, """
    mov rcx, 10
    mov rax, 0
loop:
    add rax, 3
    sub rcx, 1
    cmp rcx, 0
    jne loop
    hlt
""")
        assert result.regs.read("rax") == 30
        assert result.regs.read("rcx") == 0

    def test_unconditional_jmp(self, machine):
        result = run_source(machine, """
    jmp over
    mov rax, 1
over:
    mov rbx, 2
    hlt
""")
        assert result.regs.read("rax") == 0
        assert result.regs.read("rbx") == 2

    def test_signed_conditions(self, machine):
        result = run_source(machine, """
    mov rax, 3
    cmp rax, 5
    jl less
    mov rbx, 1
less:
    mov rcx, 7
    hlt
""")
        assert result.regs.read("rbx") == 0
        assert result.regs.read("rcx") == 7

    def test_mispredicted_branch_still_correct(self, machine):
        # Alternate directions so the predictor keeps mispredicting.
        source = """
    mov rax, r9
    cmp rax, 0
    je zero_path
    mov rbx, 111
    jmp out
zero_path:
    mov rbx, 222
out:
    hlt
"""
        program = machine.load_program(source)
        for value, expected in [(0, 222), (1, 111), (0, 222), (1, 111)]:
            result = machine.run(program, regs={"r9": value})
            assert result.regs.read("rbx") == expected


class TestMemoryOps:
    def test_store_load_roundtrip(self, machine):
        data = machine.alloc_data()
        result = run_source(machine, f"""
    mov rbx, {hex(data)}
    mov rax, 0x55AA
    mov [rbx + 8], rax
    mov rcx, [rbx + 8]
    hlt
""")
        assert result.regs.read("rcx") == 0x55AA

    def test_loadb_reads_one_byte(self, machine):
        data = machine.alloc_data()
        machine.write_data(data, b"\xEF\xBE\xAD\xDE")
        result = run_source(machine, f"mov rbx, {hex(data)}\nloadb rax, [rbx]\nhlt")
        assert result.regs.read("rax") == 0xEF

    def test_store_commits_to_memory(self, machine):
        data = machine.alloc_data()
        run_source(machine, f"mov rbx, {hex(data)}\nmov rax, 0x77\nmov [rbx], rax\nhlt")
        assert machine.read_data(data, 1) == b"\x77"

    def test_cached_load_is_faster(self, machine):
        data = machine.alloc_data()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    rdtsc
    mov r14, rax
    mov rcx, [rbx]
    rdtsc
    mov r15, rax
    hlt
""")
        first = machine.run(program)
        second = machine.run(program)
        tote = lambda r: r.regs.read("r15") - r.regs.read("r14")
        assert tote(second) < tote(first)

    def test_clflush_makes_reload_slow_again(self, machine):
        data = machine.alloc_data()
        timed = machine.load_program(f"""
    mov rbx, {hex(data)}
    rdtsc
    mov r14, rax
    mov rcx, [rbx]
    rdtsc
    mov r15, rax
    hlt
""")
        flusher = machine.load_program(f"mov rbx, {hex(data)}\nclflush [rbx]\nhlt")
        machine.run(timed)
        warm = machine.run(timed)
        machine.run(flusher)
        cold = machine.run(timed)
        tote = lambda r: r.regs.read("r15") - r.regs.read("r14")
        assert tote(cold) > tote(warm)


class TestCallRet:
    def test_call_ret_roundtrip(self, machine):
        stack = machine.alloc_data(2)
        result = run_source(machine, f"""
    mov rsp, {hex(stack + 0x1800)}
    call fn
    mov rbx, 5
    hlt
fn:
    mov rax, 9
    ret
""", regs={})
        assert result.regs.read("rax") == 9
        assert result.regs.read("rbx") == 5

    def test_nested_calls(self, machine):
        stack = machine.alloc_data(2)
        result = run_source(machine, f"""
    mov rsp, {hex(stack + 0x1800)}
    call outer
    hlt
outer:
    add rax, 1
    call inner
    add rax, 4
    ret
inner:
    add rax, 2
    ret
""")
        assert result.regs.read("rax") == 7

    def test_rsp_balanced_after_call_ret(self, machine):
        stack = machine.alloc_data(2)
        top = stack + 0x1800
        result = run_source(machine, f"""
    mov rsp, {hex(top)}
    call fn
    hlt
fn:
    ret
""")
        assert result.regs.read("rsp") == top


class TestTimingPrimitives:
    def test_rdtsc_monotone_within_run(self, machine):
        result = run_source(machine, "rdtsc\nmov r14, rax\nrdtsc\nmov r15, rax\nhlt")
        assert result.regs.read("r15") > result.regs.read("r14")

    def test_rdtsc_monotone_across_runs(self, machine):
        program = machine.load_program("rdtsc\nmov r14, rax\nhlt")
        first = machine.run(program).regs.read("r14")
        second = machine.run(program).regs.read("r14")
        assert second > first

    def test_rdtsc_clobbers_rdx(self, machine):
        result = run_source(machine, "mov rdx, 5\nrdtsc\nhlt")
        assert result.regs.read("rdx") == 0

    def test_fences_execute(self, machine):
        result = run_source(machine, "mfence\nlfence\nsfence\nmov rax, 1\nhlt")
        assert result.regs.read("rax") == 1

    def test_nops_retire(self, machine):
        result = run_source(machine, "nop\n" * 20 + "hlt")
        assert result.instructions_retired == 21


class TestRunMechanics:
    def test_halt_stops_the_run(self, machine):
        result = run_source(machine, "hlt\nmov rax, 1\nhlt")
        assert result.halted
        assert result.regs.read("rax") == 0

    def test_instruction_budget_enforced(self, machine):
        program = machine.load_program("spin: jmp spin")
        with pytest.raises(SimulationError, match="budget"):
            machine.run(program, max_instructions=100)

    def test_run_off_program_raises(self, machine):
        program = machine.load_program("nop\nnop")  # no hlt
        with pytest.raises(SimulationError, match="left the program"):
            machine.run(program)

    def test_initial_registers_applied(self, machine):
        result = run_source(machine, "mov rbx, rax\nhlt", regs={"rax": 77})
        assert result.regs.read("rbx") == 77

    def test_uops_issued_counted(self, machine):
        result = run_source(machine, "mov rax, 1\nadd rax, 1\nhlt")
        assert result.uops_issued >= 3

    def test_trace_recording(self, machine):
        result = run_source(machine, "mov rax, 1\nhlt", record_trace=True)
        assert result.records is not None
        assert [str(r.instruction) for r in result.records][0].startswith("mov")


REG_POOL = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi"]
OPS = ["mov", "add", "sub", "and", "or", "xor"]


@st.composite
def straight_line_program(draw):
    lines = []
    count = draw(st.integers(2, 20))
    for _ in range(count):
        op = draw(st.sampled_from(OPS))
        dst = draw(st.sampled_from(REG_POOL))
        if draw(st.booleans()):
            src = draw(st.sampled_from(REG_POOL))
            lines.append(f"{op} {dst}, {src}")
        else:
            imm = draw(st.integers(0, 2**32))
            lines.append(f"{op} {dst}, {imm}")
    return lines


def python_oracle(lines):
    regs = {name: 0 for name in REG_POOL}

    def value(token):
        return regs[token] if token in regs else int(token, 0)

    for line in lines:
        op, rest = line.split(None, 1)
        dst, src = [part.strip() for part in rest.split(",")]
        if op == "mov":
            regs[dst] = value(src)
        elif op == "add":
            regs[dst] = (regs[dst] + value(src)) & MASK64
        elif op == "sub":
            regs[dst] = (regs[dst] - value(src)) & MASK64
        elif op == "and":
            regs[dst] &= value(src)
        elif op == "or":
            regs[dst] |= value(src)
        elif op == "xor":
            regs[dst] ^= value(src)
    return regs


@settings(max_examples=40, deadline=None)
@given(straight_line_program())
def test_core_matches_python_oracle(lines):
    """The OoO timing machinery must never change architectural results."""
    from repro.sim.machine import Machine

    machine = Machine("i7-7700", seed=99)
    result = run_source(machine, "\n".join(lines) + "\nhlt")
    expected = python_oracle(lines)
    for name, value in expected.items():
        assert result.regs.read(name) == value, f"{name} diverged"
