"""Additional property-based tests on cross-module invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmutools.collector import CollectionResult
from repro.pmutools.differential import DifferentialFilter
from repro.sim.machine import Machine
from repro.uarch.pmu import EVENTS
from repro.whisper.gadgets import GadgetBuilder


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from([event.name for event in EVENTS]),
        st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
        min_size=1,
    ),
    st.floats(0.1, 10),
)
def test_differential_filter_partition_is_exact(means, threshold):
    """Survivors + rejected = everything; no event in both."""
    collection = CollectionResult(
        scenario="t", condition_names=("a", "b"), iterations=1, means=means
    )
    filt = DifferentialFilter(absolute_threshold=threshold)
    survivors = {event.name for event in filt.filter(collection)}
    rejected = set(filt.rejected(collection))
    assert survivors | rejected == set(means)
    assert not survivors & rejected


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from([event.name for event in EVENTS]),
        st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
        min_size=1,
    )
)
def test_stricter_filter_keeps_fewer(means):
    collection = CollectionResult(
        scenario="t", condition_names=("a", "b"), iterations=1, means=means
    )
    lax = DifferentialFilter(absolute_threshold=0.1, relative_threshold=0.0)
    strict = DifferentialFilter(absolute_threshold=100, relative_threshold=0.0)
    assert len(strict.filter(collection)) <= len(lax.filter(collection))


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_any_seed_boots_and_runs(seed):
    """Machine construction + a trivial run must work for any boot seed."""
    machine = Machine("i7-7700", seed=seed)
    program = machine.load_program("mov rax, 1\nadd rax, 2\nhlt")
    result = machine.run(program)
    assert result.regs.read("rax") == 3


@settings(max_examples=6, deadline=None)
@given(st.integers(2, 48))
def test_zombieload_sled_monotone_pruning(sled):
    """More sled uops -> at least as much pruning benefit on the trigger.

    The E12 ablation pins the crossover; this property checks the
    mechanism's direction for arbitrary sled lengths: the trigger-case
    ToTE never *increases* with the sled while the quiet case grows.
    """
    machine = Machine("i7-7700", seed=404)
    machine.victim_store(machine.alloc_data(), b"\x5a")
    program = GadgetBuilder(machine).zombieload(sled=sled)

    def tote(test):
        result = machine.run(program, regs={"r13": 0, "r9": test})
        return result.regs.read("r15") - result.regs.read("r14")

    for _ in range(6):
        tote(256)
    quiet = tote(256)
    for _ in range(3):
        tote(256)
    trigger = tote(0x5A)
    # The quiet path dispatches the whole sled; its window drain grows
    # with the sled.  The trigger path prunes it: its ToTE must stay
    # within a constant of the sled-free baseline.
    assert quiet >= trigger - 12


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=1, max_size=3))
def test_covert_channel_roundtrip_any_payload(payload):
    from repro.whisper.channel import TetCovertChannel

    machine = Machine("i7-7700", seed=405)
    channel = TetCovertChannel(machine, batches=3)
    assert channel.transmit(payload).received == payload
