"""Tests for the terminal visualisations and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.sim.viz import argmax_series, bar_chart, success_matrix, tote_scan_plot


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_bars_scale_to_peak(self):
        chart = bar_chart({"a": 10, "b": 5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title(self):
        assert bar_chart({"a": 1}, title="T").splitlines()[0] == "T"


class TestToteScanPlot:
    def test_peak_is_highlighted(self):
        totes = {t: [100] for t in range(4)}
        totes[2] = [110]
        plot = tote_scan_plot(totes, highlight=2)
        assert "<-- secret" in plot
        assert "0x02" in plot

    def test_flat_scan_reported(self):
        totes = {t: [100] for t in range(4)}
        assert "flat" in tote_scan_plot(totes)

    def test_floor_rows_suppressed(self):
        totes = {t: [100] for t in range(8)}
        totes[5] = [120]
        plot = tote_scan_plot(totes)
        assert "0x05" in plot
        assert "0x03" not in plot

    def test_empty(self):
        assert tote_scan_plot({}) == "(no data)"


class TestArgmaxSeries:
    def test_lists_each_batch(self):
        totes = {0: [1, 9], 1: [9, 1]}
        series = argmax_series(totes)
        assert "batch 0: 0x01" in series
        assert "batch 1: 0x00" in series

    def test_argmin_mode(self):
        totes = {0: [1], 1: [9]}
        assert "0x00" in argmax_series(totes, mode="min")


class TestSuccessMatrix:
    def test_renders_y_and_x(self):
        matrix = {"cpu1": {"a": True, "b": False}}
        text = success_matrix(matrix)
        assert "Y" in text and "x" in text

    def test_respects_order(self):
        matrix = {
            "z": {"a": True},
            "a": {"a": True},
        }
        text = success_matrix(matrix, row_order=["z", "a"])
        assert text.index("z") < text.rindex("a")

    def test_empty(self):
        assert success_matrix({}) == "(no data)"


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ("demo", "send", "leak", "kaslr", "matrix", "pmu"):
            args = parser.parse_args(
                [command] if command != "send" else [command, "m"]
            )
            assert callable(args.func)

    def test_demo_roundtrip(self, capsys):
        exit_code = main(["demo", "--byte", "0x41", "--batches", "3", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "decoded: 0x41" in captured.out

    def test_send_fast(self, capsys):
        exit_code = main(["send", "ok", "--fast", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "b'ok'" in captured.out

    def test_leak(self, capsys):
        exit_code = main(["leak", "--length", "3", "--batches", "2", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "SUCCESS" in captured.out

    def test_leak_fails_with_kpti(self, capsys):
        exit_code = main(
            ["leak", "--length", "2", "--batches", "2", "--kpti", "--seed", "3"]
        )
        assert exit_code == 1

    def test_kaslr(self, capsys):
        exit_code = main(["kaslr", "--cpu", "i9-10980XE", "--kpti", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "BROKEN" in captured.out

    def test_kaslr_fails_on_amd(self):
        assert main(["kaslr", "--cpu", "ryzen-5600G", "--seed", "3"]) == 1

    def test_pmu(self, capsys):
        exit_code = main(["pmu", "--scene", "tet-cc", "--iterations", "4", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "condition-sensitive" in captured.out
