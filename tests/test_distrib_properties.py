"""Property-based tests for the distributed campaign tier.

Runs under Hypothesis when it is installed; a seeded-``random`` fallback
exercises the same properties (fewer cases, fixed seed) when it is not
-- the same arrangement as ``test_faults_properties.py``.

The properties behind the byte-identity contract:

* **sharding is a disjoint exact cover**: for any grid size and any
  ``n``, the ``n`` shards' expansion positions partition the grid with
  no overlap, no gap, and sizes balanced within one trial;
* **merge is order-insensitive at the byte level**: merging the same
  segments in any permutation yields an identical ``results.jsonl``;
* **merge is idempotent and associative**: re-merging merged output
  (in any grouping) never changes the bytes;
* the runner-level shard filter agrees with the position arithmetic,
  so two hosts can agree on a slice from ``(spec, index, of)`` alone.
"""

import random

from repro.campaign import CampaignRunner, ResultStore, Shard, builtin_campaign
from repro.campaign.store import trial_key
from repro.distrib import merge_stores, shard_spec_positions
from repro.runtime import TrialFailure, TrialResult

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


# -- shared property checks ----------------------------------------------------


def check_shard_exact_cover(total, of):
    """The n shards partition range(total): disjoint, complete, balanced."""
    seen = []
    sizes = []
    for index in range(of):
        shard = Shard(index, of)
        positions = list(shard.positions(total))
        assert len(positions) == shard.size(total)
        assert all(shard.covers(p) for p in positions)
        seen.extend(positions)
        sizes.append(len(positions))
    assert sorted(seen) == list(range(total))  # exact cover, no dup/gap
    assert len(seen) == len(set(seen))
    if sizes:
        assert max(sizes) - min(sizes) <= 1  # balanced within one trial


def synth_outcomes(rng, count):
    """Synthetic keyed outcomes, failure records mixed in."""
    outcomes = {}
    for i in range(count):
        key = f"{rng.getrandbits(128):032x}"
        if rng.random() < 0.2:
            outcomes[key] = TrialFailure(
                attempts=rng.randrange(1, 4),
                faults=("raise",) * rng.randrange(1, 3),
                error=f"err{i}",
            )
        else:
            outcomes[key] = TrialResult(
                totes=(rng.randrange(1000), rng.randrange(1000)),
                cycles=rng.randrange(100_000),
            )
    return outcomes


def write_segments(base, rng, outcomes, segments):
    """Scatter *outcomes* across *segments* stores with random overlap."""
    roots = []
    items = list(outcomes.items())
    for index in range(segments):
        root = str(base / f"seg{index}")
        # Each segment gets a random subset; overlap is intentional --
        # duplicated (key, body) pairs must dedup, never conflict.
        subset = [item for item in items if rng.random() < 0.7]
        ResultStore(root).put_many(subset)
        roots.append(root)
    # Every outcome must land somewhere so the merges are comparable.
    ResultStore(roots[0]).put_many(items)
    return roots


def merged_bytes(roots, dest):
    merge_stores(roots, str(dest))
    with open(ResultStore(str(dest)).path, "rb") as handle:
        return handle.read()


def check_merge_order_insensitive(tmp_path, tag, seed, count=20, segments=4):
    rng = random.Random(seed)
    base = tmp_path / tag
    base.mkdir()
    outcomes = synth_outcomes(rng, count)
    roots = write_segments(base, rng, outcomes, segments)

    reference = merged_bytes(roots, base / "m0")
    assert reference, "merged store should not be empty"

    # Any permutation of segments -> identical bytes.
    shuffled = roots[:]
    rng.shuffle(shuffled)
    assert merged_bytes(shuffled, base / "m1") == reference

    # Idempotent: merging the merged store with the originals, or with
    # itself, or merging into it again, never changes the bytes.
    assert merged_bytes([str(base / "m0")] + roots, base / "m2") == reference
    assert merged_bytes(roots, base / "m0") == reference  # re-merge in place

    # Associative: ((a+b) + (c+d)) == (a+b+c+d).
    left = str(base / "left")
    right = str(base / "right")
    half = len(roots) // 2
    merge_stores(roots[:half], left)
    merge_stores(roots[half:], right)
    assert merged_bytes([left, right], base / "m3") == reference

    merged = ResultStore(str(base / "m0"))
    loaded = merged._load()
    assert set(loaded) == set(outcomes)
    for key, outcome in outcomes.items():
        assert loaded[key] == outcome  # lossless, failures included


def check_runner_filter_matches_positions(spec, refs, keys, of):
    """CampaignRunner's shard filter selects exactly the positions the
    shard arithmetic names -- the property that lets independent hosts
    agree on a slice without talking to each other."""
    covered = []
    for index in range(of):
        shard = Shard(index, of)
        # _expand never touches the store, so the default (lazy) one is fine.
        sliced, _ = CampaignRunner(spec, shard=shard)._expand()
        positions = shard_spec_positions(spec, shard)
        assert [refs[p].trial for p in positions] == [r.trial for r in sliced]
        covered.extend(trial_key(r.trial) for r in sliced)
    assert sorted(covered) == sorted(keys)
    assert len(covered) == len(set(covered))


# -- seeded fallback (always runs) ---------------------------------------------


class TestSeededProperties:
    def test_exact_cover(self):
        rng = random.Random(0xD157B1)
        for _ in range(200):
            check_shard_exact_cover(
                total=rng.randrange(0, 400), of=rng.randrange(1, 16)
            )

    def test_merge_order_insensitive_idempotent(self, tmp_path):
        rng = random.Random(0xD157B2)
        for round_index in range(6):
            check_merge_order_insensitive(
                tmp_path,
                tag=f"r{round_index}",
                seed=rng.getrandbits(64),
                count=rng.randrange(5, 30),
                segments=rng.randrange(2, 6),
            )

    def test_runner_filter_matches_positions(self):
        spec = builtin_campaign("ci-smoke")
        refs = spec.expand()
        keys = [trial_key(ref.trial) for ref in refs]
        for of in (1, 2, 3, 5, 8, 13, len(refs), len(refs) + 7):
            check_runner_filter_matches_positions(spec, refs, keys, of)


# -- hypothesis (when available) -----------------------------------------------


if HAVE_HYPOTHESIS:

    class TestHypothesisProperties:
        @given(
            total=st.integers(min_value=0, max_value=5000),
            of=st.integers(min_value=1, max_value=64),
        )
        @settings(max_examples=200, deadline=None)
        def test_exact_cover(self, total, of):
            check_shard_exact_cover(total, of)

        @given(
            seed=st.integers(min_value=0, max_value=2**64 - 1),
            count=st.integers(min_value=1, max_value=24),
            segments=st.integers(min_value=1, max_value=5),
        )
        @settings(max_examples=20, deadline=None)
        def test_merge_order_insensitive_idempotent(
            self, seed, count, segments, tmp_path_factory
        ):
            tmp_path = tmp_path_factory.mktemp("merge")
            check_merge_order_insensitive(
                tmp_path, "h", seed, count=count, segments=segments
            )


# -- boundary units ------------------------------------------------------------


class TestShardArithmetic:
    def test_single_shard_is_whole_grid(self):
        shard = Shard(0, 1)
        assert list(shard.positions(7)) == list(range(7))
        assert shard.size(7) == 7

    def test_more_shards_than_trials(self):
        # Trailing shards of an oversubscribed split are legitimately empty.
        total = 3
        sizes = [Shard(i, 8).size(total) for i in range(8)]
        assert sizes == [1, 1, 1, 0, 0, 0, 0, 0]
        check_shard_exact_cover(total, 8)

    def test_empty_grid(self):
        check_shard_exact_cover(0, 4)

    def test_label_round_trip(self):
        shard = Shard(2, 5)
        assert shard.label == "shard2of5"
        assert str(shard) == "shard 2/5"

    def test_merge_of_nothing(self, tmp_path):
        stats = merge_stores([], str(tmp_path / "m"))
        assert stats.unique == 0
        with open(ResultStore(str(tmp_path / "m")).path, "rb") as handle:
            assert handle.read() == b""
