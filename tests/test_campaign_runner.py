"""Campaign expansion, replay, resume and the CLI surface.

The campaign determinism contract extends the runtime one: a run that
mixes store replays with live execution -- including a run interrupted
mid-sweep and resumed -- produces artifacts *byte-identical* to a cold
serial run of the same spec.
"""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    builtin_campaign,
    builtin_names,
    channel_cell,
    kaslr_cell,
    spec_digest,
    trial_key,
)
from repro.campaign.runner import RunStats
from repro.runtime import MachineSpec, TrialPool


def tiny_spec(seed=7, payload=b"\x05", batches=2, values=range(8)) -> CampaignSpec:
    """8 trials per payload byte: seconds, not minutes."""
    return CampaignSpec(
        name="tiny",
        cells=(
            channel_cell(
                MachineSpec(seed=seed), payload=payload, batches=batches,
                values=values,
            ),
        ),
    )


class TestExpansion:
    def test_expand_is_deterministic(self):
        spec = tiny_spec()
        first, second = spec.expand(), spec.expand()
        assert first == second
        assert len(first) == spec.trial_count() == 8

    def test_trial_indices_are_monotone_per_cell(self):
        spec = tiny_spec(payload=b"\x01\x02")
        indices = [ref.trial.trial_index for ref in spec.expand()]
        assert indices == list(range(16))

    def test_units_name_payload_positions(self):
        spec = tiny_spec(payload=b"\x01\x02")
        units = {ref.unit for ref in spec.expand()}
        assert units == {"byte0", "byte1"}

    def test_kaslr_cell_expands_all_slots(self):
        spec = CampaignSpec(
            name="k", cells=(kaslr_cell(MachineSpec(seed=3, kpti=True)),)
        )
        refs = spec.expand()
        assert len(refs) == 512
        assert {ref.unit for ref in refs} == {"sweep"}
        assert [ref.coord for ref in refs] == list(range(512))

    def test_repeats_extend_the_seed_stream(self):
        spec = CampaignSpec(
            name="r",
            cells=(
                channel_cell(
                    MachineSpec(seed=7), payload=b"\x05", values=range(8),
                    repeats=2,
                ),
            ),
        )
        refs = spec.expand()
        assert len(refs) == 16
        assert [ref.trial.trial_index for ref in refs] == list(range(16))
        assert {ref.rep for ref in refs} == {0, 1}

    def test_grid_cross_product(self):
        machines = [MachineSpec(seed=1), MachineSpec(seed=2)]
        spec = CampaignSpec.grid(
            "g", machines, kinds=("channel", "kaslr"), payload=b"\x01",
            values=range(4),
        )
        assert len(spec.cells) == 4
        assert [cell.kind for cell in spec.cells] == [
            "channel", "kaslr", "channel", "kaslr",
        ]

    def test_grid_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="unknown grid parameters"):
            CampaignSpec.grid("g", [MachineSpec()], bogus=1)

    def test_cell_kind_validated(self):
        from repro.campaign import CampaignCell

        with pytest.raises(ValueError, match="cell kind"):
            CampaignCell(kind="meltdown", machine=MachineSpec())


class TestReplay:
    def test_second_run_is_pure_replay(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path))
        report1, stats1 = CampaignRunner(spec, store=store).run()
        assert stats1.executed == stats1.total == 8
        report2, stats2 = CampaignRunner(spec, store=ResultStore(str(tmp_path))).run()
        assert stats2.executed == 0
        assert stats2.cached == stats2.total == 8
        assert stats2.hit_rate == 1.0
        assert report2.to_json() == report1.to_json()
        assert report2.render_text() == report1.render_text()

    def test_spec_change_executes_only_the_delta(self, tmp_path):
        store = ResultStore(str(tmp_path))
        CampaignRunner(tiny_spec(payload=b"\x05"), store=store).run()
        grown = tiny_spec(payload=b"\x05\x06")
        _, stats = CampaignRunner(grown, store=store).run()
        assert stats.cached == 8     # byte0's trials replay
        assert stats.executed == 8   # byte1's trials are new

    def test_decoded_payload_matches(self, tmp_path):
        report, _ = CampaignRunner(
            tiny_spec(payload=b"\x05\x02"), store=ResultStore(str(tmp_path))
        ).run()
        cell = report.cells[0]
        assert cell["reps"][0]["received"] == "0502"
        assert cell["reps"][0]["error_rate"] == 0.0
        assert report.summary()["channel"]["clean"] == 1

    def test_corrupt_record_reexecutes_one_trial(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path))
        CampaignRunner(spec, store=store).run()
        lines = open(store.path).read().splitlines()
        lines[3] = "garbage"
        open(store.path, "w").write("\n".join(lines) + "\n")
        fresh = ResultStore(str(tmp_path))
        with pytest.warns(UserWarning, match="corrupt store record"):
            _, stats = CampaignRunner(spec, store=fresh).run()
        assert stats.cached == 7
        assert stats.executed == 1

    def test_status_and_collect(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(str(tmp_path))
        runner = CampaignRunner(spec, store=store)
        status = runner.status()
        assert status.pending == status.total == 8
        assert runner.collect() is None
        runner.run()
        assert runner.status().hit_rate == 1.0
        assert runner.collect() is not None

    def test_pooled_run_matches_serial_artifacts(self, tmp_path):
        spec = tiny_spec()
        serial_report, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "serial"))
        ).run()
        with TrialPool(workers=2) as pool:
            pooled_report, pooled_stats = CampaignRunner(
                spec, store=ResultStore(str(tmp_path / "pooled")), pool=pool
            ).run()
        assert pooled_stats.executed == 8
        assert pooled_report.to_json() == serial_report.to_json()


class InterruptingPool(TrialPool):
    """A serial pool that dies after *survive* map calls -- a mid-sweep
    Ctrl-C with deterministic timing."""

    def __init__(self, survive: int) -> None:
        super().__init__(workers=1)
        self.survive = survive
        self.calls = 0

    def map(self, fn, payloads):
        self.calls += 1
        if self.calls > self.survive:
            raise KeyboardInterrupt
        return super().map(fn, payloads)


class TestResume:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        spec = tiny_spec(payload=b"\x05\x06")  # 16 trials
        cold_report, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "cold"))
        ).run()

        store = ResultStore(str(tmp_path / "warm"))
        pool = InterruptingPool(survive=2)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(spec, store=store, pool=pool, batch_size=4).run()
        # Both completed batches were checkpointed before the interrupt.
        assert len(ResultStore(str(tmp_path / "warm"))) == 8

        resumed_report, stats = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "warm"))
        ).run()
        assert stats.cached == 8
        assert stats.executed == 8
        assert resumed_report.to_json() == cold_report.to_json()
        assert resumed_report.render_text() == cold_report.render_text()

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            CampaignRunner(tiny_spec(), batch_size=0)


class TestBuiltins:
    def test_names_and_factories_agree(self):
        for name in builtin_names():
            spec = builtin_campaign(name)
            assert spec.name == name
            assert spec.trial_count() > 0

    def test_factories_are_pure(self):
        assert spec_digest(builtin_campaign("e9-kaslr")) == spec_digest(
            builtin_campaign("e9-kaslr")
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            builtin_campaign("e99-nonsense")

    def test_e9_shape(self):
        spec = builtin_campaign("e9-kaslr")
        assert len(spec.cells) == 3
        assert all(cell.kind == "kaslr" for cell in spec.cells)
        assert spec.trial_count() == 3 * 512

    def test_expansion_keys_are_disjoint_across_cells(self):
        """Distinct boot seeds must never share cached results."""
        refs = builtin_campaign("e9-kaslr").expand()
        keys = {trial_key(ref.trial) for ref in refs}
        assert len(keys) == len(refs)

    @pytest.mark.slow
    def test_e9_acceptance_cache_and_byte_identity(self, tmp_path):
        """The PR acceptance run: E9 twice back-to-back -- the second run
        executes 0 live trials and the artifacts match byte for byte."""
        spec = builtin_campaign("e9-kaslr")
        with TrialPool(workers=4) as pool:
            report1, stats1 = CampaignRunner(
                spec, store=ResultStore(str(tmp_path)), pool=pool
            ).run()
        assert stats1.executed == stats1.total == 1536
        report2, stats2 = CampaignRunner(
            spec, store=ResultStore(str(tmp_path))
        ).run()
        assert stats2.executed == 0
        assert stats2.hit_rate == 1.0
        assert report2.to_json() == report1.to_json()
        assert report2.render_text() == report1.render_text()
        # And the campaign reproduces the paper's result: all 3 boots broken.
        assert report1.summary()["kaslr"] == {"sweeps": 3, "broken": 3}


class TestCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_campaign_list(self, capsys):
        assert self.run_cli("campaign", "list") == 0
        out = capsys.readouterr().out
        for name in builtin_names():
            assert name in out

    def test_run_status_report_clean_cycle(self, tmp_path, capsys):
        store = str(tmp_path)
        assert self.run_cli("campaign", "status", "ci-smoke", "--store", store) == 0
        assert "32 pending" in capsys.readouterr().out

        assert self.run_cli(
            "campaign", "report", "ci-smoke", "--store", store
        ) == 1  # incomplete

        assert self.run_cli("campaign", "run", "ci-smoke", "--store", store) == 0
        out = capsys.readouterr().out
        assert "32 executed" in out or "32 trials: 0 cached" in out
        assert (tmp_path / "ci-smoke" / "report.json").exists()
        assert (tmp_path / "ci-smoke" / "report.txt").exists()
        artifact = json.loads((tmp_path / "ci-smoke" / "report.json").read_text())
        assert artifact["campaign"] == "ci-smoke"
        assert artifact["summary"]["trials"] == 32

        assert self.run_cli(
            "campaign", "run", "ci-smoke", "--store", store,
            "--require-cached", "0.9",
        ) == 0
        assert self.run_cli(
            "campaign", "report", "ci-smoke", "--store", store
        ) == 0

        assert self.run_cli("campaign", "clean", "--store", store) == 0
        assert "dropped 32" in capsys.readouterr().out

    def test_require_cached_fails_cold(self, tmp_path):
        assert self.run_cli(
            "campaign", "run", "ci-smoke", "--store", str(tmp_path),
            "--require-cached", "0.9",
        ) == 1

    def test_unknown_campaign_exits_2(self, tmp_path):
        assert self.run_cli(
            "campaign", "run", "e99-nope", "--store", str(tmp_path)
        ) == 2


class TestRunStats:
    def test_str_and_hit_rate(self):
        stats = RunStats(total=10, cached=9, executed=1, batches=1, wall_seconds=0.5)
        assert stats.hit_rate == 0.9
        assert "9 cached" in str(stats)

    def test_empty_campaign_hit_rate(self):
        stats = RunStats(total=0, cached=0, executed=0, batches=0, wall_seconds=0.0)
        assert stats.hit_rate == 1.0
