"""Tests for the channel self-calibration layer."""

import math

import pytest

from repro.sim.machine import Machine
from repro.whisper.calibration import ChannelCalibration, calibrate_channel
from repro.whisper.channel import TetCovertChannel


def make_channel(noise_amplitude=0, seed=281):
    machine = Machine("i7-7700", seed=seed, noise_amplitude=noise_amplitude)
    return TetCovertChannel(machine, batches=1)


class TestCalibrationMeasurement:
    def test_clean_channel_has_clear_signal(self):
        calibration = calibrate_channel(make_channel(), samples=8)
        assert calibration.delta > 4
        assert calibration.noise == 0
        assert calibration.snr == math.inf
        assert calibration.usable()

    def test_clean_channel_needs_one_batch(self):
        calibration = calibrate_channel(make_channel(), samples=8)
        assert calibration.recommended_batches() == 1

    def test_noisy_channel_measures_noise(self):
        calibration = calibrate_channel(make_channel(noise_amplitude=6), samples=16)
        assert calibration.noise > 0
        assert calibration.snr < math.inf

    def test_noisier_channel_needs_more_batches(self):
        mild = calibrate_channel(make_channel(noise_amplitude=4), samples=16)
        harsh = calibrate_channel(make_channel(noise_amplitude=16), samples=16)
        assert harsh.recommended_batches() >= mild.recommended_batches()
        assert harsh.recommended_batches() > 1

    def test_calibration_does_not_break_subsequent_use(self):
        channel = make_channel()
        calibrate_channel(channel, samples=4)
        assert channel.send_byte(0x41).value == 0x41


class TestCalibrationMath:
    def test_flat_channel_rejected(self):
        flat = ChannelCalibration(100, 0, 100, 0, 8)
        assert not flat.usable()
        with pytest.raises(ValueError):
            flat.recommended_batches()

    def test_batches_formula(self):
        # delta 8, noise 8, z=3.5 -> n >= 2 * (3.5)^2 = 24.5 -> 25
        calibration = ChannelCalibration(100, 8, 108, 8, 8)
        assert calibration.recommended_batches() == 25

    def test_batches_scale_with_z(self):
        calibration = ChannelCalibration(100, 8, 108, 8, 8)
        assert calibration.recommended_batches(z=7.0) > calibration.recommended_batches(z=3.5)

    def test_recommendation_closes_the_loop(self):
        """Calibrate a noisy channel, decode with the recommendation and
        the mean statistic: the payload must come through."""
        machine = Machine("i7-7700", seed=282, noise_amplitude=5)
        probe_channel = TetCovertChannel(machine, batches=1)
        calibration = calibrate_channel(probe_channel, samples=16)
        batches = min(12, calibration.recommended_batches())
        channel = TetCovertChannel(machine, batches=batches, statistic="mean")
        stats = channel.transmit(b"ok")
        assert stats.error_rate == 0.0
