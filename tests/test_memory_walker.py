"""Unit tests for the hardware page walker."""

from repro.memory.paging import AddressSpace, PageSize
from repro.memory.walker import PageWalker
from tests.conftest import small_hierarchy

KERNEL_VA = 0xFFFF_FFFF_8100_0000


def make_walker():
    hierarchy = small_hierarchy()
    space = AddressSpace("w")
    space.map_page(0x5000, 0x9000, user=True)
    space.map_page(KERNEL_VA, 0x4000_0000, size=PageSize.SIZE_2M)
    return PageWalker(hierarchy), space


class TestWalks:
    def test_mapped_walk_returns_pte(self):
        walker, space = make_walker()
        result = walker.walk(space, 0x5000)
        assert result.present
        assert result.levels_touched == 4

    def test_huge_page_walk_is_shallower(self):
        walker, space = make_walker()
        result = walker.walk(space, KERNEL_VA)
        assert result.present
        assert result.levels_touched == 3

    def test_unmapped_walk_not_present(self):
        walker, space = make_walker()
        result = walker.walk(space, 0xDEAD_0000_0000)
        assert not result.present

    def test_second_walk_is_cheaper_via_psc_and_caches(self):
        walker, space = make_walker()
        first = walker.walk(space, 0x5000, now=0)
        second = walker.walk(space, 0x5000, now=10_000)
        assert second.latency < first.latency
        assert second.psc_hits > 0

    def test_psc_flush_restores_cost(self):
        walker, space = make_walker()
        walker.walk(space, 0x5000)
        cheap = walker.walk(space, 0x5000).latency
        walker.flush_psc()
        walker.hierarchy.flush_all()
        expensive = walker.walk(space, 0x5000).latency
        assert expensive > cheap

    def test_walk_counters(self):
        walker, space = make_walker()
        walker.walk(space, 0x5000)
        walker.walk(space, KERNEL_VA)
        assert walker.walks == 2
        assert walker.walk_cycles > 0


class TestQueueing:
    def test_back_to_back_walks_queue(self):
        walker, space = make_walker()
        first = walker.walk(space, 0x5000, now=0)
        # A request arriving while the first walk is in flight waits.
        second = walker.walk(space, KERNEL_VA, now=0)
        assert second.queue_delay > 0
        assert second.queue_delay >= first.latency - 1

    def test_request_after_idle_has_no_delay(self):
        walker, space = make_walker()
        first = walker.walk(space, 0x5000, now=0)
        second = walker.walk(space, KERNEL_VA, now=first.latency + 100)
        assert second.queue_delay == 0

    def test_busy_until_advances(self):
        walker, space = make_walker()
        walker.walk(space, 0x5000, now=50)
        assert walker.busy_until > 50


class TestNotPresentCost:
    def test_default_no_extra_cost_for_not_present(self):
        walker, space = make_walker()
        # Same termination level, same table entries -> equal latency.
        space.map_page(KERNEL_VA + 0x20_0000, 0x4100_0000, size=PageSize.SIZE_2M)
        walker.walk(space, KERNEL_VA, now=0)  # warm shared upper levels
        mapped = walker.walk(space, KERNEL_VA + 0x20_0000, now=10_000)
        unmapped = walker.walk(space, KERNEL_VA + 0x40_0000, now=20_000)
        assert mapped.levels_touched == unmapped.levels_touched
        assert abs(mapped.latency - unmapped.latency) <= walker.hierarchy.l1d.geometry.latency

    def test_configurable_not_present_cost(self):
        hierarchy = small_hierarchy()
        walker = PageWalker(hierarchy, not_present_cost=25)
        space = AddressSpace("c")
        result = walker.walk(space, 0x1000)
        assert not result.present
        assert result.latency >= 25
