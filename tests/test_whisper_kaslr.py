"""Functional tests for TET-KASLR in all defense configurations."""

import pytest

from repro.kernel.layout import KPTI_TRAMPOLINE_OFFSET
from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr


class TestMappedOracle:
    def test_detect_mapped_on_kernel_text(self, machine):
        attack = TetKaslr(machine)
        assert attack.detect_mapped(machine.kernel.layout.base) is True

    def test_detect_unmapped(self, machine):
        attack = TetKaslr(machine)
        unmapped = machine.kernel.layout.base - 0x200000
        if unmapped < 0xFFFF_FFFF_8000_0000:
            unmapped = machine.kernel.layout.end + 0x200000
        assert attack.detect_mapped(unmapped) is False

    def test_oracle_blind_on_amd(self, amd_machine):
        attack = TetKaslr(amd_machine)
        assert attack.detect_mapped(amd_machine.kernel.layout.base) is False


class TestPlainKaslr:
    def test_break_finds_the_true_base(self):
        machine = Machine("i7-7700", seed=91)
        result = TetKaslr(machine).break_kaslr()
        assert result.success
        assert result.found_base == machine.kernel.layout.base

    def test_mapped_slots_form_the_image_run(self):
        machine = Machine("i7-7700", seed=92)
        result = TetKaslr(machine).break_kaslr()
        image_slots = machine.kernel.layout.image_size // (2 * 1024 * 1024)
        expected = list(
            range(machine.kernel.layout.slot, machine.kernel.layout.slot + image_slots)
        )
        assert result.mapped_slots == expected

    def test_reproducible_across_seeds(self):
        for seed in (1, 7, 99):
            machine = Machine("i9-10980XE", seed=seed)
            assert TetKaslr(machine).break_kaslr().success

    def test_reports_probe_count_and_time(self):
        machine = Machine("i7-7700", seed=93)
        result = TetKaslr(machine).break_kaslr()
        assert result.probes == 1024
        assert result.seconds > 0
        assert "BROKEN" in str(result)


class TestKpti:
    def test_kpti_hides_the_kernel_from_slot_scan(self):
        machine = Machine("i9-10980XE", seed=94, kpti=True)
        result = TetKaslr(machine).break_kaslr()  # naive slot scan
        assert not result.success

    def test_trampoline_scan_breaks_kpti(self):
        machine = Machine("i9-10980XE", seed=94, kpti=True)
        result = TetKaslr(machine).break_kaslr_kpti()
        assert result.success
        assert len(result.mapped_slots) == 1

    def test_trampoline_is_at_the_fixed_offset(self):
        machine = Machine("i9-10980XE", seed=95, kpti=True)
        result = TetKaslr(machine).break_kaslr_kpti()
        trampoline = result.found_base + KPTI_TRAMPOLINE_OFFSET
        assert machine.process.space.lookup(trampoline) is not None


class TestFlare:
    def test_plain_trampoline_scan_fails_under_flare(self):
        machine = Machine("i9-10980XE", seed=96, kpti=True, flare=True)
        result = TetKaslr(machine).break_kaslr_kpti()
        assert not result.success  # every candidate now looks mapped

    def test_cr3_switch_variant_bypasses_flare(self):
        machine = Machine("i9-10980XE", seed=96, kpti=True, flare=True)
        result = TetKaslr(machine).break_kaslr_flare()
        assert result.success

    def test_break_auto_picks_strategy(self):
        for kwargs in (dict(), dict(kpti=True), dict(kpti=True, flare=True)):
            machine = Machine("i9-10980XE", seed=97, **kwargs)
            result = TetKaslr(machine).break_auto()
            assert result.success, kwargs


class TestAmdAndContainers:
    def test_amd_is_immune(self):
        machine = Machine("ryzen-5600G", seed=98)
        assert not TetKaslr(machine).break_kaslr().success

    def test_docker_provides_no_protection(self):
        machine = Machine("i9-10980XE", seed=99, kpti=True, container=True)
        result = TetKaslr(machine).break_kaslr_kpti()
        assert result.success

    def test_fgkaslr_leaks_base_but_not_functions(self):
        machine = Machine("i9-10980XE", seed=100, fgkaslr=True)
        result = TetKaslr(machine).break_kaslr()
        assert result.success  # the base still leaks (§6.2)...
        layout = machine.kernel.layout
        from repro.kernel.layout import DEFAULT_SYMBOL_OFFSETS

        # ...but function addresses derived from canonical offsets are wrong.
        guessed = result.found_base + DEFAULT_SYMBOL_OFFSETS["commit_creds"]
        assert guessed != layout.symbol_va("commit_creds")


class TestBreakTimeShape:
    def test_break_is_subsecond_like_the_paper(self):
        machine = Machine("i9-10980XE", seed=101, kpti=True)
        result = TetKaslr(machine).break_kaslr_kpti()
        assert result.seconds < 1.0  # the paper: 0.8829 s

    def test_tsx_probing_cheaper_than_fault_timing_baseline(self):
        from repro.baselines.fault_timing_kaslr import FaultTimingKaslr

        tet_machine = Machine("i7-7700", seed=102)
        base_machine = Machine("i7-7700", seed=102)
        tet = TetKaslr(tet_machine).break_kaslr()
        baseline = FaultTimingKaslr(base_machine).break_kaslr()
        assert tet.success and baseline.success
        assert tet.cycles < baseline.cycles
