"""Unit and property tests for sparse physical memory."""

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.physical import PAGE_SIZE, PhysicalMemory


class TestPhysicalMemory:
    def test_fresh_memory_reads_zero(self):
        mem = PhysicalMemory()
        assert mem.read_bytes(0x1234, 16) == b"\x00" * 16

    def test_byte_roundtrip(self):
        mem = PhysicalMemory()
        mem.write_u8(0x100, 0xAB)
        assert mem.read_u8(0x100) == 0xAB

    def test_u64_roundtrip(self):
        mem = PhysicalMemory()
        mem.write_u64(0x200, 0x0123456789ABCDEF)
        assert mem.read_u64(0x200) == 0x0123456789ABCDEF

    def test_u64_is_little_endian(self):
        mem = PhysicalMemory()
        mem.write_u64(0x300, 0x0102030405060708)
        assert mem.read_bytes(0x300, 8) == bytes([8, 7, 6, 5, 4, 3, 2, 1])

    def test_write_across_frame_boundary(self):
        mem = PhysicalMemory()
        addr = PAGE_SIZE - 3
        mem.write_bytes(addr, b"ABCDEF")
        assert mem.read_bytes(addr, 6) == b"ABCDEF"

    def test_frames_allocated_lazily(self):
        mem = PhysicalMemory()
        assert mem.allocated_frames == 0
        mem.write_u8(0x10_0000, 1)
        assert mem.allocated_frames == 1
        mem.read_u8(0x90_0000)  # reads also materialise (zeroed) frames
        assert mem.allocated_frames == 2

    def test_sparse_far_addresses(self):
        mem = PhysicalMemory()
        mem.write_u64(0xFFFF_FFFF_F000, 99)
        assert mem.read_u64(0xFFFF_FFFF_F000) == 99

    def test_u8_write_masks_value(self):
        mem = PhysicalMemory()
        mem.write_u8(0, 0x1FF)
        assert mem.read_u8(0) == 0xFF


@given(
    st.integers(0, 2**40),
    st.binary(min_size=1, max_size=3 * PAGE_SIZE),
)
def test_write_read_roundtrip_any_span(addr, data):
    mem = PhysicalMemory()
    mem.write_bytes(addr, data)
    assert mem.read_bytes(addr, len(data)) == data


@given(
    st.integers(0, 2**30),
    st.binary(min_size=1, max_size=64),
    st.binary(min_size=1, max_size=64),
)
def test_disjoint_writes_do_not_interfere(addr, first, second):
    mem = PhysicalMemory()
    far = addr + len(first) + 10_000
    mem.write_bytes(addr, first)
    mem.write_bytes(far, second)
    assert mem.read_bytes(addr, len(first)) == first
    assert mem.read_bytes(far, len(second)) == second


@given(st.integers(0, 2**30), st.binary(min_size=2, max_size=128))
def test_overlapping_write_wins(addr, data):
    mem = PhysicalMemory()
    mem.write_bytes(addr, b"\xff" * len(data))
    mem.write_bytes(addr, data)
    assert mem.read_bytes(addr, len(data)) == data
