"""Unit tests for the kernel substrate: layout, KASLR, KPTI, FLARE."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.frames import FrameAllocator
from repro.kernel.kaslr import randomize_layout
from repro.kernel.kernel import Kernel
from repro.kernel.layout import (
    DEFAULT_SYMBOL_OFFSETS,
    KASLR_ALIGN,
    KASLR_SLOTS,
    KERNEL_IMAGE_SIZE,
    KERNEL_TEXT_RANGE_END,
    KERNEL_TEXT_RANGE_START,
    KPTI_TRAMPOLINE_OFFSET,
    slot_base,
    slot_of,
)
from repro.memory.paging import PageSize
from repro.memory.physical import PhysicalMemory


class TestLayoutConstants:
    def test_512_slots(self):
        assert KASLR_SLOTS == 512

    def test_slot_base_roundtrip(self):
        for slot in (0, 1, 255, 511):
            assert slot_of(slot_base(slot)) == slot

    def test_slot_base_bounds(self):
        assert slot_base(0) == KERNEL_TEXT_RANGE_START
        with pytest.raises(ValueError):
            slot_base(512)
        with pytest.raises(ValueError):
            slot_of(KERNEL_TEXT_RANGE_END)

    def test_range_is_one_gibibyte(self):
        assert KERNEL_TEXT_RANGE_END - KERNEL_TEXT_RANGE_START == KASLR_SLOTS * KASLR_ALIGN


class TestRandomization:
    def test_seeded_layouts_are_reproducible(self):
        assert randomize_layout(seed=5).base == randomize_layout(seed=5).base

    def test_different_seeds_usually_differ(self):
        bases = {randomize_layout(seed=s).base for s in range(24)}
        assert len(bases) > 12

    def test_kaslr_disabled_puts_kernel_at_slot_zero(self):
        assert randomize_layout(seed=5, kaslr=False).slot == 0

    def test_image_always_fits_in_range(self):
        for seed in range(64):
            layout = randomize_layout(seed=seed)
            assert layout.base >= KERNEL_TEXT_RANGE_START
            assert layout.end <= KERNEL_TEXT_RANGE_END

    def test_alignment(self):
        for seed in range(16):
            assert randomize_layout(seed=seed).base % KASLR_ALIGN == 0

    def test_trampoline_at_fixed_offset(self):
        layout = randomize_layout(seed=3)
        assert layout.trampoline_va == layout.base + KPTI_TRAMPOLINE_OFFSET


class TestFgkaslr:
    def test_pinned_symbols_keep_offsets(self):
        layout = randomize_layout(seed=9, fgkaslr=True)
        assert layout.symbols["startup_64"] == DEFAULT_SYMBOL_OFFSETS["startup_64"]
        assert layout.symbols["entry_SYSCALL_64"] == DEFAULT_SYMBOL_OFFSETS["entry_SYSCALL_64"]

    def test_functions_are_scattered(self):
        layout = randomize_layout(seed=9, fgkaslr=True)
        moved = [
            name for name, offset in layout.symbols.items()
            if offset != DEFAULT_SYMBOL_OFFSETS[name]
        ]
        assert len(moved) >= 3

    def test_without_fgkaslr_offsets_are_canonical(self):
        layout = randomize_layout(seed=9, fgkaslr=False)
        assert layout.symbols == DEFAULT_SYMBOL_OFFSETS

    def test_symbol_va_adds_base(self):
        layout = randomize_layout(seed=9)
        assert layout.symbol_va("commit_creds") == layout.base + layout.symbols["commit_creds"]


class TestFrameAllocator:
    def test_sequential_allocations_do_not_overlap(self):
        alloc = FrameAllocator()
        first = alloc.alloc()
        second = alloc.alloc()
        assert second >= first + int(PageSize.SIZE_4K)

    def test_2m_alignment(self):
        alloc = FrameAllocator()
        alloc.alloc()  # misalign the cursor
        huge = alloc.alloc(PageSize.SIZE_2M)
        assert huge % int(PageSize.SIZE_2M) == 0

    def test_exhaustion_raises(self):
        alloc = FrameAllocator(start=0, limit=int(PageSize.SIZE_4K))
        alloc.alloc()
        with pytest.raises(MemoryError):
            alloc.alloc()


class TestKernelBoot:
    def test_image_mapped_as_huge_supervisor_pages(self):
        kernel = Kernel(PhysicalMemory(), seed=1)
        pte = kernel.kernel_space.lookup(kernel.layout.base)
        assert pte.page_size == PageSize.SIZE_2M
        assert not pte.user
        assert pte.global_
        assert pte.tag == "kernel-text"

    def test_whole_image_is_mapped(self):
        kernel = Kernel(PhysicalMemory(), seed=1)
        for offset in range(0, KERNEL_IMAGE_SIZE, int(PageSize.SIZE_2M)):
            assert kernel.kernel_space.lookup(kernel.layout.base + offset) is not None

    def test_outside_image_is_unmapped(self):
        kernel = Kernel(PhysicalMemory(), seed=1)
        layout = kernel.layout
        if layout.slot > 0:
            assert kernel.kernel_space.lookup(layout.base - 0x1000) is None
        assert kernel.kernel_space.lookup(layout.end + 0x1000) is None

    def test_secret_lands_in_physical_memory(self):
        physical = PhysicalMemory()
        kernel = Kernel(physical, seed=1, secret=b"TOPSECRET")
        assert physical.read_bytes(kernel.secret_paddr(), 9) == b"TOPSECRET"

    def test_secret_readable_through_kernel_mapping(self):
        physical = PhysicalMemory()
        kernel = Kernel(physical, seed=1, secret=b"XYZ")
        pte = kernel.kernel_space.lookup(kernel.secret_va)
        assert physical.read_bytes(pte.physical_address(kernel.secret_va), 3) == b"XYZ"


class TestKpti:
    def test_user_table_has_only_the_trampoline(self):
        kernel = Kernel(PhysicalMemory(), seed=2, kpti=True)
        user = kernel.user_template
        assert user.lookup(kernel.layout.trampoline_va) is not None
        assert user.lookup(kernel.layout.base) is None
        assert user.lookup(kernel.secret_va) is None

    def test_trampoline_is_global_supervisor(self):
        kernel = Kernel(PhysicalMemory(), seed=2, kpti=True)
        pte = kernel.user_template.lookup(kernel.layout.trampoline_va)
        assert pte.global_ and not pte.user
        assert pte.tag == "kpti-trampoline"

    def test_process_space_derives_from_user_template(self):
        kernel = Kernel(PhysicalMemory(), seed=2, kpti=True)
        process = kernel.create_process("p")
        assert process.space.lookup(kernel.secret_va) is None
        assert process.space.lookup(kernel.layout.trampoline_va) is not None

    def test_without_kpti_process_sees_kernel_mappings(self):
        kernel = Kernel(PhysicalMemory(), seed=2, kpti=False)
        process = kernel.create_process("p")
        pte = process.space.lookup(kernel.secret_va)
        assert pte is not None and not pte.user


class TestFlare:
    def test_flare_implies_kpti(self):
        kernel = Kernel(PhysicalMemory(), seed=3, flare=True)
        assert kernel.kpti

    def test_dummies_cover_probe_offsets(self):
        kernel = Kernel(PhysicalMemory(), seed=3, kpti=True, flare=True)
        user = kernel.user_template
        for slot in (0, 100, 511):
            base = slot_base(slot)
            assert user.lookup(base) is not None
            assert user.lookup(base + KPTI_TRAMPOLINE_OFFSET) is not None

    def test_real_trampoline_not_replaced_by_dummy(self):
        kernel = Kernel(PhysicalMemory(), seed=3, kpti=True, flare=True)
        pte = kernel.user_template.lookup(kernel.layout.trampoline_va)
        assert pte.tag == "kpti-trampoline"

    def test_dummies_are_nonglobal_nx_shared_frame(self):
        kernel = Kernel(PhysicalMemory(), seed=3, kpti=True, flare=True)
        layout = kernel.layout
        other_slot = (layout.slot + 100) % KASLR_SLOTS
        dummy = kernel.user_template.lookup(
            slot_base(other_slot) + KPTI_TRAMPOLINE_OFFSET
        )
        assert dummy.tag == "flare-dummy"
        assert not dummy.global_
        assert dummy.nx

    def test_full_coverage_mode(self):
        kernel = Kernel(
            PhysicalMemory(), seed=3, kpti=True, flare=True, flare_coverage="full"
        )
        # Any 4 KiB-aligned address in the range is now mapped.
        assert kernel.user_template.lookup(slot_base(7) + 0x5000) is not None

    def test_unknown_coverage_rejected(self):
        with pytest.raises(ValueError):
            Kernel(PhysicalMemory(), seed=3, kpti=True, flare=True, flare_coverage="bogus")


class TestProcesses:
    def test_pids_increment(self):
        kernel = Kernel(PhysicalMemory(), seed=4)
        assert kernel.create_process("a").pid == 1
        assert kernel.create_process("b").pid == 2

    def test_container_flag(self):
        kernel = Kernel(PhysicalMemory(), seed=4)
        assert kernel.create_process("c", container=True).container

    def test_user_memory_mapping(self):
        kernel = Kernel(PhysicalMemory(), seed=4)
        process = kernel.create_process("p")
        va = kernel.map_user_memory(process, pages=2)
        assert process.space.lookup(va).user
        assert process.space.lookup(va + 0x1000) is not None

    def test_processes_have_independent_spaces(self):
        kernel = Kernel(PhysicalMemory(), seed=4)
        first = kernel.create_process("a")
        second = kernel.create_process("b")
        va = kernel.map_user_memory(first, pages=1)
        assert second.space.lookup(va) is None

    def test_signal_registration(self):
        kernel = Kernel(PhysicalMemory(), seed=4)
        process = kernel.create_process("p")
        process.register_signal_handler("SIGSEGV", 0x400100)
        assert process.signal_handler("SIGSEGV") == 0x400100
        assert process.signal_handler("SIGINT") is None


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31))
def test_layout_invariants_hold_for_any_seed(seed):
    layout = randomize_layout(seed=seed)
    assert layout.base % KASLR_ALIGN == 0
    assert KERNEL_TEXT_RANGE_START <= layout.base < KERNEL_TEXT_RANGE_END
    assert layout.end <= KERNEL_TEXT_RANGE_END
    assert layout.contains(layout.secret_va)
    assert layout.contains(layout.trampoline_va)
