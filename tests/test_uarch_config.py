"""Unit tests for the CPU model catalogue (Table 2's machines)."""

import pytest

from repro.uarch.config import CPU_MODELS, cpu_model


class TestCatalogue:
    def test_all_five_machines_present(self):
        # Table 2 lists five rows (the two Ryzen parts share one row).
        assert set(CPU_MODELS) == {
            "i7-6700", "i7-7700", "i9-10980XE", "i9-13900K",
            "ryzen-5600G", "ryzen-5900",
        }

    def test_lookup_by_key_and_name(self):
        assert cpu_model("i7-7700").microarch == "Kaby Lake"
        assert cpu_model("Intel Core i7-7700") is cpu_model("i7-7700")

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            cpu_model("i9-9999K")

    def test_vendors(self):
        assert cpu_model("i7-6700").vendor == "intel"
        assert cpu_model("ryzen-5600G").vendor == "amd"


class TestVulnerabilityFlags:
    """These flags *are* Table 2's ✓/✗ pattern."""

    def test_skylake_kabylake_fully_vulnerable(self):
        for key in ("i7-6700", "i7-7700"):
            model = cpu_model(key)
            assert model.meltdown_vulnerable
            assert model.mds_vulnerable
            assert model.fill_tlb_on_fault
            assert model.has_tsx

    def test_comet_lake_is_meltdown_fixed_but_tlb_vulnerable(self):
        model = cpu_model("i9-10980XE")
        assert not model.meltdown_vulnerable
        assert not model.mds_vulnerable
        assert model.fill_tlb_on_fault

    def test_raptor_lake_has_no_tsx(self):
        assert not cpu_model("i9-13900K").has_tsx

    def test_zen3_checks_permissions_before_tlb_fill(self):
        for key in ("ryzen-5600G", "ryzen-5900"):
            model = cpu_model(key)
            assert not model.fill_tlb_on_fault
            assert not model.meltdown_vulnerable
            assert not model.mds_vulnerable
            assert not model.has_tsx


class TestParameters:
    def test_pipeline_geometry_sane(self):
        for model in CPU_MODELS.values():
            assert model.issue_width >= 4
            assert model.rob_size >= 96
            assert model.retire_width >= model.issue_width - 2

    def test_latency_relationships(self):
        for model in CPU_MODELS.values():
            assert model.l1d.latency < model.l2.latency < model.llc.latency
            assert model.llc.latency < model.dram_latency
            assert model.tsx_abort_latency < model.signal_dispatch_latency

    def test_seconds_conversion(self):
        model = cpu_model("i7-7700")  # 3.6 GHz
        assert model.seconds(3_600_000_000) == pytest.approx(1.0)

    def test_cache_geometries_tuple(self):
        l1d, l1i, l2, llc = cpu_model("i7-6700").cache_geometries()
        assert l1d.size_bytes == l1i.size_bytes == 32 * 1024
        assert llc.size_bytes > l2.size_bytes > l1d.size_bytes

    def test_raptor_lake_is_wider(self):
        raptor = cpu_model("i9-13900K")
        skylake = cpu_model("i7-6700")
        assert raptor.issue_width > skylake.issue_width
        assert raptor.rob_size > skylake.rob_size
        assert raptor.nominal_ghz > skylake.nominal_ghz

    def test_table2_metadata_recorded(self):
        model = cpu_model("i9-10980XE")
        assert model.microcode == "0x5003303"
        assert model.kernel == "5.15.0-72"
