"""Tests for TET-Spectre-V1 and the realistic TLB-eviction primitive."""

import pytest

from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr
from repro.whisper.attacks.spectre_v1 import TetSpectreV1


class TestTetSpectreV1:
    def test_leaks_the_out_of_bounds_secret(self):
        machine = Machine("i7-7700", seed=211)
        attack = TetSpectreV1(machine)
        attack.install_secret(b"OOBDATA")
        result = attack.leak(length=5)
        assert result.data == b"OOBDA"
        assert result.success

    def test_works_without_tsx(self):
        """Two branch speculations, no fault: TSX-less CPUs included."""
        machine = Machine("i9-13900K", seed=212)
        attack = TetSpectreV1(machine)
        attack.install_secret(b"RL")
        assert attack.leak().data == b"RL"

    def test_works_on_amd(self):
        """v1 is a pure branch-predictor attack: Zen 3 is vulnerable too
        (conditional-branch speculation is universal)."""
        machine = Machine("ryzen-5600G", seed=213)
        attack = TetSpectreV1(machine)
        attack.install_secret(b"ZEN")
        assert attack.leak().data == b"ZEN"

    def test_in_bounds_accesses_are_architecturally_fine(self):
        machine = Machine("i7-7700", seed=214)
        attack = TetSpectreV1(machine)
        attack.install_secret(b"X")
        result = attack._run(5, 256)
        assert result.halted and not result.faults

    def test_oob_access_is_never_architectural(self):
        """The bounds check holds architecturally: the OOB load only ever
        runs transiently (squashed)."""
        machine = Machine("i7-7700", seed=215)
        attack = TetSpectreV1(machine)
        attack.install_secret(b"X")
        for _ in range(4):
            attack._train_in_bounds()
        result = machine.run(
            attack.program,
            regs={
                "r10": attack.array_va,
                "r11": attack.length_va,
                "rdi": attack._oob_index(0),
                "r9": 256,
            },
            record_trace=True,
        )
        oob_loads = [
            r for r in result.records
            if str(r.instruction).startswith("loadb") and r.memory_va == attack.secret_va
        ]
        assert oob_loads and all(r.squashed for r in oob_loads)

    def test_leak_requires_secret(self):
        machine = Machine("i7-7700", seed=216)
        with pytest.raises(RuntimeError):
            TetSpectreV1(machine).leak()


class TestRealisticTlbEviction:
    def test_eviction_actually_evicts(self):
        machine = Machine("i9-10980XE", seed=221)
        kernel_va = machine.kernel.layout.base
        machine.mmu.data_access(kernel_va, user=False)  # fill (2M global)
        assert machine.mmu.dtlb.lookup(kernel_va) is not None
        machine.evict_tlb_realistic()
        assert machine.mmu.dtlb.lookup(kernel_va) is None

    def test_eviction_charges_cycles(self):
        machine = Machine("i9-10980XE", seed=222)
        before = machine.core.global_cycle
        spent = machine.evict_tlb_realistic()
        assert spent > 0
        assert machine.core.global_cycle == before + spent

    def test_eviction_sets_built_once(self):
        machine = Machine("i9-10980XE", seed=223)
        machine.build_tlb_eviction_sets()
        count = len(machine._eviction_pages_4k)
        machine.build_tlb_eviction_sets()
        assert len(machine._eviction_pages_4k) == count

    def test_kaslr_with_realistic_eviction_still_breaks(self):
        machine = Machine("i9-10980XE", seed=224, kpti=True)
        result = TetKaslr(machine, eviction="sets").break_kaslr_kpti()
        assert result.success

    def test_realistic_eviction_costs_more(self):
        fast_machine = Machine("i9-10980XE", seed=225, kpti=True)
        slow_machine = Machine("i9-10980XE", seed=225, kpti=True)
        fast = TetKaslr(fast_machine, eviction="direct").break_kaslr_kpti()
        slow = TetKaslr(slow_machine, eviction="sets").break_kaslr_kpti()
        assert slow.success and fast.success
        assert slow.cycles > 2 * fast.cycles

    def test_invalid_eviction_mode_rejected(self):
        machine = Machine("i9-10980XE", seed=226)
        with pytest.raises(ValueError):
            TetKaslr(machine, eviction="magic")
