"""Edge cases of the speculation machinery: nesting, faulting stores,
back-to-back windows, and interactions between suppression mechanisms."""

import pytest

from repro.sim.machine import Machine
from repro.uarch.core import SimulationError
from tests.conftest import run_source


class TestNestedTsx:
    def test_nested_transactions_commit(self, machine):
        data = machine.alloc_data()
        run_source(machine, f"""
    mov rbx, {hex(data)}
    xbegin outer_out
    mov rax, 1
    xbegin inner_out
    mov rax, 2
    mov [rbx], rax
    xend
inner_out:
    xend
outer_out:
    hlt
""")
        assert machine.read_data(data, 1) == b"\x02"

    def test_fault_in_inner_transaction_aborts_to_inner_fallback(self, machine):
        program = machine.load_program("""
    xbegin outer_out
    mov rax, 1
    xbegin inner_out
    mov rbx, [r13]       ; faults
    xend
inner_out:
    mov rcx, 7           ; inner fallback path
    xend
outer_out:
    hlt
""")
        result = machine.run(program, regs={"r13": 0})
        assert result.regs.read("rcx") == 7
        # The abort rolled back to the *inner* xbegin: the outer
        # transaction's rax write (before the inner xbegin) survives.
        assert result.regs.read("rax") == 1

    def test_back_to_back_windows(self, machine):
        program = machine.load_program("""
    xbegin first_out
    mov rax, [r13]
    xend
first_out:
    add rsi, 1
    xbegin second_out
    mov rbx, [r13]
    xend
second_out:
    add rsi, 1
    hlt
""")
        result = machine.run(program, regs={"r13": 0}, record_trace=True)
        assert result.regs.read("rsi") == 2
        assert len(result.events.flushes) == 2


class TestFaultingNonLoads:
    def test_faulting_store_is_suppressed(self, machine):
        program = machine.load_program("""
    xbegin out
    mov rax, 5
    mov [r13], rax       ; store to the null page: faults
    xend
out:
    hlt
""")
        result = machine.run(program, regs={"r13": 0})
        assert result.halted
        assert result.faults[0].kind.value == "not_present"

    def test_store_to_kernel_page_is_protection_fault(self, machine):
        program = machine.load_program("""
    xbegin out
    mov rax, 5
    mov [r13], rax
    xend
out:
    hlt
""")
        result = machine.run(
            program, regs={"r13": machine.kernel.layout.base}
        )
        assert result.faults[0].kind.value == "protection"
        # Nothing reached kernel memory.
        pte = machine.kernel.kernel_space.lookup(machine.kernel.layout.base)
        assert machine.physical.read_u8(pte.physical_address(machine.kernel.layout.base)) == 0

    def test_faulting_call_push(self, machine):
        """A call with rsp pointing at an unmapped page faults on the push."""
        program = machine.load_program("""
    xbegin out
    call fn
fn:
    nop
    xend
out:
    hlt
""")
        result = machine.run(program, regs={"rsp": 0x10})  # null page
        assert result.halted
        assert result.faults


class TestSignalAndTsxInteraction:
    def test_tsx_takes_precedence_over_handler(self, machine):
        program = machine.load_program("""
    xbegin fallback
    mov rax, [r13]
    xend
fallback:
    mov rbx, 1
    hlt
handler:
    mov rbx, 2
    hlt
""")
        machine.set_signal_handler(program, "handler")
        result = machine.run(program, regs={"r13": 0})
        assert result.regs.read("rbx") == 1  # the transaction fallback won

    def test_handler_used_outside_transactions(self, machine):
        program = machine.load_program("""
    mov rax, [r13]
    nop
handler:
    mov rbx, 2
    hlt
""")
        machine.set_signal_handler(program, "handler")
        result = machine.run(program, regs={"r13": 0})
        assert result.regs.read("rbx") == 2

    def test_repeated_faults_through_one_handler(self, machine):
        program = machine.load_program("""
    add rcx, 1
    mov rax, [r13]       ; faults every pass
    nop
handler:
    cmp rcx, 3
    jne again
    hlt
again:
    add rcx, 1
    mov rax, [r13]
    nop
    hlt
""")
        machine.set_signal_handler(program, "handler")
        result = machine.run(program, regs={"r13": 0})
        assert result.halted
        assert len(result.faults) >= 2


class TestWindowInteractions:
    def test_mispredict_before_the_window_does_not_leak_into_it(self, machine):
        """An architectural mispredict resolved before xbegin must not
        change the fault context's nested-clear count."""
        program = machine.load_program("""
    mov rax, r9
    cmp rax, 1
    je taken
    nop
taken:
    xbegin out
    mov rbx, [r13]
    nop
out:
    hlt
""")
        machine.run(program, regs={"r13": 0, "r9": 0})
        machine.run(program, regs={"r13": 0, "r9": 0})
        result = machine.run(program, regs={"r13": 0, "r9": 1}, record_trace=True)
        assert result.events.flushes[0].nested_clears == 0

    def test_two_nested_clears_in_one_window(self, machine):
        data = machine.alloc_data()
        machine.write_data(data, b"\x05")
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    loadb rdi, [rbx]
    xbegin out
    mov rax, [r13]
    cmp rdi, r9
    je first_target
    nop
first_target:
    cmp rdi, r10
    je second_target
    nop
second_target:
    nop
out:
    hlt
""")
        for _ in range(4):
            machine.run(program, regs={"r13": 0, "r9": 1, "r10": 1})
        result = machine.run(
            program, regs={"r13": 0, "r9": 5, "r10": 5}, record_trace=True
        )
        assert result.events.flushes[0].nested_clears == 2

    def test_deeper_nesting_lengthens_the_window(self, machine):
        """Each nested clear adds its serialisation penalty to the ToTE."""
        data = machine.alloc_data()
        machine.write_data(data, b"\x05")
        source = f"""
    mov rbx, {hex(data)}
    loadb rdi, [rbx]
    rdtsc
    mov r14, rax
    xbegin out
    mov rax, [r13]
    cmp rdi, r9
    je t1
    nop
t1:
    cmp rdi, r10
    je t2
    nop
t2:
    nop
out:
    rdtsc
    mov r15, rax
    hlt
"""
        program = machine.load_program(source)
        tote = lambda r: r.regs.read("r15") - r.regs.read("r14")
        for _ in range(6):
            machine.run(program, regs={"r13": 0, "r9": 1, "r10": 1})
        zero = tote(machine.run(program, regs={"r13": 0, "r9": 1, "r10": 1}))
        for _ in range(3):
            machine.run(program, regs={"r13": 0, "r9": 1, "r10": 1})
        one = tote(machine.run(program, regs={"r13": 0, "r9": 5, "r10": 1}))
        for _ in range(3):
            machine.run(program, regs={"r13": 0, "r9": 1, "r10": 1})
        two = tote(machine.run(program, regs={"r13": 0, "r9": 5, "r10": 5}))
        assert zero < one < two
