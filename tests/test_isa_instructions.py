"""Unit tests for the Instruction and MemRef value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.instructions import Instruction, MemRef
from repro.isa.opcodes import Cond, Op
from repro.isa.program import Program


class TestMemRefDisplay:
    def test_base_only(self):
        assert str(MemRef(base="rax")) == "[rax]"

    def test_base_and_disp(self):
        assert str(MemRef(base="rax", disp=8)) == "[rax + 0x8]"

    def test_negative_disp(self):
        assert str(MemRef(base="rax", disp=-8)) == "[rax + -0x8]"

    def test_scaled_index(self):
        assert "rcx*4" in str(MemRef(base="rax", index="rcx", scale=4))

    def test_absolute(self):
        assert str(MemRef(disp=0x1000)) == "[0x1000]"


class TestEffectiveAddress:
    def test_wraps_to_64_bits(self):
        ref = MemRef(base="rax", disp=10)
        values = {"rax": (1 << 64) - 4}
        assert ref.effective_address(values.__getitem__) == 6

    def test_all_components(self):
        ref = MemRef(base="rax", index="rbx", scale=2, disp=-3)
        values = {"rax": 100, "rbx": 5}
        assert ref.effective_address(values.__getitem__) == 107

    def test_no_base(self):
        ref = MemRef(index="rbx", scale=8)
        values = {"rbx": 2}
        assert ref.effective_address(values.__getitem__) == 16


class TestInstruction:
    def test_info_delegation(self):
        assert Instruction(Op.LOAD, dst="rax", mem=MemRef(base="rbx")).is_memory
        assert Instruction(Op.JCC, cond=Cond.E, target="x").is_branch
        assert not Instruction(Op.NOP).is_branch

    def test_uop_count(self):
        assert Instruction(Op.NOP).uop_count == 1
        assert Instruction(Op.MFENCE).uop_count == 2

    def test_with_target_addr_preserves_fields(self):
        original = Instruction(Op.JCC, cond=Cond.NE, target="loop", comment="x")
        resolved = original.with_target_addr(0x400008)
        assert resolved.target_addr == 0x400008
        assert resolved.cond is Cond.NE
        assert resolved.target == "loop"
        assert resolved.comment == "x"

    def test_str_jcc_uses_condition(self):
        text = str(Instruction(Op.JCC, cond=Cond.NE, target="loop"))
        assert text.startswith("jne")

    def test_str_mov_imm(self):
        assert str(Instruction(Op.MOV_RI, dst="rax", imm=5)) == "mov_ri rax, 5"

    def test_str_large_imm_hex(self):
        assert "0x100" in str(Instruction(Op.MOV_RI, dst="rax", imm=0x100))

    def test_equality_ignores_comment(self):
        a = Instruction(Op.NOP, comment="one")
        b = Instruction(Op.NOP, comment="two")
        assert a == b

    def test_frozen(self):
        instruction = Instruction(Op.NOP)
        with pytest.raises(AttributeError):
            instruction.op = Op.HLT


class TestProgramEdges:
    def test_unresolved_label_raises_at_construction(self):
        with pytest.raises(KeyError):
            Program([Instruction(Op.JMP, target="missing")], labels={})

    def test_end_address(self):
        program = Program([Instruction(Op.NOP)] * 3, base=0x1000)
        assert program.end_address == 0x100C

    def test_label_at_end_is_allowed(self):
        program = Program(
            [Instruction(Op.JMP, target="end"), Instruction(Op.NOP)],
            labels={"end": 2},
            base=0,
        )
        assert program.instructions[0].target_addr == 8

    def test_index_of_misaligned_address_raises(self):
        program = Program([Instruction(Op.NOP)], base=0x1000)
        with pytest.raises(IndexError):
            program.index_of_address(0x1002)

    def test_iteration(self):
        program = Program([Instruction(Op.NOP), Instruction(Op.HLT)], base=0)
        assert [i.op for i in program] == [Op.NOP, Op.HLT]


@given(
    st.integers(0, 2**48),
    st.integers(0, 2**20),
    st.integers(1, 8),
    st.integers(-(2**16), 2**16),
)
def test_effective_address_formula(base_value, index_value, scale, disp):
    ref = MemRef(base="rax", index="rbx", scale=scale, disp=disp)
    values = {"rax": base_value, "rbx": index_value}
    expected = (base_value + index_value * scale + disp) & ((1 << 64) - 1)
    assert ref.effective_address(values.__getitem__) == expected
