"""Unit tests for the Machine harness."""

import pytest

from repro.sim.machine import Machine
from repro.sim.timing import measure_tote, summarize, tote_from_result
from tests.conftest import run_source


class TestConstruction:
    def test_model_by_key_or_object(self):
        from repro.uarch.config import cpu_model

        by_key = Machine("i7-6700", seed=1)
        by_object = Machine(cpu_model("i7-6700"), seed=1)
        assert by_key.model is by_object.model

    def test_mmu_inherits_tlb_fill_policy(self):
        intel = Machine("i7-7700", seed=1)
        amd = Machine("ryzen-5600G", seed=1)
        assert intel.mmu.fill_tlb_on_faulting_access
        assert not amd.mmu.fill_tlb_on_faulting_access

    def test_kernel_options_forwarded(self):
        machine = Machine("i7-7700", seed=1, kpti=True, flare=True)
        assert machine.kernel.kpti and machine.kernel.flare

    def test_container_process(self):
        machine = Machine("i7-7700", seed=1, container=True)
        assert machine.process.container

    def test_custom_secret(self):
        machine = Machine("i7-7700", seed=1, secret=b"mine")
        assert machine.kernel.secret == b"mine"


class TestProgramLoading:
    def test_programs_get_distinct_bases(self, machine):
        first = machine.load_program("nop\nhlt")
        second = machine.load_program("nop\nhlt")
        assert first.base != second.base

    def test_code_pages_are_mapped(self, machine):
        program = machine.load_program("nop\nhlt")
        assert machine.process.space.lookup(program.base) is not None

    def test_large_program_maps_enough_pages(self, machine):
        program = machine.load_program("nop\n" * 2000 + "hlt")
        assert machine.process.space.lookup(program.end_address - 4) is not None


class TestDataHelpers:
    def test_alloc_write_read(self, machine):
        va = machine.alloc_data()
        machine.write_data(va, b"hello")
        assert machine.read_data(va, 5) == b"hello"

    def test_read_unmapped_raises(self, machine):
        with pytest.raises(ValueError):
            machine.read_data(0xDEAD0000, 4)

    def test_allocations_are_distinct(self, machine):
        assert machine.alloc_data() != machine.alloc_data()


class TestVictimHelpers:
    def test_warm_kernel_secret_caches_the_line(self, machine):
        machine.warm_kernel_secret()
        paddr = machine.kernel.secret_paddr()
        assert machine.hierarchy.data_resident(paddr)

    def test_victim_touch_works_under_kpti(self):
        machine = Machine("i7-7700", seed=1, kpti=True)
        machine.warm_kernel_secret()  # must switch to the kernel table
        assert machine.hierarchy.data_resident(machine.kernel.secret_paddr())
        # ... and switch back.
        assert machine.mmu.space is machine.process.space

    def test_victim_store_fills_lfb(self, machine):
        va = machine.alloc_data()
        machine.victim_store(va, b"S", thread_id=1)
        machine.victim_store(va, b"S", thread_id=1)  # refresh even when hot
        assert machine.mmu.lfb.entries_from_thread(1) >= 2


class TestAttackerPrimitives:
    def test_flush_tlb_charges_cycles(self, machine):
        before = machine.core.global_cycle
        machine.flush_tlb()
        assert machine.core.global_cycle > before

    def test_flush_tlb_uncharged_variant(self, machine):
        before = machine.core.global_cycle
        machine.flush_tlb(charge_cycles=False)
        assert machine.core.global_cycle == before

    def test_syscall_roundtrip_flushes_nonglobal_only(self, machine):
        data = machine.alloc_data()
        machine.mmu.data_access(data)  # non-global user entry
        machine.mmu.data_access(machine.kernel.secret_va, user=False)  # global
        machine.syscall_roundtrip()
        assert not machine.mmu.data_access(data).tlb_hit
        assert machine.mmu.data_access(machine.kernel.secret_va, user=False).tlb_hit

    def test_seconds_uses_model_clock(self, machine):
        assert machine.seconds(machine.model.nominal_ghz * 1e9) == pytest.approx(1.0)


class TestTimingHelpers:
    def test_tote_convention(self, machine):
        result = run_source(machine, "rdtsc\nmov r14, rax\nnop\nrdtsc\nmov r15, rax\nhlt")
        sample = tote_from_result(result)
        assert sample.tote == sample.end_cycle - sample.start_cycle
        assert sample.tote > 0

    def test_tote_requires_convention(self, machine):
        result = run_source(machine, "mov r14, 100\nmov r15, 10\nhlt")
        with pytest.raises(ValueError):
            tote_from_result(result)

    def test_measure_tote_repeats(self, machine):
        program = machine.load_program(
            "rdtsc\nmov r14, rax\nnop\nrdtsc\nmov r15, rax\nhlt"
        )
        samples = measure_tote(machine, program, repeats=5)
        assert len(samples) == 5

    def test_summarize(self, machine):
        program = machine.load_program(
            "rdtsc\nmov r14, rax\nnop\nrdtsc\nmov r15, rax\nhlt"
        )
        stats = summarize(measure_tote(machine, program, repeats=4))
        assert stats["n"] == 4
        assert stats["min"] <= stats["median"] <= stats["max"]
