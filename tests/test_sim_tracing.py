"""Unit tests for trace analysis (Figures 3 and 4 machinery)."""

import networkx as nx
import pytest

from repro.sim.tracing import (
    control_flow_graph,
    delivery_source_histogram,
    frontend_trace,
    path_summary,
    transient_uop_count,
)
from tests.conftest import run_source


def traced(machine, source, regs=None):
    return run_source(machine, source, regs=regs, record_trace=True)


class TestFrontendTrace:
    def test_untraced_run_raises(self, machine):
        result = run_source(machine, "nop\nhlt")
        with pytest.raises(ValueError):
            frontend_trace(result)

    def test_trace_entries_in_dispatch_order(self, machine):
        result = traced(machine, "mov rax, 1\nadd rax, 1\nhlt")
        entries = frontend_trace(result)
        assert [entry.mnemonic.split()[0] for entry in entries] == ["mov_ri", "add", "hlt"]
        cycles = [entry.cycle for entry in entries]
        assert cycles == sorted(cycles)

    def test_sources_recorded(self, machine):
        program = machine.load_program("nop\nnop\nhlt")
        machine.run(program)  # warm: lines enter the DSB
        result = machine.run(program, record_trace=True)
        entries = frontend_trace(result)
        assert any(entry.source == "dsb" for entry in entries)

    def test_histogram_sums_uops(self, machine):
        result = traced(machine, "nop\nmfence\nhlt")
        histogram = delivery_source_histogram(result)
        assert sum(histogram.values()) == result.uops_issued


class TestCfg:
    def test_straight_line_graph_is_a_path(self, machine):
        result = traced(machine, "mov rax, 1\nadd rax, 1\nhlt")
        graph = control_flow_graph(result)
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == 3
        assert nx.is_directed_acyclic_graph(graph)

    def test_loop_creates_back_edge(self, machine):
        result = traced(machine, """
    mov rcx, 3
top:
    sub rcx, 1
    cmp rcx, 0
    jne top
    hlt
""")
        graph = control_flow_graph(result)
        assert not nx.is_directed_acyclic_graph(graph)

    def test_transient_paths_annotated(self, machine):
        result = traced(machine, """
    rdtsc
    xbegin out
    mov rax, [r13]
    mov rbx, 7
out:
    hlt
""", regs={"r13": 0})
        graph = control_flow_graph(result)
        transient_nodes = [
            node for node, data in graph.nodes(data=True) if data["transient_visits"]
        ]
        assert transient_nodes

    def test_edge_counts(self, machine):
        result = traced(machine, """
    mov rcx, 2
top:
    sub rcx, 1
    cmp rcx, 0
    jne top
    hlt
""")
        graph = control_flow_graph(result)
        back_edges = [
            (u, v) for u, v, data in graph.edges(data=True) if v < u and data["committed"]
        ]
        assert back_edges


class TestPathSummary:
    def test_counts_squashed_uops(self, machine):
        result = traced(machine, """
    xbegin out
    mov rax, [r13]
    mov rbx, 1
    mov rcx, 2
out:
    hlt
""", regs={"r13": 0})
        assert transient_uop_count(result) >= 2
        summary = path_summary(result)
        assert summary["flushes"] == 1
        assert summary["uops_squashed"] <= summary["uops_issued"]

    def test_nested_redirect_counted(self, machine):
        data = machine.alloc_data()
        machine.write_data(data, b"\x05")
        source = f"""
    mov rbx, {hex(data)}
    loadb rdi, [rbx]
    xbegin out
    mov rax, [r13]
    cmp rdi, r9
    je t
    nop
t:
    nop
out:
    hlt
"""
        program = machine.load_program(source)
        for _ in range(4):
            machine.run(program, regs={"r13": 0, "r9": 1})
        result = machine.run(program, regs={"r13": 0, "r9": 5}, record_trace=True)
        assert path_summary(result)["nested_redirects"] >= 1
