"""Property-based tests for the metrics merge algebra.

Runs under Hypothesis when it is installed; a seeded-``random`` fallback
exercises the same properties (fewer cases, fixed seed) when it is not
-- the same arrangement as ``test_faults_properties.py``.

The algebra under test is what makes worker telemetry shippable at all:
snapshots fold into the coordinator's registry in whatever order the
result pipes deliver them, so :func:`merge_snapshots` must be

* **commutative** -- ``merge(a, b) == merge(b, a)``;
* **associative** -- ``merge(merge(a, b), c) == merge(a, merge(b, c))``;
* **unital** -- the empty snapshot ``{}`` changes nothing;

per metric type: counters merge by sum, gauges by max, histograms by
element-wise bucket addition.  Values are generated as integers so
float addition stays exact and the laws can be asserted with ``==``.
A partition property pins histograms further: observing a value list in
one registry equals observing any split of it in two and merging.
"""

import random

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    deterministic_view,
    merge_snapshots,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


# -- snapshot construction -----------------------------------------------------

#: Small shared name pools so generated snapshots collide on metric
#: names -- merges that never overlap would test nothing.
COUNTER_NAMES = ("trials", "retries", "cells")
GAUGE_NAMES = ("hit_ratio", "rate")
HISTOGRAM_NAMES = ("fsync", "chunk")


def build_snapshot(counters, gauges, observations) -> dict:
    """A registry snapshot from primitive parts.

    ``counters``: ``[(name, amount)]``; ``gauges``: ``[(name, value)]``;
    ``observations``: ``[(name, [values])]``.  Routing everything through
    a real :class:`MetricsRegistry` keeps the generated snapshots
    structurally honest (consistent counts, sums, bucket layouts).
    """
    registry = MetricsRegistry()
    for name, amount in counters:
        registry.counter(name).add(amount)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, values in observations:
        histogram = registry.histogram(name)
        for value in values:
            histogram.observe(value)
    return registry.snapshot()


def random_snapshot(rng: random.Random) -> dict:
    counters = [
        (rng.choice(COUNTER_NAMES), rng.randrange(1_000))
        for _ in range(rng.randrange(4))
    ]
    gauges = [
        (rng.choice(GAUGE_NAMES), rng.randrange(-100, 1_000))
        for _ in range(rng.randrange(3))
    ]
    observations = [
        (
            rng.choice(HISTOGRAM_NAMES),
            [rng.randrange(20_000_000) for _ in range(rng.randrange(6))],
        )
        for _ in range(rng.randrange(3))
    ]
    return build_snapshot(counters, gauges, observations)


if HAVE_HYPOTHESIS:
    counters_st = st.lists(
        st.tuples(st.sampled_from(COUNTER_NAMES), st.integers(0, 10**6)),
        max_size=4,
    )
    gauges_st = st.lists(
        st.tuples(st.sampled_from(GAUGE_NAMES), st.integers(-100, 10**6)),
        max_size=3,
    )
    observations_st = st.lists(
        st.tuples(
            st.sampled_from(HISTOGRAM_NAMES),
            st.lists(st.integers(0, 2 * 10**7), max_size=6),
        ),
        max_size=3,
    )
    snapshot_st = st.builds(build_snapshot, counters_st, gauges_st, observations_st)


# -- shared property checks ----------------------------------------------------


def check_merge_is_commutative(a, b):
    assert merge_snapshots(a, b) == merge_snapshots(b, a)


def check_merge_is_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert left == right


def check_empty_is_identity(a):
    normalised = merge_snapshots(a)
    assert merge_snapshots(a, {}) == normalised
    assert merge_snapshots({}, a) == normalised


def check_counter_merge_is_sum(a, b):
    merged = merge_snapshots(a, b)
    for name in set(a) | set(b):
        entries = [s[name] for s in (a, b) if name in s]
        if entries[0]["type"] != "counter":
            continue
        assert merged[name]["value"] == sum(e["value"] for e in entries)


def check_gauge_merge_is_max(a, b):
    merged = merge_snapshots(a, b)
    for name in set(a) & set(b):
        if a[name]["type"] != "gauge":
            continue
        values = [
            s[name]["value"] for s in (a, b) if s[name]["value"] is not None
        ]
        if values:
            assert merged[name]["value"] == max(values)


def check_histogram_partition(values, split):
    """Observing a list equals observing any split of it, merged."""
    split = max(0, min(len(values), split))
    whole = build_snapshot([], [], [("fsync", values)])
    parts = merge_snapshots(
        build_snapshot([], [], [("fsync", values[:split])]),
        build_snapshot([], [], [("fsync", values[split:])]),
    )
    entry = parts["fsync"]
    assert entry["counts"] == whole["fsync"]["counts"]
    assert entry["sum"] == whole["fsync"]["sum"]
    assert entry["count"] == whole["fsync"]["count"] == len(values)


# -- hypothesis wrappers -------------------------------------------------------


if HAVE_HYPOTHESIS:

    class TestMergeLawsHypothesis:
        @given(a=snapshot_st, b=snapshot_st)
        @settings(max_examples=60, deadline=None)
        def test_commutative(self, a, b):
            check_merge_is_commutative(a, b)

        @given(a=snapshot_st, b=snapshot_st, c=snapshot_st)
        @settings(max_examples=60, deadline=None)
        def test_associative(self, a, b, c):
            check_merge_is_associative(a, b, c)

        @given(a=snapshot_st)
        @settings(max_examples=40, deadline=None)
        def test_identity(self, a):
            check_empty_is_identity(a)

        @given(a=snapshot_st, b=snapshot_st)
        @settings(max_examples=40, deadline=None)
        def test_counters_sum_gauges_max(self, a, b):
            check_counter_merge_is_sum(a, b)
            check_gauge_merge_is_max(a, b)

        @given(
            values=st.lists(st.integers(0, 2 * 10**7), max_size=12),
            split=st.integers(0, 12),
        )
        @settings(max_examples=40, deadline=None)
        def test_histogram_partition(self, values, split):
            check_histogram_partition(values, split)


# -- seeded fallback (always runs) ---------------------------------------------


class TestMergeLawsSeeded:
    def test_merge_laws_hold_over_seeded_corpus(self):
        rng = random.Random(0xB10C)
        for _ in range(50):
            a, b, c = (random_snapshot(rng) for _ in range(3))
            check_merge_is_commutative(a, b)
            check_merge_is_associative(a, b, c)
            check_empty_is_identity(a)
            check_counter_merge_is_sum(a, b)
            check_gauge_merge_is_max(a, b)

    def test_histogram_partition_over_seeded_corpus(self):
        rng = random.Random(0x5EED)
        for _ in range(30):
            values = [rng.randrange(2 * 10**7) for _ in range(rng.randrange(12))]
            check_histogram_partition(values, rng.randrange(13))


# -- direct edge cases ---------------------------------------------------------


class TestMetricEdges:
    def test_counter_rejects_decrease(self):
        counter = Counter("trials")
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("fsync", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("fsync", buckets=())

    def test_histogram_bucket_mismatch_refuses_merge(self):
        registry = MetricsRegistry()
        registry.histogram("fsync", buckets=(1.0, 2.0)).observe(0.5)
        other = build_snapshot([], [], [("fsync", [3])])
        assert other["fsync"]["buckets"] == list(DEFAULT_BUCKETS)
        with pytest.raises(ValueError, match="bucket mismatch"):
            registry.merge(other)

    def test_registry_rejects_type_collision(self):
        registry = MetricsRegistry()
        registry.counter("trials")
        with pytest.raises(TypeError, match="not a Gauge"):
            registry.gauge("trials")

    def test_det_flag_survives_merge_and_filters(self):
        registry = MetricsRegistry()
        registry.counter("trials").add(3)
        registry.gauge("rate", det=False).set(9.5)
        merged = merge_snapshots(registry.snapshot(), registry.snapshot())
        assert merged["trials"]["det"] is True
        assert merged["rate"]["det"] is False
        assert set(deterministic_view(merged)) == {"trials"}
