"""Unit and property tests for the cache hierarchy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, CacheGeometry, CacheHierarchy, LINE_SIZE
from tests.conftest import small_hierarchy


class TestCacheLevel:
    def make(self, size=1024, ways=2):
        return Cache(CacheGeometry("T", size, ways, 4))

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.touch(0x1000) is False
        cache.fill(0x1000)
        assert cache.touch(0x1000) is True

    def test_same_line_different_bytes_hit(self):
        cache = self.make()
        cache.fill(0x1000)
        assert cache.probe(0x1000 + LINE_SIZE - 1)

    def test_flush_line(self):
        cache = self.make()
        cache.fill(0x1000)
        assert cache.flush_line(0x1000) is True
        assert cache.probe(0x1000) is False
        assert cache.flush_line(0x1000) is False

    def test_lru_eviction(self):
        cache = self.make(size=2 * LINE_SIZE * 8, ways=2)  # 8 sets, 2 ways
        sets = cache.geometry.sets
        base = 0x0
        conflict = sets * LINE_SIZE
        conflict2 = 2 * sets * LINE_SIZE
        cache.fill(base)
        cache.fill(conflict)
        cache.touch(base)  # refresh LRU: base is now MRU
        evicted = cache.fill(conflict2)
        assert evicted is not None
        assert cache.probe(base)  # survived
        assert not cache.probe(conflict)  # evicted

    def test_capacity_never_exceeded(self):
        cache = self.make(size=4 * LINE_SIZE, ways=2)
        for index in range(64):
            cache.fill(index * LINE_SIZE)
        assert cache.resident_lines <= cache.geometry.sets * cache.geometry.ways

    def test_evict_set_of(self):
        cache = self.make()
        cache.fill(0x40)
        cache.evict_set_of(0x40)
        assert not cache.probe(0x40)

    def test_hit_miss_counters(self):
        cache = self.make()
        cache.touch(0)
        cache.fill(0)
        cache.touch(0)
        assert cache.misses == 1 and cache.hits == 1


class TestHierarchy:
    def test_first_access_is_dram(self):
        hierarchy = small_hierarchy()
        outcome = hierarchy.data_access(0x1000)
        assert outcome.hit_level == "DRAM"
        assert outcome.latency == hierarchy.dram_latency

    def test_second_access_hits_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.data_access(0x1000)
        outcome = hierarchy.data_access(0x1000)
        assert outcome.hit_level == "L1"
        assert outcome.latency == hierarchy.l1d.geometry.latency

    def test_clflush_evicts_everywhere(self):
        hierarchy = small_hierarchy()
        hierarchy.data_access(0x1000)
        hierarchy.clflush(0x1000)
        assert hierarchy.data_access(0x1000).hit_level == "DRAM"

    def test_clflush_counted(self):
        hierarchy = small_hierarchy()
        before = hierarchy.clflush_count
        hierarchy.clflush(0x1000)
        assert hierarchy.clflush_count == before + 1

    def test_inclusive_fill_after_l1_eviction_hits_l2(self):
        hierarchy = small_hierarchy()
        hierarchy.data_access(0x1000)
        # Conflict-evict 0x1000 from tiny L1 but not from L2.
        sets = hierarchy.l1d.geometry.sets
        for way in range(hierarchy.l1d.geometry.ways + 1):
            hierarchy.data_access(0x1000 + (way + 1) * sets * LINE_SIZE)
        outcome = hierarchy.data_access(0x1000)
        assert outcome.hit_level in ("L2", "LLC")

    def test_inst_and_data_sides_are_split_at_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.inst_access(0x2000)
        # Data side sees L2 (filled inclusively), not L1D.
        outcome = hierarchy.data_access(0x2000)
        assert outcome.hit_level == "L2"

    def test_flush_all(self):
        hierarchy = small_hierarchy()
        hierarchy.data_access(0x3000)
        hierarchy.flush_all()
        assert hierarchy.data_access(0x3000).hit_level == "DRAM"

    def test_data_resident(self):
        hierarchy = small_hierarchy()
        assert not hierarchy.data_resident(0x4000)
        hierarchy.data_access(0x4000)
        assert hierarchy.data_resident(0x4000)

    def test_latencies_are_monotone_up_the_hierarchy(self):
        hierarchy = small_hierarchy()
        latencies = [
            hierarchy.l1d.geometry.latency,
            hierarchy.l2.geometry.latency,
            hierarchy.llc.geometry.latency,
            hierarchy.dram_latency,
        ]
        assert latencies == sorted(latencies)
        assert len(set(latencies)) == len(latencies)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
def test_hierarchy_latency_always_valid(addresses):
    hierarchy = small_hierarchy()
    valid = {
        hierarchy.l1d.geometry.latency,
        hierarchy.l2.geometry.latency,
        hierarchy.llc.geometry.latency,
        hierarchy.dram_latency,
    }
    for addr in addresses:
        assert hierarchy.data_access(addr).latency in valid


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**16), min_size=1, max_size=100), st.integers(0, 2**16))
def test_repeat_access_never_slower(addresses, target):
    hierarchy = small_hierarchy()
    first = hierarchy.data_access(target).latency
    for addr in addresses:
        hierarchy.data_access(addr)
    hierarchy.data_access(target)
    second = hierarchy.data_access(target).latency
    assert second <= hierarchy.dram_latency
    assert first >= second or first == hierarchy.dram_latency
