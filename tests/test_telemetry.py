"""The telemetry contract: observe everything, perturb nothing.

Three layers of pinning:

* **Recorder/exporter unit behaviour** -- preorder spans, explicit and
  exception-driven closing, worker-batch draining, ingest re-parenting,
  sidecar-stripped checksums, Chrome ``trace_event`` conversion, cycle
  attribution.
* **Determinism under observation** -- a fixed-seed campaign produces a
  byte-identical :class:`ResultStore` with telemetry on or off, serial
  or pooled, and the deterministic view of the merged metrics is
  identical at any worker count.  Merged pooled traces are themselves
  byte-identical across pooled worker counts, with no orphan spans.
* **Worker lifecycle** -- a dead worker's last stderr lines surface in
  :class:`WorkerLostError` and in ``pool.worker.lost`` trace events,
  while quarantined :class:`TrialFailure` records stay byte-stable
  (host noise never leaks into checkpointed artifacts).
"""

import hashlib
import os

import pytest

from repro import telemetry
from repro.campaign import CampaignRunner, ResultStore, builtin_campaign
from repro.faults import ResiliencePolicy, payload_fingerprint
from repro.runtime import TrialPool, TrialResult, WorkerLostError
from repro.runtime.tasks import TrialFailure
from repro.telemetry.export import (
    chrome_trace,
    cycle_attribution,
    read_jsonl,
    records_checksum,
    render_attribution,
    split_metrics,
    strip_sidecar,
    validate_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import deterministic_view
from repro.telemetry.spans import NULL_SPAN, Recorder, orphan_records


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Telemetry is process-global state: every test starts and ends
    disabled with an empty registry, however it exits."""
    telemetry.disable()
    telemetry.metrics_registry().drain()
    yield
    telemetry.disable()
    telemetry.metrics_registry().drain()


def _store_digest(root: str) -> str:
    """One hash over every byte of a ResultStore directory tree."""
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def _stub_trial(trial):
    """Campaign-shaped grids in seconds (the chaos-suite convention)."""
    fingerprint = payload_fingerprint(trial)
    return TrialResult(
        totes=(fingerprint % 997, (fingerprint >> 16) % 997),
        cycles=fingerprint % 100_000,
    )


def _campaign_run(spec, workers, tmp_path, tag, trial_fn=None, observe=True):
    """One campaign run into a fresh store; drains whatever telemetry
    the run recorded (records + metrics) before disabling."""
    store = ResultStore(str(tmp_path / tag))
    if observe:
        telemetry.enable()
    try:
        kwargs = {"trial_fn": trial_fn} if trial_fn is not None else {}
        with TrialPool(workers=workers) as pool:
            runner = CampaignRunner(spec, store=store, pool=pool, **kwargs)
            report, stats = runner.run()
        records = telemetry.recorder().drain() if observe else []
        metrics = telemetry.metrics_registry().snapshot() if observe else {}
    finally:
        telemetry.disable()
        telemetry.metrics_registry().drain()
    return {
        "digest": _store_digest(str(tmp_path / tag)),
        "records": records,
        "metrics": metrics,
        "artifact": report.to_json(),
        "stats": stats,
    }


# -- disabled path -------------------------------------------------------------


class TestDisabledPath:
    def test_span_is_the_shared_noop(self):
        """Disabled, every span call returns one shared no-op object --
        no allocation on the simulator's hot path."""
        assert telemetry.span("trial", index=3) is NULL_SPAN
        with telemetry.span("outer") as span:
            assert span.set(cycles=9) is span
            assert span.id is None
            span.close()  # explicit close is equally inert

    def test_nothing_is_recorded(self):
        telemetry.event("pool.worker.lost", slot=1)
        telemetry.annotate(cycles=4)
        telemetry.add("campaign.batches")
        telemetry.gauge_set("pool.trials_per_second", 12.0)
        telemetry.observe("campaign.checkpoint.fsync_seconds", 0.01)
        assert telemetry.recorder() is None
        assert not telemetry.enabled()
        assert len(telemetry.metrics_registry()) == 0

    def test_enable_starts_clean(self):
        telemetry.enable()
        telemetry.add("campaign.batches")
        with telemetry.span("campaign.run"):
            pass
        telemetry.enable()  # re-arm: fresh recorder, empty registry
        assert telemetry.recorder().records == []
        assert len(telemetry.metrics_registry()) == 0


# -- recorder ------------------------------------------------------------------


class TestRecorder:
    def test_preorder_records_with_parent_links(self):
        recorder = Recorder()
        with recorder.span("campaign.run", total=4) as outer:
            with recorder.span("cell", cell="a"):
                recorder.event("checkpoint", batch=1)
        names = [r["name"] for r in recorder.records]
        assert names == ["campaign.run", "cell", "checkpoint"]
        campaign, cell, checkpoint = recorder.records
        assert campaign["parent"] is None
        assert cell["parent"] == campaign["id"]
        assert checkpoint["parent"] == cell["id"]
        assert [r["seq"] for r in recorder.records] == [0, 1, 2]
        assert outer.record["attrs"] == {"total": 4}
        assert all("open" not in r for r in recorder.records)

    def test_explicit_close_then_exit_is_safe(self):
        """A span closed inside its own with-block (the campaign-runner
        cell pattern) must not corrupt the stack when __exit__ fires."""
        recorder = Recorder()
        with recorder.span("campaign.run"):
            span = recorder.span("cell", cell="a")
            span.close()
            span.close()  # double explicit close: also a no-op
            with recorder.span("cell", cell="b"):
                pass
        assert all("open" not in r for r in recorder.records)
        cells = [r for r in recorder.records if r["name"] == "cell"]
        assert [c["attrs"]["cell"] for c in cells] == ["a", "b"]
        assert all(c["parent"] == recorder.records[0]["id"] for c in cells)

    def test_exception_closes_dangling_children(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("trial"):
                recorder.span("core.run")  # never explicitly closed
                raise ValueError("trial exploded")
        trial, core = recorder.records
        assert "open" not in core
        assert trial["attrs"]["failed"] is True

    def test_drain_keeps_open_spans(self):
        recorder = Recorder()
        with recorder.span("done"):
            pass
        still_open = recorder.span("campaign.run")
        drained = recorder.drain()
        assert [r["name"] for r in drained] == ["done"]
        assert [r["name"] for r in recorder.records] == ["campaign.run"]
        still_open.close()
        assert [r["name"] for r in recorder.drain()] == ["campaign.run"]

    def test_worker_drain_resets_sequence(self):
        """Worker batches restart numbering per task, so a batch's bytes
        depend only on the trial that produced it -- never on what ran
        on that worker before."""
        recorder = Recorder(origin="w")
        with recorder.span("trial", index=0):
            pass
        first = recorder.drain(reset_seq=True)
        with recorder.span("trial", index=1):
            pass
        second = recorder.drain(reset_seq=True)
        assert [r["seq"] for r in first] == [r["seq"] for r in second] == [0]
        assert first[0]["id"] == second[0]["id"] == "w:0"

    def test_ingest_rekeys_and_reparents(self):
        worker = Recorder(origin="w")
        with worker.span("trial", index=7):
            with worker.span("core.run"):
                pass
        batch = worker.drain(reset_seq=True)

        coordinator = Recorder()
        cell = coordinator.span("cell", cell="a")
        coordinator.ingest([("p7.0", batch)])
        cell.close()
        records = coordinator.drain()
        trial = next(r for r in records if r["name"] == "trial")
        core = next(r for r in records if r["name"] == "core.run")
        assert trial["id"] == "p7.0:0"
        assert trial["parent"] == cell.record["id"]
        assert core["parent"] == trial["id"]
        assert orphan_records(records) == []

    def test_wall_clock_is_sidecar_only(self):
        timed = Recorder(wall_clock=True)
        with timed.span("trial"):
            pass
        plain = Recorder(wall_clock=False)
        with plain.span("trial"):
            pass
        assert "wall" in timed.records[0]
        assert records_checksum(timed.records) == records_checksum(plain.records)


# -- exporters -----------------------------------------------------------------


def _sample_records():
    recorder = Recorder()
    with recorder.span("campaign.run", total=2) as run:
        with recorder.span("cell", cell="a"):
            with recorder.span("trial", index=0) as trial:
                with recorder.span("core.run") as core:
                    core.set(cycles=30)
                trial.set(cycles=100)
            recorder.event("checkpoint", batch=1, host={"pid": 4242})
        run.set(cycles=0)
    return recorder.drain()


class TestExport:
    def test_checksum_strips_sidecar_fields(self):
        records = _sample_records()
        baseline = records_checksum(records)
        noisy = [dict(r) for r in records]
        noisy[0]["wall"] = [1.0, 2.0]
        noisy[1]["host"] = {"pid": 999}
        assert records_checksum(noisy) == baseline
        assert strip_sidecar(noisy[0]) == records[0]
        # ...but deterministic coordinates are load-bearing.
        renamed = [dict(r) for r in records]
        renamed[2]["attrs"] = dict(renamed[2]["attrs"], index=1)
        assert records_checksum(renamed) != baseline

    def test_jsonl_round_trip_with_metrics(self, tmp_path):
        records = _sample_records()
        registry = telemetry.metrics_registry()
        telemetry.enable()
        telemetry.add("campaign.batches", 2)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(records, path, metrics=registry.snapshot())
        loaded = read_jsonl(path)
        trace, metrics = split_metrics(loaded)
        assert trace == records
        assert metrics["campaign.batches"]["value"] == 2

    def test_chrome_trace_validates_and_nests(self):
        trace = chrome_trace(_sample_records())
        assert validate_chrome_trace(trace) == []
        spans = {
            event["args"]["id"]: event
            for event in trace["traceEvents"]
            if event.get("ph") == "X"
        }
        # The preorder fallback timeline still nests children inside
        # their parents (no wall clocks were recorded).
        for event in spans.values():
            parent = spans.get(event["args"].get("parent"))
            if parent is None:
                continue
            assert parent["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]

    def test_chrome_trace_prefers_wall_clocks(self):
        recorder = Recorder(wall_clock=True)
        with recorder.span("trial"):
            pass
        records = recorder.drain()
        records[0]["wall"] = [10.0, 10.5]
        trace = chrome_trace(records)
        event = trace["traceEvents"][-1]
        assert event["ts"] == 0.0  # microseconds since the epoch record
        assert event["dur"] == pytest.approx(500_000.0)

    def test_validator_names_malformed_events(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1}]}
        )
        assert any("ts" in problem for problem in problems)
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_cycle_attribution_is_self_cycles(self):
        rows = cycle_attribution(_sample_records())
        by_path = {path: cycles for path, cycles, _ in rows}
        # trial claimed 100, its core.run child claimed 30 of those.
        assert by_path["campaign.run/cell/trial"] == 70
        assert by_path["campaign.run/cell/trial/core.run"] == 30
        text = render_attribution(rows)
        assert "core.run" in text and "%" in text
        assert "no spans" in render_attribution([])


# -- campaign-scale determinism (stub trials, e3-matrix grid) ------------------


class TestStubCampaignDeterminism:
    def test_store_and_metrics_are_worker_count_invariant(self, tmp_path):
        """Satellite contract: a fixed-seed e3-scale campaign observed at
        workers=1 and workers=4 checkpoints byte-identical stores, and
        the deterministic view of the merged metrics is equal; the
        telemetry-off store is byte-identical to both."""
        spec = builtin_campaign("e3-matrix")
        off = _campaign_run(
            spec, 1, tmp_path, "off", trial_fn=_stub_trial, observe=False
        )
        serial = _campaign_run(spec, 1, tmp_path, "w1", trial_fn=_stub_trial)
        pooled = _campaign_run(spec, 4, tmp_path, "w4", trial_fn=_stub_trial)
        assert serial["digest"] == pooled["digest"] == off["digest"]
        assert serial["artifact"] == pooled["artifact"] == off["artifact"]
        assert deterministic_view(serial["metrics"]) == deterministic_view(
            pooled["metrics"]
        )
        # Stub trials record nothing worker-side, so the merged trace is
        # pure coordinator structure -- identical even serial vs pooled.
        assert records_checksum(serial["records"]) == records_checksum(
            pooled["records"]
        )
        executed = serial["metrics"]["campaign.trials.executed"]["value"]
        assert executed == serial["stats"].total


# -- real-campaign telemetry (ci-smoke, pooled) --------------------------------


class TestRealCampaignTelemetry:
    def test_pooled_trace_layers_store_identity_no_orphans(self, tmp_path):
        """The acceptance criterion: a pooled fixed-seed campaign's
        merged trace covers campaign -> cell -> trial -> core.run with
        no orphan spans at workers=4, while the ResultStore is byte-
        identical to a telemetry-disabled serial run -- and the merged
        pooled trace itself is byte-identical across worker counts."""
        spec = builtin_campaign("ci-smoke")
        off = _campaign_run(spec, 1, tmp_path, "off", observe=False)
        w4 = _campaign_run(spec, 4, tmp_path, "w4")
        w2 = _campaign_run(spec, 2, tmp_path, "w2")

        # Observation never perturbs the artifact.
        assert w4["digest"] == off["digest"]
        assert w2["digest"] == off["digest"]
        assert w4["artifact"] == off["artifact"]

        # One causally-ordered tree, all four layers, no orphans.
        records = w4["records"]
        assert orphan_records(records) == []
        spans = [r for r in records if r["kind"] == "span"]
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        total = w4["stats"].total
        assert len(by_name["campaign.run"]) == 1
        assert len(by_name["cell"]) >= 1
        assert len(by_name["trial"]) == total
        assert len(by_name["core.run"]) == total
        index = {r["id"]: r for r in spans}
        for trial in by_name["trial"]:
            assert index[trial["parent"]]["name"] == "cell"
        for core in by_name["core.run"]:
            assert index[core["parent"]]["name"] == "trial"

        # Pooled merge order depends on payload identity only.
        assert records_checksum(w2["records"]) == records_checksum(records)
        assert deterministic_view(w2["metrics"]) == deterministic_view(
            w4["metrics"]
        )

        # PMU attribution: the core.cycles counter is exactly the sum of
        # per-trial span cycles (each trial resets the uarch first).
        cycles = sum(r["attrs"]["cycles"] for r in by_name["trial"])
        assert w4["metrics"]["core.cycles"]["value"] == cycles
        rows = cycle_attribution(records)
        assert any("core.run" in path for path, _, _ in rows)


# -- worker lifecycle ----------------------------------------------------------


def _die_noisily(payload):
    """A trial whose worker writes a last gasp to stderr, then dies.

    The write targets fd 2 directly: that is where the pool's capture
    redirect points, and where an interpreter crash (or a C extension's
    abort message) would land.  Under pytest, ``sys.stderr`` is a
    capture object detached from fd 2 entirely.
    """
    if payload == "die":
        os.write(2, b"gadget panic: speculative window collapsed\n")
        os._exit(43)
    return len(payload)


class TestWorkerLifecycle:
    def test_worker_lost_error_carries_stderr_tail(self):
        """A casualty's last stderr lines ride in the error instead of
        vanishing with the inherited pipe."""
        with TrialPool(workers=2) as pool:
            with pytest.raises(WorkerLostError) as info:
                pool.map(_die_noisily, ["ab", "die", "c"])
        assert info.value.payload_index == 1
        assert "gadget panic" in info.value.stderr_tail
        assert "last worker stderr" in str(info.value)
        assert "gadget panic" in str(info.value)

    def test_worker_lost_and_respawn_events_recorded(self):
        telemetry.enable()
        with TrialPool(workers=2) as pool:
            with pytest.raises(WorkerLostError):
                pool.map(_die_noisily, ["ab", "die", "c"])
        records = telemetry.recorder().drain()
        events = {r["name"]: r for r in records if r["kind"] == "event"}
        assert "pool.worker.lost" in events
        assert "pool.worker.respawn" in events
        lost = events["pool.worker.lost"]
        assert lost["attrs"]["index"] == 1
        assert "gadget panic" in lost["host"]["stderr_tail"]
        # The tail is sidecar: checksums are blind to it.
        assert strip_sidecar(lost).get("host") is None

    def test_failure_records_never_absorb_host_noise(self):
        """Quarantined TrialFailure values are checkpointed artifacts:
        the stderr tail must never leak into their error text."""
        with TrialPool(
            workers=2,
            policy=ResiliencePolicy(max_retries=1, validate=False),
        ) as pool:
            results = pool.map(_die_noisily, ["ab", "die", "c"])
        failure = results[1]
        assert isinstance(failure, TrialFailure)
        assert "worker-lost" in failure.faults
        assert "gadget panic" not in failure.error
        assert "stderr" not in failure.error
        assert results[0] == 2 and results[2] == 1
