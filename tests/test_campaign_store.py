"""The content-addressed store: cache keys name the computation.

The contract under test: a trial's key changes iff something that could
change its outcome changes (machine model, boot seed, trial count, test
value, repro version), the JSONL store survives process boundaries, and
damaged records degrade to a warning plus re-execution -- never a wrong
result.
"""

import dataclasses

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    canonical_encode,
    channel_cell,
    kaslr_cell,
    spec_digest,
    trial_key,
)
from repro.runtime import ChannelTrial, MachineSpec, TrialResult


def make_trial(**overrides) -> ChannelTrial:
    spec_fields = dict(model="i7-7700", seed=9)
    trial_fields = dict(byte=0x41, test=0x41, batches=2, trial_index=3)
    for key, value in overrides.items():
        target = spec_fields if key in spec_fields else trial_fields
        target[key] = value
    return ChannelTrial(spec=MachineSpec(**spec_fields), **trial_fields)


class TestTrialKey:
    def test_identical_payload_identical_key(self):
        assert trial_key(make_trial()) == trial_key(make_trial())

    @pytest.mark.parametrize(
        "change",
        [
            {"model": "i9-13900K"},  # CPU model
            {"seed": 10},            # boot seed
            {"batches": 3},          # trial count
            {"test": 0x42},          # probed value
            {"trial_index": 4},      # noise-stream index
        ],
    )
    def test_any_field_change_misses(self, change):
        assert trial_key(make_trial(**change)) != trial_key(make_trial())

    def test_version_change_misses(self):
        trial = make_trial()
        assert trial_key(trial, version="1.0.0") != trial_key(trial, version="9.9.9")

    def test_key_is_hex_sha256(self):
        key = trial_key(make_trial())
        assert len(key) == 64
        int(key, 16)


class TestCanonicalEncoding:
    def test_bytes_become_hex(self):
        assert canonical_encode(b"\x01\xff") == {"__bytes__": "01ff"}

    def test_tuples_and_lists_agree(self):
        assert canonical_encode((1, 2)) == canonical_encode([1, 2])

    def test_dataclasses_carry_their_type(self):
        encoded = canonical_encode(MachineSpec(seed=4))
        assert encoded["__type__"] == "MachineSpec"
        assert encoded["seed"] == 4

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            canonical_encode(object())


class TestSpecDigest:
    def spec(self, seed=5, payload=b"\x07"):
        return CampaignSpec(
            name="t",
            cells=(channel_cell(MachineSpec(seed=seed), payload=payload),),
        )

    def test_stable(self):
        assert spec_digest(self.spec()) == spec_digest(self.spec())

    def test_sensitive_to_cells(self):
        assert spec_digest(self.spec(seed=5)) != spec_digest(self.spec(seed=6))
        assert spec_digest(self.spec()) != spec_digest(self.spec(payload=b"\x08"))

    def test_kaslr_cells_digest_too(self):
        spec = CampaignSpec(
            name="k", cells=(kaslr_cell(MachineSpec(seed=5, kpti=True)),)
        )
        assert spec_digest(spec) == spec_digest(spec)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        result = TrialResult(totes=(10, 20), cycles=300)
        store.put("k1", result)
        assert store.get("k1") == result
        assert "k1" in store
        assert len(store) == 1

    def test_persists_across_instances(self, tmp_path):
        ResultStore(str(tmp_path)).put("k1", TrialResult(totes=(1,), cycles=2))
        reloaded = ResultStore(str(tmp_path))
        assert reloaded.get("k1") == TrialResult(totes=(1,), cycles=2)

    def test_get_many(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_many(
            [(f"k{i}", TrialResult(totes=(i,), cycles=i)) for i in range(4)]
        )
        found = store.get_many(["k1", "k3", "missing"])
        assert sorted(found) == ["k1", "k3"]

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", TrialResult(totes=(1,), cycles=1))
        store.put("k", TrialResult(totes=(2,), cycles=2))
        assert ResultStore(str(tmp_path)).get("k").totes == (2,)

    def test_clear(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("k", TrialResult(totes=(1,), cycles=1))
        assert store.clear() == 1
        assert len(ResultStore(str(tmp_path))) == 0

    def test_missing_store_is_empty(self, tmp_path):
        assert len(ResultStore(str(tmp_path / "nowhere"))) == 0


class TestCorruptRecords:
    def fill(self, tmp_path, count=3) -> ResultStore:
        store = ResultStore(str(tmp_path))
        store.put_many(
            [(f"k{i}", TrialResult(totes=(i,), cycles=i)) for i in range(count)]
        )
        return store

    def test_corrupt_line_skipped_with_warning(self, tmp_path):
        store = self.fill(tmp_path)
        lines = open(store.path).read().splitlines()
        lines[1] = '{"key": "k1", "result": {"totes": [not json'
        open(store.path, "w").write("\n".join(lines) + "\n")
        reloaded = ResultStore(str(tmp_path))
        with pytest.warns(UserWarning, match="corrupt store record"):
            assert len(reloaded) == 2
        assert reloaded.get("k1") is None  # will re-execute
        assert reloaded.get("k0") is not None
        assert reloaded.get("k2") is not None

    def test_truncated_tail_skipped_with_warning(self, tmp_path):
        store = self.fill(tmp_path)
        text = open(store.path).read()
        open(store.path, "w").write(text[: len(text) - 20])  # tear the tail
        reloaded = ResultStore(str(tmp_path))
        with pytest.warns(UserWarning, match="corrupt store record"):
            assert len(reloaded) == 2

    def test_wrong_shape_skipped_with_warning(self, tmp_path):
        store = self.fill(tmp_path, count=1)
        with open(store.path, "a") as handle:
            handle.write('{"key": "k9", "result": {"cycles": 1}}\n')  # no totes
        with pytest.warns(UserWarning, match="corrupt store record"):
            assert ResultStore(str(tmp_path)).get("k9") is None

    def test_blank_lines_ignored_silently(self, tmp_path):
        store = self.fill(tmp_path, count=1)
        with open(store.path, "a") as handle:
            handle.write("\n\n")
        assert len(ResultStore(str(tmp_path))) == 1
