"""Tests for TET-CC-BS, the binary-search channel extension."""

import random

import pytest

from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel
from repro.whisper.fast_channel import BinarySearchChannel, _PhtMirror


class TestPhtMirror:
    def test_mirrors_the_bimodal_reset_state(self):
        mirror = _PhtMirror()
        assert mirror.predict() is False  # weakly not-taken

    def test_training_matches_hardware_semantics(self):
        mirror = _PhtMirror()
        mirror.update(True)
        mirror.update(True)
        assert mirror.predict() is True
        mirror.update(False)
        assert mirror.predict() is True  # 3 -> 2, still taken
        mirror.update(False)
        assert mirror.predict() is False

    def test_saturation(self):
        mirror = _PhtMirror()
        for _ in range(10):
            mirror.update(True)
        assert mirror.counter == 3
        for _ in range(10):
            mirror.update(False)
        assert mirror.counter == 0


class TestBinarySearchChannel:
    @pytest.fixture
    def channel(self):
        return BinarySearchChannel(Machine("i7-7700", seed=181))

    def test_boundary_bytes(self, channel):
        for value in (0, 1, 127, 128, 254, 255):
            assert channel.send_byte(value) == value

    def test_random_bytes(self, channel):
        rng = random.Random(9)
        for _ in range(24):
            value = rng.randrange(256)
            assert channel.send_byte(value) == value

    def test_eight_probes_per_byte(self, channel):
        before = channel.machine.core.global_cycle
        channel.machine.write_data(channel.sender_page, b"\x5a")
        outcome_count = 0
        lo, hi = 0, 256
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if channel.probe(mid).below:
                hi = mid
            else:
                lo = mid
            outcome_count += 1
        assert lo == 0x5A
        assert outcome_count == 8

    def test_transmit_payload(self, channel):
        stats = channel.transmit(b"binary")
        assert stats.received == b"binary"
        assert stats.error_rate == 0.0

    def test_transmit_empty_payload(self, channel):
        stats = channel.transmit(b"")
        assert stats.received == b""
        assert stats.bytes_per_second == 0.0
        assert stats.error_rate == 0.0

    def test_much_faster_than_linear_scan(self):
        fast_machine = Machine("i7-7700", seed=182)
        slow_machine = Machine("i7-7700", seed=182)
        payload = b"xy"
        fast = BinarySearchChannel(fast_machine).transmit(payload)
        slow = TetCovertChannel(slow_machine, batches=3).transmit(payload)
        assert fast.received == slow.received == payload
        assert fast.bytes_per_second > 20 * slow.bytes_per_second

    def test_mirror_stays_synchronised_over_long_runs(self, channel):
        """The receiver's PHT model must never drift from the hardware."""
        rng = random.Random(10)
        for _ in range(40):
            value = rng.randrange(256)
            assert channel.send_byte(value) == value
