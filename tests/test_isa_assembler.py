"""Unit and property tests for the two-pass assembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import AssemblyError, assemble, parse_immediate, parse_memref
from repro.isa.instructions import MemRef
from repro.isa.opcodes import Cond, Op
from repro.isa.program import INSTRUCTION_SIZE


class TestImmediates:
    def test_decimal(self):
        assert parse_immediate("42") == 42

    def test_hex(self):
        assert parse_immediate("0xFF") == 255

    def test_binary(self):
        assert parse_immediate("0b101") == 5

    def test_negative(self):
        assert parse_immediate("-7") == -7

    def test_char_literal(self):
        assert parse_immediate("'S'") == ord("S")

    def test_garbage_returns_none(self):
        assert parse_immediate("rax") is None


class TestMemRef:
    def test_base_only(self):
        assert parse_memref("[rax]") == MemRef(base="rax")

    def test_base_plus_disp(self):
        assert parse_memref("[rbx + 0x10]") == MemRef(base="rbx", disp=0x10)

    def test_negative_disp(self):
        assert parse_memref("[rbx - 8]") == MemRef(base="rbx", disp=-8)

    def test_base_index_scale_disp(self):
        ref = parse_memref("[rax + rcx*8 + 4]")
        assert ref == MemRef(base="rax", index="rcx", scale=8, disp=4)

    def test_two_plain_registers(self):
        ref = parse_memref("[rax + rbx]")
        assert ref.base == "rax" and ref.index == "rbx" and ref.scale == 1

    def test_absolute_address(self):
        assert parse_memref("[0xffffffff81000000]") == MemRef(disp=0xFFFFFFFF81000000)

    def test_not_a_memref(self):
        assert parse_memref("rax") is None

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblyError):
            parse_memref("[foo]")

    def test_three_registers_rejected(self):
        with pytest.raises(AssemblyError):
            parse_memref("[rax + rbx + rcx]")

    def test_effective_address(self):
        ref = MemRef(base="rax", index="rbx", scale=4, disp=-8)
        values = {"rax": 0x1000, "rbx": 3}
        assert ref.effective_address(values.__getitem__) == 0x1000 + 12 - 8


class TestAssembleBasics:
    def test_mov_immediate(self):
        program = assemble("mov rax, 5")
        assert program.instructions[0].op is Op.MOV_RI
        assert program.instructions[0].imm == 5

    def test_mov_register(self):
        program = assemble("mov rax, rbx")
        assert program.instructions[0].op is Op.MOV_RR

    def test_mov_label_address(self):
        program = assemble("mov rax, @end\nend: hlt")
        instruction = program.instructions[0]
        assert instruction.op is Op.MOV_RI
        assert instruction.target_addr == program.label_address("end")

    def test_load_from_memory(self):
        program = assemble("mov rax, [rbx + 8]")
        assert program.instructions[0].op is Op.LOAD

    def test_loadb(self):
        program = assemble("loadb rax, [rbx]")
        assert program.instructions[0].op is Op.LOAD_BYTE

    def test_store_register(self):
        program = assemble("mov [rbx], rax")
        assert program.instructions[0].op is Op.STORE
        assert program.instructions[0].src == "rax"

    def test_store_immediate(self):
        program = assemble("mov [rbx], 7")
        assert program.instructions[0].imm == 7

    def test_two_memory_operands_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mov [rax], [rbx]")

    def test_alu_with_immediate(self):
        program = assemble("add rax, 3")
        assert program.instructions[0].op is Op.ADD

    def test_cmp_char(self):
        program = assemble("cmp rax, 'S'")
        assert program.instructions[0].imm == ord("S")

    def test_zero_operand_forms(self):
        source = "nop\nmfence\nlfence\nrdtsc\nret\nhlt\nsyscall\nxend"
        program = assemble(source)
        ops = [instruction.op for instruction in program.instructions]
        assert ops == [
            Op.NOP, Op.MFENCE, Op.LFENCE, Op.RDTSC, Op.RET, Op.HLT, Op.SYSCALL, Op.XEND,
        ]

    def test_clflush(self):
        program = assemble("clflush [rax + 8]")
        assert program.instructions[0].op is Op.CLFLUSH

    def test_clflush_requires_memory(self):
        with pytest.raises(AssemblyError):
            assemble("clflush rax")

    def test_lea(self):
        program = assemble("lea rax, [rbx + rcx*2]")
        assert program.instructions[0].op is Op.LEA


class TestBranches:
    def test_conditional_aliases(self):
        program = assemble("target:\nje target\njz target\njne target\njnz target\njc target\njb target")
        conds = [instruction.cond for instruction in program.instructions]
        assert conds == [Cond.E, Cond.E, Cond.NE, Cond.NE, Cond.C, Cond.C]

    def test_all_condition_codes_assemble(self):
        lines = ["t:"] + [f"j{cond.value} t" for cond in Cond]
        program = assemble("\n".join(lines))
        assert len(program.instructions) == len(Cond)

    def test_forward_and_backward_labels(self):
        program = assemble("""
start:
    jmp forward
forward:
    jne start
""")
        assert program.instructions[0].target_addr == program.label_address("forward")
        assert program.instructions[1].target_addr == program.label_address("start")

    def test_undefined_label_raises(self):
        with pytest.raises(KeyError):
            assemble("jmp nowhere")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("a:\nnop\na:\nnop")

    def test_label_with_instruction_on_same_line(self):
        program = assemble("start: nop")
        assert program.labels["start"] == 0

    def test_xbegin_takes_label(self):
        program = assemble("xbegin out\nout: hlt")
        assert program.instructions[0].op is Op.XBEGIN
        assert program.instructions[0].target_addr == program.label_address("out")

    def test_call(self):
        program = assemble("call fn\nfn: ret")
        assert program.instructions[0].op is Op.CALL


class TestErrorsAndComments:
    def test_comments_are_stripped(self):
        program = assemble("nop ; this is a comment\n# full-line comment\nnop")
        assert len(program.instructions) == 2

    def test_error_includes_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus rax")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate rax, rbx")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("nop rax")

    def test_empty_source_is_empty_program(self):
        assert len(assemble("")) == 0


class TestProgramAddressing:
    def test_addresses_are_sequential(self):
        program = assemble("nop\nnop\nnop", base=0x1000)
        assert [program.address_of_index(i) for i in range(3)] == [
            0x1000, 0x1000 + INSTRUCTION_SIZE, 0x1000 + 2 * INSTRUCTION_SIZE,
        ]

    def test_fetch_by_address(self):
        program = assemble("mov rax, 1\nhlt", base=0x2000)
        assert program.fetch(0x2000).op is Op.MOV_RI
        assert program.fetch(0x2004).op is Op.HLT

    def test_contains_address(self):
        program = assemble("nop\nnop", base=0x3000)
        assert program.contains_address(0x3000)
        assert program.contains_address(0x3004)
        assert not program.contains_address(0x3008)
        assert not program.contains_address(0x3002)  # misaligned
        assert not program.contains_address(0x2FFC)

    def test_listing_contains_labels(self):
        listing = assemble("loop:\n    jmp loop").listing()
        assert "loop:" in listing
        assert "jmp" in listing


@given(st.integers(min_value=-(2**31), max_value=2**31))
def test_immediate_roundtrip_through_assembly(value):
    program = assemble(f"mov rax, {value}")
    assert program.instructions[0].imm == value


@given(st.integers(0, 100), st.integers(0, 100))
def test_label_resolution_is_position_independent(before, after):
    source = "\n".join(["nop"] * before + ["here:"] + ["nop"] * (after + 1) + ["jmp here"])
    program = assemble(source)
    assert program.instructions[-1].target_addr == program.address_of_index(before)
