"""Functional tests for the baselines and the detector experiment."""

import pytest

from repro.baselines.detector import CacheAttackDetector
from repro.baselines.fault_timing_kaslr import FaultTimingKaslr
from repro.baselines.flush_reload import ClassicMeltdown, FlushReloadChannel
from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.channel import TetCovertChannel


class TestFlushReload:
    def test_channel_decodes_a_transient_access(self):
        machine = Machine("i7-7700", seed=51)
        channel = FlushReloadChannel(machine)
        secret_va = machine.alloc_data()
        machine.write_data(secret_va, b"\x2a")
        stats = channel.leak_byte(secret_va)
        assert stats.value == 0x2A

    def test_classic_meltdown_leaks_on_vulnerable_cpu(self):
        machine = Machine("i7-7700", seed=52, secret=b"OLDSCHOOL")
        data, expected, err = ClassicMeltdown(machine).leak(length=5)
        assert data == b"OLDSC" and err == 0.0

    def test_classic_meltdown_fails_on_fixed_cpu(self):
        machine = Machine("i9-10980XE", seed=52, secret=b"OLDSCHOOL")
        _, _, err = ClassicMeltdown(machine).leak(length=3)
        assert err > 0.5

    def test_flush_reload_is_loud(self):
        machine = Machine("i7-7700", seed=53, secret=b"X")
        before = machine.hierarchy.clflush_count
        ClassicMeltdown(machine).leak(length=1)
        assert machine.hierarchy.clflush_count - before >= 256


class TestDetector:
    def test_flush_reload_is_detected(self):
        machine = Machine("i7-7700", seed=54, secret=b"AB")
        attack = ClassicMeltdown(machine)
        report = CacheAttackDetector().monitor(machine, lambda: attack.leak(length=2))
        assert report.flagged
        assert report.clflush_per_kilo_uop > 1.0

    def test_tet_meltdown_is_not_detected(self):
        """The §3.3/§4.2 stealth claim: same leak, no cache signature."""
        machine = Machine("i7-7700", seed=55, secret=b"AB")
        attack = TetMeltdown(machine, batches=2)
        report = CacheAttackDetector().monitor(machine, lambda: attack.leak(length=2))
        assert not report.flagged
        assert report.features["clflush"] == 0

    def test_tet_covert_channel_is_not_detected(self):
        machine = Machine("i7-7700", seed=56)
        channel = TetCovertChannel(machine, batches=2)
        report = CacheAttackDetector().monitor(machine, lambda: channel.transmit(b"z"))
        assert not report.flagged

    def test_tet_faults_are_visible_but_not_flagged(self):
        """TET does trip machine-clear counters -- but clears alone are
        normal behaviour, so the cache-focused rule ignores them."""
        machine = Machine("i7-7700", seed=57)
        channel = TetCovertChannel(machine, batches=2)
        report = CacheAttackDetector().monitor(machine, lambda: channel.transmit(b"q"))
        assert report.machine_clears_per_kilo_uop > 0
        assert not report.flagged

    def test_report_renders(self):
        machine = Machine("i7-7700", seed=58)
        report = CacheAttackDetector().monitor(machine, lambda: None)
        assert "suspicious" in str(report) or "DETECTED" in str(report)


class TestFaultTimingBaseline:
    def test_breaks_plain_kaslr(self):
        machine = Machine("i7-7700", seed=59)
        result = FaultTimingKaslr(machine).break_kaslr()
        assert result.success

    def test_fails_on_amd_like_tet(self):
        machine = Machine("ryzen-5600G", seed=59)
        result = FaultTimingKaslr(machine).break_kaslr()
        assert not result.success

    def test_slower_than_tet_per_probe(self):
        base_machine = Machine("i7-7700", seed=60)
        tet_machine = Machine("i7-7700", seed=60)
        baseline = FaultTimingKaslr(base_machine).break_kaslr()
        tet = TetKaslr(tet_machine).break_kaslr()
        assert baseline.cycles > tet.cycles
