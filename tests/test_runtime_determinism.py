"""Machine-level determinism: the foundation under the trial pool.

Two freshly built machines with the same spec must be cycle-for-cycle
interchangeable, and ``Machine.reset_uarch`` must return a used machine
to its just-booted timing profile -- otherwise worker reuse (one machine,
thousands of trials) would leak state between trials and parallel runs
would diverge from serial ones.
"""

import pytest

from repro.runtime import MachineSpec
from repro.sim.machine import Machine
from repro.whisper.channel import NULL_POINTER
from repro.whisper.gadgets import GadgetBuilder


def _tote_trace(machine, program, sender_page, probes=4):
    """ToTE of *probes* consecutive Figure 1a runs (test value 0x42)."""
    machine.write_data(sender_page, b"\x42" + b"\x00" * 7)
    regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": 0x42}
    traces = []
    for _ in range(probes):
        result = machine.run(program, regs=regs)
        traces.append(result.regs.read("r15") - result.regs.read("r14"))
    return traces


def _fresh_context(seed):
    machine = Machine("i7-7700", seed=seed)
    program = GadgetBuilder(machine).figure1()
    sender_page = machine.alloc_data()
    return machine, program, sender_page


class TestFreshMachineDeterminism:
    def test_same_seed_same_tote_trace(self):
        """Two fresh Machine(seed=k) produce identical Figure 1a traces."""
        a = _tote_trace(*_fresh_context(seed=1234))
        b = _tote_trace(*_fresh_context(seed=1234))
        assert a == b

    def test_same_seed_same_cycle_count(self):
        (ma, pa, sa), (mb, pb, sb) = _fresh_context(7), _fresh_context(7)
        _tote_trace(ma, pa, sa)
        _tote_trace(mb, pb, sb)
        assert ma.core.global_cycle == mb.core.global_cycle

    @pytest.mark.parametrize("model", ["i7-6700", "i9-13900K", "ryzen-5600G"])
    def test_holds_across_models(self, model):
        def trace():
            machine = Machine(model, seed=55)
            program = GadgetBuilder(machine).figure1()
            page = machine.alloc_data()
            return _tote_trace(machine, program, page, probes=3)

        assert trace() == trace()


class TestResetUarch:
    def test_reset_restores_boot_profile(self):
        """After arbitrary prior work, reset_uarch + rerun reproduces the
        fresh machine's ToTE trace exactly."""
        machine, program, sender_page = _fresh_context(seed=1234)
        boot_trace = _tote_trace(machine, program, sender_page)
        # Dirty the microarchitecture: more gadget runs, different value.
        machine.write_data(sender_page, b"\x99" + b"\x00" * 7)
        for _ in range(5):
            machine.run(
                program, regs={"r12": sender_page, "r13": NULL_POINTER, "r9": 0x99}
            )
        machine.reset_uarch()
        assert _tote_trace(machine, program, sender_page) == boot_trace

    def test_reset_zeroes_clock_and_pmu(self):
        machine, program, sender_page = _fresh_context(seed=9)
        _tote_trace(machine, program, sender_page)
        assert machine.core.global_cycle > 0
        machine.reset_uarch()
        assert machine.core.global_cycle == 0
        assert all(count == 0 for count in machine.pmu.snapshot().values())

    def test_reset_clears_walker_backlog(self):
        """The page walker's busy_until stamp is absolute; a reset must
        zero it or the first post-reset walk queues behind phantom work."""
        machine, program, sender_page = _fresh_context(seed=9)
        _tote_trace(machine, program, sender_page, probes=6)
        machine.reset_uarch()
        assert machine.mmu.walker.busy_until == 0

    def test_reset_keeps_architectural_state(self):
        """Caches flush; memory contents and mappings survive."""
        machine, program, sender_page = _fresh_context(seed=9)
        machine.write_data(sender_page, b"\xAB\xCD")
        machine.reset_uarch()
        assert machine.read_data(sender_page, 2) == b"\xAB\xCD"
        # The program stays runnable without remapping.
        machine.run(program, regs={"r12": sender_page, "r13": NULL_POINTER, "r9": 1})

    def test_reset_is_idempotent_on_fresh_machine(self):
        machine, program, sender_page = _fresh_context(seed=1234)
        machine.reset_uarch()
        fresh = _tote_trace(*_fresh_context(seed=1234))
        assert _tote_trace(machine, program, sender_page) == fresh


class TestSpecDeterminism:
    def test_spec_built_machines_are_interchangeable(self):
        spec = MachineSpec(model="i7-7700", seed=321)
        traces = []
        for _ in range(2):
            machine = spec.build()
            program = GadgetBuilder(machine).figure1()
            page = machine.alloc_data()
            traces.append(_tote_trace(machine, program, page, probes=3))
        assert traces[0] == traces[1]

    def test_trial_seed_is_stable_across_processes(self):
        """trial_seed is pure arithmetic on (seed, index): no process
        state involved, so the exact values are part of the contract."""
        spec = MachineSpec(seed=1234)
        assert [spec.trial_seed(i) for i in range(3)] == [
            spec.trial_seed(i) for i in range(3)
        ]
