"""Unit and property tests for the decoders and classifiers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.whisper.analysis import (
    ArgExtremeDecoder,
    argsort_votes,
    bit_error_rate,
    classify_bimodal,
    error_rate,
    throughput_bytes_per_second,
)


class TestArgExtremeDecoder:
    def test_argmax_finds_planted_peak(self):
        totes = {test: [100, 100] for test in range(8)}
        totes[5] = [130, 131]
        result = ArgExtremeDecoder("max").decode(totes)
        assert result.value == 5
        assert result.confidence == 1.0

    def test_argmin_finds_planted_dip(self):
        totes = {test: [100, 100] for test in range(8)}
        totes[3] = [80, 82]
        result = ArgExtremeDecoder("min").decode(totes)
        assert result.value == 3

    def test_majority_vote_across_batches(self):
        totes = {test: [100, 100, 100] for test in range(4)}
        totes[1] = [140, 90, 140]  # wins 2 of 3 batches
        totes[2] = [90, 141, 90]
        result = ArgExtremeDecoder("max").decode(totes)
        assert result.value == 1
        assert result.confidence == pytest.approx(2 / 3)

    def test_votes_recorded(self):
        totes = {0: [100], 1: [120]}
        result = ArgExtremeDecoder("max").decode(totes)
        assert result.votes == {1: 1}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("median")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("max").decode({})

    def test_ragged_batches_rejected(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("max").decode({0: [1, 2], 1: [1]})


class TestClassifyBimodal:
    def test_two_clusters_split_at_gap(self):
        samples = {0: 10, 1: 11, 2: 60, 3: 62}
        threshold, is_low = classify_bimodal(samples)
        assert 11 < threshold < 60
        assert is_low == {0: True, 1: True, 2: False, 3: False}

    def test_single_value_all_low(self):
        threshold, is_low = classify_bimodal({0: 5, 1: 5})
        assert all(is_low.values())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_bimodal({})

    def test_single_outlier_isolated(self):
        samples = {index: 100 for index in range(10)}
        samples[7] = 20
        _, is_low = classify_bimodal(samples)
        assert is_low[7] and sum(is_low.values()) == 1


class TestRates:
    def test_error_rate_zero_for_identical(self):
        assert error_rate(b"abc", b"abc") == 0.0

    def test_error_rate_counts_mismatches(self):
        assert error_rate(b"abcd", b"abXd") == 0.25

    def test_error_rate_counts_length_mismatch(self):
        assert error_rate(b"abcd", b"ab") == 0.5

    def test_error_rate_empty(self):
        assert error_rate(b"", b"") == 0.0

    def test_bit_error_rate(self):
        assert bit_error_rate([1, 0, 1], [1, 1, 1]) == pytest.approx(1 / 3)

    def test_throughput(self):
        # 1000 bytes in 1e9 cycles at 1 GHz = 1 second -> 1000 B/s.
        assert throughput_bytes_per_second(1000, 10**9, 1.0) == pytest.approx(1000)

    def test_throughput_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError):
            throughput_bytes_per_second(1, 0, 1.0)

    def test_argsort_votes(self):
        assert argsort_votes({1: 5, 2: 9, 3: 1}, top=2) == [(2, 9), (1, 5)]


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 255),
    st.integers(1, 5),
    st.integers(5, 50),
)
def test_decoder_always_recovers_a_clean_signal(secret, batches, delta):
    totes = {test: [100] * batches for test in range(256)}
    totes[secret] = [100 + delta] * batches
    result = ArgExtremeDecoder("max").decode(totes)
    assert result.value == secret
    assert result.confidence == 1.0


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.integers(0, 100), st.integers(0, 10_000), min_size=1))
def test_classify_bimodal_threshold_separates(samples):
    threshold, is_low = classify_bimodal(samples)
    for key, value in samples.items():
        assert is_low[key] == (value <= threshold)


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=64), st.binary(max_size=64))
def test_error_rate_bounded(sent, received):
    rate = error_rate(sent, received)
    assert 0.0 <= rate <= 1.0
    if sent == received:
        assert rate == 0.0
