"""Unit tests for branch prediction: PHT, BTB, RSB."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.bpu import (
    BranchPredictor,
    BranchTargetBuffer,
    PatternHistoryTable,
    ReturnStackBuffer,
)


class TestPht:
    def test_initial_prediction_is_not_taken(self):
        assert PatternHistoryTable().predict(0x400000) is False

    def test_learns_taken_after_two_updates(self):
        pht = PatternHistoryTable()
        pht.update(0x400000, True)
        pht.update(0x400000, True)
        assert pht.predict(0x400000) is True

    def test_saturates_and_recovers(self):
        pht = PatternHistoryTable()
        for _ in range(10):
            pht.update(0x400000, True)
        pht.update(0x400000, False)
        assert pht.predict(0x400000) is True  # 3 -> 2, still taken
        pht.update(0x400000, False)
        assert pht.predict(0x400000) is False

    def test_distinct_branches_are_independent(self):
        pht = PatternHistoryTable()
        pht.update(0x400000, True)
        pht.update(0x400000, True)
        assert pht.predict(0x400100) is False

    def test_gshare_history_changes_index(self):
        pht = PatternHistoryTable(history_bits=4)
        pht.update(0x400000, True)
        pht.update(0x400000, True)
        # With nonzero history the same PC may map elsewhere; just check
        # the structure stays consistent (no exceptions, bool output).
        assert isinstance(pht.predict(0x400000), bool)


class TestBtb:
    def test_unknown_pc_predicts_none(self):
        assert BranchTargetBuffer().predict(0x400000) is None

    def test_update_then_predict(self):
        btb = BranchTargetBuffer()
        btb.update(0x400000, 0x401000)
        assert btb.predict(0x400000) == 0x401000

    def test_tag_mismatch_on_alias(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(0x400000, 0x401000)
        aliasing_pc = 0x400000 + 16 * 4
        assert btb.predict(aliasing_pc) is None

    def test_correct_counter(self):
        btb = BranchTargetBuffer()
        btb.predict(0x400000)  # cold miss
        btb.update(0x400000, 0x401000)
        btb.predict(0x400000)  # hit
        assert btb.correct == 1 and btb.lookups == 2


class TestRsb:
    def test_push_pop_lifo(self):
        rsb = ReturnStackBuffer()
        rsb.push(0x1000)
        rsb.push(0x2000)
        assert rsb.pop_prediction() == 0x2000
        assert rsb.pop_prediction() == 0x1000

    def test_underflow_returns_none(self):
        assert ReturnStackBuffer().pop_prediction() is None

    def test_overflow_drops_oldest(self):
        rsb = ReturnStackBuffer(depth=2)
        rsb.push(1)
        rsb.push(2)
        rsb.push(3)
        assert rsb.pop_prediction() == 3
        assert rsb.pop_prediction() == 2
        assert rsb.pop_prediction() is None

    def test_clear(self):
        rsb = ReturnStackBuffer()
        rsb.push(1)
        rsb.clear()
        assert len(rsb) == 0


class TestBranchPredictor:
    def test_resolve_counts_mispredicts(self):
        bpu = BranchPredictor()
        predicted, _ = bpu.predict_conditional(0x400000, 0x400100)
        mispredicted = bpu.resolve_conditional(0x400000, predicted, not predicted)
        assert mispredicted is True
        assert bpu.conditional_mispredicts == 1

    def test_correct_prediction_not_counted(self):
        bpu = BranchPredictor()
        predicted, _ = bpu.predict_conditional(0x400000, 0x400100)
        assert bpu.resolve_conditional(0x400000, predicted, predicted) is False
        assert bpu.conditional_mispredicts == 0

    def test_call_pushes_rsb_and_trains_btb(self):
        bpu = BranchPredictor()
        bpu.on_call(return_address=0x400004, target=0x500000, pc=0x400000)
        assert bpu.predict_return() == 0x400004
        assert bpu.btb.predict(0x400000) == 0x500000

    def test_stale_rsb_entry_is_the_spectre_v5_setup(self):
        """The Listing 1 trick: the RSB top no longer matches the stack."""
        bpu = BranchPredictor()
        bpu.on_call(return_address=0x400004, target=0x500000, pc=0x400000)
        architectural_return = 0x600000  # overwritten on the stack
        predicted = bpu.predict_return()
        assert predicted == 0x400004
        assert predicted != architectural_return


@settings(max_examples=50, deadline=None)
@given(st.lists(st.booleans(), min_size=8, max_size=64))
def test_pht_converges_on_constant_direction(history):
    pht = PatternHistoryTable()
    direction = history[0]
    for _ in range(4):
        pht.update(0x400000, direction)
    assert pht.predict(0x400000) is direction


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2**48), min_size=1, max_size=32))
def test_rsb_matches_a_plain_stack_up_to_depth(addresses):
    rsb = ReturnStackBuffer(depth=64)
    for address in addresses:
        rsb.push(address)
    for address in reversed(addresses):
        assert rsb.pop_prediction() == address
