"""Byte-identity properties for the streaming detection tier.

The detector's determinism contract, stated structurally in
``repro.defend.online``, pinned here behaviourally:

* the fitted calibration and the full verdict list are byte-identical
  whether the campaign ran serially, pooled, or resumed from a partial
  store -- the runner's ``sink=`` hook feeds cached and fresh outcomes
  in different orders, and none of it shows;
* verdicts are invariant under arbitrary permutation of the ingestion
  order (Hypothesis when installed, a seeded-``random`` fallback
  otherwise -- the arrangement of ``test_faults_properties.py``);
* incremental per-shard ingestion (the coordinator's
  ingest-on-completion path) reads the same conclusions as a one-shot
  pass over the merged store;
* the slow golden: the full ``e11-detect`` defend report renders
  byte-identical from a single-host run and from a 3-way shard/merge.
"""

import random

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    Shard,
    builtin_campaign,
    detect_cell,
    trial_key,
)
from repro.defend import (
    StreamingDetector,
    build_defend_report,
    calibration_campaign,
    fit_calibration,
    training_samples,
)
from repro.distrib import merge_stores, run_shard
from repro.runtime import MachineSpec, TrialPool

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


def small_spec(name="defend-prop", trials=2):
    scenarios = ("fr-meltdown", "tet-cc", "benign-compute", "benign-stream")
    cells = tuple(
        detect_cell(
            MachineSpec(model="i7-7700", seed=700 + index),
            scenario=scenario,
            trials=trials,
        )
        for index, scenario in enumerate(scenarios)
    )
    return CampaignSpec(name=name, cells=cells)


def fit_on(spec, store):
    return fit_calibration(training_samples(spec, store))


def stream_run(spec, root, calibration, pool=None, warm_cells=0):
    """One execution topology: run *spec* with the detector attached.

    ``warm_cells`` pre-runs a sub-spec first, so the main run resumes --
    the sink then sees cached outcomes (replay order) before fresh ones
    (batch order).
    """
    store = ResultStore(str(root))
    if warm_cells:
        CampaignRunner(
            CampaignSpec(name=spec.name, cells=spec.cells[:warm_cells]),
            store=store,
        ).run()
    detector = StreamingDetector(calibration, spec)
    CampaignRunner(spec, store=store, pool=pool, sink=detector.sink).run()
    return detector, store


class TestTopologyIdentity:
    def test_serial_pooled_resumed_read_identical_conclusions(self, tmp_path):
        spec = small_spec()
        # Fit once on the serial store so every topology scores with the
        # same calibration; the fit itself is re-checked below.
        base = ResultStore(str(tmp_path / "fit"))
        CampaignRunner(spec, store=base).run()
        calibration = fit_on(spec, base)

        serial, serial_store = stream_run(spec, tmp_path / "serial", calibration)
        with TrialPool(workers=2) as pool:
            pooled, pooled_store = stream_run(
                spec, tmp_path / "pooled", calibration, pool=pool
            )
        resumed, resumed_store = stream_run(
            spec, tmp_path / "resumed", calibration, warm_cells=2
        )

        golden = serial.verdicts()
        assert pooled.verdicts() == golden
        assert resumed.verdicts() == golden
        assert (
            serial.detection_latencies()
            == pooled.detection_latencies()
            == resumed.detection_latencies()
        )
        # The fitted model is byte-identical too: training samples come
        # out of each store in expansion order regardless of how the
        # trials got there.
        fits = [fit_on(spec, s) for s in (serial_store, pooled_store, resumed_store)]
        assert {fit.to_json() for fit in fits} == {calibration.to_json()}
        texts = set()
        for detector in (serial, pooled, resumed):
            report = build_defend_report(detector, min_auc=0.95)
            texts.add((report.to_json(), report.render_text()))
        assert len(texts) == 1

    def test_incremental_shard_ingest_equals_one_shot(self, tmp_path):
        spec = small_spec()
        base = ResultStore(str(tmp_path / "fit"))
        CampaignRunner(spec, store=base).run()
        calibration = fit_on(spec, base)

        segments = []
        incremental = StreamingDetector(calibration, spec)
        for index in range(3):
            root = str(tmp_path / f"seg{index}")
            run_shard(spec, Shard(index, 3), root)
            segments.append(root)
            # The coordinator's ingest-on-completion path: one call per
            # finished segment, scoped to that shard's positions.
            incremental.ingest_store(ResultStore(root), shard=Shard(index, 3))
        merged = str(tmp_path / "merged")
        merge_stores(segments, merged)
        one_shot = StreamingDetector(calibration, spec)
        one_shot.ingest_store(ResultStore(merged))

        assert incremental.verdicts() == one_shot.verdicts()
        assert (
            build_defend_report(incremental, min_auc=0.95).to_json()
            == build_defend_report(one_shot, min_auc=0.95).to_json()
        )


# -- ingestion-order invariance ------------------------------------------------


def check_order_invariance(pairs, calibration, spec, shuffle_seed):
    shuffled = list(pairs)
    random.Random(shuffle_seed).shuffle(shuffled)
    ordered = StreamingDetector(calibration, spec)
    permuted = StreamingDetector(calibration, spec)
    for ref, outcome in pairs:
        ordered.ingest(ref, outcome)
    for ref, outcome in shuffled:
        permuted.ingest(ref, outcome)
    assert permuted.verdicts() == ordered.verdicts()
    assert permuted.detection_latencies() == ordered.detection_latencies()


@pytest.fixture(scope="module")
def ingestion_pairs(tmp_path_factory):
    spec = small_spec(name="defend-order")
    store = ResultStore(str(tmp_path_factory.mktemp("order") / "store"))
    CampaignRunner(spec, store=store).run()
    refs = spec.expand()
    cached = store.get_many([trial_key(ref.trial) for ref in refs])
    pairs = [(ref, cached[trial_key(ref.trial)]) for ref in refs]
    # Duplicate a few pairs: at-least-once delivery must not double-count.
    pairs += pairs[::3]
    return spec, fit_on(spec, store), pairs


if HAVE_HYPOTHESIS:

    class TestOrderInvarianceHypothesis:
        @settings(max_examples=25, deadline=None)
        @given(shuffle_seed=st.integers(min_value=0, max_value=2**32 - 1))
        def test_any_arrival_order_same_verdicts(
            self, ingestion_pairs, shuffle_seed
        ):
            spec, calibration, pairs = ingestion_pairs
            check_order_invariance(pairs, calibration, spec, shuffle_seed)

else:  # pragma: no cover - depends on environment

    class TestOrderInvarianceFallback:
        def test_any_arrival_order_same_verdicts(self, ingestion_pairs):
            spec, calibration, pairs = ingestion_pairs
            for shuffle_seed in random.Random(2024).sample(range(10_000), 25):
                check_order_invariance(pairs, calibration, spec, shuffle_seed)


# -- the slow golden -----------------------------------------------------------


@pytest.mark.slow
class TestE11DetectGolden:
    def test_sharded_merge_report_bytes_match_single_host(self, tmp_path):
        train_spec = calibration_campaign()
        train_store = ResultStore(str(tmp_path / "train"))
        CampaignRunner(train_spec, store=train_store).run()
        calibration = fit_on(train_spec, train_store)

        spec = builtin_campaign("e11-detect")
        single = StreamingDetector(calibration, spec)
        single_store = ResultStore(str(tmp_path / "single"))
        CampaignRunner(spec, store=single_store, sink=single.sink).run()
        golden = build_defend_report(single, min_auc=0.95)

        segments = []
        for index in range(3):
            root = str(tmp_path / f"seg{index}")
            run_shard(spec, Shard(index, 3), root)
            segments.append(root)
        merged = str(tmp_path / "merged")
        merge_stores(segments, merged)
        sharded = StreamingDetector(calibration, spec)
        sharded.ingest_store(ResultStore(merged))
        report = build_defend_report(sharded, min_auc=0.95)

        assert report.to_json() == golden.to_json()
        assert report.render_text() == golden.render_text()
        assert golden.passed
