"""Unit tests for the architectural register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.registers import FLAGS, GPRS, MASK64, RegisterFile


class TestRegisterFile:
    def test_all_registers_start_at_zero(self):
        regs = RegisterFile()
        for name in GPRS:
            assert regs.read(name) == 0

    def test_all_flags_start_clear(self):
        regs = RegisterFile()
        for name in FLAGS:
            assert regs.read_flag(name) is False

    def test_write_read_roundtrip(self):
        regs = RegisterFile()
        regs.write("rax", 0xDEADBEEF)
        assert regs.read("rax") == 0xDEADBEEF

    def test_write_wraps_to_64_bits(self):
        regs = RegisterFile()
        regs.write("rbx", (1 << 64) + 5)
        assert regs.read("rbx") == 5

    def test_negative_value_wraps(self):
        regs = RegisterFile()
        regs.write("rcx", -1)
        assert regs.read("rcx") == MASK64

    def test_unknown_register_read_raises(self):
        with pytest.raises(KeyError):
            RegisterFile().read("eax")

    def test_unknown_register_write_raises(self):
        with pytest.raises(KeyError):
            RegisterFile().write("xmm0", 1)

    def test_unknown_flag_raises(self):
        with pytest.raises(KeyError):
            RegisterFile().write_flag("pf", True)

    def test_flag_write_coerces_to_bool(self):
        regs = RegisterFile()
        regs.write_flag("zf", 1)
        assert regs.read_flag("zf") is True


class TestAluFlags:
    def test_zero_result_sets_zf(self):
        regs = RegisterFile()
        regs.set_alu_flags(0)
        assert regs.read_flag("zf") is True
        assert regs.read_flag("sf") is False

    def test_negative_result_sets_sf(self):
        regs = RegisterFile()
        regs.set_alu_flags(1 << 63)
        assert regs.read_flag("sf") is True
        assert regs.read_flag("zf") is False

    def test_carry_and_overflow_recorded(self):
        regs = RegisterFile()
        regs.set_alu_flags(1, carry=True, overflow=True)
        assert regs.read_flag("cf") is True
        assert regs.read_flag("of") is True

    def test_flags_cleared_on_next_result(self):
        regs = RegisterFile()
        regs.set_alu_flags(0, carry=True)
        regs.set_alu_flags(7)
        assert regs.read_flag("zf") is False
        assert regs.read_flag("cf") is False


class TestSnapshotRestore:
    def test_snapshot_restores_registers_and_flags(self):
        regs = RegisterFile()
        regs.write("rax", 42)
        regs.write_flag("cf", True)
        saved = regs.snapshot()
        regs.write("rax", 99)
        regs.write_flag("cf", False)
        regs.restore(saved)
        assert regs.read("rax") == 42
        assert regs.read_flag("cf") is True

    def test_snapshot_is_independent_of_later_writes(self):
        regs = RegisterFile()
        saved = regs.snapshot()
        regs.write("rdx", 1)
        assert saved["regs"]["rdx"] == 0

    def test_copy_is_independent(self):
        regs = RegisterFile()
        regs.write("rsi", 5)
        clone = regs.copy()
        clone.write("rsi", 6)
        assert regs.read("rsi") == 5
        assert clone.read("rsi") == 6


@given(st.sampled_from(GPRS), st.integers(min_value=-(2**70), max_value=2**70))
def test_any_write_reads_back_masked(name, value):
    regs = RegisterFile()
    regs.write(name, value)
    assert regs.read(name) == value & MASK64


@given(
    st.dictionaries(st.sampled_from(GPRS), st.integers(0, MASK64), min_size=1),
    st.dictionaries(st.sampled_from(GPRS), st.integers(0, MASK64), min_size=1),
)
def test_snapshot_restore_is_exact(first, second):
    regs = RegisterFile()
    for name, value in first.items():
        regs.write(name, value)
    saved = regs.snapshot()
    for name, value in second.items():
        regs.write(name, value)
    regs.restore(saved)
    for name, value in first.items():
        assert regs.read(name) == value
