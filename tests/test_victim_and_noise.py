"""Tests for the real victim process, the noise model and the mean decoder."""

import pytest

from repro.sim.machine import Machine
from repro.sim.victim import VictimProcess
from repro.whisper.analysis import ArgExtremeDecoder
from repro.whisper.attacks.zombieload import TetZombieload
from repro.whisper.channel import TetCovertChannel


class TestVictimProcess:
    def test_victim_has_its_own_address_space(self):
        machine = Machine("i7-7700", seed=251)
        victim = VictimProcess(machine, secret=b"SECRET")
        assert victim.secret_is_unreachable_by(machine.process)
        assert victim.process.space is not machine.process.space

    def test_victim_shares_lfb_and_caches(self):
        machine = Machine("i7-7700", seed=252)
        victim = VictimProcess(machine, secret=b"S")
        assert victim.mmu.lfb is machine.mmu.lfb
        assert victim.mmu.hierarchy is machine.hierarchy
        assert victim.mmu.physical is machine.physical

    def test_victim_has_private_tlbs(self):
        machine = Machine("i7-7700", seed=253)
        victim = VictimProcess(machine, secret=b"S")
        assert victim.mmu.dtlb is not machine.mmu.dtlb

    def test_work_fills_the_shared_lfb(self):
        machine = Machine("i7-7700", seed=254)
        victim = VictimProcess(machine, secret=b"Q")
        victim.work()
        assert machine.mmu.lfb.entries_from_thread(1) > 0

    def test_work_refills_after_self_eviction(self):
        machine = Machine("i7-7700", seed=255)
        victim = VictimProcess(machine, secret=b"Q")
        victim.work()
        machine.mmu.lfb.clear()
        victim.work()  # self-evicting working set re-misses the secret
        assert machine.mmu.lfb.entries_from_thread(1) > 0

    def test_secret_line_appears_in_lfb(self):
        machine = Machine("i7-7700", seed=256)
        victim = VictimProcess(machine, secret=b"Z")
        victim.work()
        stale = {machine.mmu.lfb.sample_stale(0) for _ in range(24)}
        assert ord("Z") in stale

    def test_secret_must_fit_a_line(self):
        machine = Machine("i7-7700", seed=257)
        with pytest.raises(ValueError):
            VictimProcess(machine, secret=b"x" * 65)

    def test_cross_process_zombieload(self):
        """The end-to-end §4.3.2 scenario across a real process boundary."""
        machine = Machine("i7-7700", seed=258)
        victim = VictimProcess(machine, secret=b"XP")
        attack = TetZombieload(machine, batches=6)
        attack.attach_victim(victim)
        result = attack.leak(length=2)
        assert result.data == b"XP"

    def test_cross_process_fails_on_fixed_cpu(self):
        machine = Machine("i9-10980XE", seed=259)
        victim = VictimProcess(machine, secret=b"NO")
        attack = TetZombieload(machine, batches=4)
        attack.attach_victim(victim)
        assert not attack.leak(length=2).success


class TestNoiseModel:
    def test_noise_disabled_by_default(self):
        machine = Machine("i7-7700", seed=261)
        assert machine.mmu._jitter() == 0

    def test_noise_is_seeded_and_replayable(self):
        def run():
            machine = Machine("i7-7700", seed=262, noise_amplitude=6)
            channel = TetCovertChannel(machine, batches=2)
            return channel.transmit(b"r").received

        assert run() == run()

    def test_noise_bounded_by_amplitude(self):
        machine = Machine("i7-7700", seed=263, noise_amplitude=5)
        jitters = [machine.mmu._jitter() for _ in range(200)]
        assert all(0 <= j <= 5 for j in jitters)
        assert max(jitters) > 0

    def test_negative_amplitude_rejected(self):
        machine = Machine("i7-7700", seed=264)
        with pytest.raises(ValueError):
            machine.mmu.set_noise(-1)

    def test_noise_perturbs_timings(self):
        quiet = Machine("i7-7700", seed=265)
        noisy = Machine("i7-7700", seed=265, noise_amplitude=10)
        source = "rdtsc\nmov r14, rax\nmov rbx, [r12]\nrdtsc\nmov r15, rax\nhlt"
        quiet_va = quiet.alloc_data()
        noisy_va = noisy.alloc_data()
        quiet_prog = quiet.load_program(source)
        noisy_prog = noisy.load_program(source)
        quiet_totes = {
            quiet.run(quiet_prog, regs={"r12": quiet_va}).regs.read("r15")
            - quiet.run(quiet_prog, regs={"r12": quiet_va}).regs.read("r14")
            for _ in range(6)
        }
        noisy_totes = {
            noisy.run(noisy_prog, regs={"r12": noisy_va}).regs.read("r15")
            - noisy.run(noisy_prog, regs={"r12": noisy_va}).regs.read("r14")
            for _ in range(6)
        }
        # Deterministic machine: timings collapse; noisy machine: spread.
        assert len(noisy_totes) > len(quiet_totes) or len(noisy_totes) > 1


class TestMeanDecoder:
    def test_mean_statistic_integrates(self):
        totes = {0: [100, 104], 1: [108, 96], 2: [100, 100]}
        # value 1 mean = 102 > value 0 mean = 102 ... craft distinct:
        totes = {0: [100, 100], 1: [104, 104], 2: [100, 101]}
        result = ArgExtremeDecoder("max", statistic="mean").decode(totes)
        assert result.value == 1

    def test_vote_and_mean_have_complementary_failure_modes(self):
        signal = {test: [100, 100, 100, 100] for test in range(10)}
        signal[7] = [104, 104, 104, 104]
        # A single large spike fools the mean but not the vote...
        spiky = {test: list(samples) for test, samples in signal.items()}
        spiky[3] = [100, 140, 100, 100]
        assert ArgExtremeDecoder("max", statistic="vote").decode(spiky).value == 7
        assert ArgExtremeDecoder("max", statistic="mean").decode(spiky).value == 3
        # ...while small per-batch jitter on every value fools the vote
        # but averages out for the mean (the E18 bench's realistic case).
        jittery = {
            test: [100 + ((test * 7 + batch * 13) % 6) for batch in range(4)]
            for test in range(10)
        }
        jittery[7] = [sample + 4 for sample in jittery[7]]
        assert ArgExtremeDecoder("max", statistic="mean").decode(jittery).value == 7

    def test_invalid_statistic_rejected(self):
        with pytest.raises(ValueError):
            ArgExtremeDecoder("max", statistic="median")

    def test_mean_mode_argmin(self):
        totes = {0: [100, 100], 1: [92, 96], 2: [100, 99]}
        result = ArgExtremeDecoder("min", statistic="mean").decode(totes)
        assert result.value == 1
