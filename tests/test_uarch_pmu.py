"""Unit tests for the PMU counter bank and event catalogue."""

import pytest

from repro.uarch.pmu import (
    AMD,
    EVENTS,
    EVENTS_BY_NAME,
    INTEL,
    PmuCounters,
    events_for_vendor,
)

#: Every event the paper's Table 3 lists must exist in the catalogue.
TABLE3_EVENTS = [
    "BR_MISP_EXEC.INDIRECT",
    "BR_MISP_EXEC.ALL_BRANCHES",
    "RESOURCE_STALLS.ANY",
    "IDQ.DSB_UOPS",
    "IDQ.MS_DSB_CYCLES",
    "IDQ.DSB_CYCLES_OK",
    "IDQ.DSB_CYCLES_ANY",
    "IDQ.MS_MITE_UOPS",
    "IDQ.ALL_MITE_CYCLES_ANY_UOPS",
    "IDQ.MS_UOPS",
    "UOPS_EXECUTED.CORE_CYCLES_NONE",
    "CYCLE_ACTIVITY.STALLS_TOTAL",
    "UOPS_EXECUTED.STALL_CYCLES",
    "CYCLE_ACTIVITY.CYCLES_MEM_ANY",
    "INT_MISC.RECOVERY_CYCLES_ANY",
    "INT_MISC.RECOVERY_CYCLES",
    "INT_MISC.CLEAR_RESTEER_CYCLES",
    "UOPS_ISSUED.ANY",
    "UOPS_ISSUED.STALL_CYCLES",
    "RS_EVENTS.EMPTY_CYCLES",
    "ICACHE_16B.IFDATA_STALL",
    "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK",
    "DTLB_LOAD_MISSES.WALK_ACTIVE",
    "ITLB_MISSES.WALK_ACTIVE",
    "bp_l1_btb_correct",
    "bp_l1_tlb_fetch_hit",
    "de_dis_uop_queue_empty_di0",
    "de_dis_dispatch_token_stalls2.retire_token_stall",
    "ic_fw32",
]


class TestCatalogue:
    @pytest.mark.parametrize("name", TABLE3_EVENTS)
    def test_table3_event_exists(self, name):
        assert name in EVENTS_BY_NAME

    def test_no_duplicate_names(self):
        names = [event.name for event in EVENTS]
        assert len(names) == len(set(names))

    def test_every_event_has_domain(self):
        for event in EVENTS:
            assert event.domain in ("frontend", "backend", "memory")

    def test_vendor_split(self):
        intel = events_for_vendor(INTEL)
        amd = events_for_vendor(AMD)
        assert all(event.vendor == INTEL for event in intel)
        assert all(event.vendor == AMD for event in amd)
        assert len(intel) + len(amd) == len(EVENTS)

    def test_amd_events_are_lowercase_convention(self):
        for event in events_for_vendor(AMD):
            assert event.name == event.name.lower()


class TestCounters:
    def test_counters_start_zero(self):
        pmu = PmuCounters()
        for event in EVENTS:
            assert pmu.read(event.name) == 0

    def test_add_and_read(self):
        pmu = PmuCounters()
        pmu.add("UOPS_ISSUED.ANY", 5)
        pmu.add("UOPS_ISSUED.ANY")
        assert pmu.read("UOPS_ISSUED.ANY") == 6

    def test_unknown_event_raises(self):
        pmu = PmuCounters()
        with pytest.raises(KeyError):
            pmu.add("MADE_UP.EVENT")
        with pytest.raises(KeyError):
            pmu.read("MADE_UP.EVENT")

    def test_reset_all(self):
        pmu = PmuCounters()
        pmu.add("UOPS_ISSUED.ANY", 3)
        pmu.reset()
        assert pmu.read("UOPS_ISSUED.ANY") == 0

    def test_reset_selected(self):
        pmu = PmuCounters()
        pmu.add("UOPS_ISSUED.ANY", 3)
        pmu.add("IDQ.MS_UOPS", 2)
        pmu.reset(["UOPS_ISSUED.ANY"])
        assert pmu.read("UOPS_ISSUED.ANY") == 0
        assert pmu.read("IDQ.MS_UOPS") == 2

    def test_snapshot_delta(self):
        pmu = PmuCounters()
        pmu.add("UOPS_ISSUED.ANY", 3)
        snap = pmu.snapshot()
        pmu.add("UOPS_ISSUED.ANY", 4)
        delta = pmu.delta(snap)
        assert delta["UOPS_ISSUED.ANY"] == 4
        assert delta["IDQ.MS_UOPS"] == 0

    def test_nonzero_view(self):
        pmu = PmuCounters()
        pmu.add("ic_fw32", 7)
        assert pmu.nonzero() == {"ic_fw32": 7}
