"""The live fleet plane: spool framing, tailing, and the fold contract.

Two properties carry this module (see ``repro.telemetry.stream``):

* **prefix** -- the live fold after any frame prefix is a prefix of the
  final fold (cumulative snapshots only ever grow);
* **fold identity** -- folding completed spools is byte-identical to
  the end-of-shard ``merge_telemetry`` fold, at 1/3/8 shards, under
  chaos (killed workers, torn spool tails, duplicated frame replays).

Everything runs on stub trials (``payload_fingerprint``) so the suite
stays fast while exercising the real runner/pool/spool machinery.
"""

import json
import os

import pytest

from repro.campaign import ResultStore, Shard, builtin_campaign
from repro.distrib import (
    Coordinator,
    StubWorker,
    merge_telemetry,
    run_shard_observed,
    telemetry_sidecar,
)
from repro.faults import ResiliencePolicy, payload_fingerprint
from repro.runtime import TrialResult
from repro.telemetry.export import (
    read_jsonl,
    records_checksum,
    split_metrics,
)
from repro.telemetry.metrics import deterministic_view
from repro.telemetry.stream import (
    FleetView,
    StreamCursor,
    StreamWriter,
    discover_spools,
    fold_frames,
    fold_stream,
    fold_streams,
    read_frames,
    spool_records,
    stream_spool,
)


def _stub_trial(trial):
    fingerprint = payload_fingerprint(trial)
    return TrialResult(
        totes=(fingerprint % 997, (fingerprint >> 16) % 997),
        cycles=fingerprint % 100_000,
    )


def _stream_shard(spec, shard, root, every=4, **kwargs):
    kwargs.setdefault("trial_fn", _stub_trial)
    kwargs.setdefault("batch_size", 4)
    return run_shard_observed(
        spec,
        shard,
        str(root),
        trace_path=telemetry_sidecar(str(root)),
        stream_path=stream_spool(str(root)),
        stream_every=every,
        **kwargs,
    )


def _artifact_bytes(snapshot):
    return (
        json.dumps({"kind": "metrics", "snapshot": snapshot}, sort_keys=True)
        + "\n"
    ).encode()


class TestSpoolFraming:
    def test_writer_emits_well_formed_sealed_stream(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        _stream_shard(spec, Shard(0, 1), tmp_path / "seg")
        frames, torn = read_frames(stream_spool(str(tmp_path / "seg")))
        assert torn == 0
        kinds = [frame["kind"] for frame in frames]
        assert kinds[0] == "open" and kinds[-1] == "end"
        assert {"spans", "metrics", "heartbeat"} <= set(kinds)
        # One attempt, sequence-numbered gaplessly from zero.
        assert {frame["attempt"] for frame in frames} == {0}
        assert [frame["seq"] for frame in frames] == list(range(len(frames)))

    def test_heartbeats_fire_at_trial_cadence_with_host_quarantine(
        self, tmp_path
    ):
        spec = builtin_campaign("ci-smoke")
        _stream_shard(spec, Shard(0, 1), tmp_path / "seg", every=8)
        frames, _ = read_frames(stream_spool(str(tmp_path / "seg")))
        beats = [f["body"] for f in frames if f["kind"] == "heartbeat"]
        # 32 trials, batch 4, cadence 8: a beat at every second batch.
        assert [beat["done"] for beat in beats] == [8, 16, 24, 32]
        for beat in beats:
            assert set(beat["host"]) == {"wall_seconds", "trials_per_sec"}
            assert all(
                name.startswith(("pool.", "batch.", "campaign.", "defend."))
                for name in beat["counters"]
            )
        assert beats[-1]["counters"]["pool.trials.executed"] == 32

    def test_heartbeat_stream_is_deterministic_across_runs(self, tmp_path):
        spec = builtin_campaign("ci-smoke")

        def deterministic_beats(root):
            _stream_shard(spec, Shard(0, 1), root, every=8)
            frames, _ = read_frames(stream_spool(str(root)))
            beats = []
            for frame in frames:
                if frame["kind"] != "heartbeat":
                    continue
                body = dict(frame["body"])
                body.pop("host")
                beats.append(body)
            return beats

        first = deterministic_beats(tmp_path / "a")
        second = deterministic_beats(tmp_path / "b")
        assert first == second

    def test_spool_spans_mirror_the_sidecar_trace(self, tmp_path):
        """The spool streams span deltas without draining the recorder:
        its concatenated records are exactly the sidecar's trace."""
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "seg"
        _stream_shard(spec, Shard(0, 1), root)
        frames, _ = read_frames(stream_spool(str(root)))
        streamed = sorted(spool_records(frames), key=lambda r: r["seq"])
        sidecar, _ = split_metrics(read_jsonl(telemetry_sidecar(str(root))))
        sidecar = sorted(sidecar, key=lambda r: r["seq"])
        assert len(streamed) == len(sidecar) > 0
        assert records_checksum(streamed) == records_checksum(sidecar)

    def test_heartbeats_stay_off_without_streaming(self, tmp_path):
        """The cadence defaults to 0: a plain traced run records no
        pool.heartbeat events (the serial-vs-pooled trace identity in
        test_telemetry depends on this)."""
        from repro import telemetry

        assert telemetry.heartbeat_cadence() == 0
        spec = builtin_campaign("ci-smoke")
        run_shard_observed(
            spec,
            Shard(0, 1),
            str(tmp_path / "seg"),
            trace_path=telemetry_sidecar(str(tmp_path / "seg")),
            trial_fn=_stub_trial,
            batch_size=4,
        )
        records = read_jsonl(telemetry_sidecar(str(tmp_path / "seg")))
        assert not any(r.get("name") == "pool.heartbeat" for r in records)
        assert telemetry.heartbeat_cadence() == 0


class TestSpoolDamage:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "seg"
        _stream_shard(spec, Shard(0, 1), root)
        spool = stream_spool(str(root))
        whole, _ = read_frames(spool)
        with open(spool, "ab") as handle:
            handle.write(b'{"kind": "heartbeat", "att')  # killed mid-append
        frames, torn = read_frames(spool)
        assert torn == 1
        assert [f["seq"] for f in frames] == [f["seq"] for f in whole]
        # The fold sees through the damage entirely.
        assert fold_frames(frames) == fold_frames(whole)

    def test_cursor_never_consumes_a_partial_line(self, tmp_path):
        spool = str(tmp_path / "stream.jsonl")
        writer = StreamWriter(spool, shard="s", every=1)
        cursor = StreamCursor(spool)
        assert [f["kind"] for f in cursor.poll()] == ["open"]
        with open(spool, "ab") as handle:
            handle.write(b'{"kind": "metrics"')  # no newline yet
        assert cursor.poll() == []  # buffered, not torn
        writer.flush({"done": 1})  # the writer heals the tail first
        kinds = [f["kind"] for f in cursor.poll()]
        assert kinds == ["metrics", "heartbeat"]
        assert cursor.torn == 1  # the healed fragment, skipped once

    def test_duplicate_frames_dedup_first_write_wins(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "seg"
        _stream_shard(spec, Shard(0, 1), root)
        spool = stream_spool(str(root))
        clean, _ = read_frames(spool)
        with open(spool, "rb") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        # Replay a slice of frames, as a retrying transport would.
        with open(spool, "ab") as handle:
            for line in lines[2:6] + lines[:1]:
                handle.write(line + b"\n")
        replayed, torn = read_frames(spool)
        assert torn == 0
        assert replayed == clean
        assert fold_stream(spool) == fold_frames(clean)

    def test_new_writer_resumes_under_next_attempt(self, tmp_path):
        spool = str(tmp_path / "stream.jsonl")
        first = StreamWriter(spool, shard="s", every=1)
        first.close(snapshot={})
        second = StreamWriter(spool, shard="s", every=1)
        assert (first.attempt, second.attempt) == (0, 1)
        second.close(snapshot={})
        frames, _ = read_frames(spool)
        assert [f["attempt"] for f in frames if f["kind"] == "open"] == [0, 1]


class TestFoldContract:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_fold_matches_merge_telemetry_bytes(self, tmp_path, shards):
        """The headline identity at 1/3/8 shards: folding the spools
        writes the exact bytes merge_telemetry writes."""
        spec = builtin_campaign("ci-smoke")
        segments = []
        for index in range(shards):
            root = tmp_path / f"seg{index}"
            _stream_shard(spec, Shard(index, shards), root, every=2)
            segments.append(str(root))
        fold_path = str(tmp_path / "fold.jsonl")
        merge_path = str(tmp_path / "merge.jsonl")
        folded = fold_streams(segments, dest_path=fold_path)
        merged = merge_telemetry(segments, dest_path=merge_path)
        assert folded == merged and folded
        with open(fold_path, "rb") as a, open(merge_path, "rb") as b:
            assert a.read() == b.read()

    def test_fold_identity_survives_killed_worker_retries(self, tmp_path):
        """A shard dies mid-run; the retry resumes under attempt 1 and
        its end frame supersedes the partial attempt in the fold."""
        spec = builtin_campaign("ci-smoke")
        deaths = []

        def chaos(shard, attempt):
            if shard.index == 1 and attempt == 0:
                deaths.append(attempt)
                return 1
            return None

        dest = str(tmp_path / "fleet")
        Coordinator(
            spec,
            dest,
            shards=3,
            worker=StubWorker(
                spec, chaos=chaos, stream=True, stream_every=2,
                trial_fn=_stub_trial, batch_size=4,
            ),
            policy=ResiliencePolicy(max_retries=1, backoff_base=0.0),
        ).run()
        assert deaths == [0]
        segments = sorted(
            os.path.dirname(path)
            for path in discover_spools(dest).values()
        )
        frames, _ = read_frames(
            stream_spool(os.path.join(dest, "segments", "shard1of3"))
        )
        assert max(f["attempt"] for f in frames) == 1  # the retry appended
        assert _artifact_bytes(fold_streams(segments)) == _artifact_bytes(
            merge_telemetry(segments)
        )

    def test_fold_identity_survives_torn_spool_and_replay(self, tmp_path):
        """Tear the spool tail AND duplicate frames, then resume the
        shard: the fold still matches the sidecar merge byte for byte."""
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "seg"
        _stream_shard(spec, Shard(0, 2), root, every=2)
        spool = stream_spool(str(root))
        with open(spool, "rb") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        with open(spool, "wb") as handle:
            # Keep a prefix, replay two frames, tear the last line.
            for line in lines[:-3] + lines[1:3]:
                handle.write(line + b"\n")
            handle.write(lines[-1][: len(lines[-1]) // 2])
        # The re-run heals the tail and seals a fresh attempt.
        _stream_shard(spec, Shard(0, 2), root, every=2)
        other = tmp_path / "seg1"
        _stream_shard(spec, Shard(1, 2), other, every=2)
        segments = [str(root), str(other)]
        assert _artifact_bytes(fold_streams(segments)) == _artifact_bytes(
            merge_telemetry(segments)
        )

    def test_live_fold_is_a_prefix_of_the_final_fold(self, tmp_path):
        """Poll mid-stream at every frame boundary: deterministic
        counters only ever grow toward their final values, and no metric
        appears that the final fold lacks."""
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "seg"
        _stream_shard(spec, Shard(0, 1), root, every=2)
        frames, _ = read_frames(stream_spool(str(root)))
        final = deterministic_view(fold_frames(frames))
        previous = 0
        for cut in range(1, len(frames) + 1):
            live = deterministic_view(fold_frames(frames[:cut]))
            assert set(live) <= set(final)
            for name, entry in live.items():
                if entry["type"] == "counter":
                    assert entry["value"] <= final[name]["value"]
            executed = live.get("pool.trials.executed", {}).get("value", 0)
            assert executed >= previous
            previous = executed
        assert deterministic_view(fold_frames(frames)) == final

    def test_streaming_never_perturbs_campaign_artifacts(self, tmp_path):
        """The whole point of the sidecar discipline: a streamed fleet's
        report and store bytes equal a plain fleet's."""
        spec = builtin_campaign("ci-smoke")
        outputs = {}
        for mode, stream in (("plain", False), ("streamed", True)):
            dest = str(tmp_path / mode)
            result = Coordinator(
                spec,
                dest,
                shards=3,
                worker=StubWorker(
                    spec, stream=stream, stream_every=2,
                    trial_fn=_stub_trial, batch_size=4,
                ),
                stream=stream,
            ).run()
            assert result.report is not None
            with open(ResultStore(dest).path, "rb") as handle:
                outputs[mode] = (
                    result.report.to_json(),
                    result.report.render_text(),
                    handle.read(),
                )
        assert outputs["plain"] == outputs["streamed"]


class TestCoordinatorTailing:
    def test_coordinator_tails_spools_concurrently(self, tmp_path):
        spec = builtin_campaign("ci-smoke")
        seen = []
        coordinator = Coordinator(
            spec,
            str(tmp_path / "fleet"),
            shards=3,
            worker=StubWorker(
                spec, stream=True, stream_every=2,
                trial_fn=_stub_trial, batch_size=4,
            ),
            stream=True,
            stream_interval=0.01,
            on_stream=lambda view: seen.append(view.render()),
        )
        result = coordinator.run()
        assert result.completed == 3
        assert seen  # the tail task observed the fleet
        view = coordinator.stream_view
        assert view is not None and view.all_done()
        # The final tailed state is the complete stream: its merged
        # metrics equal the end-of-shard fold exactly.
        segments = [
            os.path.dirname(path)
            for path in discover_spools(str(tmp_path / "fleet")).values()
        ]
        assert view.merged_metrics() == fold_streams(segments)
        assert "3 shards" in seen[-1] and "done" in seen[-1]

    def test_fleet_view_renders_waiting_running_done(self, tmp_path):
        spool = str(tmp_path / "stream.jsonl")
        view = FleetView({"s0": spool}, campaign="demo")
        view.poll()
        assert view.shards["s0"].status == "waiting"
        writer = StreamWriter(spool, shard="s0", total=8, every=2)
        writer.flush({"done": 4, "total": 8, "failures": 1})
        view.poll()
        assert view.shards["s0"].status == "running"
        assert view.shards["s0"].done == 4
        writer.close(snapshot={}, update={"done": 8, "total": 8})
        view.poll()
        assert view.all_done()
        text = view.render()
        assert text.startswith("fleet demo: 1 shards")
        assert "done" in text


class TestObsCli:
    def _record(self, tmp_path):
        # Under segments/ so discover_spools() finds it from the root.
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "segments" / "seg0"
        _stream_shard(spec, Shard(0, 1), root, every=2)
        return root

    def test_obs_commands_reject_missing_and_empty_files(self, tmp_path):
        from repro.telemetry.live import (
            run_obs_report,
            run_obs_tail,
            run_obs_trace,
        )

        lines = []
        missing = str(tmp_path / "nope.jsonl")
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        for body in (run_obs_report, run_obs_trace, run_obs_tail):
            assert body(missing, out=lines.append) == 2
            assert body(empty, out=lines.append) == 2
        assert all(line.startswith("error: ") for line in lines)
        assert any("no recorded run" in line for line in lines)
        assert any("is empty" in line for line in lines)

    def test_obs_report_heals_torn_tail_with_warning(self, tmp_path):
        from repro.telemetry.live import run_obs_report

        root = self._record(tmp_path)
        trace = telemetry_sidecar(str(root))
        with open(trace, "ab") as handle:
            handle.write(b'{"kind": "span", "na')
        lines = []
        assert run_obs_report(trace, out=lines.append) == 0
        assert any(
            line.startswith("warning: ") and "torn telemetry record" in line
            for line in lines
        )

    def test_obs_top_once_and_fold_check(self, tmp_path):
        from repro.telemetry.live import run_obs_fold, run_obs_top

        self._record(tmp_path)
        lines = []
        assert run_obs_top(str(tmp_path), once=True, out=lines.append) == 0
        assert any("1 shards" in line for line in lines)
        lines = []
        assert run_obs_fold(
            str(tmp_path), check=True, out=lines.append
        ) == 0
        assert any("fold == merge_telemetry: ok" in line for line in lines)

    def test_obs_fold_check_fails_on_divergence(self, tmp_path):
        from repro.telemetry.live import run_obs_fold

        root = self._record(tmp_path)
        # Corrupt the *sidecar* (the spool stays sealed): the byte
        # identity must break loudly, not silently pass.
        records = read_jsonl(telemetry_sidecar(str(root)))
        for record in records:
            if record.get("kind") == "metrics":
                record["snapshot"]["pool.trials.executed"]["value"] += 1
        with open(telemetry_sidecar(str(root)), "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        lines = []
        assert run_obs_fold(
            str(tmp_path), check=True, out=lines.append
        ) == 1
        assert any("FOLD MISMATCH" in line for line in lines)

    def test_obs_flame_exports_collapsed_stacks_from_both_inputs(
        self, tmp_path
    ):
        from repro.telemetry.live import run_obs_flame

        # Real trials here: only core.run spans carry cycle counts, and
        # the export must be identical from the sidecar and the spool.
        spec = builtin_campaign("ci-smoke")
        root = tmp_path / "segments" / "seg0"
        run_shard_observed(
            spec,
            Shard(0, 1),
            str(root),
            trace_path=telemetry_sidecar(str(root)),
            stream_path=stream_spool(str(root)),
            stream_every=8,
            batch_size=8,
        )
        outputs = {}
        for name, source in (
            ("trace", telemetry_sidecar(str(root))),
            ("spool", stream_spool(str(root))),
        ):
            target = str(tmp_path / f"{name}.folded")
            assert run_obs_flame(source, output=target, out=lambda _: None) == 0
            with open(target) as handle:
                outputs[name] = handle.read()
        assert outputs["trace"] == outputs["spool"]
        for line in outputs["trace"].splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) >= 0
        assert any(
            ";" in line for line in outputs["trace"].splitlines()
        )  # real nesting collapsed

    def test_obs_top_missing_spools_is_one_line_error(self, tmp_path):
        from repro.telemetry.live import run_obs_top

        lines = []
        assert run_obs_top(str(tmp_path), once=True, out=lines.append) == 2
        assert lines == [
            f"error: no stream spools under {tmp_path} "
            f"(start the fleet with --stream)"
        ]


class TestProgressRenderer:
    def test_progress_line_surfaces_evictions_and_standdowns(self):
        import io

        from repro.telemetry.live import ProgressRenderer

        sink = io.StringIO()
        renderer = ProgressRenderer(stream=sink, name="demo")
        renderer.on_batch(
            {
                "done": 8, "pending": 16, "total": 32, "cached": 16,
                "cell": 1, "cells": 2, "failures": 1,
                "evictions": 3,
                "standdowns": {"resilience-policy": 2, "cache-hit": 1},
            }
        )
        line = sink.getvalue()
        assert "3 evicted" in line
        assert "standdown cache-hitx1,resilience-policyx2" in line

    def test_progress_line_stays_quiet_without_batch_counts(self):
        import io

        from repro.telemetry.live import ProgressRenderer

        sink = io.StringIO()
        ProgressRenderer(stream=sink, name="demo").on_batch(
            {"done": 4, "pending": 8, "total": 8, "cached": 0,
             "cell": 0, "cells": 1, "failures": 0}
        )
        line = sink.getvalue()
        assert "evicted" not in line and "standdown" not in line
