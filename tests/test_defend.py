"""Unit and acceptance tests for ``repro.defend`` -- the detection tier.

Covers the feature schema (one shared rate implementation), the exact
Mann-Whitney AUC, the deterministic calibration artifact, the scenario
registry's training-honesty contract (TET never trains), the streaming
detector's ingestion semantics, and -- as the slow acceptance test --
the full E11 arms race: calibrate on benign/cache traffic, evaluate on
``e11-detect``, and require cache AUC >= 0.95 with every TET window
under the calibrated threshold.

Byte-identity across execution topologies lives in
``test_defend_properties.py``.
"""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, detect_cell
from repro.defend import (
    DEFEND_SCHEMA_VERSION,
    FEATURE_FIELDS,
    RATE_FIELDS,
    Calibration,
    FeatureVector,
    SCENARIOS,
    StreamingDetector,
    auc,
    build_defend_report,
    calibration_campaign,
    fit_calibration,
    get_scenario,
    per_kilo_uop,
    roc_curve,
    scenario_names,
    training_samples,
)
from repro.runtime import DetectTrial, MachineSpec, run_detect_trial


def _vector(**overrides):
    base = dict.fromkeys(FEATURE_FIELDS, 0)
    base.update(cycles=1000, uops_issued=2000, uops_retired=1800)
    base.update(overrides)
    return FeatureVector(**base)


class TestFeatures:
    def test_per_kilo_uop_matches_the_classic_rule_arithmetic(self):
        # The pre-refactor detector computed `kilo = uops / 1000.0` with
        # `uops = max(1, delta)`; the shared helper must be bit-equal.
        for count, uops in ((0, 0), (7, 1), (129, 3500), (5, 999)):
            kilo = max(1, int(uops)) / 1000.0
            assert per_kilo_uop(count, uops) == count / kilo

    def test_zero_uops_never_divides_by_zero(self):
        assert per_kilo_uop(42, 0) == 42 / 0.001

    def test_int_round_trip_is_lossless(self):
        vector = _vector(clflushes=13, llc_misses=77, machine_clears=5)
        assert FeatureVector.from_ints(vector.to_ints()) == vector

    def test_rates_follow_rate_fields_order(self):
        vector = _vector(clflushes=10, llc_misses=20)
        named = vector.rates_dict()
        assert tuple(named) == RATE_FIELDS
        assert vector.rates() == tuple(named[field] for field in RATE_FIELDS)

    def test_from_machine_counter_order_is_the_schema(self):
        # FEATURE_FIELDS is pinned to Core.telemetry_counters() key order;
        # a drift there silently scrambles every stored vector.
        from repro.sim.machine import Machine

        machine = Machine("i7-7700", seed=3)
        counters = machine.core.telemetry_counters()
        assert tuple(counters) == FEATURE_FIELDS


class TestAuc:
    def test_perfect_separation(self):
        assert auc([0.9, 0.8], [0.1, 0.2, 0.3]) == 1.0

    def test_all_ties_is_half(self):
        assert auc([0.5, 0.5], [0.5]) == 0.5

    def test_empty_side_is_none(self):
        assert auc([], [0.1]) is None
        assert auc([0.9], []) is None

    def test_roc_endpoints_and_monotonicity(self):
        points = roc_curve([0.9, 0.7, 0.7], [0.1, 0.4])
        assert points[0] == {"threshold": 1.0, "fpr": 0.0, "tpr": 0.0}
        assert points[-1]["fpr"] == 1.0 and points[-1]["tpr"] == 1.0
        for before, after in zip(points, points[1:]):
            assert after["fpr"] >= before["fpr"]
            assert after["tpr"] >= before["tpr"]

    def test_roc_empty_without_both_classes(self):
        assert roc_curve([], [0.1]) == []


class TestCalibration:
    def _samples(self):
        benign = [
            ("benign", _vector(llc_misses=i, machine_clears=2 * i), False)
            for i in range(1, 5)
        ]
        attack = [
            ("attack", _vector(clflushes=200 + i, llc_misses=200 + i), True)
            for i in range(4)
        ]
        return benign + attack

    def test_fit_separates_and_thresholds_in_margin(self):
        calibration = fit_calibration(self._samples())
        benign_scores = [
            calibration.score(f) for _, f, a in self._samples() if not a
        ]
        attack_scores = [
            calibration.score(f) for _, f, a in self._samples() if a
        ]
        assert max(benign_scores) < calibration.threshold < min(attack_scores)

    def test_fit_requires_both_classes(self):
        with pytest.raises(ValueError):
            fit_calibration([])
        with pytest.raises(ValueError):
            fit_calibration([("benign", _vector(), False)] * 3)

    def test_json_round_trip_is_byte_stable(self):
        calibration = fit_calibration(self._samples())
        clone = Calibration.from_json_dict(json.loads(calibration.to_json()))
        assert clone == calibration
        assert clone.to_json() == calibration.to_json()
        assert clone.digest == calibration.digest

    def test_schema_fences(self):
        data = json.loads(fit_calibration(self._samples()).to_json())
        with pytest.raises(ValueError, match="schema_version"):
            Calibration.from_json_dict(
                {**data, "schema_version": DEFEND_SCHEMA_VERSION + 1}
            )
        with pytest.raises(ValueError, match="feature schema"):
            Calibration.from_json_dict({**data, "rate_fields": ["bogus"]})

    def test_save_load(self, tmp_path):
        calibration = fit_calibration(self._samples())
        path = str(tmp_path / "sub" / "calibration.json")
        calibration.save(path)
        assert Calibration.load(path) == calibration


class TestScenarios:
    def test_registry_shape(self):
        assert scenario_names() == tuple(SCENARIOS)
        assert len(SCENARIOS) >= 8

    def test_training_honesty_tet_is_held_out(self):
        # The E11 question is whether the *unseen* channel clears the
        # fitted bar, so TET must never appear in the training mix.
        for scenario in SCENARIOS.values():
            if scenario.taxonomy == "tet":
                assert scenario.attack and scenario.training_label is None
            elif scenario.taxonomy == "cache":
                assert scenario.attack and scenario.training_label is True
            else:
                assert not scenario.attack
                assert scenario.training_label is False

    def test_calibration_campaign_excludes_tet(self):
        spec = calibration_campaign()
        trained = {cell.param("scenario") for cell in spec.cells}
        assert trained == {
            name
            for name, scenario in SCENARIOS.items()
            if scenario.training_label is not None
        }

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-traffic")


def _small_spec(scenarios=("fr-meltdown", "benign-compute"), trials=2):
    cells = tuple(
        detect_cell(
            MachineSpec(model="i7-7700", seed=500 + index),
            scenario=name,
            trials=trials,
        )
        for index, name in enumerate(scenarios)
    )
    return CampaignSpec(name="defend-small", cells=cells)


def _fit_small(tmp_path):
    spec = _small_spec()
    store = ResultStore(str(tmp_path / "train"))
    CampaignRunner(spec, store=store).run()
    return spec, store, fit_calibration(training_samples(spec, store))


class _Failure:
    """A quarantined outcome: no ``totes``, nothing to score."""


class TestStreamingDetector:
    def test_ingest_is_idempotent_per_coordinate(self, tmp_path):
        spec, store, calibration = _fit_small(tmp_path)
        detector = StreamingDetector(calibration, spec)
        first = detector.ingest_store(store)
        again = detector.ingest_store(store)
        assert first == again == spec.trial_count()
        assert len(detector.verdicts()) == spec.trial_count()

    def test_failures_are_counted_not_scored(self, tmp_path):
        spec, _, calibration = _fit_small(tmp_path)
        detector = StreamingDetector(calibration, spec)
        ref = spec.expand()[0]
        assert detector.ingest(ref, _Failure()) is None
        assert detector.failed_windows == 1
        assert detector.verdicts() == []

    def test_detection_latency_is_first_flagged_window(self, tmp_path):
        spec, store, calibration = _fit_small(tmp_path)
        detector = StreamingDetector(calibration, spec)
        detector.ingest_store(store)
        latencies = detector.detection_latencies()
        # Attack streams only; fr-meltdown flags in its first window.
        assert set(latencies) == {(0, 0)}
        assert latencies[(0, 0)] == 1


class TestDefendReport:
    def test_report_shape_and_gates(self, tmp_path):
        spec, store, calibration = _fit_small(tmp_path)
        detector = StreamingDetector(calibration, spec)
        detector.ingest_store(store)
        report = build_defend_report(detector, min_auc=0.95)
        data = json.loads(report.to_json())
        assert data["schema_version"] == DEFEND_SCHEMA_VERSION
        assert data["calibration_digest"] == calibration.digest
        assert {r["scenario"] for r in data["scenarios"]} == {
            "fr-meltdown",
            "benign-compute",
        }
        assert report.gates["cache_auc_ok"] is True
        assert report.gates["tet_under_threshold_ok"] is True
        assert report.passed
        assert "verdict  : PASS" in report.render_text()

    def test_unarmed_min_auc_leaves_gate_off(self, tmp_path):
        spec, store, calibration = _fit_small(tmp_path)
        detector = StreamingDetector(calibration, spec)
        detector.ingest_store(store)
        report = build_defend_report(detector)
        assert "cache_auc_ok" not in report.gates


class TestBaselinesBridge:
    def test_detection_report_carries_the_feature_vector(self):
        from repro.baselines.detector import CacheAttackDetector
        from repro.sim.machine import Machine

        machine = Machine("i7-7700", seed=5)
        report = CacheAttackDetector().monitor(machine, lambda: None)
        assert report.vector is not None
        assert report.clflush_per_kilo_uop == report.vector.clflush_per_kilo_uop
        assert report.llc_miss_per_kilo_uop == report.vector.llc_miss_per_kilo_uop


@pytest.mark.slow
class TestE11Acceptance:
    def test_cache_flagged_tet_under_threshold(self, tmp_path):
        from repro.campaign import builtin_campaign

        train_store = ResultStore(str(tmp_path / "train"))
        train_spec = calibration_campaign()
        CampaignRunner(train_spec, store=train_store).run()
        calibration = fit_calibration(training_samples(train_spec, train_store))

        spec = builtin_campaign("e11-detect")
        store = ResultStore(str(tmp_path / "eval"))
        detector = StreamingDetector(calibration, spec)
        CampaignRunner(spec, store=store, sink=detector.sink).run()

        report = build_defend_report(detector, min_auc=0.95)
        assert report.gates["cache_auc"] >= 0.95
        assert report.gates["tet_max_score"] <= calibration.threshold
        assert report.summary["false_positive_rate"] == 0.0
        assert report.passed
        # Every cache stream is caught, and caught fast.
        latencies = {
            record["scenario"]: record["latency"] for record in report.latencies
        }
        for record in report.latencies:
            if record["scenario"].startswith("fr-"):
                assert record["latency"] == 1
            else:
                assert record["latency"] is None
        assert any(name.startswith("fr-") for name in latencies)

    def test_detect_trial_is_a_pure_function_of_its_payload(self):
        spec = MachineSpec(model="i7-7700", seed=11)
        trial = DetectTrial(spec, "tet-md", 3)
        assert run_detect_trial(trial) == run_detect_trial(trial)
