"""Timing-behaviour tests for the pipeline model itself.

The channel's credibility rests on the pipeline behaving like a pipeline:
dependency chains serialise, independent work overlaps, ports saturate,
the ROB fills, stores forward to loads.  These tests pin those behaviours
down with traced runs.
"""

import pytest

from repro.sim.machine import Machine
from tests.conftest import run_source


def tote(result):
    return result.regs.read("r15") - result.regs.read("r14")


def timed(body: str) -> str:
    return f"""
    rdtsc
    mov r14, rax
{body}
    rdtsc
    mov r15, rax
    hlt
"""


class TestDependencyChains:
    def test_serial_chain_slower_than_parallel(self, machine):
        chain = "\n".join("    add rax, 1" for _ in range(24))
        parallel = "\n".join(
            f"    add {reg}, 1"
            for _ in range(4)
            for reg in ("rax", "rbx", "rcx", "rsi", "rdi", "rbp")
        )
        chain_program = machine.load_program(timed(chain))
        parallel_program = machine.load_program(timed(parallel))
        for _ in range(2):  # warm code
            machine.run(chain_program)
            machine.run(parallel_program)
        chain_time = tote(machine.run(chain_program))
        parallel_time = tote(machine.run(parallel_program))
        assert chain_time > parallel_time

    def test_load_dependent_add_waits(self, machine):
        data = machine.alloc_data()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]
    add rcx, 1
    hlt
""")
        result = machine.run(program, record_trace=True)
        load = next(r for r in result.records if str(r.instruction).startswith("load"))
        add = next(r for r in result.records if str(r.instruction).startswith("add"))
        assert add.start_cycle >= load.ready_cycle

    def test_independent_work_overlaps_a_load(self, machine):
        data = machine.alloc_data()
        machine.flush_caches()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]          ; DRAM-cold load
    add rsi, 1              ; independent
    add rdi, 1              ; independent
    hlt
""")
        result = machine.run(program, record_trace=True)
        load = next(r for r in result.records if str(r.instruction).startswith("load"))
        adds = [r for r in result.records if str(r.instruction).startswith("add")]
        assert all(add.ready_cycle < load.ready_cycle for add in adds)


class TestPortContention:
    def test_load_ports_saturate(self, machine):
        """With 2 load ports, 8 independent loads issue over >= 4 cycles."""
        pages = [machine.alloc_data() for _ in range(8)]
        setup = "\n".join(
            f"    mov {reg}, {hex(va)}"
            for reg, va in zip(("rax", "rbx", "rcx", "rsi", "rdi", "rbp", "r8", "r9"), pages)
        )
        loads = "\n".join(
            f"    mov r10, [{reg}]"
            for reg in ("rax", "rbx", "rcx", "rsi", "rdi", "rbp", "r8", "r9")
        )
        program = machine.load_program(setup + "\n" + loads + "\nhlt")
        machine.run(program)  # warm
        result = machine.run(program, record_trace=True)
        starts = sorted(
            r.start_cycle for r in result.records if str(r.instruction).startswith("load")
        )
        span = starts[-1] - starts[0]
        assert span >= (8 // machine.model.load_ports) - 1

    def test_alu_wider_than_load(self, machine):
        assert machine.model.alu_ports > machine.model.load_ports


class TestRobPressure:
    def test_rob_full_stalls_allocation(self):
        """A DRAM-cold load at the head plus >ROB-size independent adds
        must trip the resource-stall counter.  A small-ROB variant keeps
        the experiment frontend-independent."""
        import dataclasses

        from repro.uarch.config import cpu_model

        model = dataclasses.replace(cpu_model("i7-7700"), rob_size=64)
        machine = Machine(model, seed=1234)
        data = machine.alloc_data()
        adds = "\n".join("    add rsi, 1" for _ in range(192))
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]
{adds}
    hlt
""")
        machine.run(program)  # warm the code so the frontend keeps up
        machine.mmu.clflush(data)  # only the head load goes to DRAM
        before = machine.pmu.read("RESOURCE_STALLS.ANY")
        machine.run(program)
        assert machine.pmu.read("RESOURCE_STALLS.ANY") > before

    def test_execution_correct_under_rob_pressure(self, machine):
        count = machine.model.rob_size + 50
        adds = "\n".join("    add rsi, 1" for _ in range(count))
        result = run_source(machine, adds + "\nhlt")
        assert result.regs.read("rsi") == count


class TestStoreToLoadForwarding:
    def test_load_sees_in_flight_store_value(self, machine):
        data = machine.alloc_data()
        result = run_source(machine, f"""
    mov rbx, {hex(data)}
    mov rax, 0x1234
    mov [rbx], rax
    mov rcx, [rbx]
    hlt
""")
        assert result.regs.read("rcx") == 0x1234

    def test_load_waits_for_the_store(self, machine):
        data = machine.alloc_data()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]          ; slow: makes the store's data late
    mov [rbx + 8], rcx
    mov rsi, [rbx + 8]      ; must wait for the store
    hlt
""")
        machine.flush_caches()
        result = machine.run(program, record_trace=True)
        store = next(r for r in result.records if str(r.instruction).startswith("store"))
        dependent = [r for r in result.records if r.memory_va == store.memory_va]
        load_after = dependent[-1]
        assert load_after.start_cycle >= store.ready_cycle


class TestSerialization:
    def test_lfence_orders_dispatch(self, machine):
        program = machine.load_program(timed("    lfence\n    add rax, 1"))
        machine.run(program)
        result = machine.run(program, record_trace=True)
        fence = next(r for r in result.records if str(r.instruction) == "lfence")
        add = next(r for r in result.records if str(r.instruction).startswith("add"))
        assert add.dispatch_cycle >= fence.ready_cycle

    def test_rdtsc_waits_for_older_work(self, machine):
        data = machine.alloc_data()
        machine.flush_caches()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]          ; DRAM-cold
    rdtsc
    mov r14, rax
    hlt
""")
        result = machine.run(program, record_trace=True)
        load = next(r for r in result.records if str(r.instruction).startswith("load"))
        stamp = next(r for r in result.records if str(r.instruction) == "rdtsc")
        assert stamp.start_cycle >= load.ready_cycle


class TestRetirement:
    def test_retirement_is_in_order(self, machine):
        data = machine.alloc_data()
        machine.flush_caches()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]          ; slow
    add rsi, 1              ; fast but younger
    hlt
""")
        result = machine.run(program, record_trace=True)
        retires = [r.retire_cycle for r in result.records if r.retire_cycle is not None]
        assert retires == sorted(retires)

    def test_fast_younger_op_retires_after_slow_older_op(self, machine):
        data = machine.alloc_data()
        machine.flush_caches()
        program = machine.load_program(f"""
    mov rbx, {hex(data)}
    mov rcx, [rbx]
    add rsi, 1
    hlt
""")
        result = machine.run(program, record_trace=True)
        load = next(r for r in result.records if str(r.instruction).startswith("load"))
        add = next(r for r in result.records if str(r.instruction).startswith("add"))
        assert add.ready_cycle < load.ready_cycle  # executed earlier...
        assert add.retire_cycle >= load.retire_cycle  # ...retired no earlier

    def test_retire_width_bounds_throughput(self, machine):
        nops = "\n".join("    nop" for _ in range(64))
        program = machine.load_program(nops + "\nhlt")
        machine.run(program)
        result = machine.run(program, record_trace=True)
        retire_cycles = [r.retire_cycle for r in result.records if r.retire_cycle]
        per_cycle = {}
        for cycle in retire_cycles:
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= machine.model.retire_width
