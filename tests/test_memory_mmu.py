"""Unit tests for the MMU facade: faults, TLB fill policy, latencies."""

import pytest

from repro.memory.mmu import FaultKind
from tests.conftest import make_mmu


class TestSuccessfulAccess:
    def test_user_load(self):
        mmu, _, addr = make_mmu()
        mmu.physical.write_u64(0x20008, 0x1234)
        result = mmu.data_access(addr["user"] + 8)
        assert result.ok and result.value == 0x1234

    def test_store_then_load(self):
        mmu, _, addr = make_mmu()
        mmu.data_access(addr["user"], write=True, value=0xAB, size=1)
        result = mmu.data_access(addr["user"], size=1)
        assert result.value == 0xAB

    def test_second_access_is_tlb_hit_and_faster(self):
        mmu, _, addr = make_mmu()
        first = mmu.data_access(addr["user"])
        second = mmu.data_access(addr["user"])
        assert not first.tlb_hit and second.tlb_hit
        assert second.latency < first.latency

    def test_supervisor_can_read_kernel_page(self):
        mmu, _, addr = make_mmu()
        result = mmu.data_access(addr["kernel"], user=False)
        assert result.ok


class TestFaults:
    def test_user_access_to_kernel_page_is_protection_fault(self):
        mmu, _, addr = make_mmu()
        result = mmu.data_access(addr["kernel"], user=True)
        assert result.fault is not None
        assert result.fault.kind is FaultKind.PROTECTION
        assert result.fault.address_is_mapped

    def test_unmapped_access_is_not_present_fault(self):
        mmu, _, addr = make_mmu()
        result = mmu.data_access(addr["unmapped"])
        assert result.fault.kind is FaultKind.NOT_PRESENT
        assert not result.fault.address_is_mapped

    def test_write_to_readonly_page(self):
        mmu, space, _ = make_mmu()
        space.map_page(0x30000, 0x50000, writable=False, user=True)
        result = mmu.data_access(0x30000, write=True, value=1)
        assert result.fault.kind is FaultKind.WRITE_PROTECT

    def test_faulting_access_has_no_architectural_effect(self):
        mmu, _, addr = make_mmu()
        mmu.data_access(addr["kernel"], write=True, value=0xFF, size=1, user=True)
        assert mmu.physical.read_u8(0x40000000) == 0

    def test_fault_includes_va(self):
        mmu, _, addr = make_mmu()
        result = mmu.data_access(addr["unmapped"] + 0x123)
        assert result.fault.va == addr["unmapped"] + 0x123


class TestTlbFillPolicy:
    """The TET-KASLR root cause: fill-on-faulting-access."""

    def test_intel_fills_tlb_on_protection_fault(self):
        mmu, _, addr = make_mmu(fill_tlb_on_fault=True)
        mmu.data_access(addr["kernel"], user=True)
        second = mmu.data_access(addr["kernel"], user=True)
        assert second.tlb_hit
        assert second.latency < 12

    def test_amd_does_not_fill_tlb_on_protection_fault(self):
        mmu, _, addr = make_mmu(fill_tlb_on_fault=False)
        mmu.data_access(addr["kernel"], user=True)
        second = mmu.data_access(addr["kernel"], user=True)
        assert not second.tlb_hit

    def test_not_present_never_fills_tlb(self):
        mmu, _, addr = make_mmu(fill_tlb_on_fault=True)
        mmu.data_access(addr["unmapped"])
        second = mmu.data_access(addr["unmapped"])
        assert not second.tlb_hit

    def test_mapped_faster_than_unmapped_on_repeat_probe(self):
        mmu, _, addr = make_mmu(fill_tlb_on_fault=True)
        mmu.data_access(addr["kernel"], user=True)
        mmu.data_access(addr["unmapped"], user=True)
        mapped = mmu.data_access(addr["kernel"], user=True)
        unmapped = mmu.data_access(addr["unmapped"], user=True)
        assert mapped.latency < unmapped.latency

    def test_amd_mapped_and_unmapped_indistinguishable(self):
        mmu, _, addr = make_mmu(fill_tlb_on_fault=False)
        # Spaced request times keep walker queueing out of the comparison.
        mmu.data_access(addr["kernel"], user=True, now=10_000)
        mmu.data_access(addr["unmapped"], user=True, now=20_000)
        mapped = mmu.data_access(addr["kernel"], user=True, now=30_000)
        unmapped = mmu.data_access(addr["unmapped"], user=True, now=40_000)
        assert abs(mapped.latency - unmapped.latency) <= 2


class TestFlushAndSwitch:
    def test_flush_tlb_forces_walk(self):
        mmu, _, addr = make_mmu()
        mmu.data_access(addr["user"])
        mmu.flush_tlb()
        assert not mmu.data_access(addr["user"]).tlb_hit

    def test_cr3_switch_keeps_global_entries(self):
        mmu, space, addr = make_mmu()
        mmu.data_access(addr["kernel"], user=False)  # global kernel page
        mmu.data_access(addr["user"])  # non-global user page
        mmu.set_address_space(space)  # CR3 write
        assert mmu.data_access(addr["kernel"], user=False).tlb_hit
        assert not mmu.data_access(addr["user"]).tlb_hit

    def test_invalidate_page(self):
        mmu, _, addr = make_mmu()
        mmu.data_access(addr["user"])
        mmu.invalidate_page(addr["user"])
        assert not mmu.data_access(addr["user"]).tlb_hit


class TestPeeksAndClflush:
    def test_peek_physical_reads_through_permissions(self):
        mmu, _, addr = make_mmu()
        mmu.physical.write_u8(0x40000000, 0x53)
        assert mmu.peek_physical(addr["kernel"]) == 0x53

    def test_peek_unmapped_is_none(self):
        mmu, _, addr = make_mmu()
        assert mmu.peek_physical(addr["unmapped"]) is None

    def test_peek_has_no_cache_side_effect(self):
        mmu, _, addr = make_mmu()
        mmu.peek_physical(addr["user"])
        assert mmu.data_access(addr["user"]).hit_level == "DRAM"

    def test_poke_raw_roundtrip(self):
        mmu, _, addr = make_mmu()
        mmu.poke_raw_bytes(addr["user"], b"hello")
        assert mmu.peek_raw_bytes(addr["user"], 5) == b"hello"

    def test_poke_unmapped_raises(self):
        mmu, _, addr = make_mmu()
        with pytest.raises(ValueError):
            mmu.poke_raw_bytes(addr["unmapped"], b"x")

    def test_clflush_evicts(self):
        mmu, _, addr = make_mmu()
        mmu.data_access(addr["user"])
        assert mmu.clflush(addr["user"]) is True
        assert mmu.data_access(addr["user"]).hit_level == "DRAM"

    def test_clflush_unmapped_is_noop(self):
        mmu, _, addr = make_mmu()
        assert mmu.clflush(addr["unmapped"]) is False


class TestInstructionFetch:
    def test_fetch_from_user_code(self):
        mmu, space, _ = make_mmu()
        space.map_page(0x400000, 0x60000, user=True)
        result = mmu.instruction_fetch(0x400000)
        assert result.fault is None

    def test_fetch_from_nx_page_faults(self):
        mmu, space, _ = make_mmu()
        space.map_page(0x500000, 0x70000, user=True, nx=True)
        result = mmu.instruction_fetch(0x500000)
        assert result.fault.kind is FaultKind.NX

    def test_walk_accounting_split_by_side(self):
        mmu, space, addr = make_mmu()
        space.map_page(0x400000, 0x60000, user=True)
        mmu.instruction_fetch(0x400000)
        mmu.data_access(addr["user"])
        assert mmu.iside_walks == 1
        assert mmu.dside_walks == 1
        assert mmu.iside_walk_cycles > 0
        assert mmu.dside_walk_cycles > 0


class TestLfbIntegration:
    def test_dram_fill_records_lfb_entry(self):
        mmu, _, addr = make_mmu()
        before = len(mmu.lfb)
        mmu.data_access(addr["user"])
        assert len(mmu.lfb) == before + 1

    def test_l1_hit_does_not_record(self):
        mmu, _, addr = make_mmu()
        mmu.data_access(addr["user"])
        count = len(mmu.lfb)
        mmu.data_access(addr["user"])
        assert len(mmu.lfb) == count

    def test_lfb_snapshot_contains_line_data(self):
        mmu, _, addr = make_mmu()
        mmu.physical.write_bytes(0x20000, b"SECRET")
        mmu.data_access(addr["user"])
        stale = mmu.lfb.sample_stale(0)
        assert stale == ord("S")
