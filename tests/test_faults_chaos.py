"""Chaos suite: seeded fault plans against campaign-scale runs.

The determinism-of-failure contract under test: with a fixed
:class:`FaultPlan` seed, retry counts, quarantine lists, failure records
and campaign artifacts are *byte-identical* across worker counts and
across a run interrupted mid-campaign and resumed.  And whatever the
chaos, a run never deadlocks, never loses a successful result, and a
torn checkpoint costs at most one batch.

``REPRO_CHAOS_SEED`` selects the plan seed (CI sweeps several fixed
seeds); the long randomized sweep rides under the ``slow`` marker.
"""

import os
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    builtin_campaign,
    channel_cell,
    trial_key,
)
from repro.faults import (
    FaultPlan,
    ResiliencePolicy,
    SimulatedCrash,
    TornStore,
    payload_fingerprint,
)
from repro.runtime import MachineSpec, TrialFailure, TrialPool, TrialResult

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))


def _stub_trial(trial):
    """A deterministic stand-in for ``run_trial``: campaign-shaped grids
    (thousands of refs) sweep in seconds instead of minutes."""
    fingerprint = payload_fingerprint(trial)
    return TrialResult(
        totes=(fingerprint % 997, (fingerprint >> 16) % 997),
        cycles=fingerprint % 100_000,
    )


def _sleepy_trial(trial):
    """A genuinely wedged trial (real wall-clock, only used with tiny
    deadlines) -- everything else returns instantly."""
    if trial == "slow":
        time.sleep(30.0)
    return TrialResult(totes=(1,), cycles=1)


def small_real_spec(seed=7) -> CampaignSpec:
    """16 real trials (2 payload bytes x 8 test values) -- the smallest
    campaign whose report exercises decode + failure sections."""
    return CampaignSpec(
        name="chaos-real",
        cells=(
            channel_cell(
                MachineSpec(seed=seed), payload=b"\x05\x02", batches=2,
                values=range(8),
            ),
        ),
    )


def run_stub_campaign(spec, workers, plan, tmp_path, tag, retries=2,
                      batch_size=256):
    """One chaotic stub-trial run; returns everything determinism covers."""
    store = ResultStore(str(tmp_path / tag))
    with TrialPool(
        workers=workers, policy=ResiliencePolicy(max_retries=retries)
    ) as pool:
        pool.install_faults(plan)
        runner = CampaignRunner(
            spec, store=store, pool=pool, batch_size=batch_size,
            trial_fn=_stub_trial,
        )
        report, stats = runner.run()
        return {
            "artifact": report.to_json(),
            "text": report.render_text(),
            "quarantine": [
                (entry.index, entry.attempts, entry.faults, entry.error)
                for entry in pool.quarantine
            ],
            "stats": pool.fault_stats.as_dict(),
            "failures": stats.failures,
            "store": store,
        }


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_campaign_scale_chaos_is_worker_count_invariant(
        self, tmp_path, workers
    ):
        """An e3-matrix-sized grid under seeded chaos: serial and pooled
        runs agree on every byte -- artifact, quarantine, counters."""
        spec = builtin_campaign("e3-matrix")
        plan = FaultPlan.chaos(seed=CHAOS_SEED, rate=0.02)
        serial = run_stub_campaign(spec, 1, plan, tmp_path, "serial")
        pooled = run_stub_campaign(spec, workers, plan, tmp_path, f"w{workers}")
        assert serial["artifact"] == pooled["artifact"]
        assert serial["text"] == pooled["text"]
        assert serial["quarantine"] == pooled["quarantine"]
        assert serial["stats"] == pooled["stats"]

    def test_chaos_never_loses_successful_results(self, tmp_path):
        """Every trial the chaotic run did NOT quarantine carries exactly
        the result a fault-free run produces."""
        spec = builtin_campaign("e3-matrix")
        plan = FaultPlan.chaos(seed=CHAOS_SEED, rate=0.05)
        chaotic = run_stub_campaign(spec, 4, plan, tmp_path, "chaotic",
                                    retries=1)
        clean_store = ResultStore(str(tmp_path / "clean"))
        CampaignRunner(
            spec, store=clean_store, trial_fn=_stub_trial
        ).run()
        refs = spec.expand()
        keys = [trial_key(ref.trial) for ref in refs]
        chaotic_outcomes = chaotic["store"].get_many(keys)
        clean_outcomes = clean_store.get_many(keys)
        assert len(chaotic_outcomes) == len(clean_outcomes) == len(refs)
        survivors = 0
        for key in keys:
            outcome = chaotic_outcomes[key]
            if isinstance(outcome, TrialFailure):
                continue
            assert outcome == clean_outcomes[key]
            survivors += 1
        assert survivors == len(refs) - chaotic["failures"]
        assert survivors > 0


class TestTimeouts:
    def test_wedged_trial_hits_the_deadline_not_the_suite(self, tmp_path):
        """A genuinely stuck trial is terminated at the policy deadline
        and quarantined as a timeout -- the run never waits it out."""
        started = time.monotonic()
        with TrialPool(
            workers=2,
            policy=ResiliencePolicy(max_retries=0, timeout=0.3),
        ) as pool:
            results = pool.map(_sleepy_trial, ["a", "slow", "b"])
        elapsed = time.monotonic() - started
        assert elapsed < 10.0  # nowhere near the 30 s sleep
        assert isinstance(results[1], TrialFailure)
        assert results[1].faults == ("timeout",)
        assert "deadline" in results[1].error
        assert results[0] == results[2] == TrialResult(totes=(1,), cycles=1)
        assert pool.fault_stats.timeouts == 1
        assert [entry.index for entry in pool.quarantine] == [1]


class InterruptingPool(TrialPool):
    """A pool killed after *survive* map calls -- a deterministic
    mid-campaign crash (same shape as test_campaign_runner's)."""

    def __init__(self, survive, **kwargs):
        super().__init__(**kwargs)
        self.survive = survive
        self.calls = 0

    def map(self, fn, payloads):
        self.calls += 1
        if self.calls > self.survive:
            raise KeyboardInterrupt
        return super().map(fn, payloads)


class TestAcceptance:
    def test_fixed_seed_reports_identical_across_workers_and_resume(
        self, tmp_path
    ):
        """The PR acceptance criterion: one FaultPlan seed, three
        execution shapes -- workers=1, workers=8, and a run killed
        mid-campaign then resumed -- produce byte-identical reports,
        including the failures section, over REAL trials."""
        spec = small_real_spec()
        # rate=0.7 with 1 retry: some trials all but surely exhaust their
        # retries, so the failures section is provably part of the identity.
        plan = FaultPlan.chaos(seed=CHAOS_SEED, rate=0.7)
        policy = ResiliencePolicy(max_retries=1)
        artifacts = {}
        for label, workers in (("w1", 1), ("w8", 8)):
            store = ResultStore(str(tmp_path / label))
            with TrialPool(workers=workers, policy=policy) as pool:
                pool.install_faults(plan)
                report, stats = CampaignRunner(
                    spec, store=store, pool=pool
                ).run()
            artifacts[label] = (report.to_json(), report.render_text(), stats)

        # Third shape: killed after 2 of 4 batches, resumed pooled.
        store = ResultStore(str(tmp_path / "resumed"))
        pool = InterruptingPool(survive=2, workers=1, policy=policy)
        pool.install_faults(plan)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(spec, store=store, pool=pool, batch_size=4).run()
        pool.close()
        assert 0 < len(ResultStore(str(tmp_path / "resumed"))) < 16
        with TrialPool(workers=8, policy=policy) as pool:
            pool.install_faults(plan)
            report, stats = CampaignRunner(
                spec, store=ResultStore(str(tmp_path / "resumed")), pool=pool,
                batch_size=4,
            ).run()
        artifacts["resumed"] = (report.to_json(), report.render_text(), stats)

        w1, w8, resumed = (
            artifacts["w1"], artifacts["w8"], artifacts["resumed"],
        )
        assert w1[0] == w8[0] == resumed[0]
        assert w1[1] == w8[1] == resumed[1]
        # The identity is non-vacuous: failures made it into the artifact.
        assert w1[2].failures > 0
        assert '"failures"' in w1[0]

    def test_max_failures_aborts_after_checkpoint(self, tmp_path):
        from repro.campaign import CampaignAborted

        spec = small_real_spec()
        plan = FaultPlan.chaos(seed=CHAOS_SEED, rate=0.9)
        store = ResultStore(str(tmp_path))
        with TrialPool(
            workers=1, policy=ResiliencePolicy(max_retries=0)
        ) as pool:
            pool.install_faults(plan)
            with pytest.raises(CampaignAborted) as info:
                CampaignRunner(
                    spec, store=store, pool=pool, batch_size=4,
                    max_failures=0,
                ).run()
        assert info.value.failures > 0
        # Everything before the abort was checkpointed (durable resume).
        assert len(ResultStore(str(tmp_path))) >= 4


class TestTornCheckpoint:
    def test_torn_checkpoint_loses_at_most_one_batch(self, tmp_path):
        """Regression: the writer dies mid-batch leaving a torn record;
        the next run detects it, loses at most that one batch, and ends
        byte-identical to a never-interrupted run."""
        spec = small_real_spec()
        cold, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "cold"))
        ).run()

        torn = TornStore(str(tmp_path / "torn"), survive=5)
        with pytest.raises(SimulatedCrash):
            CampaignRunner(spec, store=torn, batch_size=4).run()

        reloaded = ResultStore(str(tmp_path / "torn"))
        with pytest.warns(UserWarning, match="corrupt store record"):
            survivors = len(reloaded)
        # 5 whole records survived the tear; the torn tail is dropped.
        assert survivors == 5
        attempted = 8  # two batches of 4 ran before the crash
        assert attempted - survivors <= 4  # at most one batch lost

        with pytest.warns(UserWarning, match="corrupt store record"):
            replay, stats = CampaignRunner(
                spec, store=ResultStore(str(tmp_path / "torn"))
            ).run()
        assert stats.cached == 5
        assert stats.executed == 11
        assert replay.to_json() == cold.to_json()
        assert replay.render_text() == cold.render_text()


@pytest.mark.slow
class TestRandomizedSweep:
    def test_many_seeds_stay_worker_count_invariant(self, tmp_path):
        """The long sweep: several derived plan seeds, full stub grid,
        serial vs pooled identity on every one."""
        import random

        rng = random.Random(CHAOS_SEED)
        spec = builtin_campaign("e3-matrix")
        for round_index in range(5):
            seed = rng.getrandbits(32)
            plan = FaultPlan.chaos(seed=seed, rate=0.04)
            serial = run_stub_campaign(
                spec, 1, plan, tmp_path, f"s{round_index}", retries=1
            )
            pooled = run_stub_campaign(
                spec, 4, plan, tmp_path, f"p{round_index}", retries=1
            )
            assert serial["artifact"] == pooled["artifact"], seed
            assert serial["quarantine"] == pooled["quarantine"], seed
            assert serial["stats"] == pooled["stats"], seed
