"""Unit tests for the gadget builders."""

import pytest

from repro.isa.opcodes import Op
from repro.sim.machine import Machine
from repro.whisper.gadgets import RESUME_LABEL, GadgetBuilder, Suppression


class TestBuilderSetup:
    def test_default_suppression_follows_tsx_availability(self, machine, amd_machine):
        assert GadgetBuilder(machine).suppression is Suppression.TSX
        assert GadgetBuilder(amd_machine).suppression is Suppression.SIGNAL

    def test_explicit_tsx_on_amd_rejected(self, amd_machine):
        with pytest.raises(ValueError, match="TSX"):
            GadgetBuilder(amd_machine, suppression=Suppression.TSX)

    def test_signal_mode_registers_handler(self, machine):
        builder = GadgetBuilder(machine, suppression=Suppression.SIGNAL)
        program = builder.figure1()
        assert getattr(program, "signal_handler_pc", None) == program.label_address(
            RESUME_LABEL
        )


class TestGadgetShapes:
    def test_figure1_has_fault_jcc_and_timestamps(self, machine):
        program = GadgetBuilder(machine).figure1()
        ops = [instruction.op for instruction in program]
        assert ops.count(Op.RDTSC) == 2
        assert Op.JCC in ops
        assert Op.XBEGIN in ops and Op.XEND in ops

    def test_meltdown_compares_the_transient_register(self, machine):
        program = GadgetBuilder(machine).meltdown()
        compares = [i for i in program if i.op is Op.CMP]
        assert compares[0].dst == "r8"  # the faulting load's destination

    def test_figure1_compares_the_architectural_register(self, machine):
        program = GadgetBuilder(machine).figure1()
        compares = [i for i in program if i.op is Op.CMP]
        assert compares[0].dst == "rbx"

    def test_zombieload_sled_length(self, machine):
        short = GadgetBuilder(machine).zombieload(sled=4)
        long = GadgetBuilder(machine).zombieload(sled=40)
        nops = lambda p: sum(1 for i in p if i.op is Op.NOP)
        assert nops(long) - nops(short) == 36

    def test_zombieload_jcc_skips_forward(self, machine):
        program = GadgetBuilder(machine).zombieload(sled=8)
        jcc = next(i for i in program if i.op is Op.JCC)
        assert jcc.target == "zbl_end"

    def test_rsb_contains_the_listing1_ingredients(self, machine):
        program = GadgetBuilder(machine).spectre_rsb()
        ops = [instruction.op for instruction in program]
        for op in (Op.CALL, Op.RET, Op.CLFLUSH, Op.JCC, Op.LOAD_BYTE):
            assert op in ops
        # The movabs of the overwritten return target.
        mov_label = [i for i in program if i.op is Op.MOV_RI and i.target]
        assert mov_label and mov_label[0].target == "rsb_final"

    def test_kaslr_probe_shape(self, machine):
        program = GadgetBuilder(machine).kaslr_probe()
        ops = [instruction.op for instruction in program]
        assert Op.MFENCE in ops
        assert Op.LOAD in ops
        assert Op.JCC in ops

    def test_signal_variants_have_no_tsx(self, machine):
        builder = GadgetBuilder(machine, suppression=Suppression.SIGNAL)
        for program in (builder.figure1(), builder.meltdown(), builder.zombieload()):
            ops = {instruction.op for instruction in program}
            assert Op.XBEGIN not in ops and Op.XEND not in ops


class TestGadgetsRun:
    """Every gadget must run to completion and honour the r14/r15 pact."""

    def run_ok(self, machine, program, regs):
        result = machine.run(program, regs=regs)
        assert result.halted
        assert result.regs.read("r15") >= result.regs.read("r14") >= 0
        return result

    def test_figure1_runs(self, machine):
        page = machine.alloc_data()
        program = GadgetBuilder(machine).figure1()
        self.run_ok(machine, program, {"r12": page, "r13": 0, "r9": 7})

    def test_meltdown_runs(self, machine):
        program = GadgetBuilder(machine).meltdown()
        self.run_ok(machine, program, {"r13": machine.kernel.secret_va, "r9": 7})

    def test_zombieload_runs(self, machine):
        program = GadgetBuilder(machine).zombieload()
        self.run_ok(machine, program, {"r13": 0, "r9": 7})

    def test_rsb_runs(self, machine):
        stack = machine.alloc_data(2)
        secret = machine.alloc_data()
        program = GadgetBuilder(machine).spectre_rsb()
        self.run_ok(
            machine, program, {"rsp": stack + 0x1800, "r12": secret, "r9": 7}
        )

    def test_kaslr_probe_runs_on_mapped_and_unmapped(self, machine):
        program = GadgetBuilder(machine).kaslr_probe()
        self.run_ok(machine, program, {"r13": machine.kernel.layout.base, "r9": 256})
        self.run_ok(machine, program, {"r13": 0xFFFF_FFFF_BFFF_0000, "r9": 256})

    def test_signal_variants_run_on_amd(self, amd_machine):
        builder = GadgetBuilder(amd_machine)
        page = amd_machine.alloc_data()
        program = builder.figure1()
        result = amd_machine.run(program, regs={"r12": page, "r13": 0, "r9": 1})
        assert result.halted

    def test_nop_loop_timed(self, machine):
        program = GadgetBuilder(machine).nop_loop(iterations=8)
        result = machine.run(program)
        assert result.regs.read("r15") > result.regs.read("r14")

    def test_fault_burst_produces_flushes(self, machine):
        program = GadgetBuilder(machine).fault_burst(faults=3)
        result = machine.run(program, regs={"r13": 0}, record_trace=True)
        assert len(result.events.flushes) == 3

    def test_idle_loop_produces_no_flushes(self, machine):
        program = GadgetBuilder(machine).idle_loop(iterations=16)
        result = machine.run(program, record_trace=True)
        assert len(result.events.flushes) == 0
