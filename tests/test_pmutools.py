"""Functional tests for the Figure 2 PMU pipeline."""

import pytest

from repro.pmutools.collector import OnlineCollector
from repro.pmutools.differential import DifferentialFilter
from repro.pmutools.events import counter_groups, prepare_events
from repro.pmutools.pipeline import PmuPipeline
from repro.pmutools.report import answers_by_domain, render_table3
from repro.pmutools.scenarios import (
    TetCcScenario,
    TetKaslrScenario,
    TetMdScenario,
    TransientFlowScenario,
)
from repro.sim.machine import Machine
from repro.uarch.config import cpu_model


class TestPreparation:
    def test_intel_and_amd_event_sets_differ(self):
        intel = prepare_events(cpu_model("i7-7700"))
        amd = prepare_events(cpu_model("ryzen-5600G"))
        assert {e.name for e in intel}.isdisjoint({e.name for e in amd})

    def test_domain_filter(self):
        events = prepare_events(cpu_model("i7-7700"), domains=["memory"])
        assert events
        assert all(event.domain == "memory" for event in events)

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            prepare_events(cpu_model("i7-7700"), domains=["quantum"])

    def test_counter_groups_partition(self):
        events = prepare_events(cpu_model("i7-7700"))
        groups = counter_groups(events, group_size=4)
        assert sum(len(group) for group in groups) == len(events)
        assert all(len(group) <= 4 for group in groups)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            counter_groups([], group_size=0)


class TestCollection:
    def test_collects_means_for_all_events(self):
        machine = Machine("i7-7700", seed=71)
        scenario = TetCcScenario(machine)
        events = prepare_events(machine.model)
        collection = OnlineCollector(iterations=4).collect(scenario, events)
        assert set(collection.means) == {event.name for event in events}
        assert collection.iterations == 4

    def test_condition_names_propagated(self):
        machine = Machine("i9-10980XE", seed=72)
        scenario = TetKaslrScenario(machine)
        events = prepare_events(machine.model, domains=["memory"])
        collection = OnlineCollector(iterations=2).collect(scenario, events)
        assert collection.condition_names == ("unmapped", "mapped")


class TestDifferentialFilter:
    def test_sensitive_events_survive(self):
        machine = Machine("i7-7700", seed=73)
        report = PmuPipeline(OnlineCollector(iterations=6)).analyze(TetCcScenario(machine))
        names = {event.name for event in report.survivors}
        assert "BR_MISP_EXEC.ALL_BRANCHES" in names
        assert "INT_MISC.RECOVERY_CYCLES" in names

    def test_insensitive_events_rejected(self):
        machine = Machine("i7-7700", seed=73)
        report = PmuPipeline(OnlineCollector(iterations=6)).analyze(TetCcScenario(machine))
        assert len(report.rejected) > len(report.survivors)

    def test_survivors_sorted_by_difference(self):
        machine = Machine("i7-7700", seed=74)
        report = PmuPipeline(OnlineCollector(iterations=4)).analyze(TetCcScenario(machine))
        differences = [abs(event.difference) for event in report.survivors]
        assert differences == sorted(differences, reverse=True)

    def test_thresholds_configurable(self):
        machine = Machine("i7-7700", seed=75)
        strict = PmuPipeline(
            OnlineCollector(iterations=4), DifferentialFilter(absolute_threshold=50)
        ).analyze(TetCcScenario(machine))
        lax = PmuPipeline(
            OnlineCollector(iterations=4), DifferentialFilter(absolute_threshold=0.1)
        ).analyze(TetCcScenario(machine))
        assert len(strict.survivors) <= len(lax.survivors)


class TestScenarios:
    def test_md_scenario_shows_mispredict_on_trigger(self):
        machine = Machine("i7-7700", seed=76)
        report = PmuPipeline(OnlineCollector(iterations=6)).analyze(TetMdScenario(machine))
        row = next(r for r in report.rows if r.event == "BR_MISP_EXEC.ALL_BRANCHES")
        assert row.condition1 > row.condition0

    def test_kaslr_scenario_walk_active_matches_table3_shape(self):
        machine = Machine("i9-10980XE", seed=77)
        report = PmuPipeline(OnlineCollector(iterations=6)).analyze(
            TetKaslrScenario(machine)
        )
        row = next(r for r in report.rows if r.event == "DTLB_LOAD_MISSES.WALK_ACTIVE")
        # Table 3: unmapped 62, mapped 0 -- unmapped walks dominate.
        assert row.condition0 > row.condition1

    def test_transient_flow_scenario_runs(self):
        machine = Machine("i7-6700", seed=78)
        report = PmuPipeline(OnlineCollector(iterations=4)).analyze(
            TransientFlowScenario(machine, sled=0)
        )
        assert report.prepared_events > 0

    def test_amd_scenario_uses_amd_events(self):
        machine = Machine("ryzen-5600G", seed=79)
        report = PmuPipeline(OnlineCollector(iterations=6)).analyze(TetCcScenario(machine))
        assert all(event.name == event.name.lower() for event in report.survivors)


class TestReporting:
    def test_render_contains_header_and_rows(self):
        machine = Machine("i7-7700", seed=80)
        report = PmuPipeline(OnlineCollector(iterations=4)).analyze(TetCcScenario(machine))
        text = report.render()
        assert "CPU & Scene" in text
        assert "i7-7700" in text

    def test_empty_rows_render(self):
        assert "no condition-sensitive" in render_table3([])

    def test_domain_grouping(self):
        machine = Machine("i7-7700", seed=81)
        report = PmuPipeline(OnlineCollector(iterations=4)).analyze(TetCcScenario(machine))
        domains = answers_by_domain(report.rows)
        assert set(domains) >= {"frontend", "backend", "memory"}
        assert domains["backend"]  # recovery/stall evidence exists
