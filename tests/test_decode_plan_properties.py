"""Property tests: the decoded-uop plan path equals the legacy decoder.

``Core.run`` dispatches through a cached per-(program, model)
:class:`~repro.uarch.plan.DecodedPlan` by default; ``decode_plan=False``
keeps the original per-fetch decode path.  The plan is pure decode
memoisation, so the two paths must be *bit-identical* on every program
the assembler accepts -- cycles, retired/issued uop counts, every PMU
counter, every architectural register, every recorded fault.

Random programs are generated from the full gadget vocabulary the
attacks use (ALU, loads/stores, lea, fences, rdtsc, prefetch/clflush,
forward branches, TSX-suppressed faulting loads).  Runs under Hypothesis
when installed; a seeded-``random`` fallback drives the same property
with fixed seeds otherwise.
"""

import random

import pytest

from repro.sim.machine import Machine

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_HYPOTHESIS = False


#: Destination pool; r12 (data page) and r13 (null pointer) are pinned.
REGS = ("rax", "rbx", "rcx", "rdx", "r8", "r9", "r10", "r11", "r14", "r15")
ALL_REGS = REGS + ("r12", "r13")


def _random_instruction(rng: random.Random) -> str:
    reg = rng.choice(REGS)
    other = rng.choice(REGS)
    disp = rng.randrange(0, 128) * 8
    pick = rng.randrange(12)
    if pick == 0:
        return f"mov {reg}, {rng.randrange(0, 1 << 16)}"
    if pick == 1:
        return f"mov {reg}, {other}"
    if pick == 2:
        op = rng.choice(("add", "sub", "xor", "and", "or"))
        return f"{op} {reg}, {rng.randrange(0, 256)}"
    if pick == 3:
        op = rng.choice(("add", "sub", "xor", "cmp", "test"))
        return f"{op} {reg}, {other}"
    if pick == 4:
        return f"lea {reg}, [r12 + {other} + {disp}]"
    if pick == 5:
        return f"load {reg}, [r12 + {disp}]"
    if pick == 6:
        return f"loadb {reg}, [r12 + {disp}]"
    if pick == 7:
        return f"store [r12 + {disp}], {other}"
    if pick == 8:
        return f"prefetch [r12 + {disp}]"
    if pick == 9:
        return f"clflush [r12 + {disp}]"
    if pick == 10:
        return rng.choice(("nop", "mfence", "lfence", "sfence"))
    return "rdtsc"


def random_program_text(rng: random.Random) -> str:
    """A random but always-terminating gadget: straight-line blocks with
    forward-only control flow, optional TSX-suppressed faulting loads,
    closed by ``hlt``."""
    lines = []
    blocks = rng.randint(2, 5)
    for block in range(blocks):
        lines.append(f"block{block}:")
        for _ in range(rng.randint(2, 7)):
            lines.append(f"    {_random_instruction(rng)}")
        if rng.random() < 0.25:
            # The paper's suppression idiom: fault transiently inside a
            # transaction, resume at the abort label.
            lines += [
                f"    xbegin abort{block}",
                f"    load {rng.choice(REGS)}, [r13]",
                "    nop",
                "    xend",
                f"abort{block}:",
            ]
        if block < blocks - 1 and rng.random() < 0.6:
            branch = rng.choice(("jmp", "jz", "jnz", "jb", "jae"))
            lines.append(f"    {branch} block{rng.randint(block + 1, blocks - 1)}")
    lines.append("    hlt")
    return "\n".join(lines)


#: The data-page image every observation starts from.  Generated
#: programs contain retired stores, and ``reset_uarch`` deliberately
#: preserves memory, so the page must be rewritten before *each* run --
#: otherwise the second path observes the first path's store residue and
#: the harness reports a phantom engine divergence (seed 254's
#: ``store [r12 + 240], r8`` before an ``xbegin`` was exactly that).
PAGE_IMAGE = bytes(range(256)) * 4


def _observe(machine: Machine, program, decode_plan: bool, regs, page: int):
    """One hermetic run: fixed uarch state *and* fixed memory image."""
    machine.reset_uarch(noise_seed=99)
    machine.write_data(page, PAGE_IMAGE)
    result = machine.core.run(
        program, regs=dict(regs), user=True, decode_plan=decode_plan
    )
    return {
        "cycles": result.cycles,
        "start": result.start_cycle,
        "end": result.end_cycle,
        "retired": result.instructions_retired,
        "issued": result.uops_issued,
        "halted": result.halted,
        "regs": {name: result.regs.read(name) for name in ALL_REGS},
        "faults": [(fault.kind, fault.va) for fault in result.faults],
        "pmu": dict(machine.core.pmu.counts),
    }


def check_plan_equals_legacy(seed: int) -> None:
    rng = random.Random(seed)
    machine = Machine("i7-7700", seed=7)
    page = machine.alloc_data()
    program = machine.load_program(random_program_text(rng))
    regs = {"r12": page, "r13": 0}
    planned = _observe(machine, program, True, regs, page)
    legacy = _observe(machine, program, False, regs, page)
    assert planned == legacy, (
        f"decode-plan path diverged from legacy decode on seed {seed}"
    )


def test_seed_254_store_residue_regression():
    """Seed 254: a retired ``store [r12 + 240], r8`` commits before the
    program's ``xbegin``, so a non-hermetic harness re-running on the
    same machine fed the second path a clobbered page and blamed the TSX
    journal.  Pinned with the hermetic harness: planned and legacy agree
    byte-for-byte (the batch-path twin lives in
    ``tests/test_batch_identity.py``)."""
    check_plan_equals_legacy(254)


if HAVE_HYPOTHESIS:

    class TestDecodePlanEquivalence:
        @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
        @settings(max_examples=12, deadline=None)
        def test_plan_path_is_bit_identical(self, seed):
            check_plan_equals_legacy(seed)

else:  # pragma: no cover - exercised only without hypothesis

    class TestDecodePlanEquivalence:
        @pytest.mark.parametrize("seed", list(range(12)))
        def test_plan_path_is_bit_identical(self, seed):
            check_plan_equals_legacy(seed)
