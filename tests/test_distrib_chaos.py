"""Chaos suite for the distributed tier: kill workers, tear segments.

The byte-identity contract of ``repro.distrib`` has to survive the
failure modes a real fleet actually has -- workers dying mid-shard,
segments torn mid-checkpoint, shards exhausting their retries -- not
just the sunny-day split/merge.  Every test here damages a fleet run in
a scripted, seeded way and then demands the exact single-host bytes
anyway, because resume + content addressing make the damage invisible
to the artifact.

``REPRO_CHAOS_SEED`` selects the seeds (same convention as
``test_faults_chaos.py``).
"""

import os

import pytest

from repro.campaign import CampaignRunner, ResultStore, builtin_campaign
from repro.distrib import (
    Coordinator,
    FleetError,
    LocalProcessWorker,
    Shard,
    StubWorker,
    merge_stores,
    run_shard,
    segment_root,
)
from repro.faults import (
    ResiliencePolicy,
    SimulatedCrash,
    TornStore,
    payload_fingerprint,
)
from repro.runtime import TrialFailure, TrialResult

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))


def _stub_trial(trial):
    fingerprint = payload_fingerprint(trial)
    return TrialResult(
        totes=(fingerprint % 997, (fingerprint >> 16) % 997),
        cycles=fingerprint % 100_000,
    )


def _chaos_trial(trial):
    """Stub trial with deterministic quarantined failures mixed in --
    per-payload, so every shard split sees the same failure set."""
    fingerprint = payload_fingerprint(trial)
    if fingerprint % 7 == 0:
        return TrialFailure(
            attempts=2,
            faults=("raise", "raise"),
            error=f"injected-{fingerprint % 97}",
        )
    return _stub_trial(trial)


def golden(spec, root, trial_fn):
    report, _ = CampaignRunner(
        spec, store=ResultStore(str(root)), trial_fn=trial_fn
    ).run()
    return report.to_json(), report.render_text()


def fleet_artifacts(result):
    assert result.report is not None
    return result.report.to_json(), result.report.render_text()


class TestKilledWorkers:
    def test_killed_worker_resumes_byte_identical(self, tmp_path):
        """Shard 1's worker dies after its first checkpointed batch; the
        retry resumes the segment and the fleet report is still byte
        for byte the single-host report -- over REAL trials."""
        spec = builtin_campaign("ci-smoke")
        report, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "single"))
        ).run()
        reference = (report.to_json(), report.render_text())

        deaths = []

        def chaos(shard, attempt):
            if shard.index == 1 and attempt == 0:
                deaths.append((shard.index, attempt))
                return 1  # die after one checkpointed batch
            return None

        result = Coordinator(
            spec,
            str(tmp_path / "fleet"),
            shards=3,
            worker=StubWorker(spec, chaos=chaos, batch_size=4),
            policy=ResiliencePolicy(max_retries=1, backoff_base=0.0),
        ).run()
        assert deaths == [(1, 0)]
        assert result.retries == 1 and result.completed == 3
        assert fleet_artifacts(result) == reference
        # The death left durable work behind: the retried attempt found
        # a non-empty segment and only ran the remainder.
        segment = ResultStore(segment_root(str(tmp_path / "fleet"), Shard(1, 3)))
        assert len(segment) == Shard(1, 3).size(spec.trial_count())

    def test_every_worker_dies_once_full_grid(self, tmp_path):
        """e3-matrix at full scale (stub trials): every shard's first
        attempt dies mid-run, every retry resumes, bytes still golden."""
        spec = builtin_campaign("e3-matrix")
        reference = golden(spec, tmp_path / "single", _stub_trial)
        result = Coordinator(
            spec,
            str(tmp_path / "fleet"),
            shards=4,
            worker=StubWorker(
                spec,
                chaos=lambda shard, attempt: (
                    1 + shard.index if attempt == 0 else None
                ),
                trial_fn=_stub_trial,
                batch_size=128,
            ),
            policy=ResiliencePolicy(max_retries=1, backoff_base=0.0),
        ).run()
        assert result.completed == 4 and result.retries == 4
        assert fleet_artifacts(result) == reference
        assert result.metrics["fleet.shards.retried"]["value"] == 4

    def test_exhausted_retries_raise_then_rerun_resumes(self, tmp_path):
        """A shard that dies on every attempt fails the fleet loudly --
        but everything checkpointed stays durable, and a plain rerun
        finishes from where the chaos left off."""
        spec = builtin_campaign("ci-smoke")
        reference = golden(spec, tmp_path / "single", _stub_trial)
        dest = str(tmp_path / "fleet")

        def kill_shard_zero(shard, attempt):
            # 0 surviving batches: every attempt dies at its first
            # checkpoint, so retries cannot converge on this shard.
            return 0 if shard.index == 0 else None

        with pytest.raises(FleetError) as info:
            Coordinator(
                spec,
                dest,
                shards=3,
                worker=StubWorker(
                    spec, chaos=kill_shard_zero, trial_fn=_stub_trial,
                    batch_size=4,
                ),
                policy=ResiliencePolicy(max_retries=1, backoff_base=0.0),
            ).run()
        assert [a.shard.index for a in info.value.failed] == [0]
        # The healthy shards' records already merged into the destination.
        survivors = len(ResultStore(dest))
        assert 0 < survivors < spec.trial_count()

        result = Coordinator(
            spec,
            dest,
            shards=3,
            worker=StubWorker(spec, trial_fn=_stub_trial, batch_size=4),
        ).run()
        assert fleet_artifacts(result) == reference

    def test_backoff_between_attempts_is_policy_driven(self, tmp_path):
        """The coordinator sleeps the seeded backoff between attempts;
        with backoff_base=0 (the test default everywhere) it does not."""
        spec = builtin_campaign("ci-smoke")
        policy = ResiliencePolicy(max_retries=2, backoff_base=0.0)
        assert policy.delay(0) == 0.0  # what the coordinator awaits
        result = Coordinator(
            spec,
            str(tmp_path / "fleet"),
            shards=2,
            worker=StubWorker(
                spec,
                chaos=lambda shard, attempt: 1 if attempt < 2 else None,
                trial_fn=_stub_trial,
                batch_size=4,
            ),
            policy=policy,
        ).run()
        # Three attempts per shard: two scripted deaths, one success.
        assert result.retries == 4 and result.completed == 2
        by_shard = {}
        for attempt in result.attempts:
            by_shard.setdefault(attempt.shard.index, []).append(attempt.ok)
        assert by_shard == {0: [False, False, True], 1: [False, False, True]}


class TestTornSegments:
    def test_torn_segment_resumes_and_merges_identical(self, tmp_path):
        """A shard's writer dies mid-checkpoint leaving a torn record;
        the resumed shard drops it (checksum path), re-executes at most
        that batch, and the merged fleet report is byte-identical."""
        spec = builtin_campaign("ci-smoke")
        report, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "single"))
        ).run()
        reference = (report.to_json(), report.render_text())

        shard0 = Shard(0, 2)
        root0 = str(tmp_path / "seg0")
        torn = TornStore(root0, survive=3)
        with pytest.raises(SimulatedCrash):
            CampaignRunner(spec, store=torn, shard=shard0, batch_size=4).run()

        # Resume the damaged segment through the normal shard path: the
        # torn tail is detected and dropped, never silently replayed.
        with pytest.warns(UserWarning, match="corrupt store record"):
            _, stats = run_shard(spec, shard0, root0, batch_size=4)
        assert stats.cached == 3
        assert stats.executed == shard0.size(spec.trial_count()) - 3

        root1 = str(tmp_path / "seg1")
        run_shard(spec, Shard(1, 2), root1, batch_size=4)

        dest = str(tmp_path / "merged")
        stats = merge_stores([root0, root1], dest)
        assert stats.unique == spec.trial_count()
        merged = CampaignRunner(spec, store=ResultStore(dest)).collect()
        assert merged is not None
        assert (merged.to_json(), merged.render_text()) == reference


class TestFailureRecordsAcrossShards:
    def test_quarantined_failures_flow_through_segments(self, tmp_path):
        """Deterministic per-payload failures land in whichever segment
        owns the trial; the merged failures section is byte-identical to
        the single-host run's -- failure records are results too."""
        spec = builtin_campaign("e3-matrix")
        reference = golden(spec, tmp_path / "single", _chaos_trial)
        assert '"failures"' in reference[0]  # the identity is non-vacuous
        result = Coordinator(
            spec,
            str(tmp_path / "fleet"),
            shards=3,
            worker=StubWorker(spec, trial_fn=_chaos_trial),
        ).run()
        assert fleet_artifacts(result) == reference
        assert result.merge is not None and result.merge.failures > 0
        assert result.metrics["fleet.records.failures"]["value"] == (
            result.merge.failures
        )

    def test_interleaving_insensitive(self, tmp_path):
        """parallel=1 vs parallel=3 -- completion interleavings differ,
        merged store bytes and artifacts do not."""
        spec = builtin_campaign("ci-smoke")
        stores = {}
        artifacts = {}
        for parallel in (1, 3):
            dest = str(tmp_path / f"p{parallel}")
            result = Coordinator(
                spec,
                dest,
                shards=3,
                worker=StubWorker(spec, trial_fn=_stub_trial),
                parallel=parallel,
            ).run()
            with open(ResultStore(dest).path, "rb") as handle:
                stores[parallel] = handle.read()
            artifacts[parallel] = fleet_artifacts(result)
        assert stores[1] == stores[3]
        assert artifacts[1] == artifacts[3]


class TestSubprocessFleet:
    def test_local_process_workers_end_to_end(self, tmp_path):
        """The real one-box fleet: ``python -m repro campaign shard``
        subprocesses driven by the coordinator, ci-smoke 3-way, report
        byte-identical to single host."""
        spec = builtin_campaign("ci-smoke")
        report, _ = CampaignRunner(
            spec, store=ResultStore(str(tmp_path / "single"))
        ).run()
        result = Coordinator(
            spec,
            str(tmp_path / "fleet"),
            shards=3,
            worker=LocalProcessWorker("ci-smoke"),
        ).run()
        assert result.completed == 3
        assert fleet_artifacts(result) == (
            report.to_json(), report.render_text()
        )

    def test_subprocess_failure_surfaces_stderr(self, tmp_path):
        """A worker whose subprocess exits non-zero fails its shard with
        the stderr tail attached -- the coordinator names the culprit."""
        spec = builtin_campaign("ci-smoke")
        with pytest.raises(FleetError) as info:
            Coordinator(
                spec,
                str(tmp_path / "fleet"),
                shards=2,
                worker=LocalProcessWorker("no-such-campaign"),
                policy=ResiliencePolicy(max_retries=0),
            ).run()
        assert len(info.value.failed) == 2
        for attempt in info.value.failed:
            assert "exit code" in attempt.detail
