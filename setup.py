"""Legacy setuptools entry point.

The offline environment lacks the ``wheel`` package, so PEP 517/660
editable installs fail; this shim lets ``pip install -e .`` use the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Whisper: a transient-execution-timing (TET) side channel, "
        "reproduced on a cycle-level out-of-order CPU simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
)
