#!/usr/bin/env python3
"""Telemetry tour: watch a TET-KASLR campaign observe itself.

Runs the paper's KPTI-trampoline KASLR sweep as a pooled campaign with
full telemetry armed, three stops on the tour:

1. **Live progress** -- a ProgressRenderer streams per-batch throughput
   and ETA to stderr while the campaign executes.
2. **The recorded trace** -- the merged span tree (campaign -> cell ->
   trial -> core.run, with per-trial PMU counters), dumped as JSONL,
   converted to Chrome ``trace_event`` JSON for chrome://tracing /
   ui.perfetto.dev, and rolled up into a cycle-attribution flamegraph.
3. **A metrics diff between two seeds** -- the same sweep under a
   different KASLR slot, compared counter by counter: the work changes,
   the instrumentation proves exactly how much.

Everything here is observational: the campaign's report and store are
byte-identical to an unobserved run (``tests/test_telemetry.py`` pins
it).

Run:  python examples/telemetry_tour.py
"""

import json
import os
import tempfile

from repro import telemetry
from repro.campaign import CampaignRunner, CampaignSpec, ResultStore, kaslr_cell
from repro.runtime import MachineSpec, TrialPool
from repro.telemetry.export import (
    chrome_trace,
    cycle_attribution,
    render_attribution,
    validate_chrome_trace,
    write_jsonl,
)
from repro.telemetry.live import ProgressRenderer, render_metrics
from repro.telemetry.metrics import deterministic_view
from repro.telemetry.spans import orphan_records


def run_observed(
    seed: int, workdir: str, kpti: bool = True, progress: bool = False
):
    """One fully-observed pooled KASLR campaign; returns what telemetry
    collected (records + metrics) alongside the run's own stats."""
    tag = f"s{seed}-{'kpti' if kpti else 'nokpti'}"
    spec = CampaignSpec(
        name=f"tour-kaslr-{tag}",
        cells=(kaslr_cell(MachineSpec(seed=seed, kpti=kpti)),),
    )
    store = ResultStore(os.path.join(workdir, f"store-{tag}"))
    renderer = ProgressRenderer(name=spec.name) if progress else None
    telemetry.enable(wall_clock=True)  # wall clocks: sidecar, humans only
    try:
        with TrialPool(workers=2) as pool:
            runner = CampaignRunner(
                spec,
                store=store,
                pool=pool,
                observer=renderer.on_batch if renderer else None,
            )
            report, stats = runner.run()
        if renderer is not None:
            renderer.close()
        records = telemetry.recorder().drain()
        metrics = telemetry.metrics_registry().snapshot()
    finally:
        telemetry.disable()
        telemetry.metrics_registry().drain()
    return report, stats, records, metrics


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-telemetry-tour-")

    # -- stop 1: live progress -------------------------------------------------
    print("== stop 1: a pooled KASLR sweep with live progress (stderr) ==")
    _, stats, records, metrics = run_observed(1, workdir, progress=True)
    print(f"run stats    : {stats}")
    print()

    # -- stop 2: the recorded trace --------------------------------------------
    print("== stop 2: the merged span trace ==")
    spans = [r for r in records if r["kind"] == "span"]
    by_name = {}
    for record in spans:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    for name in sorted(by_name):
        print(f"  {by_name[name]:>6}x {name}")
    print(f"  orphan spans: {len(orphan_records(records))} (must be 0)")

    trace_path = os.path.join(workdir, "tour.jsonl")
    write_jsonl(records, trace_path, metrics=metrics)
    chrome_path = os.path.join(workdir, "tour.trace.json")
    trace = chrome_trace(records)
    with open(chrome_path, "w") as handle:
        json.dump(trace, handle, sort_keys=True)
    problems = validate_chrome_trace(trace)
    print(f"  JSONL trace : {trace_path}")
    print(f"  Chrome trace: {chrome_path} "
          f"({len(trace['traceEvents'])} events, "
          f"schema {'ok' if not problems else 'BROKEN'}) "
          f"-- load in chrome://tracing or ui.perfetto.dev")
    print()
    print(render_attribution(cycle_attribution(records), limit=5))
    print()
    render_metrics(metrics)
    print()

    # -- stop 3: metrics diffs -------------------------------------------------
    def diff(label_a, ours, label_b, theirs):
        ours, theirs = deterministic_view(ours), deterministic_view(theirs)
        print(f"  {'counter':<24} {label_a:>12} {label_b:>12} {'delta':>10}")
        for name in sorted(set(ours) & set(theirs)):
            if ours[name]["type"] != "counter" or not name.startswith("core."):
                continue
            a, b = ours[name]["value"], theirs[name]["value"]
            print(f"  {name:<24} {a:>12,} {b:>12,} {b - a:>+10,}")
        print()

    print("== stop 3: metrics diffs ==")
    print("Same sweep, different seed (a different randomized kernel base):")
    _, _, _, reseeded = run_observed(2, workdir)
    diff("seed 1", metrics, "seed 2", reseeded)
    print("Every delta is zero: the probe sequence is fixed, only WHERE the")
    print("kernel hides changes -- the determinism the whole stack rides on.")
    print()
    print("Same seed, KPTI switched off (no CR3 switch around each probe):")
    _, _, _, unprotected = run_observed(1, workdir, kpti=False)
    diff("kpti", metrics, "no-kpti", unprotected)
    print("Now the counters move: dropping the paper's CR3-switch defense")
    print("changes the simulated work per probe, and the instrumentation")
    print("shows exactly where.  Store and report bytes are unaffected by")
    print("any of this observation.")


if __name__ == "__main__":
    main()
