#!/usr/bin/env python3
"""The two no-fault-needed channels: TET-RSB and the SMT flush channel.

* TET-RSB (Listing 1): a sandboxed secret that is never architecturally
  read leaks through the return-stack-buffer misprediction window -- the
  fastest TET attack (§4.1), and the one that still works on Raptor Lake
  where TSX is fused off.
* The §4.4 SMT covert channel: a Trojan sends bits to a spy on the
  sibling hardware thread by triggering (and suppressing) page faults.

Run:  python examples/smt_and_rsb.py
"""

from repro.sim import Machine
from repro.whisper import SmtCovertChannel, TetSpectreRsb

SANDBOXED = b"api-key-7f3a"


def main() -> None:
    print("=== TET-RSB on i9-13900K (no TSX, no fault, no suppression) ===")
    machine = Machine("i9-13900K", seed=41)
    print(f"TSX available: {machine.model.has_tsx}")
    attack = TetSpectreRsb(machine)
    attack.install_secret(SANDBOXED)
    result = attack.leak()
    print(f"sandboxed secret : {SANDBOXED!r}")
    print(f"leaked transient : {result.data!r}")
    print(f"rate             : {result.bytes_per_second:,.0f} B/s simulated "
          f"(paper: 21.5 KB/s on this part)")
    print()

    print("=== SMT covert channel on i7-7700 (§4.4) ===")
    machine = Machine("i7-7700", seed=42)
    message = b"hi"
    for mode in ("reliable", "secsmt"):
        channel = SmtCovertChannel(machine, mode=mode)
        stats = channel.transmit_bytes(message)
        received = bytearray()
        bits = stats.bits_received
        for index in range(0, len(bits), 8):
            byte = 0
            for bit in bits[index : index + 8]:
                byte = (byte << 1) | bit
            received.append(byte)
        print(f"mode {mode:9}: sent {message!r}, received {bytes(received)!r} "
              f"({stats})")


if __name__ == "__main__":
    main()
