#!/usr/bin/env python3
"""The §5 root-cause analysis, re-run: the PMU toolset on three scenes.

Runs the Figure 2 pipeline (prepare -> collect -> differential filter ->
per-domain analysis) on TET-CC (Intel + AMD) and TET-KASLR, prints the
Table 3-style survivors, and states the RQ1-RQ3 answers the evidence
supports.

Run:  python examples/pmu_root_cause.py
"""

from repro.pmutools import OnlineCollector, PmuPipeline
from repro.pmutools.scenarios import TetCcScenario, TetKaslrScenario
from repro.sim import Machine


def main() -> None:
    pipeline = PmuPipeline(OnlineCollector(iterations=8))

    for title, machine, scenario_cls in [
        ("TET-CC on Intel (Kaby Lake)", Machine("i7-7700", seed=31), TetCcScenario),
        ("TET-CC on AMD (Zen 3)", Machine("ryzen-5600G", seed=32), TetCcScenario),
        ("TET-KASLR on Intel (Comet Lake)", Machine("i9-10980XE", seed=33), TetKaslrScenario),
    ]:
        print(f"=== {title} ===")
        report = pipeline.analyze(scenario_cls(machine))
        print(
            f"prepared {report.prepared_events} events, "
            f"{len(report.survivors)} survived the differential filter, "
            f"{len(report.rejected)} were irrelevant"
        )
        print(report.render())
        print()

    print("=== the paper's answers, which the evidence above supports ===")
    print("RQ1 (frontend): the resteer of a BPU misprediction causes the")
    print("                transient stall (BR_MISP_EXEC, CLEAR_RESTEER, IDQ.*)")
    print("RQ2 (backend) : resource-related stalls of the pipeline")
    print("                (RESOURCE_STALLS, RECOVERY_CYCLES, token stalls)")
    print("RQ3 (memory)  : TLB missing extends the ToTE")
    print("                (DTLB_LOAD_MISSES.* only for unmapped probes)")


if __name__ == "__main__":
    main()
