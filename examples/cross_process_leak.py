#!/usr/bin/env python3
"""A full end-to-end intrusion story on the simulator.

1. A *real* victim process (own address space, own core, own TLBs) runs a
   worker loop over its secret; the attacker cannot map a single byte of
   it.  TET-ZombieLoad samples the secret out of the shared line fill
   buffers anyway -- pure timing, nothing a cache-behaviour detector sees.
2. TET-KASLR (with the realistic eviction-set TLB flush) breaks the
   kernel's address randomisation through KPTI.
3. The exploit planner turns the leaked base into the classic
   prepare_kernel_cred/commit_creds escalation chain and verifies every
   target -- and shows FGKASLR voiding the same plan.

Run:  python examples/cross_process_leak.py   (takes ~1 minute)
"""

from repro.sim import Machine, VictimProcess
from repro.whisper import TetKaslr, TetZombieload
from repro.whisper.exploit import KernelExploitPlanner


def main() -> None:
    print("=== 1. cross-process secret sampling (TET-ZBL) ===")
    machine = Machine("i7-7700", seed=77, kpti=False)
    victim = VictimProcess(machine, secret=b"hunter2")
    print(f"victim secret page mapped for attacker: "
          f"{not victim.secret_is_unreachable_by(machine.process)}")
    attack = TetZombieload(machine, batches=6)
    attack.attach_victim(victim)
    result = attack.leak()
    print(f"victim secret : {victim.secret!r}")
    print(f"leaked        : {result.data!r} (error {result.error_rate:.0%})")
    print()

    print("=== 2. break KASLR under KPTI (realistic TLB eviction) ===")
    machine = Machine("i9-10980XE", seed=78, kpti=True)
    kaslr = TetKaslr(machine, eviction="sets")
    outcome = kaslr.break_kaslr_kpti()
    print(outcome)
    print()

    print("=== 3. plan the privilege escalation ===")
    planner = KernelExploitPlanner(machine)
    plan = planner.plan(outcome.found_base)
    print(plan.summary())
    print()

    print("=== 3b. the same plan against FGKASLR ===")
    machine = Machine("i9-10980XE", seed=79, kpti=True, fgkaslr=True)
    outcome = TetKaslr(machine).break_kaslr_kpti()
    plan = KernelExploitPlanner(machine).plan(outcome.found_base)
    print(plan.summary())


if __name__ == "__main__":
    main()
