#!/usr/bin/env python3
"""TET-KASLR end to end: break KASLR through every deployed defense.

Reproduces the §4.5 storyline on an i9-10980XE:

1. plain KASLR falls to a 512-slot scan;
2. KPTI hides the kernel -- except for the trampoline remnant at the
   fixed offset 0xe00000, which a candidate-trampoline scan finds;
3. FLARE blankets the range with dummy pages so everything looks mapped
   -- the CR3-switch variant separates the *global* trampoline entry from
   the non-global dummies;
4. a Docker container changes nothing;
5. the same attack on AMD Zen 3 goes blind (no TLB fill on faulting
   access), and FGKASLR limits what the leaked base is worth.

Run:  python examples/break_kaslr.py
"""

from repro.kernel.layout import DEFAULT_SYMBOL_OFFSETS
from repro.sim import Machine
from repro.whisper import TetKaslr


def show(title: str, result) -> None:
    print(f"--- {title}")
    print(f"    {result}")
    if result.success:
        print(f"    slots classified mapped: {result.mapped_slots}")
    print()


def main() -> None:
    print("=== 1. plain KASLR ===")
    machine = Machine("i9-10980XE", seed=7)
    show("512-slot scan", TetKaslr(machine).break_kaslr())

    print("=== 2. KASLR + KPTI ===")
    machine = Machine("i9-10980XE", seed=8, kpti=True)
    attack = TetKaslr(machine)
    show("naive slot scan (defeated by KPTI)", attack.break_kaslr())
    show("candidate-trampoline scan (the paper's break)", attack.break_kaslr_kpti())

    print("=== 3. KASLR + KPTI + FLARE ===")
    machine = Machine("i9-10980XE", seed=9, kpti=True, flare=True)
    attack = TetKaslr(machine)
    show("trampoline scan (defeated by FLARE's dummies)", attack.break_kaslr_kpti())
    show("CR3-switch variant (global-bit residual)", attack.break_kaslr_flare())

    print("=== 4. inside a Docker container ===")
    machine = Machine("i9-10980XE", seed=10, kpti=True, container=True)
    show("trampoline scan from the container", TetKaslr(machine).break_kaslr_kpti())

    print("=== 5. the limits ===")
    machine = Machine("ryzen-5600G", seed=11)
    show("AMD Zen 3 (permission-checked TLB fills)", TetKaslr(machine).break_kaslr())

    machine = Machine("i9-10980XE", seed=12, fgkaslr=True)
    result = TetKaslr(machine).break_auto()
    show("FGKASLR: the base still leaks...", result)
    guessed = result.found_base + DEFAULT_SYMBOL_OFFSETS["commit_creds"]
    actual = machine.kernel.layout.symbol_va("commit_creds")
    print(f"    ...but commit_creds is NOT at base+canonical offset:")
    print(f"    guessed {guessed:#x}, actually {actual:#x} -- the §6.2 mitigation")


if __name__ == "__main__":
    main()
