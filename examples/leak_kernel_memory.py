#!/usr/bin/env python3
"""TET-Meltdown vs classic Meltdown, under a cache-attack detector.

The scenario of §4.2's threat model: a victim machine runs HPC-based
cache-attack detection.  The classic Flush+Reload Meltdown leaks the
kernel secret but lights up the detector; TET-MD leaks the same bytes
through pure timing and stays dark.  A Meltdown-fixed CPU stops both.

Run:  python examples/leak_kernel_memory.py
"""

from repro.baselines import CacheAttackDetector, ClassicMeltdown
from repro.sim import Machine
from repro.whisper import TetMeltdown

SECRET = b"root:$6$saltsalt"


def main() -> None:
    detector = CacheAttackDetector()

    print("=== classic Meltdown (Flush+Reload channel), i7-7700 ===")
    machine = Machine("i7-7700", seed=21, secret=SECRET)
    classic = ClassicMeltdown(machine)
    leaked = {}

    def run_classic():
        leaked["data"], _, leaked["err"] = classic.leak(length=len(SECRET))

    report = detector.monitor(machine, run_classic)
    print(f"leaked  : {leaked['data']!r} (error {leaked['err']:.0%})")
    print(f"detector: {report}")
    print()

    print("=== TET-Meltdown (Whisper channel), i7-7700 ===")
    machine = Machine("i7-7700", seed=22, secret=SECRET)
    tet = TetMeltdown(machine, batches=3)
    result_holder = {}

    def run_tet():
        result_holder["result"] = tet.leak(length=len(SECRET))

    report = detector.monitor(machine, run_tet)
    result = result_holder["result"]
    print(f"leaked  : {result.data!r} (error {result.error_rate:.0%})")
    print(f"rate    : {result.bytes_per_second:,.0f} B/s simulated")
    print(f"detector: {report}")
    print()

    print("=== same TET-MD on a Meltdown-fixed CPU (i9-10980XE) ===")
    machine = Machine("i9-10980XE", seed=23, secret=SECRET)
    result = TetMeltdown(machine, batches=2).leak(length=8)
    print(f"leaked  : {result.data!r} -> success={result.success}")
    print("(fixed silicon forwards zeros; Table 2's ✗ column)")


if __name__ == "__main__":
    main()
