#!/usr/bin/env python3
"""Quickstart: observe the Whisper channel with your own eyes.

Builds a simulated Kaby Lake machine, runs the paper's Figure 1a gadget
over all 256 test values, and prints the ToTE scan -- the single peak at
the secret byte IS the transient-execution-timing side channel.

Run:  python examples/quickstart.py
"""

from repro.sim import Machine
from repro.whisper import TetCovertChannel

SECRET = ord("S")  # the byte the paper's Figure 1 transmits


def main() -> None:
    machine = Machine("i7-7700", seed=1)
    print(f"machine : {machine.model.name} ({machine.model.microarch})")
    print(f"kernel  : KASLR slot {machine.kernel.layout.slot}, "
          f"base {machine.kernel.layout.base:#x}")
    print()

    channel = TetCovertChannel(machine, batches=3)
    machine.write_data(channel.sender_page, bytes([SECRET]))
    scan = channel.scan_byte()

    medians = {
        test: sorted(samples)[len(samples) // 2]
        for test, samples in scan.totes_by_test.items()
    }
    baseline = min(medians.values())
    print("ToTE scan (only rows that deviate from the floor):")
    print(f"  {'test value':>10} | {'median ToTE':>11}")
    for test in sorted(medians):
        if medians[test] != baseline:
            marker = "   <-- the transient Jcc triggered here" if test == SECRET else ""
            print(f"  {f'{test:#x}':>10} | {medians[test]:>11}{marker}")
    print()
    print(f"decoded byte : {scan.value:#x} ({chr(scan.value)!r})")
    print(f"ground truth : {SECRET:#x} ({chr(SECRET)!r})")
    print(f"confidence   : {scan.confidence:.0%} of batches agreed")
    print()

    message = b"whisper"
    stats = channel.transmit(message)
    print(f"covert channel: sent {message!r}, received {stats.received!r}")
    print(f"  {stats}")
    print()

    # How healthy is this channel?  Calibrate it like a real tool would.
    from repro.whisper import calibrate_channel

    calibration = calibrate_channel(channel, samples=8)
    print(
        f"calibration  : signal {calibration.delta:+.1f} cycles, "
        f"noise {calibration.noise:.1f}, SNR {calibration.snr}, "
        f"recommended batches {calibration.recommended_batches()}"
    )


if __name__ == "__main__":
    main()
