"""E9 -- §4.5 + §4.1: TET-KASLR in every configuration the paper attacks.

* plain KASLR on i7-6700 / i7-7700 / i9-10980XE (Table 2's ✓ column);
* KASLR + KPTI: the 512 candidate trampolines scanned "within 1s";
* KASLR + KPTI + FLARE: the state-of-the-art defense, still broken;
* inside a Docker container;
* break time: the paper reports 0.8829 s average (n=3, σ=0.0036) on the
  i9-10980XE -- we reproduce n=3 runs and the sub-second shape (the
  simulator's eviction primitive is cheaper than real eviction sets, so
  the absolute time is smaller);
* AMD Zen 3: the oracle is blind (Table 2's ✗).
"""

import statistics

from benchmarks.conftest import banner, emit, emit_metric
from repro.runtime import TrialPool
from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr

POOL_WORKERS = 4


def run_all():
    results = {}
    for cpu in ("i7-6700", "i7-7700", "i9-10980XE"):
        machine = Machine(cpu, seed=451)
        results[f"plain {cpu}"] = TetKaslr(machine).break_kaslr()
    kpti_runs = []
    for run_index in range(3):  # the paper's n=3
        machine = Machine("i9-10980XE", seed=452 + run_index, kpti=True)
        kpti_runs.append(TetKaslr(machine).break_kaslr_kpti())
    results["kpti i9-10980XE (3 runs)"] = kpti_runs
    machine = Machine("i9-10980XE", seed=455, kpti=True, flare=True)
    results["flare i9-10980XE"] = TetKaslr(machine).break_kaslr_flare()
    machine = Machine("i9-10980XE", seed=456, kpti=True, container=True)
    results["docker i9-10980XE"] = TetKaslr(machine).break_kaslr_kpti()
    machine = Machine("ryzen-5600G", seed=457)
    results["amd ryzen-5600G"] = TetKaslr(machine).break_kaslr()
    # The first KPTI run again, fanned across the trial pool: must find
    # the same base as its serial twin (same machine spec, same seed).
    machine = Machine("i9-10980XE", seed=452, kpti=True)
    with TrialPool(workers=POOL_WORKERS) as pool:
        results["kpti pooled (4 workers)"] = TetKaslr(
            machine, pool=pool
        ).break_kaslr_kpti()
    return results


def test_section45_breaking_kaslr(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("§4.5 -- TET-KASLR across defenses (simulated)")
    for name, outcome in results.items():
        if isinstance(outcome, list):
            for index, run in enumerate(outcome):
                emit(f"{name} [run {index}]: {run}")
        else:
            emit(f"{name}: {outcome}")

    kpti_runs = results["kpti i9-10980XE (3 runs)"]
    times = [run.seconds for run in kpti_runs]
    mean_time = statistics.mean(times)
    sigma = statistics.pstdev(times)
    emit("")
    emit(
        f"KPTI break time over n=3: mean {mean_time:.6f} s, sigma {sigma:.6f} s "
        f"(paper: 0.8829 s, sigma 0.0036 s -- real eviction sets and retries "
        f"dominate there)"
    )

    emit_metric("section45", "kpti_break_seconds_mean", mean_time)
    emit_metric("section45", "kpti_break_seconds_sigma", sigma)
    emit_metric(
        "section45",
        "plain_success",
        [bool(results[f"plain {cpu}"].success)
         for cpu in ("i7-6700", "i7-7700", "i9-10980XE")],
    )
    emit_metric("section45", "flare_success", bool(results["flare i9-10980XE"].success))
    emit_metric("section45", "docker_success", bool(results["docker i9-10980XE"].success))
    emit_metric("section45", "amd_blind", not results["amd ryzen-5600G"].success)

    # Shapes ------------------------------------------------------------------
    for cpu in ("i7-6700", "i7-7700", "i9-10980XE"):
        assert results[f"plain {cpu}"].success, cpu
    assert all(run.success for run in kpti_runs)
    assert all(run.seconds < 1.0 for run in kpti_runs)  # "within 1s"
    assert all(len(run.mapped_slots) == 1 for run in kpti_runs)
    assert results["flare i9-10980XE"].success
    assert results["docker i9-10980XE"].success
    assert not results["amd ryzen-5600G"].success
    pooled = results["kpti pooled (4 workers)"]
    assert pooled.success
    assert pooled.found_base == kpti_runs[0].found_base
