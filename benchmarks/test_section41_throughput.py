"""E8 -- §4.1: covert-channel and attack throughput / error rates.

The paper reports, for 1 KiB of random bytes: TET-CC at 500 B/s (<5 %
error, i7-7700), TET-MD at 50 B/s (<3 %, i7-7700) and TET-RSB at
21.5 KB/s (<0.1 %, i9-13900K).  Absolute rates depend on their testbed's
noise and retry policy, so the bench reproduces the *shape*:

* every channel meets the paper's error bound, and
* the throughput ordering is TET-RSB >> TET-CC > TET-MD.

The payload is scaled down (the simulator runs ~256 gadget executions per
byte per batch); rates are payload-size independent.
"""

import random

from benchmarks.conftest import banner, emit, emit_metric
from repro.runtime import TrialPool
from repro.sim.machine import Machine
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb
from repro.whisper.channel import TetCovertChannel

PAYLOAD_BYTES = 24
POOL_WORKERS = 4


def random_payload(length: int) -> bytes:
    return bytes(random.Random(414).randrange(256) for _ in range(length))


def run_all():
    payload = random_payload(PAYLOAD_BYTES)

    cc_machine = Machine("i7-7700", seed=411)
    cc = TetCovertChannel(cc_machine, batches=3)
    cc_stats = cc.transmit(payload)

    # The same campaign fanned across the trial pool: throughput numbers
    # are reported from the serial run (one continuous cycle timeline);
    # the pooled run must decode the identical payload.
    pooled_machine = Machine("i7-7700", seed=411)
    with TrialPool(workers=POOL_WORKERS) as pool:
        pooled = TetCovertChannel(pooled_machine, batches=3, pool=pool)
        pooled_stats = pooled.transmit(payload)

    md_machine = Machine("i7-7700", seed=412, secret=payload)
    md = TetMeltdown(md_machine, batches=5)
    md_result = md.leak(length=PAYLOAD_BYTES)

    rsb_machine = Machine("i9-13900K", seed=413)
    rsb = TetSpectreRsb(rsb_machine, batches=1)
    rsb.install_secret(payload)
    rsb_result = rsb.leak()

    return payload, cc_stats, pooled_stats, md_result, rsb_result


def test_section41_throughput_and_error_rates(benchmark):
    payload, cc_stats, pooled_stats, md_result, rsb_result = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    banner("§4.1 -- throughput and error rates (simulated vs paper)")
    emit(f"payload: {PAYLOAD_BYTES} random bytes (paper used 1 KiB)")
    emit("")
    emit(f"{'channel':10} {'machine':12} {'simulated':>16} {'error':>8}   paper")
    emit(
        f"{'TET-CC':10} {'i7-7700':12} {cc_stats.bytes_per_second:>12,.0f} B/s "
        f"{cc_stats.error_rate:>8.2%}   500 B/s, <5%"
    )
    emit(
        f"{'TET-MD':10} {'i7-7700':12} {md_result.bytes_per_second:>12,.0f} B/s "
        f"{md_result.error_rate:>8.2%}   50 B/s, <3%"
    )
    emit(
        f"{'TET-RSB':10} {'i9-13900K':12} {rsb_result.bytes_per_second:>12,.0f} B/s "
        f"{rsb_result.error_rate:>8.2%}   21.5 KB/s, <0.1%"
    )
    emit("")
    emit(
        "note: absolute rates exceed the paper's (the simulator has no OS "
        "noise, so no retries); the ordering and error bounds are the shape."
    )

    emit(
        f"TET-CC via TrialPool({POOL_WORKERS}): error "
        f"{pooled_stats.error_rate:.2%} -- decodes the same payload"
    )
    emit("")

    emit_metric("section41", "tet_cc_bytes_per_second", cc_stats.bytes_per_second)
    emit_metric("section41", "tet_cc_error_rate", cc_stats.error_rate)
    emit_metric("section41", "tet_md_bytes_per_second", md_result.bytes_per_second)
    emit_metric("section41", "tet_md_error_rate", md_result.error_rate)
    emit_metric("section41", "tet_rsb_bytes_per_second", rsb_result.bytes_per_second)
    emit_metric("section41", "tet_rsb_error_rate", rsb_result.error_rate)
    emit_metric("section41", "pooled_error_rate", pooled_stats.error_rate)

    # Error bounds from the paper hold with margin.
    assert cc_stats.error_rate < 0.05
    assert pooled_stats.error_rate < 0.05
    assert pooled_stats.received == cc_stats.received == payload
    assert md_result.error_rate < 0.03
    assert rsb_result.error_rate < 0.001
    # Ordering: RSB fastest (no suppression cost), MD slowest (victim
    # warming + more batches).
    assert rsb_result.bytes_per_second > cc_stats.bytes_per_second
    assert cc_stats.bytes_per_second > md_result.bytes_per_second
