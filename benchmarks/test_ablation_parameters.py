"""E19 (ablation) -- parameter sensitivity: the channel is not a knob.

The simulator has calibration parameters (resteer penalty, recovery tail,
fault-raise delay, the nested-clear serialisation cost).  If the Whisper
signs only appeared at the shipped values, the reproduction would be
circular.  This ablation sweeps each parameter across a wide range and
asserts the two signature signs survive everywhere:

* TET-MD: trigger -> ToTE longer (nested-clear serialisation);
* TET-ZBL (sled 32): trigger -> ToTE shorter (issue pruning).

Magnitudes move (reported), signs do not -- the channel follows from the
*mechanisms*, not from a particular constant.
"""

import dataclasses

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.uarch.config import cpu_model
from repro.whisper.gadgets import GadgetBuilder

SECRET = 0x5A
NO_MATCH = 256

SWEEPS = {
    "mispredict_resteer": (7, 14, 28),
    "recovery_tail": (5, 10, 20),
    "fault_raise_delay": (40, 60, 120),
    "nested_clear_flush_penalty": (4, 8, 16),
    "flush_drain_per_uop": (0.4, 0.75, 1.5),
}


def trigger_delta(machine, program, fault_va):
    def run(test):
        result = machine.run(program, regs={"r13": fault_va, "r9": test})
        return result.regs.read("r15") - result.regs.read("r14")

    for _ in range(6):
        run(NO_MATCH)
    deltas = []
    for _ in range(3):
        for _ in range(3):
            run(NO_MATCH)
        quiet = run(NO_MATCH)
        for _ in range(3):
            run(NO_MATCH)
        deltas.append(run(SECRET) - quiet)
    deltas.sort()
    return deltas[len(deltas) // 2]


def measure(model):
    md_machine = Machine(model, seed=801, secret=bytes([SECRET]))
    md_machine.warm_kernel_secret()
    md_program = GadgetBuilder(md_machine).meltdown()
    md = trigger_delta(md_machine, md_program, md_machine.kernel.secret_va)

    zbl_machine = Machine(model, seed=802)
    zbl_machine.victim_store(zbl_machine.alloc_data(), bytes([SECRET]))
    zbl_program = GadgetBuilder(zbl_machine).zombieload(sled=32)
    zbl = trigger_delta(zbl_machine, zbl_program, 0)
    return md, zbl


def run_sweeps():
    base = cpu_model("i7-7700")
    results = {("(shipped)", "-"): measure(base)}
    for parameter, values in SWEEPS.items():
        for value in values:
            model = dataclasses.replace(base, **{parameter: value})
            results[(parameter, value)] = measure(model)
    return results


def test_ablation_parameter_sensitivity(benchmark):
    results = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    banner("Ablation -- parameter sensitivity of the Whisper signs (i7-7700)")
    emit(f"{'parameter':28} {'value':>8} {'MD delta':>9} {'ZBL delta':>10}")
    for (parameter, value), (md, zbl) in results.items():
        emit(f"{parameter:28} {str(value):>8} {md:>+9} {zbl:>+10}")
    emit("")
    emit("every configuration keeps MD positive and ZBL negative: the")
    emit("signs come from the mechanisms, not from tuned constants.")

    for (parameter, value), (md, zbl) in results.items():
        assert md > 0, f"TET-MD sign flipped at {parameter}={value}"
        assert zbl < 0, f"TET-ZBL sign flipped at {parameter}={value}"
