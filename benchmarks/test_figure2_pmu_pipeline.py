"""E5 -- Figure 2: the PMU analysis flow, end to end.

The paper's toolset has three stages: preparation (gather all events from
Perfmon/perf), online collection (program counter groups, run the scene),
and offline analysis (differential filtering, then per-domain analysis
answering RQ1-RQ3).  This bench runs the whole flow and prints what each
stage produced -- including how much the differential filter discarded,
which is the point of automating the analysis.
"""

from benchmarks.conftest import banner, emit
from repro.pmutools import DifferentialFilter, OnlineCollector, PmuPipeline
from repro.pmutools.scenarios import TetCcScenario
from repro.sim.machine import Machine


def run_pipeline():
    machine = Machine("i7-7700", seed=401)
    pipeline = PmuPipeline(OnlineCollector(iterations=8), DifferentialFilter())
    return pipeline.analyze(TetCcScenario(machine))


def test_figure2_pmu_toolset_flow(benchmark):
    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    banner("Figure 2 -- PMU toolset flow (i7-7700 / TET-CC)")
    emit(f"[stage 1: preparation]   events gathered : {report.prepared_events}")
    emit(f"[stage 2: collection]    events measured : {len(report.collection.means)}")
    emit(f"                         iterations/cond : {report.collection.iterations}")
    emit(f"[stage 3a: differential] survivors       : {len(report.survivors)}")
    emit(f"                         filtered out    : {len(report.rejected)}")
    emit("[stage 3b: analysis]     per-domain evidence:")
    for domain, rows in report.domains().items():
        names = [row.event for row in rows]
        emit(f"    {domain:9}: {names if names else '(none)'}")

    emit("")
    rq_answers = {
        "RQ1 (frontend)": "resteer of BPU misprediction causes transient stall",
        "RQ2 (backend)": "resource-related stalls of the pipeline",
        "RQ3 (memory)": "TLB missing extends the ToTE",
    }
    for question, answer in rq_answers.items():
        emit(f"{question}: {answer}")

    # Shape: the flow collects everything, filters most of it, and keeps
    # evidence in at least frontend and backend domains for TET-CC.
    assert report.prepared_events == len(report.collection.means)
    assert 0 < len(report.survivors) < report.prepared_events
    assert len(report.rejected) > len(report.survivors)
    domains = report.domains()
    assert domains["frontend"], "RQ1 evidence missing"
    assert domains["backend"], "RQ2 evidence missing"
