"""E15 (extension) -- §3.2's conjecture: every Jcc carries the channel.

The paper verifies JE/JZ, JNE/JNZ and JC, and conjectures "all the
conditional jump instructions of x86 chips could be exploited".  On the
simulator the conjecture is testable: for each of the twelve condition
codes, build the Figure 1a-shaped gadget around that Jcc, train it to one
direction and flip it, and measure the ToTE delta of the in-window
misprediction.
"""

from benchmarks.conftest import banner, emit
from repro.isa.opcodes import Cond
from repro.sim.machine import Machine

#: For each condition, two r9 values that flip the direction after
#: `cmp r9, 1` (flags: zf = r9==1, cf = sf = r9<1, of = 0).
FLIP_VALUES = {
    Cond.E: (0, 1),
    Cond.NE: (0, 1),
    Cond.C: (0, 1),
    Cond.NC: (0, 1),
    Cond.S: (0, 1),
    Cond.NS: (0, 1),
    Cond.L: (0, 1),
    Cond.GE: (0, 1),
    Cond.LE: (1, 2),
    Cond.G: (1, 2),
    Cond.O: None,  # of is never set by `cmp r9, 1` over small r9
    Cond.NO: None,
}


def measure_condition(cond):
    machine = Machine("i7-7700", seed=511)
    source = f"""
    mov rax, r9
    cmp rax, 1
    rdtsc
    mov r14, rax
    xbegin out
    mov r8, [r13]
    j{cond.value} target
    nop
target:
    nop
out:
    rdtsc
    mov r15, rax
    hlt
"""
    program = machine.load_program(source)

    def tote(r9):
        result = machine.run(program, regs={"r13": 0, "r9": r9})
        return result.regs.read("r15") - result.regs.read("r14")

    train, flip = FLIP_VALUES[cond]
    for _ in range(6):
        tote(train)
    quiet = tote(train)
    for _ in range(3):
        tote(train)
    loud = tote(flip)
    return quiet, loud


def run_sweep():
    results = {}
    for cond, values in FLIP_VALUES.items():
        if values is None:
            continue
        results[cond] = measure_condition(cond)
    return results


def test_jcc_generality(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    banner("Extension -- §3.2's conjecture: the channel exists for every Jcc")
    emit(f"{'Jcc':>6} | {'trained ToTE':>12} | {'flipped ToTE':>12} | delta")
    for cond, (quiet, loud) in sorted(results.items(), key=lambda kv: kv[0].value):
        emit(f"{'j' + cond.value:>6} | {quiet:>12} | {loud:>12} | {loud - quiet:+d}")
    emit("")
    emit("paper verified je/jz, jne/jnz, jc; the other signed/unsigned")
    emit("codes behave identically (jo/jno excluded: `cmp r9, 1` cannot")
    emit("set OF for small operands, so there is no direction to flip).")

    # Conjecture holds: every testable Jcc shows an in-window mispredict
    # timing shift of the same sign and similar magnitude.
    deltas = {cond: loud - quiet for cond, (quiet, loud) in results.items()}
    assert all(delta > 0 for delta in deltas.values())
    magnitudes = set(deltas.values())
    assert max(magnitudes) - min(magnitudes) <= 6  # one mechanism, one cost
    assert len(results) == 10
