"""E18 (ablation) -- ambient noise vs the channel, and what batching buys.

The paper's throughput numbers are noise-limited (500 B/s for TET-CC
where our noise-free simulator reaches ~15 KB/s).  This ablation closes
that loop: a seeded jitter on every memory-side latency stands in for
co-running OS activity, and the sweep shows

* the clean channel decodes with a single batch;
* moderate noise (half the ~8-cycle signal) breaks single-batch decoding
  but majority voting restores it -- the reason the paper's receiver
  batches at all;
* noise comparable to the signal defeats per-batch voting, while the
  integrate-then-argmax decoder (``statistic="mean"``) still decodes --
  averaging suppresses noise by sqrt(batches);
* reliability costs rate: exactly the trade that separates our numbers
  from the paper's.
"""

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel

PAYLOAD = b"noise!"


def run_sweep():
    grid = {}
    for amplitude in (0, 4, 8):
        for statistic, batches in (("vote", 1), ("vote", 3), ("vote", 7), ("mean", 7)):
            machine = Machine("i7-7700", seed=701, noise_amplitude=amplitude)
            channel = TetCovertChannel(machine, batches=batches, statistic=statistic)
            grid[(amplitude, statistic, batches)] = channel.transmit(PAYLOAD)
    return grid


def test_ablation_noise_vs_batching(benchmark):
    grid = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    banner("Ablation -- ambient noise vs receiver strategy (i7-7700)")
    emit(f"signal: ~8 cycles; payload {len(PAYLOAD)} bytes")
    emit("")
    emit(f"{'jitter':>7} {'decoder':>10} {'batches':>8} {'error':>8} {'rate':>14}")
    for (amplitude, statistic, batches), stats in sorted(grid.items()):
        emit(
            f"{amplitude:>7} {statistic:>10} {batches:>8} "
            f"{stats.error_rate:>8.2%} {stats.bytes_per_second:>10,.0f} B/s"
        )
    emit("")
    emit(
        "noise-free rates are the simulator's optimism; under jitter the "
        "receiver must batch/integrate and the rate falls toward the "
        "paper's 500 B/s regime."
    )

    # Clean channel: one batch suffices.
    assert grid[(0, "vote", 1)].error_rate == 0.0
    # Moderate noise: single batch degrades, voting with 3+ recovers.
    assert grid[(4, "vote", 1)].error_rate > 0.0
    assert grid[(4, "vote", 3)].error_rate == 0.0
    # Signal-level noise: voting collapses, integration survives.
    assert grid[(8, "vote", 7)].error_rate > 0.2
    assert grid[(8, "mean", 7)].error_rate == 0.0
    # Reliability costs rate.
    assert (
        grid[(0, "vote", 7)].bytes_per_second
        < grid[(0, "vote", 1)].bytes_per_second
    )