"""E3 -- Table 2: environment and experiments (the attack × CPU matrix).

Runs every TET attack on every simulated machine and prints the ✓/✗
matrix next to the paper's verdicts.  Cells the paper marks "?" (not
verified) are reported with our simulator's outcome but not asserted.
"""

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb
from repro.whisper.attacks.zombieload import TetZombieload
from repro.whisper.channel import TetCovertChannel

ATTACKS = ("TET-CC", "TET-MD", "TET-ZBL", "TET-RSB", "TET-KASLR")
CPUS = ("i7-6700", "i7-7700", "i9-10980XE", "i9-13900K", "ryzen-5600G")

#: Table 2 verdicts: True=✓, False=✗, None=? (not verified by the paper).
PAPER = {
    "i7-6700": {"TET-CC": True, "TET-MD": True, "TET-ZBL": True, "TET-RSB": True, "TET-KASLR": True},
    "i7-7700": {"TET-CC": True, "TET-MD": True, "TET-ZBL": True, "TET-RSB": True, "TET-KASLR": True},
    "i9-10980XE": {"TET-CC": True, "TET-MD": False, "TET-ZBL": False, "TET-RSB": None, "TET-KASLR": True},
    "i9-13900K": {"TET-CC": True, "TET-MD": False, "TET-ZBL": False, "TET-RSB": True, "TET-KASLR": None},
    "ryzen-5600G": {"TET-CC": True, "TET-MD": False, "TET-ZBL": False, "TET-RSB": None, "TET-KASLR": False},
}

SECRET = b"T2!"


def run_cell(cpu: str, attack: str) -> bool:
    machine = Machine(cpu, seed=4242, secret=SECRET)
    if attack == "TET-CC":
        return TetCovertChannel(machine, batches=3).transmit(SECRET).error_rate == 0.0
    if attack == "TET-MD":
        return TetMeltdown(machine, batches=3).leak(length=len(SECRET)).success
    if attack == "TET-ZBL":
        zbl = TetZombieload(machine, batches=5)
        zbl.install_victim_secret(SECRET)
        return zbl.leak().success
    if attack == "TET-RSB":
        rsb = TetSpectreRsb(machine)
        rsb.install_secret(SECRET)
        return rsb.leak().success
    if attack == "TET-KASLR":
        return TetKaslr(machine).break_kaslr().success
    raise ValueError(attack)


def run_matrix():
    return {
        cpu: {attack: run_cell(cpu, attack) for attack in ATTACKS} for cpu in CPUS
    }


def glyph(value):
    if value is None:
        return "?"
    return "Y" if value else "x"


def test_table2_environment_and_experiments(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    banner("Table 2 -- Environment and experiments (ours vs paper)")
    header = f"{'CPU':14} " + " ".join(f"{a:>16}" for a in ATTACKS)
    emit(header)
    emit("-" * len(header))
    for cpu in CPUS:
        cells = []
        for attack in ATTACKS:
            ours = glyph(matrix[cpu][attack])
            paper = glyph(PAPER[cpu][attack])
            cells.append(f"{f'{ours} (paper {paper})':>16}")
        emit(f"{cpu:14} " + " ".join(cells))
    emit("")
    emit("Y = attack succeeds, x = fails, ? = not verified in the paper")

    mismatches = [
        (cpu, attack)
        for cpu in CPUS
        for attack in ATTACKS
        if PAPER[cpu][attack] is not None and matrix[cpu][attack] != PAPER[cpu][attack]
    ]
    assert not mismatches, f"matrix cells diverge from Table 2: {mismatches}"
