"""E14 (extension) -- TET-KASLR vs the related KASLR attack family.

§2.1 positions Whisper against the prior KASLR attacks: the 2013
fault-timing attack and EntryBleed (2023).  This bench runs all three
against every defense configuration and prints who survives what --
making the paper's "behavioural timing instead of specific instructions"
argument concrete:

* the fault-timing baseline needs no TSX but pays the full signal path
  per probe;
* EntryBleed rides the syscall's architectural TLB fill, so it works on
  AMD too -- but FLARE's dummy blanket (built against the prefetch
  family) stops it;
* TET-KASLR is the only one through FLARE, and the only one stopped by
  permission-checked TLB fills (AMD).
"""

from benchmarks.conftest import banner, emit
from repro.baselines.entrybleed import EntryBleedKaslr
from repro.baselines.fault_timing_kaslr import FaultTimingKaslr
from repro.sim.machine import Machine
from repro.whisper.attacks.kaslr import TetKaslr

CONFIGS = [
    ("plain KASLR, Intel", dict(model="i9-10980XE", seed=501)),
    ("KPTI, Intel", dict(model="i9-10980XE", seed=502, kpti=True)),
    ("KPTI+FLARE, Intel", dict(model="i9-10980XE", seed=503, kpti=True, flare=True)),
    ("plain KASLR, AMD", dict(model="ryzen-5600G", seed=504)),
    ("KPTI, AMD", dict(model="ryzen-5600G", seed=505, kpti=True)),
]


def run_attack(name, machine):
    if name == "TET-KASLR":
        return TetKaslr(machine).break_auto()
    if name == "fault-timing (2013)":
        return FaultTimingKaslr(machine).break_kaslr()
    if name == "EntryBleed (2023)":
        return EntryBleedKaslr(machine).break_kaslr()
    raise ValueError(name)


ATTACKS = ("TET-KASLR", "fault-timing (2013)", "EntryBleed (2023)")

#: Expected survival matrix (attack x config) -- the literature's shape.
EXPECTED = {
    ("TET-KASLR", "plain KASLR, Intel"): True,
    ("TET-KASLR", "KPTI, Intel"): True,
    ("TET-KASLR", "KPTI+FLARE, Intel"): True,
    ("TET-KASLR", "plain KASLR, AMD"): False,
    ("TET-KASLR", "KPTI, AMD"): False,
    ("fault-timing (2013)", "plain KASLR, Intel"): True,
    ("fault-timing (2013)", "plain KASLR, AMD"): False,
    ("EntryBleed (2023)", "KPTI, Intel"): True,
    ("EntryBleed (2023)", "KPTI+FLARE, Intel"): False,
    ("EntryBleed (2023)", "KPTI, AMD"): True,
}


def run_matrix():
    outcomes = {}
    for config_name, kwargs in CONFIGS:
        for attack_name in ATTACKS:
            machine = Machine(**kwargs)
            result = run_attack(attack_name, machine)
            outcomes[(attack_name, config_name)] = result
    return outcomes


def test_kaslr_attack_family_comparison(benchmark):
    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    banner("Extension -- KASLR attack family vs defenses")
    header = f"{'configuration':22} " + " ".join(f"{a:>20}" for a in ATTACKS)
    emit(header)
    emit("-" * len(header))
    for config_name, _ in CONFIGS:
        cells = []
        for attack_name in ATTACKS:
            result = outcomes[(attack_name, config_name)]
            verdict = "BROKEN" if result.success else "safe"
            cells.append(f"{f'{verdict} ({result.cycles/1e3:.0f}k cyc)':>20}")
        emit(f"{config_name:22} " + " ".join(cells))
    emit("")
    emit("TET-KASLR is the only attack through FLARE; EntryBleed is the")
    emit("only one that works on AMD (architectural syscall TLB fill);")
    emit("both Intel-only attacks die with permission-checked TLB fills.")

    for (attack_name, config_name), expected in EXPECTED.items():
        result = outcomes[(attack_name, config_name)]
        assert result.success == expected, (attack_name, config_name)

    # TET's suppressed probes are cheaper than full fault round-trips.
    tet = outcomes[("TET-KASLR", "plain KASLR, Intel")]
    fault = outcomes[("fault-timing (2013)", "plain KASLR, Intel")]
    assert tet.cycles < fault.cycles
