"""E1 -- Figure 1: the TET gadget's ToTE frequency plot and argmax series.

The paper iterates ``test_value`` 0..255 in batches over the Figure 1a
gadget (secret byte ``'S'``) and plots (a) the ToTE frequency by test
value -- the ToTE "surpasses others when Jcc is triggered" -- and (b) the
argmax per batch, which lands on ``'S'``.
"""

from collections import Counter

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel

SECRET = ord("S")
BATCHES = 5
NOISY_BATCHES = 40


def run_figure1():
    machine = Machine("i7-7700", seed=2024)
    channel = TetCovertChannel(machine, batches=BATCHES)
    machine.write_data(channel.sender_page, bytes([SECRET]))
    scan = channel.scan_byte()

    # The paper's frequency plot needs a distribution; ambient noise plus
    # many batches gives the two-population histogram of Figure 1b.
    noisy_machine = Machine("i7-7700", seed=2025, noise_amplitude=3)
    noisy = TetCovertChannel(
        noisy_machine, batches=NOISY_BATCHES, values=(0x10, SECRET)
    )
    noisy_machine.write_data(noisy.sender_page, bytes([SECRET]))
    noisy_scan = noisy.scan_byte()
    return scan, noisy_scan


def test_figure1_tote_frequency_and_argmax(benchmark):
    scan, noisy_scan = benchmark.pedantic(run_figure1, rounds=1, iterations=1)

    banner("Figure 1b -- ToTE by test value (i7-7700, secret 'S' = 0x53)")
    medians = {
        test: sorted(samples)[len(samples) // 2]
        for test, samples in scan.totes_by_test.items()
    }
    baseline = Counter(medians.values()).most_common(1)[0][0]
    emit(f"baseline ToTE (mode): {baseline} cycles")
    emit(f"{'test':>6} | {'median ToTE':>12} | delta")
    for test in sorted(medians):
        delta = medians[test] - baseline
        if delta != 0 or test in (SECRET - 1, SECRET, SECRET + 1):
            marker = "  <-- Jcc triggered" if test == SECRET else ""
            emit(f"{test:#6x} | {medians[test]:12d} | {delta:+d}{marker}")

    banner("Figure 1b (lower) -- argmax per batch")
    argmaxes = []
    for batch in range(BATCHES):
        argmax = max(scan.totes_by_test, key=lambda t: scan.totes_by_test[t][batch])
        argmaxes.append(argmax)
        emit(f"batch {batch}: argmax = {argmax:#x}")
    emit(f"decoded byte: {scan.value:#x} (confidence {scan.confidence:.0%})")

    banner("Figure 1b (upper) -- ToTE frequency under ambient noise")
    from repro.sim.viz import bar_chart

    for test in (0x10, SECRET):
        histogram = Counter(noisy_scan.totes_by_test[test])
        label = "Jcc triggered" if test == SECRET else "not triggered"
        emit("")
        emit(bar_chart(
            {str(tote): count for tote, count in sorted(histogram.items())},
            width=32,
            title=f"test={test:#x} ({label}), {NOISY_BATCHES} samples",
        ))
    trigger_mean = sum(noisy_scan.totes_by_test[SECRET]) / NOISY_BATCHES
    quiet_mean = sum(noisy_scan.totes_by_test[0x10]) / NOISY_BATCHES

    # Shape assertions: the ToTE peaks exactly at the secret, every batch,
    # and the noisy frequency distributions separate like the red box.
    assert scan.value == SECRET
    assert medians[SECRET] > baseline
    assert all(value == SECRET for value in argmaxes)
    assert trigger_mean > quiet_mean + 4
