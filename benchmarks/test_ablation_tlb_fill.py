"""E13 (ablation) -- the §6.3 hardware mitigation, tested.

"Our findings indicate that TLB entries should only be created if the
access permission check is passed."  The simulator exposes exactly that
knob (``fill_tlb_on_fault``); this bench runs TET-KASLR on the same Intel
configuration with the knob on (shipping behaviour) and off (the proposed
mitigation / AMD behaviour) and shows the oracle's separation collapse.
"""

import dataclasses
import statistics

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.uarch.config import cpu_model
from repro.whisper.attacks.kaslr import TetKaslr


def probe_separation(attack, machine):
    """Gap between unmapped- and mapped-candidate probe ToTEs."""
    layout = machine.kernel.layout
    mapped = [attack.probe_tote(layout.base + 0x1000) for _ in range(5)]
    unmapped_va = layout.end + 0x200000
    unmapped = [attack.probe_tote(unmapped_va) for _ in range(5)]
    return statistics.median(mapped), statistics.median(unmapped)


def run_ablation():
    results = {}
    for fill in (True, False):
        model = dataclasses.replace(cpu_model("i9-10980XE"), fill_tlb_on_fault=fill)
        machine = Machine(model, seed=481)
        attack = TetKaslr(machine)
        mapped, unmapped = probe_separation(attack, machine)
        outcome = attack.break_kaslr()
        results[fill] = {
            "mapped": mapped,
            "unmapped": unmapped,
            "break": outcome,
        }
    return results


def test_ablation_tlb_fill_on_fault(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    banner("Ablation -- TLB fill-on-faulting-access (the §6.3 mitigation)")
    emit(f"{'fill_tlb_on_fault':>18} | {'mapped ToTE':>12} | {'unmapped ToTE':>14} | KASLR")
    for fill, data in results.items():
        verdict = "BROKEN" if data["break"].success else "safe"
        emit(
            f"{str(fill):>18} | {data['mapped']:>12} | {data['unmapped']:>14} | {verdict}"
        )
    emit("")
    emit(
        "with permission-checked fills the mapped/unmapped probes become "
        "indistinguishable and the attack collapses -- the paper's proposed "
        "hardware fix, and the reason Zen 3 resists (Table 2)."
    )

    vulnerable = results[True]
    mitigated = results[False]
    # Shipping behaviour: a wide, exploitable gap.
    assert vulnerable["unmapped"] - vulnerable["mapped"] > 5
    assert vulnerable["break"].success
    # Mitigation: the gap collapses and the break fails.
    assert abs(mitigated["unmapped"] - mitigated["mapped"]) <= 2
    assert not mitigated["break"].success
