"""E4 -- Table 3: key performance-monitor counter values.

Runs the PMU toolset on the same scenes the paper measured and prints the
surviving counters.  Asserted shapes per Table 3:

* TET-CC (i7-6700 / i7-7700): Jcc trigger raises BR_MISP_EXEC.* from 0,
  raises RESOURCE_STALLS and recovery cycles, lowers IDQ.DSB uops.
* TET-MD (i7-7700): trigger raises CLEAR_RESTEER / RECOVERY cycles.
* Ryzen (TET-CC): trigger raises retire_token_stall sharply.
* TET-KASLR (i9-10980XE): unmapped probes dominate the WALK_ACTIVE events;
  mapped probes show none of it.
"""

from benchmarks.conftest import banner, emit
from repro.pmutools import OnlineCollector, PmuPipeline
from repro.pmutools.scenarios import TetCcScenario, TetKaslrScenario, TetMdScenario
from repro.sim.machine import Machine

PAPER_ROWS = {
    # scene -> {event: (cond0, cond1)} as printed in Table 3
    "i7-6700 TET-CC": {
        "BR_MISP_EXEC.INDIRECT": (0, 1),
        "BR_MISP_EXEC.ALL_BRANCHES": (0, 2),
        "RESOURCE_STALLS.ANY": (15, 21),
    },
    "i7-7700 TET-MD": {
        "INT_MISC.RECOVERY_CYCLES_ANY": (24, 29),
        "INT_MISC.CLEAR_RESTEER_CYCLES": (27, 39),
        "RESOURCE_STALLS.ANY": (15, 21),
    },
    "i9-10980XE TET-KASLR": {
        "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK": (2, 0),
        "DTLB_LOAD_MISSES.WALK_ACTIVE": (62, 0),
        "ITLB_MISSES.WALK_ACTIVE": (19, 0),
    },
}


def collect_all():
    pipeline = PmuPipeline(OnlineCollector(iterations=8))
    reports = {}
    reports["i7-6700 TET-CC"] = pipeline.analyze(
        TetCcScenario(Machine("i7-6700", seed=301))
    )
    reports["i7-7700 TET-CC"] = pipeline.analyze(
        TetCcScenario(Machine("i7-7700", seed=302))
    )
    reports["i7-7700 TET-MD"] = pipeline.analyze(
        TetMdScenario(Machine("i7-7700", seed=303))
    )
    reports["ryzen-5600G TET-CC"] = pipeline.analyze(
        TetCcScenario(Machine("ryzen-5600G", seed=304))
    )
    reports["i9-10980XE TET-KASLR"] = pipeline.analyze(
        TetKaslrScenario(Machine("i9-10980XE", seed=305))
    )
    return reports


def test_table3_key_pmu_counters(benchmark):
    reports = benchmark.pedantic(collect_all, rounds=1, iterations=1)

    banner("Table 3 -- Key performance monitor counter values (simulated)")
    for scene, report in reports.items():
        emit("")
        emit(report.render())

    def means(scene, event):
        return reports[scene].collection.means[event]

    # -- TET-CC on Skylake/Kaby Lake: the frontend/backend story (RQ1/RQ2)
    for scene in ("i7-6700 TET-CC", "i7-7700 TET-CC"):
        no_trigger, trigger = means(scene, "BR_MISP_EXEC.ALL_BRANCHES")
        assert no_trigger == 0 and trigger >= 1, scene
        no_trigger, trigger = means(scene, "RESOURCE_STALLS.ANY")
        assert trigger > no_trigger, scene
        no_trigger, trigger = means(scene, "IDQ.DSB_UOPS")
        assert trigger != no_trigger, scene

    # -- TET-MD: resteer + recovery grow on trigger
    for event in ("INT_MISC.CLEAR_RESTEER_CYCLES", "INT_MISC.RECOVERY_CYCLES_ANY"):
        no_trigger, trigger = means("i7-7700 TET-MD", event)
        assert trigger > no_trigger, event

    # -- Ryzen: the retire-token-stall jump (paper: 4 -> 84)
    no_trigger, trigger = means(
        "ryzen-5600G TET-CC", "de_dis_dispatch_token_stalls2.retire_token_stall"
    )
    assert trigger > no_trigger * 1.2

    # -- TET-KASLR: D-side walk activity exists only for unmapped probes
    # (RQ3).  The paper's ITLB_MISSES.WALK_ACTIVE asymmetry (19 vs 0) is a
    # sampling artefact of its measurement loop that our deterministic
    # i-side refetch does not reproduce; we assert it is at least not
    # inverted and record the divergence in EXPERIMENTS.md.
    for event in (
        "DTLB_LOAD_MISSES.WALK_ACTIVE",
        "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK",
    ):
        unmapped, mapped = means("i9-10980XE TET-KASLR", event)
        assert unmapped > mapped, event
    unmapped, mapped = means("i9-10980XE TET-KASLR", "ITLB_MISSES.WALK_ACTIVE")
    assert unmapped >= mapped

    banner("Table 3 -- paper-vs-simulated sign check")
    emit(f"{'scene':24} {'event':44} {'paper':>14} {'simulated':>16} sign")
    for scene, rows in PAPER_ROWS.items():
        for event, (paper0, paper1) in rows.items():
            sim0, sim1 = means(scene, event)
            paper_sign = "+" if paper1 > paper0 else "-"
            sim_sign = "+" if sim1 > sim0 else ("-" if sim1 < sim0 else "0")
            emit(
                f"{scene:24} {event:44} {f'{paper0}->{paper1}':>14} "
                f"{f'{sim0:.0f}->{sim1:.0f}':>16} {paper_sign}/{sim_sign}"
            )
            assert (sim1 > sim0) == (paper1 > paper0), (scene, event)
