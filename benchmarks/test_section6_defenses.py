"""E17 -- §6: what actually mitigates the TET attacks.

The security discussion names three mitigations and one non-mitigation:

* KPTI and microcode updates stop TET-MD/TET-ZBL (§6.2) -- but not
  TET-KASLR and not same-address-space leaks (TET-RSB/TET-V1);
* FGKASLR devalues a leaked base without preventing the leak (§6.2);
* permission-checked TLB fills (the §6.3 hardware fix) kill TET-KASLR;
* detecting/blocking cache covert channels does nothing (§6.1) -- bench
  E11 covers that half.

This bench runs the attack x defense matrix and prints who stops what.
"""

import dataclasses

from benchmarks.conftest import banner, emit
from repro.kernel.layout import DEFAULT_SYMBOL_OFFSETS
from repro.sim.machine import Machine
from repro.uarch.config import cpu_model
from repro.whisper.attacks.kaslr import TetKaslr
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb

SECRET = b"S6"


def run_matrix():
    rows = {}

    def machine_for(defense):
        if defense == "none":
            return Machine("i7-7700", seed=601, secret=SECRET)
        if defense == "KPTI":
            return Machine("i7-7700", seed=602, secret=SECRET, kpti=True)
        if defense == "KPTI+FLARE":
            return Machine("i7-7700", seed=603, secret=SECRET, kpti=True, flare=True)
        if defense == "FGKASLR":
            return Machine("i7-7700", seed=604, secret=SECRET, fgkaslr=True)
        if defense == "secure TLB (§6.3)":
            model = dataclasses.replace(cpu_model("i7-7700"), fill_tlb_on_fault=False)
            return Machine(model, seed=605, secret=SECRET)
        raise ValueError(defense)

    defenses = ("none", "KPTI", "KPTI+FLARE", "FGKASLR", "secure TLB (§6.3)")
    for defense in defenses:
        row = {}
        machine = machine_for(defense)
        row["TET-MD"] = TetMeltdown(machine, batches=3).leak(length=len(SECRET)).success

        machine = machine_for(defense)
        rsb = TetSpectreRsb(machine)
        rsb.install_secret(SECRET)
        row["TET-RSB"] = rsb.leak().success

        machine = machine_for(defense)
        kaslr_result = TetKaslr(machine).break_auto()
        row["TET-KASLR"] = kaslr_result.success
        if defense == "FGKASLR" and kaslr_result.success:
            guessed = kaslr_result.found_base + DEFAULT_SYMBOL_OFFSETS["commit_creds"]
            actual = machine.kernel.layout.symbol_va("commit_creds")
            row["symbols usable"] = guessed == actual
        rows[defense] = row
    return rows


def test_section6_defense_matrix(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    banner("§6 -- defense evaluation (i7-7700 family)")
    attacks = ("TET-MD", "TET-RSB", "TET-KASLR")
    header = f"{'defense':20} " + " ".join(f"{a:>10}" for a in attacks)
    emit(header)
    emit("-" * len(header))
    for defense, row in rows.items():
        cells = " ".join(
            f"{'leaks' if row[a] else 'stopped':>10}" for a in attacks
        )
        emit(f"{defense:20} {cells}")
    emit("")
    emit(
        f"FGKASLR: base leaks but canonical symbol offsets are "
        f"{'still valid (!)' if rows['FGKASLR'].get('symbols usable') else 'useless'} "
        f"-- §6.2's point about devaluing the leak"
    )

    # §6.2: KPTI stops TET-MD...
    assert rows["none"]["TET-MD"] and not rows["KPTI"]["TET-MD"]
    # ...but not TET-KASLR (that is the paper's headline) nor TET-RSB.
    assert rows["KPTI"]["TET-KASLR"] and rows["KPTI+FLARE"]["TET-KASLR"]
    assert all(row["TET-RSB"] for row in rows.values())
    # FGKASLR: the base leaks, the symbols do not.
    assert rows["FGKASLR"]["TET-KASLR"]
    assert rows["FGKASLR"].get("symbols usable") is False
    # §6.3: the hardware fix kills the KASLR oracle (and only it).
    assert not rows["secure TLB (§6.3)"]["TET-KASLR"]
    assert rows["secure TLB (§6.3)"]["TET-MD"]  # Meltdown forwarding is separate
