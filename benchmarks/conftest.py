"""Shared helpers for the benchmark/reproduction harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index).  ``pytest benchmarks/
--benchmark-only`` runs them all; each prints the reproduced artefact and
asserts the paper's qualitative *shape* (signs, orderings, ✓/✗ patterns),
not its absolute numbers -- our substrate is a simulator, not the
authors' testbed.

Reproduction output is buffered and dumped after the test summary (so it
survives pytest's capture) and additionally written to
``benchmarks/reports/reproduction_report.txt``.  Benches that call
:func:`emit_metric` also feed ``reproduction_report.json`` -- a
``{section: {metric: value}}`` map -- so the perf trajectory is
machine-tracked run over run (CI uploads the ``reports/*.json`` files as
workflow artifacts).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

_LINES: List[str] = []
_METRICS: Dict[str, Dict[str, object]] = {}

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")
REPORT_PATH = os.path.join(REPORT_DIR, "reproduction_report.txt")
METRICS_PATH = os.path.join(REPORT_DIR, "reproduction_report.json")


def _report_schema_version() -> int:
    from repro.campaign.report import REPORT_SCHEMA_VERSION

    return REPORT_SCHEMA_VERSION


def banner(title: str) -> None:
    """Start a new section of the reproduction report."""
    line = "=" * max(64, len(title) + 8)
    _LINES.extend(["", line, f"  {title}", line])


def emit(text: str = "") -> None:
    """Append one line to the reproduction report."""
    _LINES.append(text)


def emit_metric(section: str, name: str, value) -> None:
    """Record one machine-readable metric under *section*.

    *value* must be JSON-serialisable (numbers, strings, booleans,
    lists); keep the names stable across PRs so the artifact diffs.
    """
    _METRICS.setdefault(section, {})[name] = value


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Dump the accumulated reproduction artefacts after the test summary."""
    if not _LINES and not _METRICS:
        return
    write = terminalreporter.write_line
    os.makedirs(REPORT_DIR, exist_ok=True)
    if _LINES:
        write("")
        write("#" * 78)
        write("#  PAPER REPRODUCTION OUTPUT (tables & figures)")
        write("#" * 78)
        for line in _LINES:
            write(line)
        with open(REPORT_PATH, "w") as handle:
            handle.write("\n".join(_LINES) + "\n")
        write("")
        write(f"(report also written to {REPORT_PATH})")
    if _METRICS:
        payload = {"schema_version": _report_schema_version(), **_METRICS}
        with open(METRICS_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        write(f"(metrics written to {METRICS_PATH})")
