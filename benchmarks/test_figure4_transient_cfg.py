"""E7 -- Figure 4 and §5.2.5: the transient control-flow graph.

The paper's branch-reachability experiment: with the mfence close to the
branch, the *not-trigger* path stalls at the fence and issues fewer uops,
while the trigger path jumps past it and issues more -- confirming the
trigger path executes (path (3) in the figure).  Lengthening the nop sled
before the mfence flips the sign: the not-trigger path now fills the
window with nops while the trigger path pays the redirect bubble.

The bench reproduces both halves: the CFG with per-path annotations and
the UOPS_ISSUED.ANY sign flip over the sled length.
"""

from benchmarks.conftest import banner, emit
from repro.pmutools.scenarios import TransientFlowScenario
from repro.sim.machine import Machine
from repro.sim.tracing import control_flow_graph, path_summary


def measure_uops(machine, scenario):
    """UOPS_ISSUED.ANY per condition, PMU-bracketed like the toolset."""
    scenario.warm_up()
    pmu = machine.pmu
    means = []
    for condition in (0, 1):
        total = 0
        for _ in range(6):
            scenario.retrain()
            base = pmu.snapshot()
            scenario.run_condition(condition)
            total += pmu.delta(base)["UOPS_ISSUED.ANY"]
        means.append(total / 6)
    return means


def run_experiment():
    results = {}
    for sled in (0, 24, 48):
        machine = Machine("i7-6700", seed=403)
        scenario = TransientFlowScenario(machine, sled=sled)
        results[sled] = measure_uops(machine, scenario)
    # One traced trigger run for the CFG itself.
    machine = Machine("i7-6700", seed=404)
    scenario = TransientFlowScenario(machine, sled=0)
    scenario.warm_up()
    scenario.retrain()
    traced = machine.run(
        scenario.program,
        regs={"r13": scenario.secret_va, "r9": scenario.secret_byte},
        record_trace=True,
    )
    return results, traced


def test_figure4_transient_cfg_and_uops_issued(benchmark):
    results, traced = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    banner("Figure 4 -- control flow graph of the transient execution")
    graph = control_flow_graph(traced)
    for node in sorted(graph.nodes):
        data = graph.nodes[node]
        kind = []
        if data["committed_visits"]:
            kind.append(f"committed x{data['committed_visits']}")
        if data["transient_visits"]:
            kind.append(f"transient x{data['transient_visits']}")
        emit(f"  {node:#x}: {data['mnemonic']:24} [{', '.join(kind)}]")
    summary = path_summary(traced)
    emit("")
    emit(f"path summary: {summary}")

    banner("§5.2.5 -- UOPS_ISSUED.ANY vs nop-sled length (sign flip)")
    emit(f"{'sled nops':>10} | {'not trigger':>12} | {'trigger':>8} | sign")
    for sled, (no_trigger, trigger) in sorted(results.items()):
        sign = "+" if trigger > no_trigger else "-"
        emit(f"{sled:>10} | {no_trigger:12.1f} | {trigger:8.1f} | {sign}")

    # Shape assertions -------------------------------------------------------
    # The trigger path exists: transient visits beyond the faulting load.
    assert summary["uops_squashed"] > 0
    assert summary["nested_redirects"] == 1
    # Short sled: fence throttles the not-trigger path -> trigger issues
    # MORE uops (the paper's path-(3) evidence).
    short_no, short_yes = results[0]
    assert short_yes > short_no
    # Long sled: the not-trigger path issues nops freely while the trigger
    # path eats the redirect bubble -> the sign flips (fewer uops).
    long_no, long_yes = results[48]
    assert long_yes < long_no
