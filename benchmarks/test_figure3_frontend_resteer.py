"""E6 -- Figure 3: the frontend-issued resteer within transient execution.

The figure illustrates the mechanism behind RQ1: when the transient Jcc
triggers, the BPU mispredict clears the frontend, the resteered fetch
loses its DSB streak (more MITE/MS delivery), and extra clear/recovery
cycles appear.  This bench reconstructs that picture from a traced run:
the dispatch timeline around the nested redirect plus the IDQ deltas.
"""

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.sim.tracing import frontend_trace
from repro.whisper.gadgets import GadgetBuilder

SECRET = 0x53


def build(machine):
    builder = GadgetBuilder(machine)
    program = builder.figure1()
    page = machine.alloc_data()
    machine.write_data(page, bytes([SECRET]))
    return program, page


def run_conditions():
    machine = Machine("i7-7700", seed=402)
    program, page = build(machine)
    regs = lambda test: {"r12": page, "r13": 0, "r9": test}
    # Warm, and keep the predictor trained to the common direction.
    for _ in range(6):
        machine.run(program, regs=regs(256))
    pmu = machine.pmu

    base = pmu.snapshot()
    no_trigger = machine.run(program, regs=regs(256), record_trace=True)
    no_trigger_delta = pmu.delta(base)

    for _ in range(3):
        machine.run(program, regs=regs(256))
    base = pmu.snapshot()
    trigger = machine.run(program, regs=regs(SECRET), record_trace=True)
    trigger_delta = pmu.delta(base)
    return no_trigger, no_trigger_delta, trigger, trigger_delta


def test_figure3_frontend_resteer_within_transient_window(benchmark):
    no_trigger, nt_delta, trigger, t_delta = benchmark.pedantic(
        run_conditions, rounds=1, iterations=1
    )

    banner("Figure 3 -- frontend resteer within the transient window")
    emit("dispatch timeline (trigger run), around the nested redirect:")
    redirect = trigger.events.redirects[0]
    for entry in frontend_trace(trigger):
        marker = ""
        if entry.cycle >= redirect.redirect_cycle and entry.transient:
            marker = "   <- post-resteer fetch"
        flag = "T" if entry.transient else " "
        squash = "x" if entry.squashed else " "
        emit(
            f"  cycle {entry.cycle - trigger.start_cycle:4d} [{flag}{squash}] "
            f"{entry.source:4} {entry.mnemonic}{marker}"
        )
    emit("")
    emit(f"nested redirect: resolve @+{redirect.resolve_cycle - trigger.start_cycle}, "
         f"resteer until @+{redirect.redirect_cycle - trigger.start_cycle}, "
         f"recovery until @+{redirect.recovery_end - trigger.start_cycle}")

    emit("")
    emit(f"{'event':40} {'no trigger':>12} {'trigger':>10}")
    for event in (
        "INT_MISC.CLEAR_RESTEER_CYCLES",
        "INT_MISC.RECOVERY_CYCLES",
        "BR_MISP_EXEC.ALL_BRANCHES",
        "IDQ.DSB_UOPS",
        "IDQ.MS_UOPS",
    ):
        emit(f"{event:40} {nt_delta[event]:12d} {t_delta[event]:10d}")

    # Shape: the trigger run has a nested redirect and pays extra
    # clear-resteer + recovery cycles; the quiet run has neither.
    assert len(no_trigger.events.redirects) == 0
    assert len(trigger.events.redirects) == 1
    assert trigger.events.redirects[0].nested_in_transient
    assert t_delta["INT_MISC.CLEAR_RESTEER_CYCLES"] > nt_delta["INT_MISC.CLEAR_RESTEER_CYCLES"]
    assert t_delta["INT_MISC.RECOVERY_CYCLES"] > nt_delta["INT_MISC.RECOVERY_CYCLES"]
    assert t_delta["BR_MISP_EXEC.ALL_BRANCHES"] == 1
