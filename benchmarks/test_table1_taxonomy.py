"""E2 -- Table 1: the side-channel-attack comparison.

A qualitative table; the bench renders it and asserts the classification
claims the paper builds its novelty argument on.
"""

from benchmarks.conftest import banner, emit
from repro.whisper.taxonomy import TABLE1_ROWS, render_table1, transient_only_classes


def test_table1_comparison_of_side_channel_attacks(benchmark):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)

    banner("Table 1 -- Comparison of Side Channel Attacks")
    emit(table)

    tet = transient_only_classes()
    emit("")
    emit(f"transient-only channels: {[row.example for row in tet]}")

    # Shape: TET occupies the transient-only column alone, is stateless,
    # and covers both the direct (TET-MD/ZBL/RSB) and indirect (TET-KASLR)
    # rows -- §3.3's summary.
    assert all(row.this_paper for row in tet)
    assert all(not row.stateful for row in tet)
    assert {row.direct for row in tet} == {True, False}
    assert all(not row.transient_only for row in TABLE1_ROWS if not row.this_paper)
