"""E-RT -- runtime scaling: the trial pool versus the serial executor.

Fans one TET-CC byte-scan campaign across 1 and 4 worker processes and
records the wall-clock speedup.  Two shapes are asserted:

* **determinism**: the 4-worker scan equals the 1-worker scan, sample
  for sample (the TrialPool contract -- parallelism must be free of
  statistical cost);
* **speedup > 1.0 -- but only where it is physically possible**: on a
  multi-CPU host the fan-out must beat the serial path; on a single-CPU
  host process fan-out can only pipeline, so the assertion is skipped
  with a logged warning and the measurement is recorded either way.
"""

import time
import warnings

from benchmarks.conftest import banner, emit, emit_metric
from repro.runtime import TrialPool, default_workers
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel

PAYLOAD = b"\x13\x9c\x55\xe0"
WORKER_COUNTS = (1, 4)


def run_scan(workers: int):
    machine = Machine("i7-7700", seed=4100)
    with TrialPool(workers=workers) as pool:
        channel = TetCovertChannel(machine, batches=3, pool=pool)
        start = time.perf_counter()
        stats = channel.transmit(PAYLOAD)
        elapsed = time.perf_counter() - start
    return stats, elapsed


def run_all():
    return {workers: run_scan(workers) for workers in WORKER_COUNTS}


def test_runtime_scaling(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    serial_stats, serial_wall = results[1]
    parallel_stats, parallel_wall = results[4]
    speedup = serial_wall / parallel_wall if parallel_wall else float("nan")

    host_cpus = default_workers()
    banner("runtime -- TrialPool scaling (TET-CC byte scan, 4-byte payload)")
    emit(f"host CPUs: {host_cpus}")
    emit(f"{'workers':>8} {'wall':>10} {'received':>12} {'error':>8}")
    for workers in WORKER_COUNTS:
        stats, wall = results[workers]
        emit(
            f"{workers:>8} {wall:>9.3f}s {stats.received.hex():>12} "
            f"{stats.error_rate:>8.2%}"
        )
    emit("")
    if host_cpus == 1:
        emit(
            f"speedup at 4 workers: {speedup:.2f}x "
            "(recorded only: single-CPU host, fan-out cannot scale)"
        )
    else:
        emit(f"speedup at 4 workers: {speedup:.2f}x (asserted > 1.0)")

    emit_metric("runtime_scaling", "host_cpus", host_cpus)
    emit_metric("runtime_scaling", "serial_wall_seconds", serial_wall)
    emit_metric("runtime_scaling", "parallel_wall_seconds", parallel_wall)
    # On a single-CPU host the speedup is physically meaningless (process
    # fan-out cannot scale), so it is recorded under an *_advisory name:
    # anything trending the plain metric would otherwise read the ~1.0x
    # single-CPU number as a parallelism regression.
    if host_cpus == 1:
        emit_metric("runtime_scaling", "speedup_4_workers_advisory", speedup)
    else:
        emit_metric("runtime_scaling", "speedup_4_workers", speedup)
    emit_metric("runtime_scaling", "speedup_asserted", host_cpus > 1)
    emit_metric("runtime_scaling", "error_rate", parallel_stats.error_rate)

    # The determinism contract is the hard assertion.
    assert serial_stats.received == parallel_stats.received == PAYLOAD
    assert serial_stats.error_rate == parallel_stats.error_rate == 0.0
    assert serial_stats.cycles == parallel_stats.cycles
    assert speedup > 0
    if host_cpus == 1:
        warnings.warn(
            f"runtime-scaling speedup assertion skipped: host exposes a "
            f"single CPU (measured {speedup:.2f}x, recorded to the "
            f"reproduction report)"
        )
    else:
        assert speedup > 1.0, (
            f"4-worker fan-out must beat serial on a {host_cpus}-CPU host "
            f"(measured {speedup:.2f}x)"
        )
