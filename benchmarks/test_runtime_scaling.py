"""E-RT -- runtime scaling: the trial pool versus the serial executor.

Fans one TET-CC byte-scan campaign across 1 and 4 worker processes and
records the wall-clock speedup.  Two shapes are asserted:

* **determinism**: the 4-worker scan equals the 1-worker scan, sample
  for sample (the TrialPool contract -- parallelism must be free of
  statistical cost);
* the speedup is *recorded*, not asserted above 1.0: CI boxes may expose
  a single CPU, where process fan-out can only pipeline, not parallelise.
"""

import time

from benchmarks.conftest import banner, emit, emit_metric
from repro.runtime import TrialPool, default_workers
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel

PAYLOAD = b"\x13\x9c\x55\xe0"
WORKER_COUNTS = (1, 4)


def run_scan(workers: int):
    machine = Machine("i7-7700", seed=4100)
    with TrialPool(workers=workers) as pool:
        channel = TetCovertChannel(machine, batches=3, pool=pool)
        start = time.perf_counter()
        stats = channel.transmit(PAYLOAD)
        elapsed = time.perf_counter() - start
    return stats, elapsed


def run_all():
    return {workers: run_scan(workers) for workers in WORKER_COUNTS}


def test_runtime_scaling(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    serial_stats, serial_wall = results[1]
    parallel_stats, parallel_wall = results[4]
    speedup = serial_wall / parallel_wall if parallel_wall else float("nan")

    banner("runtime -- TrialPool scaling (TET-CC byte scan, 4-byte payload)")
    emit(f"host CPUs: {default_workers()}")
    emit(f"{'workers':>8} {'wall':>10} {'received':>12} {'error':>8}")
    for workers in WORKER_COUNTS:
        stats, wall = results[workers]
        emit(
            f"{workers:>8} {wall:>9.3f}s {stats.received.hex():>12} "
            f"{stats.error_rate:>8.2%}"
        )
    emit("")
    emit(
        f"speedup at 4 workers: {speedup:.2f}x "
        "(recorded, not asserted: single-CPU CI hosts cannot scale)"
    )

    emit_metric("runtime_scaling", "host_cpus", default_workers())
    emit_metric("runtime_scaling", "serial_wall_seconds", serial_wall)
    emit_metric("runtime_scaling", "parallel_wall_seconds", parallel_wall)
    emit_metric("runtime_scaling", "speedup_4_workers", speedup)
    emit_metric("runtime_scaling", "error_rate", parallel_stats.error_rate)

    # The determinism contract is the hard assertion.
    assert serial_stats.received == parallel_stats.received == PAYLOAD
    assert serial_stats.error_rate == parallel_stats.error_rate == 0.0
    assert serial_stats.cycles == parallel_stats.cycles
    assert speedup > 0
