"""E-RT -- runtime scaling: the trial pool versus the serial executor.

Fans one TET-CC byte-scan campaign across 1 and 4 worker processes and
records the wall-clock speedup.  Two shapes are asserted:

* **determinism**: the 4-worker scan equals the 1-worker scan, sample
  for sample (the TrialPool contract -- parallelism must be free of
  statistical cost);
* **speedup > 1.0 -- but only where it is physically possible**: on a
  multi-CPU host the fan-out must beat the serial path; on a single-CPU
  host process fan-out can only pipeline, so the assertion is skipped
  with a logged warning and the measurement is recorded either way.

The second axis is the lockstep batch executor: the same campaign cell
stepped 1, 4 and 16 lanes at a time in one process.  Unlike process
fan-out, batching shares leader work *within* the interpreter, so its
speedup does not depend on host CPU count and is asserted
unconditionally at 4+ lanes (the measured ratio is recorded either way;
only hard-to-time hosts get the ``_advisory`` spelling).
"""

import time
import warnings

from benchmarks.conftest import banner, emit, emit_metric
from repro.perf import cell_payloads
from repro.runtime import TrialPool, default_workers
from repro.runtime.batch import BatchStats, run_trials_batched
from repro.runtime.tasks import clear_worker_contexts, run_trial
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel

PAYLOAD = b"\x13\x9c\x55\xe0"
WORKER_COUNTS = (1, 4)
BATCH_SIZES = (1, 4, 16)


def run_scan(workers: int):
    machine = Machine("i7-7700", seed=4100)
    with TrialPool(workers=workers) as pool:
        channel = TetCovertChannel(machine, batches=3, pool=pool)
        start = time.perf_counter()
        stats = channel.transmit(PAYLOAD)
        elapsed = time.perf_counter() - start
    return stats, elapsed


def run_all():
    return {workers: run_scan(workers) for workers in WORKER_COUNTS}


def test_runtime_scaling(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    serial_stats, serial_wall = results[1]
    parallel_stats, parallel_wall = results[4]
    speedup = serial_wall / parallel_wall if parallel_wall else float("nan")

    host_cpus = default_workers()
    banner("runtime -- TrialPool scaling (TET-CC byte scan, 4-byte payload)")
    emit(f"host CPUs: {host_cpus}")
    emit(f"{'workers':>8} {'wall':>10} {'received':>12} {'error':>8}")
    for workers in WORKER_COUNTS:
        stats, wall = results[workers]
        emit(
            f"{workers:>8} {wall:>9.3f}s {stats.received.hex():>12} "
            f"{stats.error_rate:>8.2%}"
        )
    emit("")
    if host_cpus == 1:
        emit(
            f"speedup at 4 workers: {speedup:.2f}x "
            "(recorded only: single-CPU host, fan-out cannot scale)"
        )
    else:
        emit(f"speedup at 4 workers: {speedup:.2f}x (asserted > 1.0)")

    emit_metric("runtime_scaling", "host_cpus", host_cpus)
    emit_metric("runtime_scaling", "serial_wall_seconds", serial_wall)
    emit_metric("runtime_scaling", "parallel_wall_seconds", parallel_wall)
    # On a single-CPU host the speedup is physically meaningless (process
    # fan-out cannot scale), so it is recorded under an *_advisory name:
    # anything trending the plain metric would otherwise read the ~1.0x
    # single-CPU number as a parallelism regression.
    if host_cpus == 1:
        emit_metric("runtime_scaling", "speedup_4_workers_advisory", speedup)
    else:
        emit_metric("runtime_scaling", "speedup_4_workers", speedup)
    emit_metric("runtime_scaling", "speedup_asserted", host_cpus > 1)
    emit_metric("runtime_scaling", "error_rate", parallel_stats.error_rate)

    # The determinism contract is the hard assertion.
    assert serial_stats.received == parallel_stats.received == PAYLOAD
    assert serial_stats.error_rate == parallel_stats.error_rate == 0.0
    assert serial_stats.cycles == parallel_stats.cycles
    assert speedup > 0
    if host_cpus == 1:
        warnings.warn(
            f"runtime-scaling speedup assertion skipped: host exposes a "
            f"single CPU (measured {speedup:.2f}x, recorded to the "
            f"reproduction report)"
        )
    else:
        assert speedup > 1.0, (
            f"4-worker fan-out must beat serial on a {host_cpus}-CPU host "
            f"(measured {speedup:.2f}x)"
        )


def run_batched_cell(batch: int):
    """One e3-matrix cell through the batch executor at *batch* lanes."""
    payloads = cell_payloads("e3-matrix", 0, limit=48)
    clear_worker_contexts()
    stats = BatchStats()
    if batch == 1:
        run_trials_batched(payloads[:3], batch)  # warm contexts and caches
    else:
        run_trials_batched(payloads[:3], batch, stats)
    start = time.perf_counter()
    results = run_trials_batched(payloads, batch, stats)
    elapsed = time.perf_counter() - start
    return results, elapsed, stats


def test_batch_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {batch: run_batched_cell(batch) for batch in BATCH_SIZES},
        rounds=1,
        iterations=1,
    )

    scalar_results, scalar_wall, _ = results[1]
    banner("runtime -- lockstep batch scaling (e3-matrix cell 0, 48 trials)")
    emit(f"{'lanes':>8} {'wall':>10} {'speedup':>8} {'packs':>6} {'evicted':>8}")
    emit_metric("batch_scaling", "trials", len(scalar_results))
    for batch in BATCH_SIZES:
        batch_results, wall, stats = results[batch]
        speedup = scalar_wall / wall if wall else float("nan")
        emit(
            f"{batch:>8} {wall:>9.3f}s {speedup:>7.2f}x {stats.packs:>6} "
            f"{stats.evicted_lanes:>8}"
        )
        emit_metric("batch_scaling", f"wall_seconds_batch_{batch}", wall)
        if batch > 1:
            emit_metric("batch_scaling", f"speedup_batch_{batch}", speedup)
        # The determinism contract is the hard assertion: every lane
        # count computes the scalar bytes.
        assert batch_results == scalar_results, f"batch {batch} diverged"
    speedup_4 = scalar_wall / results[4][1]
    speedup_16 = scalar_wall / results[16][1]
    # In-process lockstep sharing is host-CPU-count independent; the
    # floors are far under the measured ~3.6x/13x so host noise cannot
    # flake them.
    assert speedup_4 > 1.5, f"4-lane packs must beat scalar ({speedup_4:.2f}x)"
    assert speedup_16 > 2.5, f"16-lane packs must beat scalar ({speedup_16:.2f}x)"
    assert speedup_16 > speedup_4, "wider packs must amortise more leader work"


def run_batched_kaslr_cell(batch: int):
    """One e9-kaslr cell slice through the batch executor at *batch*
    lanes: translation-shadow packs plus the leader trace cache."""
    payloads = cell_payloads("e9-kaslr", 0, limit=64)
    clear_worker_contexts()
    stats = BatchStats()
    if batch == 1:
        run_trials_batched(payloads[:3], batch)  # warm contexts and caches
    else:
        run_trials_batched(payloads[:3], batch, stats)
    start = time.perf_counter()
    results = run_trials_batched(payloads, batch, stats)
    elapsed = time.perf_counter() - start
    return results, elapsed, stats


def test_kaslr_batch_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {batch: run_batched_kaslr_cell(batch) for batch in BATCH_SIZES},
        rounds=1,
        iterations=1,
    )

    scalar_results, scalar_wall, _ = results[1]
    banner(
        "runtime -- KASLR lockstep batch scaling (e9-kaslr cell 0, 64 trials)"
    )
    emit(
        f"{'lanes':>8} {'wall':>10} {'speedup':>8} {'packs':>6} "
        f"{'evicted':>8} {'cache h/m':>10}"
    )
    emit_metric("kaslr_batch_scaling", "trials", len(scalar_results))
    for batch in BATCH_SIZES:
        batch_results, wall, stats = results[batch]
        speedup = scalar_wall / wall if wall else float("nan")
        cache = f"{stats.leader_cache_hits}/{stats.leader_cache_misses}"
        emit(
            f"{batch:>8} {wall:>9.3f}s {speedup:>7.2f}x {stats.packs:>6} "
            f"{stats.evicted_lanes:>8} {cache:>10}"
        )
        emit_metric("kaslr_batch_scaling", f"wall_seconds_batch_{batch}", wall)
        if batch > 1:
            emit_metric("kaslr_batch_scaling", f"speedup_batch_{batch}", speedup)
            emit_metric(
                "kaslr_batch_scaling",
                f"leader_cache_hits_batch_{batch}",
                stats.leader_cache_hits,
            )
        # The determinism contract is the hard assertion: every lane
        # count computes the scalar bytes.
        assert batch_results == scalar_results, f"kaslr batch {batch} diverged"
    speedup_4 = scalar_wall / results[4][1]
    speedup_16 = scalar_wall / results[16][1]
    # KASLR packs amortise far more than channel packs (the sweep's
    # unmapped slots are walk-isomorphic and the leader trace cache
    # removes whole executions); the acceptance floor is 3x at 8 lanes,
    # so 4/16 lanes get proportionate conservative floors.
    assert speedup_4 > 2.0, f"4-lane packs must beat scalar ({speedup_4:.2f}x)"
    assert speedup_16 > 4.0, (
        f"16-lane packs must beat scalar ({speedup_16:.2f}x)"
    )
    assert speedup_16 > speedup_4, "wider packs must amortise more leader work"
