"""E12 (ablation) -- why TET-MD is longer and TET-ZBL shorter on trigger.

Two mechanisms pull the ToTE in opposite directions when the transient
Jcc triggers:

* the nested clear's recovery serialises with the fault flush (+);
* a taken jump prunes the uop stream the flush must drain (-).

The Figure 1a/TET-MD gadget converges after one nop, so mechanism (+)
wins; the TET-ZBL gadget jumps over a nop sled, so with a long enough
sled mechanism (-) wins.  This bench sweeps the sled length of the
ZBL-shaped gadget and locates the crossover, and verifies the two
production gadgets sit on opposite sides of it.
"""

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.whisper.gadgets import GadgetBuilder

SECRET = 0x5A
NO_MATCH = 256


def trigger_delta(machine, program, fault_va, warms=6):
    """Median ToTE(trigger) - ToTE(no trigger) with retraining between."""

    def run(test):
        result = machine.run(program, regs={"r13": fault_va, "r9": test})
        return result.regs.read("r15") - result.regs.read("r14")

    for _ in range(warms):
        run(NO_MATCH)
    deltas = []
    for _ in range(5):
        for _ in range(3):  # keep the predictor on the common direction
            run(NO_MATCH)
        quiet = run(NO_MATCH)
        for _ in range(3):
            run(NO_MATCH)
        loud = run(SECRET)
        deltas.append(loud - quiet)
    deltas.sort()
    return deltas[len(deltas) // 2]


def run_sweep():
    sweep = {}
    for sled in (0, 2, 4, 8, 16, 32, 48):
        machine = Machine("i7-7700", seed=471)
        machine.mmu.lfb.clear()
        victim = machine.alloc_data()
        machine.victim_store(victim, bytes([SECRET]))
        program = GadgetBuilder(machine).zombieload(sled=sled)
        sweep[sled] = trigger_delta(machine, program, fault_va=0)

    md_machine = Machine("i7-7700", seed=472, secret=bytes([SECRET]))
    md_machine.warm_kernel_secret()
    md_program = GadgetBuilder(md_machine).meltdown()
    md_delta = trigger_delta(md_machine, md_program, fault_va=md_machine.kernel.secret_va)
    return sweep, md_delta


def test_ablation_tote_sign_vs_gadget_shape(benchmark):
    sweep, md_delta = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    banner("Ablation -- ToTE(trigger) - ToTE(quiet) vs gadget shape (i7-7700)")
    emit(f"{'gadget':28} | {'delta (cycles)':>14} | sign")
    emit(f"{'TET-MD (Figure 1a shape)':28} | {md_delta:>14} | {'+' if md_delta > 0 else '-'}")
    for sled, delta in sorted(sweep.items()):
        sign = "+" if delta > 0 else "-"
        emit(f"{f'TET-ZBL, sled={sled} nops':28} | {delta:>14} | {sign}")
    crossover = min((sled for sled, delta in sweep.items() if delta < 0), default=None)
    emit("")
    emit(f"sign flips between sled={max((s for s, d in sweep.items() if d >= 0), default=0)} "
         f"and sled={crossover} nops: pruning starts to beat the nested-clear cost")

    # Shapes: MD-shaped gadget is longer on trigger (§4.3.1); the
    # long-sled ZBL gadget is shorter (§4.3.2); the production sled (32)
    # is safely past the crossover.
    assert md_delta > 0
    assert sweep[48] < 0
    assert sweep[32] < 0
    assert crossover is not None and crossover <= 32
