"""E10 -- §4.4: the SMT covert channel built from suppressed exceptions.

The paper's prototype reaches 1 B/s with <5 % error on the i7-7700; with
the SecSMT evaluation harness the raw rate is 268 KB/s at a 28 % error
rate.  The simulator has no co-running OS noise, so both modes decode
cleanly; the preserved shape is the rate/robustness trade-off (the SecSMT
configuration is much faster per bit) and the signal mechanism (the '1'
symbols slow the sibling's nop loop via flush windows).
"""

import random

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.whisper.smt_channel import SmtCovertChannel

BITS = 64


def run_both_modes():
    rng = random.Random(441)
    bits = [rng.randint(0, 1) for _ in range(BITS)]
    machine = Machine("i7-7700", seed=442)
    reliable = SmtCovertChannel(machine, mode="reliable").transmit(bits)
    secsmt = SmtCovertChannel(machine, mode="secsmt").transmit(bits)
    return bits, reliable, secsmt


def test_section44_smt_covert_channel(benchmark):
    bits, reliable, secsmt = benchmark.pedantic(run_both_modes, rounds=1, iterations=1)

    banner("§4.4 -- SMT covert channel (i7-7700)")
    emit(f"payload: {BITS} random bits")
    emit("")
    emit(f"{'mode':10} {'simulated':>16} {'bit error':>10}   paper")
    emit(
        f"{'prototype':10} {reliable.bytes_per_second:>12,.0f} B/s "
        f"{reliable.error_rate:>10.2%}   1 B/s, <5% error"
    )
    emit(
        f"{'secsmt':10} {secsmt.bytes_per_second:>12,.0f} B/s "
        f"{secsmt.error_rate:>10.2%}   268 KB/s, 28% error"
    )
    emit("")
    ones = [s for s, b in zip(reliable.samples, bits) if b]
    zeros = [s for s, b in zip(reliable.samples, bits) if not b]
    emit(
        f"signal separation (reliable mode): '1' symbols "
        f"{min(ones)}..{max(ones)} cycles, '0' symbols "
        f"{min(zeros)}..{max(zeros)} cycles, threshold {reliable.threshold:.0f}"
    )
    emit(
        "note: with no co-running OS noise the simulated secsmt mode "
        "decodes cleanly; on hardware its 28% error comes from ambient "
        "contention."
    )

    # Shape: prototype mode meets the paper's error bound; the SecSMT
    # configuration is strictly faster per bit; '1' symbols are slower.
    assert reliable.error_rate < 0.05
    assert secsmt.bytes_per_second > reliable.bytes_per_second
    assert min(ones) > max(zeros)
