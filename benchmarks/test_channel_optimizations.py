"""E16 (extension) -- channel engineering beyond the paper's receivers.

Two optimisations a production TET toolkit would ship, both asserted to
preserve correctness:

* **TET-CC-BS**: binary search with an ordered condition (``jb``) and a
  receiver-side mirror of the 2-bit counter -- 8 probes/byte instead of
  256 x batches, a ~100x rate improvement at 0 % error;
* **SMT repetition coding** (the paper's stated future work): each bit
  of the fast SecSMT configuration sent 3x and majority-decoded, buying
  error suppression for a constant rate factor.
"""

import random

from benchmarks.conftest import banner, emit
from repro.sim.machine import Machine
from repro.whisper.channel import TetCovertChannel
from repro.whisper.fast_channel import BinarySearchChannel
from repro.whisper.smt_channel import SmtCovertChannel

PAYLOAD = bytes(random.Random(616).randrange(256) for _ in range(16))


def run_all():
    linear_machine = Machine("i7-7700", seed=611)
    linear = TetCovertChannel(linear_machine, batches=3).transmit(PAYLOAD)

    fast_machine = Machine("i7-7700", seed=612)
    fast = BinarySearchChannel(fast_machine).transmit(PAYLOAD)

    smt_machine = Machine("i7-7700", seed=613)
    bits = [random.Random(617).randint(0, 1) for _ in range(32)]
    plain_smt = SmtCovertChannel(smt_machine, mode="secsmt").transmit(bits)
    coded_smt = SmtCovertChannel(smt_machine, mode="secsmt", repetition=3).transmit(bits)
    return linear, fast, plain_smt, coded_smt, bits


def test_channel_optimizations(benchmark):
    linear, fast, plain_smt, coded_smt, bits = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    banner("Extension -- channel engineering (i7-7700)")
    emit(f"payload: {len(PAYLOAD)} random bytes / {len(bits)} random bits")
    emit("")
    emit(f"{'channel':34} {'rate':>16} {'error':>8} {'probes/byte':>12}")
    emit(
        f"{'TET-CC linear scan (paper)':34} {linear.bytes_per_second:>12,.0f} B/s "
        f"{linear.error_rate:>8.2%} {256 * 3:>12}"
    )
    emit(
        f"{'TET-CC-BS binary search (ours)':34} {fast.bytes_per_second:>12,.0f} B/s "
        f"{fast.error_rate:>8.2%} {8:>12}"
    )
    emit("")
    emit(
        f"{'SMT secsmt, raw':34} {plain_smt.bytes_per_second:>12,.0f} B/s "
        f"{plain_smt.error_rate:>8.2%}"
    )
    emit(
        f"{'SMT secsmt, 3x repetition code':34} {coded_smt.bytes_per_second:>12,.0f} B/s "
        f"{coded_smt.error_rate:>8.2%}"
    )

    assert linear.error_rate == 0.0 and fast.error_rate == 0.0
    assert fast.bytes_per_second > 20 * linear.bytes_per_second
    assert coded_smt.error_rate <= plain_smt.error_rate
    assert coded_smt.bytes_per_second < plain_smt.bytes_per_second
