"""E11 -- the stealth claim (§2.2, §3.3, §4.2).

The threat model assumes "state-of-art attack detection based on cache
behavior" is deployed.  The bench leaks the same kernel bytes twice --
once with the classic Flush+Reload Meltdown, once with TET-MD -- under a
cache-behaviour detector, and shows the classic attack is flagged while
the TET attack leaks the identical data unflagged.
"""

from benchmarks.conftest import banner, emit
from repro.baselines.detector import CacheAttackDetector
from repro.baselines.flush_reload import ClassicMeltdown
from repro.sim.machine import Machine
from repro.whisper.attacks.meltdown import TetMeltdown

SECRET = b"stealth!"


def run_both():
    detector = CacheAttackDetector()

    fr_machine = Machine("i7-7700", seed=461, secret=SECRET)
    classic = ClassicMeltdown(fr_machine)
    fr_leak = {}

    def run_classic():
        fr_leak["data"], _, fr_leak["err"] = classic.leak(length=len(SECRET))

    fr_report = detector.monitor(fr_machine, run_classic)

    tet_machine = Machine("i7-7700", seed=462, secret=SECRET)
    tet = TetMeltdown(tet_machine, batches=3)
    tet_leak = {}

    def run_tet():
        result = tet.leak(length=len(SECRET))
        tet_leak["data"], tet_leak["err"] = result.data, result.error_rate

    tet_report = detector.monitor(tet_machine, run_tet)
    return fr_leak, fr_report, tet_leak, tet_report


def test_detection_evasion(benchmark):
    fr_leak, fr_report, tet_leak, tet_report = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    banner("Detection evasion -- same leak, two covert channels")
    emit(f"secret: {SECRET!r}")
    emit("")
    emit(f"Flush+Reload Meltdown: leaked {fr_leak['data']!r} (err {fr_leak['err']:.0%})")
    emit(f"  detector: {fr_report}")
    emit(f"TET-MD               : leaked {tet_leak['data']!r} (err {tet_leak['err']:.0%})")
    emit(f"  detector: {tet_report}")
    emit("")
    emit(
        "TET faults as loudly as classic Meltdown (machine clears), but "
        "leaves no flush/reload cache signature -- the stateless,"
        " transient-only property of Table 1."
    )

    # Both attacks actually leak the secret...
    assert fr_leak["data"] == SECRET
    assert tet_leak["data"] == SECRET
    # ...but only the cache channel is detected.
    assert fr_report.flagged
    assert not tet_report.flagged
    # TET's faults are visible yet insufficient for the cache-rule.
    assert tet_report.machine_clears_per_kilo_uop > 0
    assert tet_report.features["clflush"] == 0
