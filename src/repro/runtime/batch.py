"""Lockstep batch trial execution: N machine lanes per interpreter step.

Profiling shows the campaign hot path is per-uop Python dispatch in the
out-of-order core.  Trials within a campaign cell are structurally
identical -- same gadget, same decoded-uop plan, same warm/probe shape --
and differ only in operand values (the ``r9`` test byte of a TET-CC
scan).  This module exploits that: one *leader* lane executes each run
for real on the scalar :class:`~repro.uarch.core.Core`, and every
*follower* lane is reconstructed from the leader's uop trace by a
taint-directed shadow replay instead of a full simulation.

The shadow holds follower state in structure-of-arrays form: for each
register (and each divergent memory byte) that differs across lanes, a
per-lane value vector.  Everything *not* tainted is known to be equal in
every lane, so the leader's journals, PMU counts, and cycle timeline
stand in for all lanes at zero cost.  Per-record processing applies the
scalar core's exact value semantics (``_op_alu`` carries, ``&63`` shift
masks, little-endian memory) to the tainted vectors -- optionally through
numpy ``uint64`` arrays for wide packs -- and follows the engine's
squash schedule via the :class:`~repro.uarch.uop.ResolutionEvent`
breadcrumbs so rolled-back transient writes are rolled back in the
shadow too.

A lane is *evicted* the moment its execution would stop being
cycle-identical to the leader's: a memory access whose effective address
diverges, a conditional branch whose tainted flags resolve differently,
a tainted value reaching a syscall, or a fault that could forward
lane-divergent data (stale LFB lines survive architectural rollback, so
any fault after memory has ever been tainted evicts).  Evicted lanes are
re-run through the ordinary scalar trial function, which the trial
purity contract (see ``runtime/pool.py``) makes exact.  The scalar
``decode_plan=False`` core therefore remains the bit-identity oracle:
every lane's bytes either *are* the leader's trace or come from the
scalar path directly.

Two further layers extend the engine to KASLR probe sweeps, whose lanes
diverge by *address* rather than by register value:

- **Page-table-aware shadow replay.**  Address-divergent loads are not
  automatic evictions: each pack carries a :class:`TranslationShadow`
  that consumes the leader's :class:`~repro.memory.mmu.TranslationEvent`
  breadcrumbs and proves, per lane, that the lane's own translation --
  TLB state, page-walk step shape, paging-structure-cache keys, walk-line
  cache residency, and terminal PTE disposition -- is *isomorphic* to the
  leader's, so the leader's latencies and fault behaviour transfer
  byte-exactly.  Lanes that cannot be proven isomorphic (the one mapped
  candidate in a KPTI sweep, TLB window overflow, cache-set pressure)
  evict to scalar as usual; identity holds by construction.

- **Cross-pack leader trace cache.**  Packs from the same sweep share
  one structural identity (:func:`_pack_key`), so the leader execution
  of the first pack is memoized (:class:`LeaderTrace`) and replayed for
  every later same-structure pack: the leader lane becomes a *phantom*
  and zero machine execution happens per cache hit.  The cache never
  keys on the probed value, is bounded (:data:`_LEADER_TRACE_LIMIT`),
  and can be disabled with ``REPRO_BATCH_LEADER_CACHE=0`` -- results
  are byte-identical either way.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.isa.opcodes import Op
from repro.isa.registers import GPRS, MASK64

try:  # optional SoA math backend -- never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - depends on host environment
    _np = None

#: Sentinel for "the leader's value of this register is not tracked"
#: (only ever true after a syscall handler may have rewritten it).
_UNKNOWN = object()
#: Sentinel distinguishing "key absent" from "stored None" in journals.
_ABSENT = object()

#: Minimum lane count before the numpy backend pays for its conversion
#: overhead (narrow packs stay on plain-int lists).
_NUMPY_MIN_LANES = 8


def _numpy_available() -> bool:
    """Whether the numpy ALU backend may be used (env-overridable)."""
    flag = os.environ.get("REPRO_BATCH_NUMPY")
    if flag is not None and flag.strip().lower() in ("0", "false", "no", "off"):
        return False
    return _np is not None


@dataclass
class BatchStats:
    """Mutable counters a caller may pass to observe batching behaviour."""

    packs: int = 0
    packed_trials: int = 0
    scalar_trials: int = 0
    evicted_lanes: int = 0
    #: Eviction counts per reason (the taxonomy in ``_SHADOW`` handlers
    #: plus the translation shadow's); keys are reason strings.
    evictions: Dict[str, int] = field(default_factory=dict)
    #: Cross-pack leader trace cache outcomes (see ``LeaderTrace``).
    leader_cache_hits: int = 0
    leader_cache_misses: int = 0

    def merge_pack(self, batch: "LockstepBatch", offset: int) -> None:
        """Fold one finished pack's per-lane outcome into the counters.

        *offset* is the index of the first real-trial lane (1 when lane 0
        is a phantom cached leader, else 0).
        """
        real = batch.lanes - offset
        alive = sum(batch.alive[offset:])
        self.packs += 1
        self.packed_trials += alive
        self.evicted_lanes += real - alive
        self.scalar_trials += real - alive
        for lane, reason in batch.evict_reasons.items():
            if lane >= offset:
                self.evictions[reason] = self.evictions.get(reason, 0) + 1


# -- per-lane ALU math (the scalar core's _op_alu, vectorized) -----------------


def _alu_scalar(op: Op, left: int, right: int) -> Tuple[int, bool]:
    """One lane of ALU math, mirroring ``_RunEngine._op_alu`` exactly."""
    carry = False
    if op is Op.ADD:
        result = left + right
        carry = result > MASK64
    elif op in (Op.SUB, Op.CMP):
        result = left - right
        carry = left < right
    elif op in (Op.AND, Op.TEST):
        result = left & right
    elif op is Op.OR:
        result = left | right
    elif op is Op.XOR:
        result = left ^ right
    elif op is Op.SHL:
        result = left << (right & 63)
    else:  # Op.SHR -- the shadow dispatch only routes ALU ops here
        result = left >> (right & 63)
    return result & MASK64, carry


def _alu_lanes_np(
    op: Op, lefts: Sequence[int], rights: Sequence[int]
) -> Tuple[List[int], List[bool]]:
    """Numpy uint64 lane math; wraps exactly like the masked python path."""
    left = _np.array(lefts, dtype=_np.uint64)
    right = _np.array(rights, dtype=_np.uint64)
    with _np.errstate(over="ignore"):
        if op is Op.ADD:
            result = left + right
            carry = result < left  # unsigned wrap <=> sum exceeded 2**64-1
        elif op in (Op.SUB, Op.CMP):
            result = left - right
            carry = left < right
        elif op in (Op.AND, Op.TEST):
            result = left & right
            carry = _np.zeros(len(lefts), dtype=bool)
        elif op is Op.OR:
            result = left | right
            carry = _np.zeros(len(lefts), dtype=bool)
        elif op is Op.XOR:
            result = left ^ right
            carry = _np.zeros(len(lefts), dtype=bool)
        elif op is Op.SHL:
            result = left << (right & _np.uint64(63))
            carry = _np.zeros(len(lefts), dtype=bool)
        else:  # Op.SHR
            result = left >> (right & _np.uint64(63))
            carry = _np.zeros(len(lefts), dtype=bool)
    return [int(value) for value in result], [bool(c) for c in carry]


def _alu_lanes(
    op: Op, lefts: Sequence[int], rights: Sequence[int], use_numpy: bool
) -> Tuple[List[int], List[bool]]:
    if use_numpy:
        return _alu_lanes_np(op, lefts, rights)
    results: List[int] = []
    carries: List[bool] = []
    for left, right in zip(lefts, rights):
        result, carry = _alu_scalar(op, left, right)
        results.append(result)
        carries.append(carry)
    return results, carries


# -- one lockstep run ----------------------------------------------------------


class LockstepRun:
    """One ``machine.run`` viewed through every lane of a batch.

    ``result`` is the leader's :class:`~repro.uarch.core.RunResult`;
    :meth:`lane_reg` reads a register as lane *lane* would have left it.
    Values for evicted lanes are meaningless -- callers must consult the
    batch's ``alive`` list first.
    """

    __slots__ = ("result", "_taint")

    def __init__(self, result, taint: Dict[str, List[int]]) -> None:
        self.result = result
        self._taint = taint

    def lane_reg(self, lane: int, name: str) -> int:
        vector = self._taint.get(name)
        if vector is not None:
            return vector[lane]
        return self.result.regs.read(name)


class LockstepBatch:
    """Step *lanes* virtual machines in lockstep over one real machine.

    Lane 0 is the leader and executes every run on *machine* for real;
    lanes 1..N-1 exist only as taint vectors over the leader's trace.
    Divergent-memory taint (``mem_taint``, byte-granular) persists across
    runs within the batch; register/flag taint is reseeded per run from
    the per-lane initial registers, matching the fresh
    :class:`~repro.isa.registers.RegisterFile` each ``run`` gets.
    """

    def __init__(self, machine, program, lanes: int) -> None:
        if lanes < 1:
            raise ValueError("a batch needs at least the leader lane")
        self.machine = machine
        self.program = program
        self.lanes = lanes
        #: Lane liveness; evictions are permanent for the batch's lifetime
        #: (an evicted lane's trial re-runs scalar, never partially).
        self.alive: List[bool] = [True] * lanes
        #: lane -> first eviction reason (debugging / stats).
        self.evict_reasons: Dict[int, str] = {}
        self.live_followers = lanes - 1
        #: Divergent architectural memory: va -> per-lane byte vector.
        self.mem_taint: Dict[int, List[int]] = {}
        #: Monotone: memory held lane-divergent bytes at *some* point.
        #: Deliberately never rolled back -- LFB line snapshots taken while
        #: the divergent bytes were live survive architectural rollback, so
        #: any later fault could MDS-forward lane-divergent data.
        self.mem_ever_tainted = False
        self.use_numpy = _numpy_available() and lanes >= _NUMPY_MIN_LANES
        #: Armed for KASLR-style packs: per-lane page-table/TLB models
        #: that prove a follower's *divergent faulting* translation is
        #: cycle-isomorphic to the leader's instead of evicting it.
        self.translation_shadow: Optional["TranslationShadow"] = None
        #: When a list, every leader run is captured into it as a
        #: :class:`_CachedRun` for the cross-pack leader trace cache.
        self.trace_sink: Optional[list] = None
        #: When set (a :class:`LeaderTrace`'s runs), lane 0 is a *phantom*
        #: leader: ``run`` replays the cached trace and never touches the
        #: machine.  Real trials then occupy lanes 1..N.
        self.replay_source: Optional[list] = None
        self._run_index = 0
        # Per-run shadow state (reset by run()).
        self._leader: Dict[str, object] = {}
        self._reg_taint: Dict[str, List[int]] = {}
        self._flag_taint: Optional[List[Tuple[bool, bool, bool, bool]]] = None
        self._journal: List[tuple] = []
        self._marks: Dict[int, int] = {}
        #: TranslationEvent correlated with the record being replayed
        #: (None while replaying ops that never consult the MMU).
        self._current_translation = None

    # -- public API -------------------------------------------------------------

    def run(self, lane_regs: Sequence[Dict[str, int]]) -> LockstepRun:
        """Run the program once per lane, in lockstep.

        *lane_regs* gives each lane's initial registers (lane 0 drives
        the real machine).  Returns a :class:`LockstepRun`; check
        ``self.alive`` before trusting a follower lane's values.
        """
        if len(lane_regs) != self.lanes:
            raise ValueError(
                f"expected {self.lanes} lane register sets, got {len(lane_regs)}"
            )
        if self.replay_source is not None:
            # Phantom leader: lane 0 is the cached leader execution; its
            # recorded trace substitutes for a machine run, and its
            # initial registers replace whatever placeholder the caller
            # put in slot 0 (taint is computed against the *cached*
            # leader's values).
            cached = self.replay_source[self._run_index]
            self._run_index += 1
            lane_regs = [cached.initial_regs, *lane_regs[1:]]
            result = cached.result
        else:
            result = self.machine.run(
                self.program, regs=dict(lane_regs[0]), record_trace=True
            )
            if self.trace_sink is not None:
                self.trace_sink.append(_CachedRun(dict(lane_regs[0]), result))
        self._leader = {name: 0 for name in GPRS}
        for name, value in lane_regs[0].items():
            self._leader[name] = value & MASK64
        self._reg_taint = {}
        names = set()
        for regs in lane_regs:
            names.update(regs)
        for name in sorted(names):
            values = [regs.get(name, 0) & MASK64 for regs in lane_regs]
            if any(value != values[0] for value in values[1:]):
                self._reg_taint[name] = values
        self._flag_taint = None
        # Fast path: with no divergent state anywhere, every lane IS the
        # leader -- the bulk of a channel pack's runs (the warm-ups) skip
        # the replay entirely.
        if self.live_followers and (
            self._reg_taint or self.mem_taint or self.mem_ever_tainted
        ):
            self._replay(result)
        elif self.live_followers and self.translation_shadow is not None:
            # Lane-invariant run (e.g. a KASLR warm probe): no replay is
            # needed, but the per-lane translation models must still see
            # the leader's uniform TLB fills and touched walk lines.
            self.translation_shadow.observe_leader(result)
        if not self.live_followers:
            # Leader-only from here on: any taint state is stale (the
            # replay stops the moment the last follower dies) and lane 0
            # must read the engine's own registers.
            self._reg_taint = {}
            self._flag_taint = None
            self.mem_taint.clear()
        return LockstepRun(
            result, {name: list(vec) for name, vec in self._reg_taint.items()}
        )

    # -- eviction ---------------------------------------------------------------

    def _evict(self, lane: int, reason: str) -> None:
        if self.alive[lane]:
            self.alive[lane] = False
            self.evict_reasons[lane] = reason
            self.live_followers -= 1

    def _evict_followers(self, reason: str) -> None:
        for lane in range(1, self.lanes):
            self._evict(lane, reason)

    def _taint_or_none(self, vector: Sequence) -> Optional[list]:
        """Drop a vector that is degenerate over the live lanes."""
        head = vector[0]
        alive = self.alive
        for lane in range(1, self.lanes):
            if alive[lane] and vector[lane] != head:
                return list(vector)
        return None

    # -- journaled shadow-state mutation ----------------------------------------

    def _jset_reg(self, name: str, leader_value, taint: Optional[list]) -> None:
        self._journal.append(
            ("r", name, self._reg_taint.get(name, _ABSENT), self._leader[name])
        )
        self._leader[name] = leader_value
        if taint is None:
            self._reg_taint.pop(name, None)
        else:
            self._reg_taint[name] = taint

    def _jset_flags(self, taint) -> None:
        self._journal.append(("f", self._flag_taint))
        self._flag_taint = taint

    def _jset_mem(self, va: int, vector: Optional[list]) -> None:
        self._journal.append(("m", va, self.mem_taint.get(va, _ABSENT)))
        if vector is None:
            self.mem_taint.pop(va, None)
        else:
            self.mem_taint[va] = vector
            self.mem_ever_tainted = True

    def _rollback(self, mark: int) -> None:
        journal = self._journal
        while len(journal) > mark:
            entry = journal.pop()
            tag = entry[0]
            if tag == "r":
                _, name, old_taint, old_leader = entry
                self._leader[name] = old_leader
                if old_taint is _ABSENT:
                    self._reg_taint.pop(name, None)
                else:
                    self._reg_taint[name] = old_taint
            elif tag == "f":
                self._flag_taint = entry[1]
            else:
                _, va, old = entry
                if old is _ABSENT:
                    self.mem_taint.pop(va, None)
                else:
                    self.mem_taint[va] = old

    # -- the replay loop --------------------------------------------------------

    def _replay(self, result) -> None:
        """Walk the leader's records, mirroring the engine's squashes.

        Every record is processed (transient ones included -- they wrote
        state the engine later rolled back, and the shadow must do the
        same).  The engine's :class:`ResolutionEvent` breadcrumbs say
        exactly when each rollback happened (``boundary``) and which
        record's entry state it restored (``target_seq``), so the shadow
        journal replays the squash schedule mark-for-mark.
        """
        resolutions = result.events.resolutions
        res_idx = 0
        n_res = len(resolutions)
        self._journal = []
        self._marks = {}
        dispatch = _SHADOW
        tshadow = self.translation_shadow
        translations = result.events.translations if tshadow is not None else ()
        t_idx = 0
        t_n = len(translations)
        for record in result.records:
            seq = record.seq
            while res_idx < n_res and resolutions[res_idx].boundary <= seq:
                self._apply_resolution(resolutions[res_idx])
                res_idx += 1
            if not self.live_followers:
                return
            self._marks[seq] = len(self._journal)
            op = record.instruction.op
            if tshadow is not None:
                # Correlate the MMU's translation timeline with the record
                # stream: each MMU-consulting op consumes exactly one
                # TranslationEvent, in dispatch order.  Any disagreement
                # means the correlation model is wrong for this program --
                # scalar for everyone.
                if op in _TRANSLATION_OPS:
                    if t_idx >= t_n or translations[t_idx].va != record.memory_va:
                        self._evict_followers("shadow-mismatch")
                        return
                    self._current_translation = translations[t_idx]
                    t_idx += 1
                else:
                    self._current_translation = None
            handler = dispatch.get(op)
            if handler is None:
                # Future ISA growth: an op the shadow has no model for
                # falls back to scalar for every follower.
                self._evict_followers("unmodelled-op")
                return
            handler(self, record, record.instruction)
        if tshadow is not None and t_idx != t_n:
            # Leftover MMU events no record claimed: correlation broke.
            self._evict_followers("shadow-mismatch")
            return
        while res_idx < n_res:
            self._apply_resolution(resolutions[res_idx])
            res_idx += 1

    def _apply_resolution(self, resolution) -> None:
        # A target record dispatched at (or after) the rollback boundary
        # has no mark yet; the rollback is then a no-op for the shadow
        # (nothing newer was processed either).
        mark = self._marks.get(resolution.target_seq)
        if mark is not None:
            self._rollback(mark)

    # -- per-op shadow semantics -------------------------------------------------

    def _shadow_nop(self, record, ins) -> None:
        return None

    def _shadow_mov_ri(self, record, ins) -> None:
        self._jset_reg(ins.dst, record.dest_value, None)

    def _shadow_mov_rr(self, record, ins) -> None:
        taint = self._reg_taint.get(ins.src)
        self._jset_reg(
            ins.dst, record.dest_value, list(taint) if taint is not None else None
        )

    def _shadow_lea(self, record, ins) -> None:
        mem = ins.mem
        base_t = self._reg_taint.get(mem.base) if mem.base else None
        index_t = self._reg_taint.get(mem.index) if mem.index else None
        value = record.dest_value
        if base_t is None and index_t is None:
            self._jset_reg(ins.dst, value, None)
            return
        vector = []
        for lane in range(self.lanes):
            delta = 0
            if base_t is not None:
                delta += base_t[lane] - base_t[0]
            if index_t is not None:
                delta += (index_t[lane] - index_t[0]) * mem.scale
            vector.append((value + delta) & MASK64)
        self._jset_reg(ins.dst, value, self._taint_or_none(vector))

    def _shadow_alu(self, record, ins) -> None:
        op = ins.op
        writes = op not in (Op.CMP, Op.TEST)
        left_t = self._reg_taint.get(ins.dst)
        right_t = self._reg_taint.get(ins.src) if ins.src is not None else None
        if left_t is None and right_t is None:
            # Untainted inputs: every lane computes the leader's result
            # and the leader's flags.
            self._jset_flags(None)
            if writes:
                self._jset_reg(ins.dst, record.dest_value, None)
            return
        if left_t is not None:
            lefts = left_t
        else:
            leader_left = self._leader[ins.dst]
            if leader_left is _UNKNOWN:
                self._evict_followers("alu-on-unknown-leader-value")
                self._jset_flags(None)
                if writes:
                    self._jset_reg(ins.dst, record.dest_value, None)
                return
            lefts = [leader_left] * self.lanes
        if right_t is not None:
            rights = right_t
        elif ins.src is not None:
            leader_right = self._leader[ins.src]
            if leader_right is _UNKNOWN:
                self._evict_followers("alu-on-unknown-leader-value")
                self._jset_flags(None)
                if writes:
                    self._jset_reg(ins.dst, record.dest_value, None)
                return
            rights = [leader_right] * self.lanes
        else:
            rights = [ins.imm & MASK64] * self.lanes
        results, carries = _alu_lanes(op, lefts, rights, self.use_numpy)
        if writes and record.dest_value is not None and results[0] != record.dest_value:
            # Shadow/engine disagreement on the leader lane can only be a
            # shadow bug; degrade to scalar rather than corrupt a lane.
            self._evict_followers("shadow-mismatch")
            self._jset_flags(None)
            self._jset_reg(ins.dst, record.dest_value, None)
            return
        flags = [
            (result == 0, carry, bool(result >> 63), False)
            for result, carry in zip(results, carries)
        ]
        self._jset_flags(self._taint_or_none(flags))
        if writes:
            self._jset_reg(ins.dst, results[0], self._taint_or_none(results))

    def _shadow_jcc(self, record, ins) -> None:
        flags = self._flag_taint
        if flags is None:
            return
        cond = ins.cond
        actual = record.actual_taken
        alive = self.alive
        for lane in range(1, self.lanes):
            if alive[lane] and cond.evaluate(*flags[lane]) != actual:
                # This lane's branch goes the other way: different fetch
                # path, different timing -- scalar from here on.
                self._evict(lane, "branch-divergence")

    def _address_deltas(self, base, index, scale: int) -> Optional[List[int]]:
        """Per-lane effective-address deltas vs the leader.

        None means the address is lane-uniform (no tainted component, or
        the taint vectors cancel); otherwise a per-lane list of deltas
        (lane 0 is always 0).
        """
        base_t = self._reg_taint.get(base) if base else None
        index_t = self._reg_taint.get(index) if index else None
        if base_t is None and index_t is None:
            return None
        deltas = []
        for lane in range(self.lanes):
            delta = 0
            if base_t is not None:
                delta += base_t[lane] - base_t[0]
            if index_t is not None:
                delta += (index_t[lane] - index_t[0]) * scale
            deltas.append(delta)
        if not any(delta & MASK64 for delta in deltas):
            return None
        return deltas

    def _evict_lanes_with_deltas(self, deltas: Sequence[int], reason: str) -> None:
        alive = self.alive
        for lane in range(1, self.lanes):
            if alive[lane] and (deltas[lane] & MASK64):
                self._evict(lane, reason)

    def _evict_address_mismatch(self, base, index, scale: int) -> None:
        deltas = self._address_deltas(base, index, scale)
        if deltas is not None:
            self._evict_lanes_with_deltas(deltas, "address-divergence")
        self._apply_translation_uniform()

    def _apply_translation_uniform(self) -> None:
        """Feed the current (lane-uniform) MMU event to the lane models.

        After address-divergent lanes are evicted, every surviving lane
        performed the leader's exact translation -- its model follows the
        leader's fills and touched lines verbatim.  No-op for ops without
        an MMU event (e.g. CLFLUSH) or without a shadow armed.
        """
        shadow = self.translation_shadow
        ev = self._current_translation
        if shadow is not None and ev is not None:
            shadow.apply_uniform(ev)

    def _shadow_load(self, record, ins) -> None:
        mem = ins.mem
        shadow = self.translation_shadow
        ev = self._current_translation
        deltas = self._address_deltas(mem.base, mem.index, mem.scale)
        if deltas is None:
            self._apply_translation_uniform()
        elif shadow is not None and ev is not None and record.fault is not None:
            # The KASLR probe shape: a faulting load whose address
            # diverges per lane.  The page-table shadow proves (or
            # refutes) each lane's translation is cycle-isomorphic to
            # the leader's instead of evicting wholesale.
            shadow.process_divergent(self, ev, deltas)
        else:
            self._evict_lanes_with_deltas(deltas, "address-divergence")
            self._apply_translation_uniform()
        if record.fault is not None:
            if self.mem_ever_tainted:
                # The forwarded value may come from a stale LFB line (MDS)
                # or from bytes the lanes disagree on (Meltdown); once
                # memory has ever been divergent, neither is lane-safe.
                self._evict_followers("fault-after-memory-taint")
            if ins.dst is not None:
                self._jset_reg(ins.dst, record.dest_value, None)
            return
        size = 1 if ins.op is Op.LOAD_BYTE else 8
        value = record.dest_value
        overlap = None
        if self.mem_taint:
            va = record.memory_va
            overlap = [self.mem_taint.get(va + i) for i in range(size)]
            if not any(vec is not None for vec in overlap):
                overlap = None
        if overlap is None:
            self._jset_reg(ins.dst, value, None)
            return
        leader_bytes = value.to_bytes(size, "little")
        vector = []
        for lane in range(self.lanes):
            raw = bytearray(leader_bytes)
            for i, vec in enumerate(overlap):
                if vec is not None:
                    raw[i] = vec[lane]
            vector.append(int.from_bytes(raw, "little"))
        self._jset_reg(ins.dst, value, self._taint_or_none(vector))

    def _shadow_store(self, record, ins) -> None:
        mem = ins.mem
        self._evict_address_mismatch(mem.base, mem.index, mem.scale)
        if record.fault is not None:
            return  # the faulting store committed nothing
        va = record.memory_va
        value_t = self._reg_taint.get(ins.src) if ins.src is not None else None
        if value_t is None:
            # All lanes stored the same bytes: strong update, clearing any
            # taint the 8 bytes carried.
            if self.mem_taint:
                for i in range(8):
                    if va + i in self.mem_taint:
                        self._jset_mem(va + i, None)
            return
        for i in range(8):
            shift = 8 * i
            byte_vec = [(value >> shift) & 0xFF for value in value_t]
            self._jset_mem(va + i, self._taint_or_none(byte_vec))

    def _shadow_prefetch(self, record, ins) -> None:
        # Address-only side effects (cache/TLB fills, flushes): timing
        # stays lane-identical iff the address does.
        mem = ins.mem
        self._evict_address_mismatch(mem.base, mem.index, mem.scale)

    def _shadow_call(self, record, ins) -> None:
        # record.memory_va is the decremented rsp the return address went
        # to; lane deltas on rsp translate 1:1.
        self._evict_address_mismatch("rsp", None, 1)
        if record.fault is not None:
            return
        va = record.memory_va
        if self.mem_taint:
            for i in range(8):
                if va + i in self.mem_taint:
                    self._jset_mem(va + i, None)  # return address: lane-invariant
        rsp_t = self._reg_taint.get("rsp")
        taint = (
            [(value - 8) & MASK64 for value in rsp_t] if rsp_t is not None else None
        )
        self._jset_reg("rsp", va, taint)

    def _shadow_ret(self, record, ins) -> None:
        self._evict_address_mismatch("rsp", None, 1)
        if record.fault is not None:
            return
        va = record.memory_va
        target = record.actual_target
        if self.mem_taint:
            overlap = [self.mem_taint.get(va + i) for i in range(8)]
            if any(vec is not None for vec in overlap):
                leader_bytes = target.to_bytes(8, "little")
                alive = self.alive
                for lane in range(1, self.lanes):
                    if not alive[lane]:
                        continue
                    raw = bytearray(leader_bytes)
                    for i, vec in enumerate(overlap):
                        if vec is not None:
                            raw[i] = vec[lane]
                    if int.from_bytes(raw, "little") != target:
                        self._evict(lane, "return-target-divergence")
        rsp_t = self._reg_taint.get("rsp")
        taint = (
            [(value + 8) & MASK64 for value in rsp_t] if rsp_t is not None else None
        )
        self._jset_reg("rsp", (va + 8) & MASK64, taint)

    def _shadow_rdtsc(self, record, ins) -> None:
        # rax gets the (lane-invariant) timestamp; rdx is zeroed directly.
        self._jset_reg("rax", record.dest_value, None)
        self._jset_reg("rdx", 0, None)

    def _shadow_syscall(self, record, ins) -> None:
        if self.translation_shadow is not None:
            # A mid-program CR3 switch invalidates the address space the
            # per-lane walk checks run against; the shadow cannot follow.
            self._evict_followers("translation-divergence")
            return
        if self._reg_taint or self._flag_taint is not None or self.mem_taint:
            # The kernel handler reads/writes the architectural file and
            # memory; tainted inputs make its effects lane-divergent in
            # ways the shadow cannot model.
            self._evict_followers("syscall-with-taint")
            return
        for name in ("rax", "rbx", "rcx", "rdx", "rsi", "rdi"):
            self._jset_reg(name, _UNKNOWN, None)


#: Op -> shadow handler.  Ops absent here (none today) evict followers.
_SHADOW = {
    Op.MOV_RI: LockstepBatch._shadow_mov_ri,
    Op.MOV_RR: LockstepBatch._shadow_mov_rr,
    Op.LOAD: LockstepBatch._shadow_load,
    Op.LOAD_BYTE: LockstepBatch._shadow_load,
    Op.STORE: LockstepBatch._shadow_store,
    Op.LEA: LockstepBatch._shadow_lea,
    Op.ADD: LockstepBatch._shadow_alu,
    Op.SUB: LockstepBatch._shadow_alu,
    Op.AND: LockstepBatch._shadow_alu,
    Op.OR: LockstepBatch._shadow_alu,
    Op.XOR: LockstepBatch._shadow_alu,
    Op.SHL: LockstepBatch._shadow_alu,
    Op.SHR: LockstepBatch._shadow_alu,
    Op.CMP: LockstepBatch._shadow_alu,
    Op.TEST: LockstepBatch._shadow_alu,
    Op.JMP: LockstepBatch._shadow_nop,
    Op.JCC: LockstepBatch._shadow_jcc,
    Op.CALL: LockstepBatch._shadow_call,
    Op.RET: LockstepBatch._shadow_ret,
    Op.NOP: LockstepBatch._shadow_nop,
    Op.PREFETCH: LockstepBatch._shadow_prefetch,
    Op.MFENCE: LockstepBatch._shadow_nop,
    Op.LFENCE: LockstepBatch._shadow_nop,
    Op.SFENCE: LockstepBatch._shadow_nop,
    Op.CLFLUSH: LockstepBatch._shadow_prefetch,
    Op.RDTSC: LockstepBatch._shadow_rdtsc,
    Op.RDTSCP: LockstepBatch._shadow_rdtsc,
    Op.XBEGIN: LockstepBatch._shadow_nop,
    Op.XEND: LockstepBatch._shadow_nop,
    Op.HLT: LockstepBatch._shadow_nop,
    Op.SYSCALL: LockstepBatch._shadow_syscall,
}

#: Ops whose dispatch consults the MMU exactly once, in program order --
#: the correlation contract between ``UopRecord.memory_va`` and the
#: :class:`~repro.memory.mmu.TranslationEvent` log.  CLFLUSH is absent
#: deliberately: it sets ``memory_va`` but resolves the line via the
#: address-space lookup, never ``Mmu.data_access``.
_TRANSLATION_OPS = frozenset(
    {Op.LOAD, Op.LOAD_BYTE, Op.STORE, Op.CALL, Op.RET, Op.PREFETCH}
)


# -- page-table-aware shadow replay (KASLR packs) ------------------------------


class TranslationShadow:
    """Per-lane address-translation models for KASLR-style packs.

    A KASLR probe is a *faulting load at a lane-divergent address* -- the
    one shape the taint replay must otherwise evict.  This shadow keeps,
    per follower lane, the translation state its hypothetical machine
    would hold (a TLB model, the set of page-walk cache lines it has
    touched) and checks each divergent faulting load step-by-step against
    the leader's recorded :class:`~repro.memory.mmu.TranslationEvent`:

    * same walk structure (levels, present/leaf shape),
    * same paging-structure-cache keys at every non-leaf step (which
      makes the lane's PSC state *identical* to the leader's, LRU and
      all, so PSC hits/misses agree by construction),
    * same predicted cache hit level for every entry fetch (touched
      lines hit L1, untouched lines come from DRAM -- valid only while
      nothing is ever evicted, see :meth:`finish`),
    * same terminal PTE disposition (present/permissions/page size, pfn
      excluded), hence the same fault kind and TLB fill-on-fault
      behaviour -- the paper's mapped/unmapped oracle,
    * the same line offset (an MDS-forwarded stale line would otherwise
      supply a lane-divergent byte) and no cached Meltdown forwarding.

    A lane that passes every check has a translation timeline
    cycle-identical to the leader's, so the leader's ToTE/PMU/cycle
    bytes are the lane's.  A lane that fails any check is evicted to the
    scalar path -- byte identity holds by construction either way.
    """

    def __init__(self, mmu, lanes: int) -> None:
        self.mmu = mmu
        self.lanes = lanes
        #: Smallest TLB associativity: more fills than this between
        #: flushes could evict an entry, breaking the no-eviction
        #: assumption behind the per-lane TLB dict model.
        self.tlb_window = min(mmu.dtlb.tlb_4k.ways, mmu.dtlb.tlb_2m.ways)
        #: Page-walk cache lines each lane's hypothetical machine has
        #: touched since reset (leader-shared lines plus its own).
        self.lane_lines: List[set] = [set() for _ in range(lanes)]
        #: Lane-private walk lines (not the leader's) -- cache-pressure
        #: guard input for :meth:`finish`.
        self.lane_extra: List[set] = [set() for _ in range(lanes)]
        #: Per-lane TLB model: (page_size, vpn) -> disposition tuple
        #: (present, writable, user, global, nx, page_size).
        self.lane_tlb: List[dict] = [{} for _ in range(lanes)]
        #: TLB fills since the last flush (all lanes fill in lockstep).
        self.window_fills = 0
        #: Sticky: a guard tripped that invalidates *every* lane's model.
        self.overflow = False

    # -- orchestration notifications (pack runner calls these) -----------------

    def on_tlb_flush(self) -> None:
        """The pack runner flushed the TLB (lane-invariant)."""
        for tlb in self.lane_tlb:
            tlb.clear()
        self.window_fills = 0

    def on_cr3_switch(self) -> None:
        """A syscall round-trip happened between runs: non-global TLB
        entries are gone (in every lane, identically)."""
        for tlb in self.lane_tlb:
            stale = [key for key, disp in tlb.items() if not disp[3]]
            for key in stale:
                del tlb[key]

    # -- leader-event ingestion -------------------------------------------------

    def observe_leader(self, result) -> None:
        """Apply a lane-invariant run's whole translation timeline."""
        for ev in result.events.translations:
            self.apply_uniform(ev)

    def apply_uniform(self, ev) -> None:
        """The leader's translation happened identically in every lane."""
        for step in ev.steps:
            if not step[4]:  # not a PSC hit: an entry line was fetched
                line = step[1] >> 6
                for lines in self.lane_lines:
                    lines.add(line)
        if ev.tlb_filled and ev.pte is not None:
            self._count_fill()
            disp = ev.pte[1:]
            psize = int(disp[5])
            key = (psize, ev.va // psize)
            for tlb in self.lane_tlb:
                tlb[key] = disp

    def _count_fill(self) -> None:
        self.window_fills += 1
        if self.window_fills > self.tlb_window:
            self.overflow = True

    # -- the per-lane divergent-load check --------------------------------------

    def process_divergent(self, batch: LockstepBatch, ev, deltas) -> None:
        """Check a divergent faulting load lane by lane, evicting any
        lane whose translation the models cannot prove isomorphic."""
        if ev.tlb_filled:
            self._count_fill()
        alive = batch.alive
        for lane in range(1, batch.lanes):
            if not alive[lane]:
                continue
            lane_va = (ev.va + deltas[lane]) & MASK64
            if self.overflow or not self._check_lane(lane, ev, lane_va):
                batch._evict(lane, "translation-divergence")

    def _tlb_get(self, lane: int, va: int):
        for (psize, vpn), disp in self.lane_tlb[lane].items():
            if va // psize == vpn:
                return disp
        return None

    def _check_lane(self, lane: int, ev, lane_va: int) -> bool:
        if (lane_va & 63) != (ev.va & 63):
            # An MDS-forwarded stale line would supply a different byte.
            return False
        if ev.fault_kind in ("protection", "write_protect") and ev.was_cached:
            # The leader Meltdown-forwarded real cached data; the lane's
            # line holds different bytes.
            return False
        hit = self._tlb_get(lane, lane_va)
        if ev.tlb_hit:
            # Leader hit its TLB: the lane must hold its own page with
            # the identical disposition for the same 1-cycle lookup and
            # the same downstream fault decision.
            return hit is not None and ev.pte is not None and hit == ev.pte[1:]
        if hit is not None:
            return False  # lane would have hit where the leader walked
        steps, pte = self.mmu.space.walk_path(lane_va)
        details = ev.steps
        if len(steps) != len(details):
            return False
        lines = self.lane_lines[lane]
        for step, detail in zip(steps, details):
            dlevel, dpaddr, dpresent, dleaf, dpsc, dhit = detail
            if (
                step.level != dlevel
                or step.present != dpresent
                or step.is_leaf != dleaf
            ):
                return False
            if not step.is_leaf:
                # PSC isomorphism: every lookup/fill the lane's walker
                # performs must use the leader's exact key, or the two
                # PSC states (contents *and* LRU order) drift apart.
                lane_key = (lane_va >> 12) >> (9 * (3 - step.level))
                leader_key = (ev.va >> 12) >> (9 * (3 - dlevel))
                if lane_key != leader_key:
                    return False
            if dpsc:
                continue  # PSC hit: no cache access to model
            line = step.entry_paddr >> 6
            if line in lines:
                predicted = "L1"
            else:
                predicted = "DRAM"
                lines.add(line)
                if line != (dpaddr >> 6):
                    self.lane_extra[lane].add(line)
            if predicted != dhit:
                return False
        if (pte is None) != (ev.pte is None):
            return False
        if pte is not None:
            disp = (
                pte.present,
                pte.writable,
                pte.user,
                pte.global_,
                pte.nx,
                pte.page_size,
            )
            if disp != ev.pte[1:]:
                return False
            if ev.fault_kind in ("protection", "write_protect"):
                # Leader's line was not cached (checked above); the
                # lane's must not be either, or the lane would
                # Meltdown-forward data the leader did not.
                if self.mmu.hierarchy.data_resident(pte.physical_address(lane_va)):
                    return False
            if ev.tlb_filled:
                self.lane_tlb[lane][
                    (int(pte.page_size), lane_va // int(pte.page_size))
                ] = disp
        return True

    # -- end-of-pack validation -------------------------------------------------

    def finish(self, batch: LockstepBatch) -> None:
        """Evict any lane whose private walk lines could have caused a
        cache eviction the leader never saw.

        The hit-level prediction (touched lines hit L1) is only sound
        while the lane's hypothetical machine never evicts a line.  The
        leader's own evictions would surface as observation mismatches,
        but a lane-private line silently displacing a shared one would
        not -- so every lane's full touched-line set must fit its cache
        sets with headroom (the margin covers instruction-side walk
        lines the event log does not carry).
        """
        hierarchy = self.mmu.hierarchy
        levels = (hierarchy.l1d, hierarchy.l2, hierarchy.llc)
        for lane in range(1, batch.lanes):
            if not batch.alive[lane]:
                continue
            if self.overflow:
                batch._evict(lane, "translation-divergence")
                continue
            if not self.lane_extra[lane]:
                continue  # no private lines: the lane IS the leader
            for cache in levels:
                sets: Dict[int, int] = {}
                pressure = False
                set_count = cache.geometry.sets
                ways = cache.geometry.ways
                for line in self.lane_lines[lane]:
                    index = line % set_count
                    count = sets.get(index, 0) + 1
                    sets[index] = count
                    if count + _PRESSURE_MARGIN > ways:
                        pressure = True
                        break
                if pressure:
                    batch._evict(lane, "translation-divergence")
                    break


#: Set-occupancy headroom required by ``TranslationShadow.finish`` --
#: covers the handful of instruction-side walk lines that are touched
#: lane-invariantly but never appear in the d-side event log.
_PRESSURE_MARGIN = 2


# -- cross-pack leader trace cache ---------------------------------------------


class _CachedRun:
    """One leader ``machine.run``: its initial registers and its result
    (records, resolution/translation events, final register file)."""

    __slots__ = ("initial_regs", "result")

    def __init__(self, initial_regs: Dict[str, int], result) -> None:
        self.initial_regs = initial_regs
        self.result = result


@dataclass
class LeaderTrace:
    """Everything one pack's leader execution produced, replayable.

    Packs are structurally identical within a sweep (same spec, same
    warm/probe schedule; only the probed addresses differ), so one
    leader execution -- run results, end-of-pack cycle count -- serves
    every subsequent same-key pack as a *phantom* lane 0.
    """

    runs: List[_CachedRun]
    cycles: int


_LEADER_TRACE_LIMIT = 8
_leader_traces: "OrderedDict[tuple, LeaderTrace]" = OrderedDict()


def leader_cache_enabled() -> bool:
    """Whether cross-pack leader memoization is on (env-overridable).

    ``REPRO_BATCH_LEADER_CACHE=0`` disables it; results are byte-identical
    either way (the cache only skips re-executing an identical leader).
    """
    flag = os.environ.get("REPRO_BATCH_LEADER_CACHE")
    if flag is not None and flag.strip().lower() in ("0", "false", "no", "off"):
        return False
    return True


def clear_leader_trace_cache() -> None:
    """Drop all cached leader traces (context teardown / tests)."""
    _leader_traces.clear()


def _leader_trace_lookup(key: tuple) -> Optional[LeaderTrace]:
    if not leader_cache_enabled():
        return None
    trace = _leader_traces.get(key)
    if trace is not None:
        _leader_traces.move_to_end(key)
    return trace


def _leader_trace_store(key: tuple, trace: LeaderTrace) -> None:
    _leader_traces[key] = trace
    while len(_leader_traces) > _LEADER_TRACE_LIMIT:
        _leader_traces.popitem(last=False)


# -- channel-trial packs -------------------------------------------------------


def pack_eligible(trial) -> bool:
    """Whether *trial* may ride a lockstep pack.

    Channel and KASLR trials, and only at zero ambient noise: the
    per-trial noise seed is inert at amplitude 0, which is what lets one
    leader reset stand in for every lane's.  KASLR trials additionally
    require the ``direct`` TLB flush -- the ``sets`` eviction strategy
    has per-address set-conflict structure no shared leader trace
    covers.  Detect trials stay scalar (their behaviour streams are
    per-trial by design).
    """
    from repro.runtime.tasks import ChannelTrial, KaslrTrial

    if trial.spec.noise_amplitude != 0:
        return False
    if isinstance(trial, ChannelTrial):
        return True
    if isinstance(trial, KaslrTrial):
        return trial.eviction == "direct"
    return False


def _pack_key(trial):
    """Trials in one pack must agree on everything but the probed value.

    The key doubles as the leader-trace-cache key: it names the pack's
    *structure* (schedule, spec, suppression), never the leader's own
    probed address/test byte -- which is exactly why one cached leader
    serves every same-structure pack.
    """
    from repro.runtime.tasks import ChannelTrial

    if isinstance(trial, ChannelTrial):
        return (
            "channel",
            trial.spec,
            trial.byte,
            trial.batches,
            trial.warmup,
            trial.suppression,
        )
    return (
        "kaslr",
        trial.spec,
        trial.cr3_switch,
        trial.warm_probes,
        trial.eviction,
        trial.suppression,
    )


def plan_packs(payloads: Sequence, batch_size: int) -> List[list]:
    """Split *payloads* into order-preserving executable groups.

    Consecutive pack-eligible trials sharing a pack key form groups of up
    to *batch_size* lanes; everything else becomes a scalar singleton.
    Grouping depends only on the payload sequence and *batch_size*, so
    serial and pooled runs form identical packs (the determinism
    contract's requirement).
    """
    groups: List[list] = []
    i = 0
    n = len(payloads)
    while i < n:
        trial = payloads[i]
        if pack_eligible(trial) and batch_size > 1:
            key = _pack_key(trial)
            j = i + 1
            while (
                j < n
                and j - i < batch_size
                and pack_eligible(payloads[j])
                and _pack_key(payloads[j]) == key
            ):
                j += 1
            groups.append(list(payloads[i:j]))
            i = j
        else:
            groups.append([trial])
            i += 1
    return groups


def run_channel_pack(trials: Sequence, stats: Optional[BatchStats] = None) -> List:
    """Run a pack of structurally identical channel trials in lockstep.

    The leader (``trials[0]``) executes its trial for real; every other
    lane is the same trial with a different test value, reconstructed
    from the leader's trace.  Lanes the shadow evicts (the matching test
    byte whose Jcc really does go the other way) re-run through the
    ordinary scalar path, so every returned
    :class:`~repro.runtime.tasks.TrialResult` is byte-identical to a
    scalar run of its payload.
    """
    from repro.runtime.tasks import (
        NULL_POINTER,
        TrialResult,
        _channel_context,
        run_trial,
    )

    lead = trials[0]
    machine, program, sender_page = _channel_context(lead.spec, lead.suppression)
    n = len(trials)
    cached = _leader_trace_lookup(_pack_key(lead))
    offset = 1 if cached is not None else 0
    lanes = n + offset
    if cached is None:
        machine.reset_uarch(noise_seed=lead.spec.trial_seed(lead.trial_index))
        machine.write_data(sender_page, bytes([lead.byte & 0xFF]) + b"\x00" * 7)
    batch = LockstepBatch(machine, program, lanes)
    if cached is not None:
        batch.replay_source = cached.runs
    elif leader_cache_enabled():
        batch.trace_sink = []
    warm_regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": 256}
    warm_set = [warm_regs] * lanes
    # In phantom-leader mode slot 0 is a placeholder: run() swaps in the
    # cached leader's own initial registers before taint is computed.
    probe_set = [warm_regs] * offset + [
        {"r12": sender_page, "r13": NULL_POINTER, "r9": trial.test}
        for trial in trials
    ]
    lane_totes: List[List[int]] = [[] for _ in range(lanes)]
    for _ in range(lead.batches):
        for _ in range(lead.warmup):
            batch.run(warm_set)
        probe = batch.run(probe_set)
        for lane in range(offset, lanes):
            if batch.alive[lane]:
                lane_totes[lane].append(
                    probe.lane_reg(lane, "r15") - probe.lane_reg(lane, "r14")
                )
    # The pack ran exactly one trial's worth of runs on one continuing
    # cycle timeline, so the leader's cycle count is every live lane's.
    cycles = cached.cycles if cached is not None else machine.core.global_cycle
    if batch.trace_sink is not None:
        _leader_trace_store(
            _pack_key(lead), LeaderTrace(runs=batch.trace_sink, cycles=cycles)
        )
    if stats is not None:
        if cached is not None:
            stats.leader_cache_hits += 1
        elif batch.trace_sink is not None:
            stats.leader_cache_misses += 1
        stats.merge_pack(batch, offset)
    results: List = [None] * n
    for i in range(n):
        lane = i + offset
        if batch.alive[lane]:
            results[i] = TrialResult(totes=tuple(lane_totes[lane]), cycles=cycles)
    for i in range(n):
        if results[i] is None:
            # Scalar re-run on the same cached context: purity makes this
            # exactly the result a scalar-only campaign computes.
            results[i] = run_trial(trials[i])
    return results


# -- KASLR-trial packs ---------------------------------------------------------


def run_kaslr_pack(trials: Sequence, stats: Optional[BatchStats] = None) -> List:
    """Run a pack of structurally identical KASLR trials in lockstep.

    One lane per probed candidate address.  The leader executes its
    warm-reference probes and timed double-probe for real; every other
    lane's translation is proven cycle-isomorphic by the
    :class:`TranslationShadow` (the unmapped candidates, which share the
    leader's walk shape) or evicted to the scalar path (the mapped
    ones).  With the leader trace cache warm, even the leader execution
    is skipped: the pack replays a cached same-structure leader as a
    phantom lane 0.
    """
    from repro.kernel.layout import KERNEL_TEXT_RANGE_START
    from repro.runtime.tasks import TrialResult, _kaslr_context, run_trial

    lead = trials[0]
    attack = _kaslr_context(lead.spec, lead.eviction, lead.suppression)
    machine = attack.machine
    n = len(trials)
    cached = _leader_trace_lookup(_pack_key(lead))
    offset = 1 if cached is not None else 0
    lanes = n + offset
    live = cached is None
    if live:
        machine.reset_uarch(noise_seed=lead.spec.trial_seed(lead.trial_index))
    batch = LockstepBatch(machine, attack.program, lanes)
    shadow = TranslationShadow(machine.mmu, lanes)
    batch.translation_shadow = shadow
    if cached is not None:
        batch.replay_source = cached.runs
    elif leader_cache_enabled():
        batch.trace_sink = []
    reference = KERNEL_TEXT_RANGE_START - 0x200000
    ref_regs = {"r13": reference, "r9": 256}
    ref_set = [ref_regs] * lanes
    probe_set = [ref_regs] * offset + [
        {"r13": trial.va, "r9": 256} for trial in trials
    ]

    def double_probe(reg_sets):
        # attack.probe_tote, batched: evict, fill probe, optional syscall
        # round-trip, timed probe.  A phantom leader never touches the
        # machine; the shadow is still notified so the lane models follow
        # the same flush/CR3 schedule the cached leader saw.
        if live:
            machine.flush_tlb()
        shadow.on_tlb_flush()
        batch.run(reg_sets)
        if lead.cr3_switch:
            if live:
                machine.syscall_roundtrip()
            shadow.on_cr3_switch()
        return batch.run(reg_sets)

    for _ in range(lead.warm_probes):
        double_probe(ref_set)
    probe = double_probe(probe_set)
    shadow.finish(batch)
    cycles = cached.cycles if cached is not None else machine.core.global_cycle
    if batch.trace_sink is not None:
        _leader_trace_store(
            _pack_key(lead), LeaderTrace(runs=batch.trace_sink, cycles=cycles)
        )
    if stats is not None:
        if cached is not None:
            stats.leader_cache_hits += 1
        elif batch.trace_sink is not None:
            stats.leader_cache_misses += 1
        stats.merge_pack(batch, offset)
    results: List = [None] * n
    for i in range(n):
        lane = i + offset
        if batch.alive[lane]:
            results[i] = TrialResult(
                totes=(probe.lane_reg(lane, "r15") - probe.lane_reg(lane, "r14"),),
                cycles=cycles,
            )
    for i in range(n):
        if results[i] is None:
            results[i] = run_trial(trials[i])
    return results


def run_pack(trials: Sequence, stats: Optional[BatchStats] = None) -> List:
    """Run one homogeneous pack through its kind's pack runner."""
    from repro.runtime.tasks import ChannelTrial

    if isinstance(trials[0], ChannelTrial):
        return run_channel_pack(trials, stats)
    return run_kaslr_pack(trials, stats)


def run_trial_group(group: Sequence) -> List:
    """Execute one ``plan_packs`` group (module-level: pool-picklable)."""
    from repro.runtime.tasks import run_trial

    if len(group) > 1:
        if not telemetry.enabled():
            return run_pack(group)
        stats = BatchStats()
        with telemetry.span(
            "batch.pack", batch_size=len(group), kind=type(group[0]).__name__
        ) as span:
            results = run_pack(group, stats)
            span.set(
                evicted=stats.evicted_lanes,
                leader_cache_hits=stats.leader_cache_hits,
                leader_cache_misses=stats.leader_cache_misses,
                **{
                    f"evicted_{reason.replace('-', '_')}": count
                    for reason, count in sorted(stats.evictions.items())
                },
            )
        # Counters beside the span attrs: spans answer "which pack",
        # counters feed the live plane (heartbeats, ``--progress``,
        # ``repro obs top``) without a trace walk.
        telemetry.add("batch.packs", 1)
        telemetry.add("batch.lanes.packed", len(group))
        if stats.evicted_lanes:
            telemetry.add("batch.lanes.evicted", stats.evicted_lanes)
            for reason, evicted in sorted(stats.evictions.items()):
                telemetry.add(f"batch.evicted.{reason}", evicted)
        if stats.leader_cache_hits:
            telemetry.add("batch.leader_cache.hits", stats.leader_cache_hits)
        if stats.leader_cache_misses:
            telemetry.add(
                "batch.leader_cache.misses", stats.leader_cache_misses
            )
        return results
    return [run_trial(group[0])]


def run_trials_batched(
    payloads: Sequence, batch_size: int, stats: Optional[BatchStats] = None
) -> List:
    """Run *payloads* in order, packing eligible neighbours up to
    *batch_size* lanes; returns results positionally like ``map``."""
    results: List = []
    for group in plan_packs(list(payloads), batch_size):
        if len(group) > 1:
            results.extend(run_pack(group, stats))
        else:
            from repro.runtime.tasks import run_trial

            if stats is not None:
                stats.scalar_trials += 1
            results.append(run_trial(group[0]))
    return results
