"""Lockstep batch trial execution: N machine lanes per interpreter step.

Profiling shows the campaign hot path is per-uop Python dispatch in the
out-of-order core.  Trials within a campaign cell are structurally
identical -- same gadget, same decoded-uop plan, same warm/probe shape --
and differ only in operand values (the ``r9`` test byte of a TET-CC
scan).  This module exploits that: one *leader* lane executes each run
for real on the scalar :class:`~repro.uarch.core.Core`, and every
*follower* lane is reconstructed from the leader's uop trace by a
taint-directed shadow replay instead of a full simulation.

The shadow holds follower state in structure-of-arrays form: for each
register (and each divergent memory byte) that differs across lanes, a
per-lane value vector.  Everything *not* tainted is known to be equal in
every lane, so the leader's journals, PMU counts, and cycle timeline
stand in for all lanes at zero cost.  Per-record processing applies the
scalar core's exact value semantics (``_op_alu`` carries, ``&63`` shift
masks, little-endian memory) to the tainted vectors -- optionally through
numpy ``uint64`` arrays for wide packs -- and follows the engine's
squash schedule via the :class:`~repro.uarch.uop.ResolutionEvent`
breadcrumbs so rolled-back transient writes are rolled back in the
shadow too.

A lane is *evicted* the moment its execution would stop being
cycle-identical to the leader's: a memory access whose effective address
diverges, a conditional branch whose tainted flags resolve differently,
a tainted value reaching a syscall, or a fault that could forward
lane-divergent data (stale LFB lines survive architectural rollback, so
any fault after memory has ever been tainted evicts).  Evicted lanes are
re-run through the ordinary scalar trial function, which the trial
purity contract (see ``runtime/pool.py``) makes exact.  The scalar
``decode_plan=False`` core therefore remains the bit-identity oracle:
every lane's bytes either *are* the leader's trace or come from the
scalar path directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.isa.opcodes import Op
from repro.isa.registers import GPRS, MASK64

try:  # optional SoA math backend -- never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - depends on host environment
    _np = None

#: Sentinel for "the leader's value of this register is not tracked"
#: (only ever true after a syscall handler may have rewritten it).
_UNKNOWN = object()
#: Sentinel distinguishing "key absent" from "stored None" in journals.
_ABSENT = object()

#: Minimum lane count before the numpy backend pays for its conversion
#: overhead (narrow packs stay on plain-int lists).
_NUMPY_MIN_LANES = 8


def _numpy_available() -> bool:
    """Whether the numpy ALU backend may be used (env-overridable)."""
    flag = os.environ.get("REPRO_BATCH_NUMPY")
    if flag is not None and flag.strip().lower() in ("0", "false", "no", "off"):
        return False
    return _np is not None


@dataclass
class BatchStats:
    """Mutable counters a caller may pass to observe batching behaviour."""

    packs: int = 0
    packed_trials: int = 0
    scalar_trials: int = 0
    evicted_lanes: int = 0


# -- per-lane ALU math (the scalar core's _op_alu, vectorized) -----------------


def _alu_scalar(op: Op, left: int, right: int) -> Tuple[int, bool]:
    """One lane of ALU math, mirroring ``_RunEngine._op_alu`` exactly."""
    carry = False
    if op is Op.ADD:
        result = left + right
        carry = result > MASK64
    elif op in (Op.SUB, Op.CMP):
        result = left - right
        carry = left < right
    elif op in (Op.AND, Op.TEST):
        result = left & right
    elif op is Op.OR:
        result = left | right
    elif op is Op.XOR:
        result = left ^ right
    elif op is Op.SHL:
        result = left << (right & 63)
    else:  # Op.SHR -- the shadow dispatch only routes ALU ops here
        result = left >> (right & 63)
    return result & MASK64, carry


def _alu_lanes_np(
    op: Op, lefts: Sequence[int], rights: Sequence[int]
) -> Tuple[List[int], List[bool]]:
    """Numpy uint64 lane math; wraps exactly like the masked python path."""
    left = _np.array(lefts, dtype=_np.uint64)
    right = _np.array(rights, dtype=_np.uint64)
    with _np.errstate(over="ignore"):
        if op is Op.ADD:
            result = left + right
            carry = result < left  # unsigned wrap <=> sum exceeded 2**64-1
        elif op in (Op.SUB, Op.CMP):
            result = left - right
            carry = left < right
        elif op in (Op.AND, Op.TEST):
            result = left & right
            carry = _np.zeros(len(lefts), dtype=bool)
        elif op is Op.OR:
            result = left | right
            carry = _np.zeros(len(lefts), dtype=bool)
        elif op is Op.XOR:
            result = left ^ right
            carry = _np.zeros(len(lefts), dtype=bool)
        elif op is Op.SHL:
            result = left << (right & _np.uint64(63))
            carry = _np.zeros(len(lefts), dtype=bool)
        else:  # Op.SHR
            result = left >> (right & _np.uint64(63))
            carry = _np.zeros(len(lefts), dtype=bool)
    return [int(value) for value in result], [bool(c) for c in carry]


def _alu_lanes(
    op: Op, lefts: Sequence[int], rights: Sequence[int], use_numpy: bool
) -> Tuple[List[int], List[bool]]:
    if use_numpy:
        return _alu_lanes_np(op, lefts, rights)
    results: List[int] = []
    carries: List[bool] = []
    for left, right in zip(lefts, rights):
        result, carry = _alu_scalar(op, left, right)
        results.append(result)
        carries.append(carry)
    return results, carries


# -- one lockstep run ----------------------------------------------------------


class LockstepRun:
    """One ``machine.run`` viewed through every lane of a batch.

    ``result`` is the leader's :class:`~repro.uarch.core.RunResult`;
    :meth:`lane_reg` reads a register as lane *lane* would have left it.
    Values for evicted lanes are meaningless -- callers must consult the
    batch's ``alive`` list first.
    """

    __slots__ = ("result", "_taint")

    def __init__(self, result, taint: Dict[str, List[int]]) -> None:
        self.result = result
        self._taint = taint

    def lane_reg(self, lane: int, name: str) -> int:
        vector = self._taint.get(name)
        if vector is not None:
            return vector[lane]
        return self.result.regs.read(name)


class LockstepBatch:
    """Step *lanes* virtual machines in lockstep over one real machine.

    Lane 0 is the leader and executes every run on *machine* for real;
    lanes 1..N-1 exist only as taint vectors over the leader's trace.
    Divergent-memory taint (``mem_taint``, byte-granular) persists across
    runs within the batch; register/flag taint is reseeded per run from
    the per-lane initial registers, matching the fresh
    :class:`~repro.isa.registers.RegisterFile` each ``run`` gets.
    """

    def __init__(self, machine, program, lanes: int) -> None:
        if lanes < 1:
            raise ValueError("a batch needs at least the leader lane")
        self.machine = machine
        self.program = program
        self.lanes = lanes
        #: Lane liveness; evictions are permanent for the batch's lifetime
        #: (an evicted lane's trial re-runs scalar, never partially).
        self.alive: List[bool] = [True] * lanes
        #: lane -> first eviction reason (debugging / stats).
        self.evict_reasons: Dict[int, str] = {}
        self.live_followers = lanes - 1
        #: Divergent architectural memory: va -> per-lane byte vector.
        self.mem_taint: Dict[int, List[int]] = {}
        #: Monotone: memory held lane-divergent bytes at *some* point.
        #: Deliberately never rolled back -- LFB line snapshots taken while
        #: the divergent bytes were live survive architectural rollback, so
        #: any later fault could MDS-forward lane-divergent data.
        self.mem_ever_tainted = False
        self.use_numpy = _numpy_available() and lanes >= _NUMPY_MIN_LANES
        # Per-run shadow state (reset by run()).
        self._leader: Dict[str, object] = {}
        self._reg_taint: Dict[str, List[int]] = {}
        self._flag_taint: Optional[List[Tuple[bool, bool, bool, bool]]] = None
        self._journal: List[tuple] = []
        self._marks: Dict[int, int] = {}

    # -- public API -------------------------------------------------------------

    def run(self, lane_regs: Sequence[Dict[str, int]]) -> LockstepRun:
        """Run the program once per lane, in lockstep.

        *lane_regs* gives each lane's initial registers (lane 0 drives
        the real machine).  Returns a :class:`LockstepRun`; check
        ``self.alive`` before trusting a follower lane's values.
        """
        if len(lane_regs) != self.lanes:
            raise ValueError(
                f"expected {self.lanes} lane register sets, got {len(lane_regs)}"
            )
        result = self.machine.run(
            self.program, regs=dict(lane_regs[0]), record_trace=True
        )
        self._leader = {name: 0 for name in GPRS}
        for name, value in lane_regs[0].items():
            self._leader[name] = value & MASK64
        self._reg_taint = {}
        names = set()
        for regs in lane_regs:
            names.update(regs)
        for name in sorted(names):
            values = [regs.get(name, 0) & MASK64 for regs in lane_regs]
            if any(value != values[0] for value in values[1:]):
                self._reg_taint[name] = values
        self._flag_taint = None
        # Fast path: with no divergent state anywhere, every lane IS the
        # leader -- the bulk of a channel pack's runs (the warm-ups) skip
        # the replay entirely.
        if self.live_followers and (
            self._reg_taint or self.mem_taint or self.mem_ever_tainted
        ):
            self._replay(result)
        if not self.live_followers:
            # Leader-only from here on: any taint state is stale (the
            # replay stops the moment the last follower dies) and lane 0
            # must read the engine's own registers.
            self._reg_taint = {}
            self._flag_taint = None
            self.mem_taint.clear()
        return LockstepRun(
            result, {name: list(vec) for name, vec in self._reg_taint.items()}
        )

    # -- eviction ---------------------------------------------------------------

    def _evict(self, lane: int, reason: str) -> None:
        if self.alive[lane]:
            self.alive[lane] = False
            self.evict_reasons[lane] = reason
            self.live_followers -= 1

    def _evict_followers(self, reason: str) -> None:
        for lane in range(1, self.lanes):
            self._evict(lane, reason)

    def _taint_or_none(self, vector: Sequence) -> Optional[list]:
        """Drop a vector that is degenerate over the live lanes."""
        head = vector[0]
        alive = self.alive
        for lane in range(1, self.lanes):
            if alive[lane] and vector[lane] != head:
                return list(vector)
        return None

    # -- journaled shadow-state mutation ----------------------------------------

    def _jset_reg(self, name: str, leader_value, taint: Optional[list]) -> None:
        self._journal.append(
            ("r", name, self._reg_taint.get(name, _ABSENT), self._leader[name])
        )
        self._leader[name] = leader_value
        if taint is None:
            self._reg_taint.pop(name, None)
        else:
            self._reg_taint[name] = taint

    def _jset_flags(self, taint) -> None:
        self._journal.append(("f", self._flag_taint))
        self._flag_taint = taint

    def _jset_mem(self, va: int, vector: Optional[list]) -> None:
        self._journal.append(("m", va, self.mem_taint.get(va, _ABSENT)))
        if vector is None:
            self.mem_taint.pop(va, None)
        else:
            self.mem_taint[va] = vector
            self.mem_ever_tainted = True

    def _rollback(self, mark: int) -> None:
        journal = self._journal
        while len(journal) > mark:
            entry = journal.pop()
            tag = entry[0]
            if tag == "r":
                _, name, old_taint, old_leader = entry
                self._leader[name] = old_leader
                if old_taint is _ABSENT:
                    self._reg_taint.pop(name, None)
                else:
                    self._reg_taint[name] = old_taint
            elif tag == "f":
                self._flag_taint = entry[1]
            else:
                _, va, old = entry
                if old is _ABSENT:
                    self.mem_taint.pop(va, None)
                else:
                    self.mem_taint[va] = old

    # -- the replay loop --------------------------------------------------------

    def _replay(self, result) -> None:
        """Walk the leader's records, mirroring the engine's squashes.

        Every record is processed (transient ones included -- they wrote
        state the engine later rolled back, and the shadow must do the
        same).  The engine's :class:`ResolutionEvent` breadcrumbs say
        exactly when each rollback happened (``boundary``) and which
        record's entry state it restored (``target_seq``), so the shadow
        journal replays the squash schedule mark-for-mark.
        """
        resolutions = result.events.resolutions
        res_idx = 0
        n_res = len(resolutions)
        self._journal = []
        self._marks = {}
        shadow = _SHADOW
        for record in result.records:
            seq = record.seq
            while res_idx < n_res and resolutions[res_idx].boundary <= seq:
                self._apply_resolution(resolutions[res_idx])
                res_idx += 1
            if not self.live_followers:
                return
            self._marks[seq] = len(self._journal)
            handler = shadow.get(record.instruction.op)
            if handler is None:
                # Future ISA growth: an op the shadow has no model for
                # falls back to scalar for every follower.
                self._evict_followers("unmodelled-op")
                return
            handler(self, record, record.instruction)
        while res_idx < n_res:
            self._apply_resolution(resolutions[res_idx])
            res_idx += 1

    def _apply_resolution(self, resolution) -> None:
        # A target record dispatched at (or after) the rollback boundary
        # has no mark yet; the rollback is then a no-op for the shadow
        # (nothing newer was processed either).
        mark = self._marks.get(resolution.target_seq)
        if mark is not None:
            self._rollback(mark)

    # -- per-op shadow semantics -------------------------------------------------

    def _shadow_nop(self, record, ins) -> None:
        return None

    def _shadow_mov_ri(self, record, ins) -> None:
        self._jset_reg(ins.dst, record.dest_value, None)

    def _shadow_mov_rr(self, record, ins) -> None:
        taint = self._reg_taint.get(ins.src)
        self._jset_reg(
            ins.dst, record.dest_value, list(taint) if taint is not None else None
        )

    def _shadow_lea(self, record, ins) -> None:
        mem = ins.mem
        base_t = self._reg_taint.get(mem.base) if mem.base else None
        index_t = self._reg_taint.get(mem.index) if mem.index else None
        value = record.dest_value
        if base_t is None and index_t is None:
            self._jset_reg(ins.dst, value, None)
            return
        vector = []
        for lane in range(self.lanes):
            delta = 0
            if base_t is not None:
                delta += base_t[lane] - base_t[0]
            if index_t is not None:
                delta += (index_t[lane] - index_t[0]) * mem.scale
            vector.append((value + delta) & MASK64)
        self._jset_reg(ins.dst, value, self._taint_or_none(vector))

    def _shadow_alu(self, record, ins) -> None:
        op = ins.op
        writes = op not in (Op.CMP, Op.TEST)
        left_t = self._reg_taint.get(ins.dst)
        right_t = self._reg_taint.get(ins.src) if ins.src is not None else None
        if left_t is None and right_t is None:
            # Untainted inputs: every lane computes the leader's result
            # and the leader's flags.
            self._jset_flags(None)
            if writes:
                self._jset_reg(ins.dst, record.dest_value, None)
            return
        if left_t is not None:
            lefts = left_t
        else:
            leader_left = self._leader[ins.dst]
            if leader_left is _UNKNOWN:
                self._evict_followers("alu-on-unknown-leader-value")
                self._jset_flags(None)
                if writes:
                    self._jset_reg(ins.dst, record.dest_value, None)
                return
            lefts = [leader_left] * self.lanes
        if right_t is not None:
            rights = right_t
        elif ins.src is not None:
            leader_right = self._leader[ins.src]
            if leader_right is _UNKNOWN:
                self._evict_followers("alu-on-unknown-leader-value")
                self._jset_flags(None)
                if writes:
                    self._jset_reg(ins.dst, record.dest_value, None)
                return
            rights = [leader_right] * self.lanes
        else:
            rights = [ins.imm & MASK64] * self.lanes
        results, carries = _alu_lanes(op, lefts, rights, self.use_numpy)
        if writes and record.dest_value is not None and results[0] != record.dest_value:
            # Shadow/engine disagreement on the leader lane can only be a
            # shadow bug; degrade to scalar rather than corrupt a lane.
            self._evict_followers("shadow-mismatch")
            self._jset_flags(None)
            self._jset_reg(ins.dst, record.dest_value, None)
            return
        flags = [
            (result == 0, carry, bool(result >> 63), False)
            for result, carry in zip(results, carries)
        ]
        self._jset_flags(self._taint_or_none(flags))
        if writes:
            self._jset_reg(ins.dst, results[0], self._taint_or_none(results))

    def _shadow_jcc(self, record, ins) -> None:
        flags = self._flag_taint
        if flags is None:
            return
        cond = ins.cond
        actual = record.actual_taken
        alive = self.alive
        for lane in range(1, self.lanes):
            if alive[lane] and cond.evaluate(*flags[lane]) != actual:
                # This lane's branch goes the other way: different fetch
                # path, different timing -- scalar from here on.
                self._evict(lane, "branch-divergence")

    def _evict_address_mismatch(self, base, index, scale: int) -> None:
        base_t = self._reg_taint.get(base) if base else None
        index_t = self._reg_taint.get(index) if index else None
        if base_t is None and index_t is None:
            return
        alive = self.alive
        for lane in range(1, self.lanes):
            if not alive[lane]:
                continue
            delta = 0
            if base_t is not None:
                delta += base_t[lane] - base_t[0]
            if index_t is not None:
                delta += (index_t[lane] - index_t[0]) * scale
            if delta & MASK64:
                self._evict(lane, "address-divergence")

    def _shadow_load(self, record, ins) -> None:
        mem = ins.mem
        self._evict_address_mismatch(mem.base, mem.index, mem.scale)
        if record.fault is not None:
            if self.mem_ever_tainted:
                # The forwarded value may come from a stale LFB line (MDS)
                # or from bytes the lanes disagree on (Meltdown); once
                # memory has ever been divergent, neither is lane-safe.
                self._evict_followers("fault-after-memory-taint")
            if ins.dst is not None:
                self._jset_reg(ins.dst, record.dest_value, None)
            return
        size = 1 if ins.op is Op.LOAD_BYTE else 8
        value = record.dest_value
        overlap = None
        if self.mem_taint:
            va = record.memory_va
            overlap = [self.mem_taint.get(va + i) for i in range(size)]
            if not any(vec is not None for vec in overlap):
                overlap = None
        if overlap is None:
            self._jset_reg(ins.dst, value, None)
            return
        leader_bytes = value.to_bytes(size, "little")
        vector = []
        for lane in range(self.lanes):
            raw = bytearray(leader_bytes)
            for i, vec in enumerate(overlap):
                if vec is not None:
                    raw[i] = vec[lane]
            vector.append(int.from_bytes(raw, "little"))
        self._jset_reg(ins.dst, value, self._taint_or_none(vector))

    def _shadow_store(self, record, ins) -> None:
        mem = ins.mem
        self._evict_address_mismatch(mem.base, mem.index, mem.scale)
        if record.fault is not None:
            return  # the faulting store committed nothing
        va = record.memory_va
        value_t = self._reg_taint.get(ins.src) if ins.src is not None else None
        if value_t is None:
            # All lanes stored the same bytes: strong update, clearing any
            # taint the 8 bytes carried.
            if self.mem_taint:
                for i in range(8):
                    if va + i in self.mem_taint:
                        self._jset_mem(va + i, None)
            return
        for i in range(8):
            shift = 8 * i
            byte_vec = [(value >> shift) & 0xFF for value in value_t]
            self._jset_mem(va + i, self._taint_or_none(byte_vec))

    def _shadow_prefetch(self, record, ins) -> None:
        # Address-only side effects (cache/TLB fills, flushes): timing
        # stays lane-identical iff the address does.
        mem = ins.mem
        self._evict_address_mismatch(mem.base, mem.index, mem.scale)

    def _shadow_call(self, record, ins) -> None:
        # record.memory_va is the decremented rsp the return address went
        # to; lane deltas on rsp translate 1:1.
        self._evict_address_mismatch("rsp", None, 1)
        if record.fault is not None:
            return
        va = record.memory_va
        if self.mem_taint:
            for i in range(8):
                if va + i in self.mem_taint:
                    self._jset_mem(va + i, None)  # return address: lane-invariant
        rsp_t = self._reg_taint.get("rsp")
        taint = (
            [(value - 8) & MASK64 for value in rsp_t] if rsp_t is not None else None
        )
        self._jset_reg("rsp", va, taint)

    def _shadow_ret(self, record, ins) -> None:
        self._evict_address_mismatch("rsp", None, 1)
        if record.fault is not None:
            return
        va = record.memory_va
        target = record.actual_target
        if self.mem_taint:
            overlap = [self.mem_taint.get(va + i) for i in range(8)]
            if any(vec is not None for vec in overlap):
                leader_bytes = target.to_bytes(8, "little")
                alive = self.alive
                for lane in range(1, self.lanes):
                    if not alive[lane]:
                        continue
                    raw = bytearray(leader_bytes)
                    for i, vec in enumerate(overlap):
                        if vec is not None:
                            raw[i] = vec[lane]
                    if int.from_bytes(raw, "little") != target:
                        self._evict(lane, "return-target-divergence")
        rsp_t = self._reg_taint.get("rsp")
        taint = (
            [(value + 8) & MASK64 for value in rsp_t] if rsp_t is not None else None
        )
        self._jset_reg("rsp", (va + 8) & MASK64, taint)

    def _shadow_rdtsc(self, record, ins) -> None:
        # rax gets the (lane-invariant) timestamp; rdx is zeroed directly.
        self._jset_reg("rax", record.dest_value, None)
        self._jset_reg("rdx", 0, None)

    def _shadow_syscall(self, record, ins) -> None:
        if self._reg_taint or self._flag_taint is not None or self.mem_taint:
            # The kernel handler reads/writes the architectural file and
            # memory; tainted inputs make its effects lane-divergent in
            # ways the shadow cannot model.
            self._evict_followers("syscall-with-taint")
            return
        for name in ("rax", "rbx", "rcx", "rdx", "rsi", "rdi"):
            self._jset_reg(name, _UNKNOWN, None)


#: Op -> shadow handler.  Ops absent here (none today) evict followers.
_SHADOW = {
    Op.MOV_RI: LockstepBatch._shadow_mov_ri,
    Op.MOV_RR: LockstepBatch._shadow_mov_rr,
    Op.LOAD: LockstepBatch._shadow_load,
    Op.LOAD_BYTE: LockstepBatch._shadow_load,
    Op.STORE: LockstepBatch._shadow_store,
    Op.LEA: LockstepBatch._shadow_lea,
    Op.ADD: LockstepBatch._shadow_alu,
    Op.SUB: LockstepBatch._shadow_alu,
    Op.AND: LockstepBatch._shadow_alu,
    Op.OR: LockstepBatch._shadow_alu,
    Op.XOR: LockstepBatch._shadow_alu,
    Op.SHL: LockstepBatch._shadow_alu,
    Op.SHR: LockstepBatch._shadow_alu,
    Op.CMP: LockstepBatch._shadow_alu,
    Op.TEST: LockstepBatch._shadow_alu,
    Op.JMP: LockstepBatch._shadow_nop,
    Op.JCC: LockstepBatch._shadow_jcc,
    Op.CALL: LockstepBatch._shadow_call,
    Op.RET: LockstepBatch._shadow_ret,
    Op.NOP: LockstepBatch._shadow_nop,
    Op.PREFETCH: LockstepBatch._shadow_prefetch,
    Op.MFENCE: LockstepBatch._shadow_nop,
    Op.LFENCE: LockstepBatch._shadow_nop,
    Op.SFENCE: LockstepBatch._shadow_nop,
    Op.CLFLUSH: LockstepBatch._shadow_prefetch,
    Op.RDTSC: LockstepBatch._shadow_rdtsc,
    Op.RDTSCP: LockstepBatch._shadow_rdtsc,
    Op.XBEGIN: LockstepBatch._shadow_nop,
    Op.XEND: LockstepBatch._shadow_nop,
    Op.HLT: LockstepBatch._shadow_nop,
    Op.SYSCALL: LockstepBatch._shadow_syscall,
}


# -- channel-trial packs -------------------------------------------------------


def pack_eligible(trial) -> bool:
    """Whether *trial* may ride a lockstep pack.

    Channel trials only (KASLR/detect trials have per-trial behaviour no
    shared trace covers), and only at zero ambient noise: the per-trial
    noise seed is inert at amplitude 0, which is what lets one leader
    reset stand in for every lane's.
    """
    from repro.runtime.tasks import ChannelTrial

    return isinstance(trial, ChannelTrial) and trial.spec.noise_amplitude == 0


def _pack_key(trial):
    """Trials in one pack must agree on everything but ``test``/index."""
    return (trial.spec, trial.byte, trial.batches, trial.warmup, trial.suppression)


def plan_packs(payloads: Sequence, batch_size: int) -> List[list]:
    """Split *payloads* into order-preserving executable groups.

    Consecutive pack-eligible trials sharing a pack key form groups of up
    to *batch_size* lanes; everything else becomes a scalar singleton.
    Grouping depends only on the payload sequence and *batch_size*, so
    serial and pooled runs form identical packs (the determinism
    contract's requirement).
    """
    groups: List[list] = []
    i = 0
    n = len(payloads)
    while i < n:
        trial = payloads[i]
        if pack_eligible(trial) and batch_size > 1:
            key = _pack_key(trial)
            j = i + 1
            while (
                j < n
                and j - i < batch_size
                and pack_eligible(payloads[j])
                and _pack_key(payloads[j]) == key
            ):
                j += 1
            groups.append(list(payloads[i:j]))
            i = j
        else:
            groups.append([trial])
            i += 1
    return groups


def run_channel_pack(trials: Sequence, stats: Optional[BatchStats] = None) -> List:
    """Run a pack of structurally identical channel trials in lockstep.

    The leader (``trials[0]``) executes its trial for real; every other
    lane is the same trial with a different test value, reconstructed
    from the leader's trace.  Lanes the shadow evicts (the matching test
    byte whose Jcc really does go the other way) re-run through the
    ordinary scalar path, so every returned
    :class:`~repro.runtime.tasks.TrialResult` is byte-identical to a
    scalar run of its payload.
    """
    from repro.runtime.tasks import (
        NULL_POINTER,
        TrialResult,
        _channel_context,
        run_trial,
    )

    lead = trials[0]
    machine, program, sender_page = _channel_context(lead.spec, lead.suppression)
    machine.reset_uarch(noise_seed=lead.spec.trial_seed(lead.trial_index))
    machine.write_data(sender_page, bytes([lead.byte & 0xFF]) + b"\x00" * 7)
    lanes = len(trials)
    batch = LockstepBatch(machine, program, lanes)
    warm_regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": 256}
    warm_set = [warm_regs] * lanes
    probe_set = [
        {"r12": sender_page, "r13": NULL_POINTER, "r9": trial.test}
        for trial in trials
    ]
    lane_totes: List[List[int]] = [[] for _ in range(lanes)]
    for _ in range(lead.batches):
        for _ in range(lead.warmup):
            batch.run(warm_set)
        probe = batch.run(probe_set)
        for lane in range(lanes):
            if batch.alive[lane]:
                lane_totes[lane].append(
                    probe.lane_reg(lane, "r15") - probe.lane_reg(lane, "r14")
                )
    # The pack ran exactly one trial's worth of runs on one continuing
    # cycle timeline, so the leader's cycle count is every live lane's.
    cycles = machine.core.global_cycle
    if stats is not None:
        stats.packs += 1
        stats.packed_trials += sum(batch.alive)
        stats.evicted_lanes += lanes - sum(batch.alive)
        stats.scalar_trials += lanes - sum(batch.alive)
    results: List = [None] * lanes
    for lane in range(lanes):
        if batch.alive[lane]:
            results[lane] = TrialResult(totes=tuple(lane_totes[lane]), cycles=cycles)
    for lane in range(lanes):
        if results[lane] is None:
            # Scalar re-run on the same cached context: purity makes this
            # exactly the result a scalar-only campaign computes.
            results[lane] = run_trial(trials[lane])
    return results


def run_trial_group(group: Sequence) -> List:
    """Execute one ``plan_packs`` group (module-level: pool-picklable)."""
    from repro.runtime.tasks import run_trial

    if len(group) > 1:
        if not telemetry.enabled():
            return run_channel_pack(group)
        stats = BatchStats()
        with telemetry.span(
            "batch.pack", batch_size=len(group), kind=type(group[0]).__name__
        ) as span:
            results = run_channel_pack(group, stats)
            span.set(evicted=stats.evicted_lanes)
        return results
    return [run_trial(group[0])]


def run_trials_batched(
    payloads: Sequence, batch_size: int, stats: Optional[BatchStats] = None
) -> List:
    """Run *payloads* in order, packing eligible neighbours up to
    *batch_size* lanes; returns results positionally like ``map``."""
    results: List = []
    for group in plan_packs(list(payloads), batch_size):
        if len(group) > 1:
            results.extend(run_channel_pack(group, stats))
        else:
            from repro.runtime.tasks import run_trial

            if stats is not None:
                stats.scalar_trials += 1
            results.append(run_trial(group[0]))
    return results
