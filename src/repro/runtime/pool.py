"""The trial pool: fan independent gadget trials across worker processes.

Every Whisper attack is a statistical sampling campaign -- thousands of
independent gadget trials whose results are aggregated by a decoder or a
classifier.  :class:`TrialPool` runs those trials either in-process
(:class:`SerialExecutor`) or across its own crew of worker processes
(:class:`ProcessExecutor`), behind one interface:

* trial functions are module-level callables taking one picklable
  payload (see :mod:`repro.runtime.tasks`);
* results come back in payload order, regardless of scheduling;
* each worker builds its machines from :class:`~repro.runtime.MachineSpec`
  recipes, caches them, and calls :meth:`Machine.reset_uarch` at the top
  of every trial -- so a trial's outcome depends only on its payload,
  never on which worker ran it or what ran there before.

That last property is the determinism contract: ``TrialPool(workers=1)``
and ``TrialPool(workers=8)`` produce bit-identical results.

The pool is also the resilience boundary (see ``docs/FAULTS.md``).  A
worker that dies mid-trial surfaces as :class:`WorkerLostError` naming
the payload it took down -- never an opaque hang.  With a
:class:`~repro.faults.resilience.ResiliencePolicy` installed, the pool
instead retries failing trials with seeded exponential backoff, enforces
per-trial deadlines, respawns dead workers, and quarantines payloads
that fail every retry as :class:`~repro.runtime.tasks.TrialFailure`
values.  The determinism contract extends to failure: under a
deterministic fault source, retry counts, quarantine lists and failure
records are byte-identical at any worker count.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import tempfile
import time
from collections import deque
from typing import Callable, Iterable, List, Optional, Sequence

from repro import telemetry
from repro.runtime.tasks import TrialFailure

__all__ = [
    "TrialPool",
    "SerialExecutor",
    "ProcessExecutor",
    "WorkerCrew",
    "WorkerLostError",
    "TrialTimeout",
    "default_workers",
]

#: How often the coordinator checks for dead workers and blown deadlines.
_POLL_SECONDS = 0.05

#: Adaptive chunking aims for at least this much simulated work per pipe
#: message; below it the queue/pickle round-trip starts to show up on
#: campaign profiles.
TARGET_CHUNK_SECONDS = 0.05

#: Ceiling on the adaptive chunk size -- bounds both the work lost when a
#: chunk's worker dies and the latency before the first result lands.
MAX_CHUNK = 64

#: Histogram bounds for the adaptive chunk-size metric (powers of two up
#: to :data:`MAX_CHUNK`).
CHUNK_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: How many trailing stderr lines a dead worker leaves behind in its
#: :class:`WorkerLostError` payload and lifecycle trace events.
STDERR_TAIL_LINES = 10


def default_workers() -> int:
    """A sensible worker count for this host (``os.cpu_count``)."""
    return os.cpu_count() or 1


def _emit_heartbeats(
    emitted_through: int, completed: int, dispatched: int, started: float
) -> int:
    """Emit ``pool.heartbeat`` events for every cadence boundary crossed.

    The cadence (``telemetry.set_heartbeat_cadence``) is a completed
    *trial count*, never a timer: the number of heartbeats and their
    deterministic attributes (the boundary, the dispatch size) depend
    only on the work, at any worker count.  Wall-derived throughput
    rides in the ``host`` sidecar like every other host fact.  Returns
    the highest boundary emitted so far.
    """
    cadence = telemetry.heartbeat_cadence()
    if not cadence or not telemetry.enabled():
        return emitted_through
    while emitted_through + cadence <= completed:
        emitted_through += cadence
        elapsed = time.monotonic() - started
        telemetry.event(
            "pool.heartbeat",
            completed=emitted_through,
            dispatched=dispatched,
            host={
                "trials_per_sec": (
                    round(completed / elapsed, 1) if elapsed > 0 else 0.0
                ),
            },
        )
    return emitted_through


class WorkerLostError(RuntimeError):
    """A worker process died mid-batch.

    Raised by the unprotected path so callers see *which* payload took
    the worker down instead of an opaque hang; the resilient path turns
    the same event into a ``worker-lost`` retry.
    """

    def __init__(
        self, payload_index: int, message: str = "", stderr_tail: str = ""
    ) -> None:
        text = message or f"worker died while running payload {payload_index}"
        if stderr_tail:
            text += f"\nlast worker stderr:\n{stderr_tail}"
        super().__init__(text)
        self.payload_index = payload_index
        #: The dead worker's final stderr lines (diagnostics only -- never
        #: serialised into trial results, which must stay deterministic).
        self.stderr_tail = stderr_tail


class TrialTimeout(RuntimeError):
    """A trial exceeded the policy deadline (kept for API symmetry;
    the resilient path records timeouts as retries, not raises)."""


def _call_trial(fn: Callable, payload, attempt: int):
    """Dispatch one attempt, passing the attempt number through only to
    wrappers that ask for it (fault injectors)."""
    if getattr(fn, "wants_attempt", False):
        return fn(payload, attempt)
    return fn(payload)


def _classify_ok(value, policy):
    """Why a returned *value* is unacceptable, or None if it is fine."""
    if getattr(value, "is_hang_token", False):
        describe = getattr(value, "describe", None)
        return ("hang", describe() if describe else "trial returned a hang token")
    if policy.validate:
        from repro.faults.resilience import trial_result_validator

        if not trial_result_validator(value):
            return ("garbage", f"garbage result: {value!r}")
    return None


class _RetryLedger:
    """Attempt bookkeeping shared by the serial and pooled resilient
    paths, so failure handling (and therefore report bytes) cannot
    diverge between them."""

    def __init__(self, payloads: Sequence, policy, stats) -> None:
        from repro.faults.resilience import QuarantineEntry

        self._entry_type = QuarantineEntry
        self.payloads = payloads
        self.policy = policy
        self.stats = stats
        self.results: List = [None] * len(payloads)
        self.done = [False] * len(payloads)
        self.completed = 0
        self.faults = {}
        self.quarantine: List = []

    def accept(self, index: int, value) -> None:
        if self.done[index]:
            return
        self.results[index] = value
        self.done[index] = True
        self.completed += 1

    def fail(self, index: int, attempt: int, category: str, message: str):
        """Record a failed attempt; the next attempt number, or None if
        the payload is now quarantined."""
        if self.done[index]:
            return None
        history = self.faults.setdefault(index, [])
        history.append(category)
        self.stats.note(category, message)
        if attempt + 1 < self.policy.attempts:
            self.stats.retries += 1
            return attempt + 1
        self.results[index] = TrialFailure(
            attempts=attempt + 1, faults=tuple(history), error=message
        )
        self.quarantine.append(
            self._entry_type(
                index=index,
                payload=self.payloads[index],
                attempts=attempt + 1,
                faults=tuple(history),
                error=message,
            )
        )
        self.stats.quarantined += 1
        self.done[index] = True
        self.completed += 1
        return None

    def finish(self) -> List:
        # Quarantine in payload order, whatever order trials completed in
        # -- part of the byte-identity contract across worker counts.
        self.quarantine.sort(key=lambda entry: entry.index)
        return self.results


def _map_serial_resilient(fn: Callable, payloads: Sequence, policy, stats):
    """The in-process resilient loop (reference semantics for the crew)."""
    from repro.faults.inject import SimulatedWorkerDeath, lost_worker_message

    ledger = _RetryLedger(payloads, policy, stats)
    pending = deque((index, 0) for index in range(len(payloads)))
    while pending:
        index, attempt = pending.popleft()
        failed = None
        value = None
        try:
            value = _call_trial(fn, payloads[index], attempt)
        except SimulatedWorkerDeath:
            failed = ("worker-lost", lost_worker_message(payloads[index], attempt))
        except Exception as exc:
            failed = ("raise", f"{type(exc).__name__}: {exc}")
        else:
            failed = _classify_ok(value, policy)
        if failed is None:
            ledger.accept(index, value)
            continue
        next_attempt = ledger.fail(index, attempt, *failed)
        if next_attempt is not None:
            delay = policy.delay(attempt)
            if delay > 0:
                time.sleep(delay)
            # Depth-first: finish a payload's retries before moving on,
            # mirroring how a human would re-run a flaky experiment.
            pending.appendleft((index, next_attempt))
    return ledger


class SerialExecutor:
    """Runs trials in the calling process.  The reference executor: the
    parallel path must match its output bit for bit."""

    workers = 1

    def map(self, fn: Callable, payloads: Iterable) -> List:
        if not telemetry.heartbeat_cadence():
            return [fn(payload) for payload in payloads]
        payloads = list(payloads)
        started = time.monotonic()
        results: List = []
        beats = 0
        for payload in payloads:
            results.append(fn(payload))
            beats = _emit_heartbeats(
                beats, len(results), len(payloads), started
            )
        return results

    def run_resilient(self, fn: Callable, payloads: Sequence, policy, stats):
        return _map_serial_resilient(fn, payloads, policy, stats)

    def close(self) -> None:
        pass


# -- chunked dispatch ----------------------------------------------------------


class _ChunkError:
    """Picklable marker a :class:`_ChunkCall` returns when one payload of
    its slice raised, carrying enough to re-attribute the failure to the
    original payload index on the coordinator side."""

    __slots__ = ("offset", "message")

    def __init__(self, offset: int, message: str) -> None:
        self.offset = offset
        self.message = message


class _ChunkCall:
    """Run a contiguous slice of payloads in one worker round-trip.

    Used only on the unprotected (no-policy) path: the resilient path
    keeps per-payload dispatch so retries, deadlines and quarantine stay
    attributable to single trials.  Results come back as a list in slice
    order, so flattening chunk results preserves payload order -- the
    byte-identity contract does not care how payloads were grouped.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, payloads):
        fn = self.fn
        results = []
        for offset, payload in enumerate(payloads):
            try:
                results.append(fn(payload))
            except Exception as exc:
                return _ChunkError(offset, f"{type(exc).__name__}: {exc}")
        return results


# -- the worker crew -----------------------------------------------------------


def _crew_worker(task_queue, result_conn, stderr_path=None) -> None:
    """Worker main loop: pull ``(task_id, fn, payload, attempt, observe)``
    tasks, send ``(task_id, status, value, telemetry_batch)`` outcomes
    down the private result pipe.  An injected kill fault ``os._exit``\\ s
    between the pull and the send -- exactly the silence a crashed worker
    leaves behind.

    stderr is redirected to a per-worker file so a casualty's last words
    survive it (the coordinator reads the tail back into the
    :class:`WorkerLostError` and the trace -- previously they were
    silently dropped with the inherited pipe).  When *observe* is set the
    worker arms a fresh telemetry recorder (never the one a ``fork``
    inherited from the coordinator, whose buffered records would be
    duplicated) and ships a drained batch with every result.
    """
    if stderr_path is not None:
        try:
            fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600)
            os.dup2(fd, 2)
            os.close(fd)
        except OSError:  # pragma: no cover - tmpdir raced away
            pass
    telemetry.disable()  # drop any fork-inherited coordinator recorder
    while True:
        task = task_queue.get()
        if task is None:
            return
        task_id, fn, payload, attempt, observe = task
        if observe:
            telemetry.enable_in_worker()
        try:
            value = _call_trial(fn, payload, attempt)
        except Exception as exc:
            batch = telemetry.drain_worker_batch() if observe else None
            result_conn.send(
                (task_id, "error", f"{type(exc).__name__}: {exc}", batch)
            )
        else:
            batch = telemetry.drain_worker_batch() if observe else None
            result_conn.send((task_id, "ok", value, batch))


class _CrewWorker:
    """One worker process plus its private task queue, private result
    pipe, and in-flight slot.

    The result path is a one-way pipe with a *single* writer on purpose.
    A shared result queue would multiplex workers over one pipe behind a
    shared lock held during the write -- and a worker dying mid-write
    (a kill fault, an OOM-kill, a hard crash) would take that lock to
    its grave and wedge every other worker's sends forever.  With one
    pipe per worker a casualty can only ever corrupt its own channel,
    which dies (and is replaced) with it.
    """

    def __init__(self, context, slot: int) -> None:
        self.slot = slot
        self.task_queue = context.SimpleQueue()
        self.result_conn, worker_conn = context.Pipe(duplex=False)
        fd, self.stderr_path = tempfile.mkstemp(
            prefix=f"repro-worker-{slot}-", suffix=".stderr"
        )
        os.close(fd)
        self.process = context.Process(
            target=_crew_worker,
            args=(self.task_queue, worker_conn, self.stderr_path),
            daemon=True,
        )
        self.process.start()
        worker_conn.close()  # the child's end lives in the child now
        #: ``(task_id, payload_index, attempt, deadline)`` or None when idle.
        self.task = None

    def send(
        self, task_id: int, fn: Callable, payload, attempt: int,
        index: int, timeout: Optional[float], observe: bool = False,
    ) -> None:
        deadline = time.monotonic() + timeout if timeout is not None else None
        # Record before sending: a worker that dies the instant it picks
        # the task up must still be attributable to this payload.
        self.task = (task_id, index, attempt, deadline)
        self.task_queue.put((task_id, fn, payload, attempt, observe))

    def stderr_tail(
        self, lines: int = STDERR_TAIL_LINES, max_bytes: int = 8192
    ) -> str:
        """The worker's last stderr lines (what a crash left behind)."""
        try:
            with open(self.stderr_path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - max_bytes))
                data = handle.read().decode("utf-8", "replace")
        except OSError:
            return ""
        return "\n".join(data.strip().splitlines()[-lines:])

    def cleanup(self) -> None:
        """Remove the worker's stderr capture file."""
        try:
            os.unlink(self.stderr_path)
        except OSError:
            pass

    def stop(self) -> None:
        if self.process.is_alive():
            try:
                self.task_queue.put(None)
            except Exception:  # pragma: no cover - broken pipe on a dead child
                pass
            self.process.join(timeout=0.5)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2.0)
        self.cleanup()


class WorkerCrew:
    """A persistent set of worker processes the coordinator can watch.

    Unlike ``multiprocessing.Pool`` -- which replaces dead workers
    silently and leaves their in-flight task lost forever (the map call
    hangs) -- the crew tracks which payload each worker holds, polls
    liveness and deadlines, and respawns casualties.  That bookkeeping
    is what makes :class:`WorkerLostError` attribution, per-trial
    timeouts and dead-worker retry possible.
    """

    def __init__(self, workers: int, context=None) -> None:
        if context is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
        self.context = context
        self.workers = workers
        self._task_counter = 0
        self.members = [_CrewWorker(context, slot) for slot in range(workers)]

    def _respawn(self, slot: int) -> None:
        member = self.members[slot]
        if member.process.is_alive():
            member.process.terminate()
        member.process.join(timeout=2.0)
        member.result_conn.close()  # anything still in it is untrusted
        member.cleanup()
        self.members[slot] = _CrewWorker(self.context, slot)
        telemetry.event(
            "pool.worker.respawn",
            slot=slot,
            host={"pid": self.members[slot].process.pid},
        )

    def run(self, fn: Callable, payloads: Sequence, policy=None, stats=None):
        """Run *payloads* through the crew.

        Without a policy: returns results in payload order; a worker
        exception re-raises as ``RuntimeError`` and a worker death as
        :class:`WorkerLostError` (after respawning, so the crew stays
        usable).  With a policy: returns the :class:`_RetryLedger` after
        retrying/timing-out/quarantining per the policy.
        """
        payloads = list(payloads)
        count = len(payloads)
        ledger = _RetryLedger(payloads, policy, stats) if policy is not None else None
        results: List = [None] * count
        completed = 0
        pending = deque((index, 0) for index in range(count))
        # Workers abandoned mid-map by a previous exception finish their
        # stale task eventually; new tasks queue up behind it and stale
        # results are dropped below by task-id mismatch.
        for member in self.members:
            member.task = None
        observe = telemetry.enabled()
        # Worker telemetry batches, keyed ``(payload_index, attempt)`` so
        # the merged trace order depends only on payload identity -- never
        # on which worker ran a trial or when its pipe delivered.
        batches: List = []
        map_started = time.monotonic()
        beats = 0

        def fail(index: int, attempt: int, category: str, message: str) -> None:
            next_attempt = ledger.fail(index, attempt, category, message)
            if next_attempt is not None:
                delay = policy.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                pending.append((index, next_attempt))

        def sweep() -> None:
            """Detect dead workers and blown deadlines between results."""
            now = time.monotonic()
            for slot, member in enumerate(self.members):
                if member.task is None:
                    if not member.process.is_alive():
                        self._respawn(slot)
                    continue
                task_id, index, attempt, deadline = member.task
                if not member.process.is_alive():
                    member.task = None
                    tail = member.stderr_tail()
                    telemetry.event(
                        "pool.worker.lost",
                        slot=slot,
                        index=index,
                        attempt=attempt,
                        host={"pid": member.process.pid, "stderr_tail": tail},
                    )
                    self._respawn(slot)
                    if policy is None:
                        raise WorkerLostError(index, stderr_tail=tail)
                    from repro.faults.inject import lost_worker_message

                    # The tail stays out of the failure message: retry and
                    # quarantine records are part of the byte-identity
                    # contract, and stderr content is host noise.
                    fail(index, attempt, "worker-lost",
                         lost_worker_message(payloads[index], attempt))
                elif deadline is not None and now > deadline:
                    member.task = None
                    telemetry.event(
                        "pool.worker.timeout",
                        slot=slot,
                        index=index,
                        attempt=attempt,
                        host={"pid": member.process.pid},
                    )
                    self._respawn(slot)  # the worker is wedged; replace it
                    fail(index, attempt, "timeout",
                         f"trial exceeded {policy.timeout:g}s deadline "
                         f"(attempt {attempt})")

        try:
            while (ledger.completed if ledger else completed) < count:
                for member in self.members:
                    if not pending:
                        break
                    if member.task is None and member.process.is_alive():
                        index, attempt = pending.popleft()
                        self._task_counter += 1
                        member.send(
                            self._task_counter, fn, payloads[index], attempt,
                            index,
                            policy.timeout if policy is not None else None,
                            observe,
                        )
                by_conn = {member.result_conn: member for member in self.members}
                ready = multiprocessing.connection.wait(
                    by_conn.keys(), timeout=_POLL_SECONDS
                )
                if not ready:
                    sweep()
                    continue
                for conn in ready:
                    member = by_conn[conn]
                    try:
                        task_id, status, value, batch = conn.recv()
                    except (EOFError, OSError):
                        # The writer died; sweep attributes and respawns.
                        continue
                    if member.task is None or member.task[0] != task_id:
                        continue  # stale: a task we already timed out or abandoned
                    _, index, attempt, _ = member.task
                    member.task = None
                    if observe and batch is not None:
                        telemetry.merge_worker_metrics(batch)
                        if batch.get("records"):
                            batches.append(((index, attempt), batch["records"]))
                    if status == "ok":
                        if policy is None:
                            results[index] = value
                            completed += 1
                            continue
                        failed = _classify_ok(value, policy)
                        if failed is None:
                            ledger.accept(index, value)
                        else:
                            fail(index, attempt, *failed)
                    else:  # status == "error"
                        if policy is None:
                            raise RuntimeError(
                                f"trial payload {index} failed in worker: {value}"
                            )
                        fail(index, attempt, "raise", value)
                beats = _emit_heartbeats(
                    beats,
                    ledger.completed if ledger else completed,
                    count,
                    map_started,
                )
                sweep()
        finally:
            if observe and batches:
                # Sort by (payload, attempt), never by arrival: the merged
                # trace is identical at any worker count.
                batches.sort(key=lambda item: item[0])
                telemetry.ingest_batches(
                    (f"p{index}.{attempt}", records)
                    for (index, attempt), records in batches
                )
        return ledger if ledger is not None else results

    def close(self) -> None:
        for member in self.members:
            member.stop()
            member.result_conn.close()
        self.members = []


class ProcessExecutor:
    """Runs trials across a persistent :class:`WorkerCrew`.

    The crew is created lazily on first :meth:`map` and reused across
    calls, so a multi-byte transmission pays the worker start-up cost
    once.  ``fork`` is preferred (workers inherit loaded modules and any
    already-built machine contexts); where it is unavailable the default
    start method is used and workers rebuild their contexts on demand.

    Dispatch granularity adapts to the workload.  The first :meth:`map`
    on a fresh executor goes per payload (there is no timing estimate
    yet, and per-payload attribution keeps :class:`WorkerLostError`
    exact); each map feeds an EWMA of per-payload wall time, and once a
    payload is cheap enough that queue round-trips matter, later maps
    group payloads into contiguous chunks targeting
    :data:`TARGET_CHUNK_SECONDS` of work per message.  An explicit
    ``chunk_size`` pins the granularity instead.  Chunking never reorders
    or alters results -- flattened chunk results are byte-identical to
    per-payload dispatch.
    """

    def __init__(self, workers: int, chunk_size: Optional[int] = None) -> None:
        if workers < 2:
            raise ValueError("ProcessExecutor needs at least 2 workers")
        self.workers = workers
        #: Explicit dispatch granularity; ``None`` selects the adaptive
        #: heuristic (see class docstring).
        self.chunk_size = chunk_size
        #: EWMA of seconds of worker compute per payload (None = no data).
        self._per_payload_est: Optional[float] = None
        self._pool: Optional[WorkerCrew] = None

    def _ensure_pool(self) -> WorkerCrew:
        if self._pool is None:
            self._pool = WorkerCrew(self.workers)
        return self._pool

    def _pick_chunk(self, count: int) -> int:
        """Chunk size for a *count*-payload map (1 = per-payload)."""
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        estimate = self._per_payload_est
        if estimate is None:
            return 1  # first map: measure before grouping
        if estimate <= 0:
            chunk = MAX_CHUNK
        else:
            chunk = int(TARGET_CHUNK_SECONDS / estimate)
        if chunk > MAX_CHUNK:
            chunk = MAX_CHUNK
        # Never produce fewer chunks than workers: idle workers cost more
        # than the round-trips chunking saves.
        fair_share = count // self.workers
        if chunk > fair_share:
            chunk = fair_share
        return chunk if chunk > 1 else 1

    def _note_wall(self, wall: float, count: int) -> None:
        # Wall time is parallel time; scale by the workers that could
        # have been busy to approximate per-payload compute cost.
        per_payload = wall * min(self.workers, count) / count
        previous = self._per_payload_est
        self._per_payload_est = (
            per_payload if previous is None else 0.5 * previous + 0.5 * per_payload
        )

    def map(self, fn: Callable, payloads: Iterable) -> List:
        payloads = list(payloads)
        count = len(payloads)
        if not count:
            return []
        crew = self._ensure_pool()
        chunk = self._pick_chunk(count)
        if telemetry.enabled():
            # Record what the adaptive heuristic chose, then dispatch per
            # payload anyway: worker telemetry batches are keyed by trial,
            # and chunked dispatch would blur per-trial attribution.
            telemetry.observe(
                "pool.chunk.size", chunk, buckets=CHUNK_BUCKETS, det=False
            )
            chunk = 1
        if chunk <= 1 or getattr(fn, "wants_attempt", False):
            # Per-payload dispatch (also for fault-injecting wrappers,
            # whose plans are keyed to individual dispatches).
            started = time.monotonic()
            results = crew.run(fn, payloads)
            self._note_wall(time.monotonic() - started, count)
            return results
        chunks = [payloads[start : start + chunk] for start in range(0, count, chunk)]
        started = time.monotonic()
        try:
            chunk_results = crew.run(_ChunkCall(fn), chunks)
        except WorkerLostError as error:
            # Attribute the loss to the chunk's first payload -- the
            # worker died somewhere in that contiguous slice.
            raise WorkerLostError(error.payload_index * chunk) from None
        self._note_wall(time.monotonic() - started, count)
        results = []
        for chunk_index, value in enumerate(chunk_results):
            if isinstance(value, _ChunkError):
                raise RuntimeError(
                    f"trial payload {chunk_index * chunk + value.offset} "
                    f"failed in worker: {value.message}"
                )
            results.extend(value)
        return results

    def run_resilient(self, fn: Callable, payloads: Sequence, policy, stats):
        return self._ensure_pool().run(fn, payloads, policy=policy, stats=stats)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass


class TrialPool:
    """The public face: pick an executor by worker count.

    ``workers <= 1`` (or unpicklable hosts) selects the serial executor;
    anything above fans out across processes.  Usable as a context
    manager; :meth:`close` is idempotent.

    With a :class:`~repro.faults.resilience.ResiliencePolicy` as
    ``policy``, :meth:`map` runs the resilient path: failed trials retry
    with seeded backoff, payloads that fail every retry land in
    :attr:`quarantine` and come back as
    :class:`~repro.runtime.tasks.TrialFailure` results, and
    :attr:`fault_stats` counts what went wrong.  ``install_faults``
    (testing only) arms the dispatcher with a deterministic
    :class:`~repro.faults.plan.FaultPlan`.

    ``batch_size > 1`` turns on the lockstep batch executor
    (:mod:`repro.runtime.batch`): pack-eligible ``run_trial`` payloads
    are grouped into packs of up to that many lanes and stepped in
    lockstep over one shared leader execution, with divergent lanes
    falling back to the scalar path.  Results stay byte-identical to
    scalar dispatch -- batching, like chunking, is scheduling, not
    semantics.  The resilient path and fault injection keep per-trial
    dispatch (their attribution is per payload), so batching stands
    down whenever either is armed; under telemetry each stand-down
    emits a ``batch.standdown`` event carrying the structured reason
    (``resilience-policy``, ``fault-injection``, ``wrapped-fn`` or
    ``ineligible-trial-kind``).
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        policy=None,
        batch_size: Optional[int] = None,
    ) -> None:
        from repro.faults.resilience import FaultStats

        self.workers = max(1, int(workers))
        if self.workers == 1:
            self.executor = SerialExecutor()
        else:
            self.executor = ProcessExecutor(self.workers, chunk_size=chunk_size)
        #: Trials dispatched through this pool over its lifetime.  Campaign
        #: reports read it to tell freshly executed trials from store hits
        #: (a cache replay never touches the pool).  Retries count: each
        #: re-dispatch is a real execution.
        self.trials_executed = 0
        #: The resilience policy; None = the classic fail-fast path.
        self.policy = policy
        #: Lockstep lanes per pack (None/1 = scalar dispatch).  Read by
        #: the campaign runner for span attribution; the value never
        #: reaches trial results or reports (batching is invisible there).
        self.batch_size = int(batch_size) if batch_size else None
        #: Payloads that failed every retry, in payload order per map call.
        self.quarantine: List = []
        #: Counters over this pool's lifetime (deterministic under a plan).
        self.fault_stats = FaultStats()
        self._fault_plan = None

    def install_faults(self, plan) -> None:
        """Arm the dispatcher with a :class:`~repro.faults.plan.FaultPlan`
        (testing only): every subsequent trial consults the plan first."""
        self._fault_plan = plan

    def map(self, fn: Callable, payloads: Sequence) -> List:
        """Run *fn* over *payloads*; results in payload order.

        Under a policy, entries whose payload exhausted its retries are
        :class:`~repro.runtime.tasks.TrialFailure` values instead of
        results -- callers that cannot digest failures should check
        :attr:`quarantine` afterwards.
        """
        payloads = list(payloads)
        if self._fault_plan is not None:
            from repro.faults.inject import FaultingFn

            fn = FaultingFn(fn, self._fault_plan, os.getpid())
        observing = telemetry.enabled()
        started = time.perf_counter() if observing else None
        if observing:
            telemetry.add("pool.trials.dispatched", len(payloads))
        if self.policy is None:
            if self._batchable(fn):
                from repro.runtime.batch import plan_packs, run_trial_group

                groups = plan_packs(payloads, self.batch_size)
                packed = self.executor.map(run_trial_group, groups)
                results = [result for group in packed for result in group]
            else:
                if observing and self.batch_size and self.batch_size > 1:
                    reason = self._standdown_reason(fn)
                    telemetry.event(
                        "batch.standdown",
                        reason=reason,
                        payloads=len(payloads),
                    )
                    telemetry.add(
                        f"batch.standdown.{reason}", len(payloads)
                    )
                results = self.executor.map(fn, payloads)
            self.trials_executed += len(payloads)
            self._note_metrics(started, len(payloads))
            return results
        if observing and self.batch_size and self.batch_size > 1:
            telemetry.event(
                "batch.standdown",
                reason="resilience-policy",
                payloads=len(payloads),
            )
            telemetry.add(
                "batch.standdown.resilience-policy", len(payloads)
            )
        retries_before = self.fault_stats.retries
        quarantined_before = self.fault_stats.quarantined
        ledger = self.executor.run_resilient(
            fn, payloads, self.policy, self.fault_stats
        )
        results = ledger.finish()
        self.quarantine.extend(ledger.quarantine)
        executed = len(payloads) + (self.fault_stats.retries - retries_before)
        self.trials_executed += executed
        if observing:
            telemetry.add(
                "pool.retries", self.fault_stats.retries - retries_before
            )
            telemetry.add(
                "pool.quarantined",
                self.fault_stats.quarantined - quarantined_before,
            )
        self._note_metrics(started, executed)
        return results

    def _batchable(self, fn: Callable) -> bool:
        """Whether this map may go through the lockstep batch executor.

        Only the stock trial dispatchers qualify (``run_trial``, or the
        kind-specific ``run_channel_trial`` / ``run_kaslr_trial`` that
        ``run_trial`` reduces to): a wrapped callable (fault injector,
        stub trial function) has per-dispatch semantics a pack would
        blur.
        """
        if not self.batch_size or self.batch_size <= 1:
            return False
        from repro.runtime.tasks import (
            run_channel_trial,
            run_kaslr_trial,
            run_trial,
        )

        return fn in (run_trial, run_channel_trial, run_kaslr_trial)

    def _standdown_reason(self, fn: Callable) -> str:
        """Why batching stood down for this map (a ``batch.standdown``
        telemetry attribute; the batch executor itself never sees the
        payloads)."""
        if self._fault_plan is not None:
            return "fault-injection"
        from repro.runtime.tasks import run_detect_trial

        if fn is run_detect_trial:
            return "ineligible-trial-kind"
        return "wrapped-fn"

    def _note_metrics(self, started: Optional[float], executed: int) -> None:
        """Post-map metric updates (no-ops when telemetry is off)."""
        if started is None:
            return
        telemetry.add("pool.trials.executed", executed)
        wall = time.perf_counter() - started
        if wall > 0:
            telemetry.gauge_set(
                "pool.trials_per_second", round(executed / wall, 3), det=False
            )

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "TrialPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        if self.batch_size:
            return (
                f"TrialPool(workers={self.workers}, "
                f"batch_size={self.batch_size})"
            )
        return f"TrialPool(workers={self.workers})"
