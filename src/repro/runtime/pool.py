"""The trial pool: fan independent gadget trials across worker processes.

Every Whisper attack is a statistical sampling campaign -- thousands of
independent gadget trials whose results are aggregated by a decoder or a
classifier.  :class:`TrialPool` runs those trials either in-process
(:class:`SerialExecutor`) or across ``multiprocessing`` workers
(:class:`ProcessExecutor`), behind one interface:

* trial functions are module-level callables taking one picklable
  payload (see :mod:`repro.runtime.tasks`);
* results come back in payload order, regardless of scheduling;
* each worker builds its machines from :class:`~repro.runtime.MachineSpec`
  recipes, caches them, and calls :meth:`Machine.reset_uarch` at the top
  of every trial -- so a trial's outcome depends only on its payload,
  never on which worker ran it or what ran there before.

That last property is the determinism contract: ``TrialPool(workers=1)``
and ``TrialPool(workers=8)`` produce bit-identical results.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence

__all__ = ["TrialPool", "SerialExecutor", "ProcessExecutor", "default_workers"]


def default_workers() -> int:
    """A sensible worker count for this host (``os.cpu_count``)."""
    return os.cpu_count() or 1


class SerialExecutor:
    """Runs trials in the calling process.  The reference executor: the
    parallel path must match its output bit for bit."""

    workers = 1

    def map(self, fn: Callable, payloads: Iterable) -> List:
        return [fn(payload) for payload in payloads]

    def close(self) -> None:
        pass


class ProcessExecutor:
    """Runs trials across a persistent ``multiprocessing.Pool``.

    The pool is created lazily on first :meth:`map` and reused across
    calls, so a multi-byte transmission pays the worker start-up cost
    once.  ``fork`` is preferred (workers inherit loaded modules and any
    already-built machine contexts); where it is unavailable the default
    start method is used and workers rebuild their contexts on demand.
    """

    def __init__(self, workers: int, chunk_size: Optional[int] = None) -> None:
        if workers < 2:
            raise ValueError("ProcessExecutor needs at least 2 workers")
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def map(self, fn: Callable, payloads: Iterable) -> List:
        payloads = list(payloads)
        if not payloads:
            return []
        chunk = self.chunk_size
        if chunk is None:
            # Large enough to amortise IPC, small enough to load-balance.
            chunk = max(1, len(payloads) // (self.workers * 4) or 1)
        return self._ensure_pool().map(fn, payloads, chunksize=chunk)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass


class TrialPool:
    """The public face: pick an executor by worker count.

    ``workers <= 1`` (or unpicklable hosts) selects the serial executor;
    anything above fans out across processes.  Usable as a context
    manager; :meth:`close` is idempotent.
    """

    def __init__(self, workers: int = 1, chunk_size: Optional[int] = None) -> None:
        self.workers = max(1, int(workers))
        if self.workers == 1:
            self.executor = SerialExecutor()
        else:
            self.executor = ProcessExecutor(self.workers, chunk_size=chunk_size)
        #: Trials dispatched through this pool over its lifetime.  Campaign
        #: reports read it to tell freshly executed trials from store hits
        #: (a cache replay never touches the pool).
        self.trials_executed = 0

    def map(self, fn: Callable, payloads: Sequence) -> List:
        """Run *fn* over *payloads*; results in payload order."""
        payloads = list(payloads)
        results = self.executor.map(fn, payloads)
        self.trials_executed += len(payloads)
        return results

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "TrialPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"TrialPool(workers={self.workers})"
