"""repro.runtime -- the parallel trial-execution engine.

Whisper's attacks are statistical sampling campaigns: thousands of
independent gadget trials whose ToTE measurements are decoded in
aggregate.  This package turns that shape into throughput:

* :class:`MachineSpec` -- a frozen, picklable machine recipe with
  deterministic per-trial seed derivation (:func:`derive_seed`);
* :class:`TrialPool` -- fans trials across worker processes (serial
  fallback included) with bit-identical results at any worker count,
  plus the resilience surface (retries, timeouts, dead-worker respawn,
  quarantine) driven by :mod:`repro.faults`;
* :mod:`repro.runtime.tasks` -- the worker-side trial functions for the
  TET-CC byte scan and the TET-KASLR probe sweep;
* :mod:`repro.runtime.batch` -- the lockstep batch executor
  (:class:`LockstepBatch`): N pack-eligible trials stepped over one
  shared leader execution, divergent lanes evicted to the scalar path,
  results byte-identical to scalar dispatch (``TrialPool(batch_size=N)``
  turns it on).

See ``docs/RUNTIME.md`` for the architecture and a worked example, and
``docs/FAULTS.md`` for the failure model.
"""

from repro.runtime.batch import (
    BatchStats,
    LockstepBatch,
    plan_packs,
    run_channel_pack,
    run_trial_group,
    run_trials_batched,
)
from repro.runtime.pool import (
    ProcessExecutor,
    SerialExecutor,
    TrialPool,
    TrialTimeout,
    WorkerCrew,
    WorkerLostError,
    default_workers,
)
from repro.runtime.spec import MachineSpec, derive_seed, derive_stream
from repro.runtime.tasks import (
    ChannelTrial,
    DetectTrial,
    KaslrTrial,
    TrialFailure,
    TrialResult,
    run_channel_trial,
    run_detect_trial,
    run_kaslr_trial,
    run_trial,
)

__all__ = [
    "BatchStats",
    "ChannelTrial",
    "DetectTrial",
    "KaslrTrial",
    "LockstepBatch",
    "MachineSpec",
    "ProcessExecutor",
    "SerialExecutor",
    "TrialPool",
    "TrialFailure",
    "TrialResult",
    "TrialTimeout",
    "WorkerCrew",
    "WorkerLostError",
    "default_workers",
    "derive_seed",
    "derive_stream",
    "plan_packs",
    "run_channel_pack",
    "run_channel_trial",
    "run_detect_trial",
    "run_kaslr_trial",
    "run_trial",
    "run_trial_group",
    "run_trials_batched",
]
