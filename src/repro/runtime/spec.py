"""Picklable machine recipes and deterministic trial-seed derivation.

A :class:`MachineSpec` is everything needed to rebuild a
:class:`~repro.sim.machine.Machine` inside a worker process: the CPU
model by name plus the boot flags.  Specs are frozen, hashable and
picklable, so they can key per-worker machine caches and travel inside
trial payloads.

Per-trial seeds are derived with a splitmix64-style mixer so that trial
*i* of a campaign sees the same noise stream no matter which worker runs
it, in what order, or how the campaign is chunked -- the property that
makes ``TrialPool(workers=1)`` and ``TrialPool(workers=8)`` produce
bit-identical ToTE distributions.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def derive_seed(root: Optional[int], index: int) -> int:
    """Deterministically derive the seed for trial *index* of campaign *root*.

    splitmix64: sequential indices land in well-separated states, and the
    derivation depends only on ``(root, index)`` -- never on scheduling.
    """
    z = (((root or 0) & _MASK64) + (index + 1) * _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_stream(root: Optional[int], index: int, stream: str) -> int:
    """:func:`derive_seed` with domain separation.

    Different consumers of the same root seed (trial noise, fault
    decisions, backoff jitter) must not read the same splitmix64 states,
    or injecting a fault would perturb the trial it was injected into.
    The *stream* tag is folded into the root, giving each consumer its
    own well-separated sequence while staying a pure function of
    ``(root, index, stream)``.
    """
    tag = int.from_bytes(hashlib.sha256(stream.encode()).digest()[:8], "big")
    return derive_seed(((root or 0) ^ tag) & _MASK64, index)


@dataclass(frozen=True)
class MachineSpec:
    """A frozen, picklable recipe for one simulated machine."""

    model: str = "i7-7700"
    kaslr: bool = True
    kpti: bool = False
    flare: bool = False
    fgkaslr: bool = False
    seed: Optional[int] = None
    flare_coverage: str = "probe-offsets"
    secret: Optional[bytes] = None
    container: bool = False
    noise_amplitude: int = 0

    def build(self):
        """Construct the machine this spec describes."""
        from repro.sim.machine import Machine

        return Machine(**dataclasses.asdict(self))

    @classmethod
    def of(cls, machine) -> "MachineSpec":
        """Recover the spec a live machine was built from."""
        return cls(**machine.init_args)

    def trial_seed(self, index: int) -> int:
        """The derived seed for trial *index* under this spec."""
        return derive_seed(self.seed, index)

    def replace(self, **changes) -> "MachineSpec":
        """A copy of this spec with *changes* applied."""
        return dataclasses.replace(self, **changes)
