"""Worker-side trial functions: one gadget campaign step per call.

These are the module-level callables a :class:`~repro.runtime.TrialPool`
dispatches.  Each takes one frozen, picklable payload, looks up (or
builds) a per-process machine context keyed by the payload's
:class:`~repro.runtime.MachineSpec`, resets the machine's
microarchitecture, and runs its trial from that clean slate.

The reset-at-trial-start discipline is what makes results independent of
scheduling: a trial sees a just-booted timing profile whether it is the
first ever run on a freshly forked worker or the ten-thousandth on a
long-lived one, and its ambient-noise stream is derived from
``(spec.seed, trial_index)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.runtime.spec import MachineSpec, derive_stream

#: The paper's faulting address for window-opening loads.
NULL_POINTER = 0x0


@dataclass(frozen=True)
class TrialResult:
    """What one trial hands back to the coordinator."""

    totes: Tuple[int, ...]
    #: Simulated cycles this trial consumed (from a zeroed counter).
    cycles: int


@dataclass(frozen=True)
class TrialFailure:
    """The structured record of a trial that failed every retry.

    Failures are values, exactly like results: frozen, picklable, and
    content-addressable, so a campaign can checkpoint them into the
    result store and a resumed run replays the failure instead of
    retrying the poisoned trial.  Every field must be deterministic for
    a deterministic fault source -- the failures section of a campaign
    report is under the same byte-identity contract as its successes.
    """

    #: How many attempts were made (initial try + retries).
    attempts: int
    #: The fault category observed on each failed attempt, in order
    #: (``raise`` / ``hang`` / ``timeout`` / ``garbage`` / ``worker-lost``).
    faults: Tuple[str, ...]
    #: The last attempt's failure description.
    error: str


# -- TET-CC byte-scan trials ---------------------------------------------------


@dataclass(frozen=True)
class ChannelTrial:
    """Probe one test value of a TET-CC byte scan, *batches* times."""

    spec: MachineSpec
    byte: int
    test: int
    batches: int
    trial_index: int
    warmup: int = 2
    suppression: Optional[str] = None  # "tsx" | "signal" | None (model default)


_channel_contexts: Dict[Tuple[MachineSpec, Optional[str]], tuple] = {}


def _channel_context(spec: MachineSpec, suppression: Optional[str]):
    key = (spec, suppression)
    context = _channel_contexts.get(key)
    if context is None:
        from repro.whisper.gadgets import GadgetBuilder, Suppression

        machine = spec.build()
        builder = GadgetBuilder(
            machine,
            suppression=Suppression(suppression) if suppression else None,
        )
        program = builder.figure1()
        sender_page = machine.alloc_data()
        context = (machine, program, sender_page)
        _channel_contexts[key] = context
    return context


def run_channel_trial(trial: ChannelTrial) -> TrialResult:
    """One TET-CC trial: warm the gadget, then time *batches* probes.

    The warm-up runs use the can-never-match test value 256, training the
    gadget's Jcc exactly as the serial scan's non-matching neighbours do,
    so a matching probe mispredicts and lengthens the window.
    """
    machine, program, sender_page = _channel_context(trial.spec, trial.suppression)
    machine.reset_uarch(noise_seed=trial.spec.trial_seed(trial.trial_index))
    machine.write_data(sender_page, bytes([trial.byte & 0xFF]) + b"\x00" * 7)
    warm_regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": 256}
    probe_regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": trial.test}
    # One batched run: ``warmup`` training runs then the timed probe, per
    # batch, all through a single run_many call (one signal-handler
    # install, one continuing cycle timeline -- byte-identical to the old
    # run_many/run loop, minus the per-call setup).
    reg_sets = ([warm_regs] * trial.warmup + [probe_regs]) * trial.batches
    results = machine.run_many(program, reg_sets)
    stride = trial.warmup + 1
    totes = tuple(
        result.regs.read("r15") - result.regs.read("r14")
        for result in results[trial.warmup::stride]
    )
    return TrialResult(totes=totes, cycles=machine.core.global_cycle)


# -- TET-KASLR probe trials ----------------------------------------------------


@dataclass(frozen=True)
class KaslrTrial:
    """Double-probe one candidate kernel address."""

    spec: MachineSpec
    va: int
    cr3_switch: bool
    trial_index: int
    eviction: str = "direct"
    warm_probes: int = 1
    suppression: Optional[str] = None


_kaslr_contexts: Dict[Tuple[MachineSpec, str, Optional[str]], object] = {}


def _kaslr_context(spec: MachineSpec, eviction: str, suppression: Optional[str]):
    key = (spec, eviction, suppression)
    attack = _kaslr_contexts.get(key)
    if attack is None:
        from repro.whisper.attacks.kaslr import TetKaslr
        from repro.whisper.gadgets import Suppression

        attack = TetKaslr(
            spec.build(),
            suppression=Suppression(suppression) if suppression else None,
            eviction=eviction,
        )
        _kaslr_contexts[key] = attack
    return attack


def run_kaslr_trial(trial: KaslrTrial) -> TrialResult:
    """One TET-KASLR trial: warm probes on a known-unmapped reference,
    then the timed double-probe of the candidate."""
    from repro.kernel.layout import KERNEL_TEXT_RANGE_START

    attack = _kaslr_context(trial.spec, trial.eviction, trial.suppression)
    machine = attack.machine
    machine.reset_uarch(noise_seed=trial.spec.trial_seed(trial.trial_index))
    reference = KERNEL_TEXT_RANGE_START - 0x200000
    for _ in range(trial.warm_probes):
        attack.probe_tote(reference, cr3_switch=trial.cr3_switch)
    tote = attack.probe_tote(trial.va, cr3_switch=trial.cr3_switch)
    return TrialResult(totes=(tote,), cycles=machine.core.global_cycle)


# -- detector observation-window trials ----------------------------------------


@dataclass(frozen=True)
class DetectTrial:
    """Run one detection scenario window and record its feature vector.

    The result's ``totes`` tuple is the packed
    :class:`~repro.defend.features.FeatureVector` (counter deltas in
    ``FEATURE_FIELDS`` order), so detector campaigns reuse the ordinary
    result store, shard/merge contract, and resume path unchanged.
    """

    spec: MachineSpec
    scenario: str
    trial_index: int


_detect_contexts: Dict[Tuple[MachineSpec, str], tuple] = {}


def _detect_context(spec: MachineSpec, scenario: str):
    key = (spec, scenario)
    context = _detect_contexts.get(key)
    if context is None:
        from repro.defend.scenarios import get_scenario

        machine = spec.build()
        runner = get_scenario(scenario).bind(machine)
        context = (machine, runner)
        _detect_contexts[key] = context
    return context


def run_detect_trial(trial: DetectTrial) -> TrialResult:
    """One detect trial: reset, run the scenario window, read the counters.

    The scenario's behaviour stream is domain-separated from the ambient
    noise stream (``defend.<scenario>`` tag), so the same trial index in
    an attack cell and a benign cell draws unrelated randomness.
    """
    from repro.defend.features import FeatureVector

    machine, runner = _detect_context(trial.spec, trial.scenario)
    machine.reset_uarch(noise_seed=trial.spec.trial_seed(trial.trial_index))
    rng = random.Random(
        derive_stream(trial.spec.seed, trial.trial_index, f"defend.{trial.scenario}")
    )
    runner(rng)
    features = FeatureVector.from_machine(machine)
    return TrialResult(totes=features.to_ints(), cycles=machine.core.global_cycle)


def _trial_machine(trial):
    """The cached machine a just-run trial used, or None.

    Telemetry reads the machine's core counters *after* the trial; the
    context caches above are keyed exactly the way the trial functions
    key them, so this lookup always hits for a trial that just ran.
    """
    if isinstance(trial, ChannelTrial):
        context = _channel_contexts.get((trial.spec, trial.suppression))
        return context[0] if context else None
    if isinstance(trial, KaslrTrial):
        attack = _kaslr_contexts.get(
            (trial.spec, trial.eviction, trial.suppression)
        )
        return attack.machine if attack else None
    if isinstance(trial, DetectTrial):
        context = _detect_contexts.get((trial.spec, trial.scenario))
        return context[0] if context else None
    return None


def _run_trial_observed(trial, runner) -> TrialResult:
    """The telemetry-wrapped trial path (only entered when enabled).

    Span attributes are keyed by (trial seed, payload identity, simulated
    cycles) only -- nothing host- or worker-dependent -- so merged pooled
    traces are identical at any worker count.  Decode-plan cache stats are
    process-cumulative and therefore shipped as host-dependent counters,
    never as span attributes.
    """
    from repro.uarch.plan import PLAN_STATS

    builds_before = PLAN_STATS["builds"]
    hits_before = PLAN_STATS["hits"]
    with telemetry.span(
        "trial",
        kind=type(trial).__name__,
        index=trial.trial_index,
        seed=trial.spec.trial_seed(trial.trial_index),
    ) as span:
        with telemetry.span("core.run") as core_span:
            result = runner(trial)
            machine = _trial_machine(trial)
            if machine is not None:
                counters = machine.core.telemetry_counters()
                core_span.set(**counters)
                telemetry.add("core.cycles", counters["cycles"])
                telemetry.add("core.uops_issued", counters["uops_issued"])
                telemetry.add("core.uops_retired", counters["uops_retired"])
                telemetry.add("core.machine_clears", counters["machine_clears"])
                telemetry.add(
                    "core.recovery_cycles", counters["recovery_cycles"]
                )
                telemetry.add("core.llc_misses", counters["llc_misses"])
                telemetry.add("core.l1_misses", counters["l1_misses"])
                telemetry.add("core.clflushes", counters["clflushes"])
        span.set(cycles=result.cycles)
    telemetry.add(
        "core.decode_plan.builds",
        PLAN_STATS["builds"] - builds_before,
        det=False,
    )
    telemetry.add(
        "core.decode_plan.hits", PLAN_STATS["hits"] - hits_before, det=False
    )
    return result


def run_trial(trial) -> TrialResult:
    """Dispatch any known trial payload to its trial function.

    Campaign batches mix trial kinds (an environment-matrix sweep carries
    channel scans and KASLR sweeps in one task list), so the pool needs a
    single module-level callable that routes on payload type.  With
    telemetry enabled the trial runs inside ``trial``/``core.run`` spans;
    disabled (the default), the only overhead is one module-attribute
    check.
    """
    if isinstance(trial, ChannelTrial):
        runner = run_channel_trial
    elif isinstance(trial, KaslrTrial):
        runner = run_kaslr_trial
    elif isinstance(trial, DetectTrial):
        runner = run_detect_trial
    else:
        raise TypeError(f"unknown trial payload type: {type(trial).__name__}")
    if not telemetry.enabled():
        return runner(trial)
    return _run_trial_observed(trial, runner)


def clear_worker_contexts() -> None:
    """Drop all cached machines (tests that need cold workers)."""
    from repro.runtime.batch import clear_leader_trace_cache

    _channel_contexts.clear()
    _kaslr_contexts.clear()
    _detect_contexts.clear()
    # Cached leader traces reference machines from the dropped contexts;
    # a cold worker should not replay a warm worker's leader.
    clear_leader_trace_cache()
