"""Worker-side trial functions: one gadget campaign step per call.

These are the module-level callables a :class:`~repro.runtime.TrialPool`
dispatches.  Each takes one frozen, picklable payload, looks up (or
builds) a per-process machine context keyed by the payload's
:class:`~repro.runtime.MachineSpec`, resets the machine's
microarchitecture, and runs its trial from that clean slate.

The reset-at-trial-start discipline is what makes results independent of
scheduling: a trial sees a just-booted timing profile whether it is the
first ever run on a freshly forked worker or the ten-thousandth on a
long-lived one, and its ambient-noise stream is derived from
``(spec.seed, trial_index)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.spec import MachineSpec

#: The paper's faulting address for window-opening loads.
NULL_POINTER = 0x0


@dataclass(frozen=True)
class TrialResult:
    """What one trial hands back to the coordinator."""

    totes: Tuple[int, ...]
    #: Simulated cycles this trial consumed (from a zeroed counter).
    cycles: int


@dataclass(frozen=True)
class TrialFailure:
    """The structured record of a trial that failed every retry.

    Failures are values, exactly like results: frozen, picklable, and
    content-addressable, so a campaign can checkpoint them into the
    result store and a resumed run replays the failure instead of
    retrying the poisoned trial.  Every field must be deterministic for
    a deterministic fault source -- the failures section of a campaign
    report is under the same byte-identity contract as its successes.
    """

    #: How many attempts were made (initial try + retries).
    attempts: int
    #: The fault category observed on each failed attempt, in order
    #: (``raise`` / ``hang`` / ``timeout`` / ``garbage`` / ``worker-lost``).
    faults: Tuple[str, ...]
    #: The last attempt's failure description.
    error: str


# -- TET-CC byte-scan trials ---------------------------------------------------


@dataclass(frozen=True)
class ChannelTrial:
    """Probe one test value of a TET-CC byte scan, *batches* times."""

    spec: MachineSpec
    byte: int
    test: int
    batches: int
    trial_index: int
    warmup: int = 2
    suppression: Optional[str] = None  # "tsx" | "signal" | None (model default)


_channel_contexts: Dict[Tuple[MachineSpec, Optional[str]], tuple] = {}


def _channel_context(spec: MachineSpec, suppression: Optional[str]):
    key = (spec, suppression)
    context = _channel_contexts.get(key)
    if context is None:
        from repro.whisper.gadgets import GadgetBuilder, Suppression

        machine = spec.build()
        builder = GadgetBuilder(
            machine,
            suppression=Suppression(suppression) if suppression else None,
        )
        program = builder.figure1()
        sender_page = machine.alloc_data()
        context = (machine, program, sender_page)
        _channel_contexts[key] = context
    return context


def run_channel_trial(trial: ChannelTrial) -> TrialResult:
    """One TET-CC trial: warm the gadget, then time *batches* probes.

    The warm-up runs use the can-never-match test value 256, training the
    gadget's Jcc exactly as the serial scan's non-matching neighbours do,
    so a matching probe mispredicts and lengthens the window.
    """
    machine, program, sender_page = _channel_context(trial.spec, trial.suppression)
    machine.reset_uarch(noise_seed=trial.spec.trial_seed(trial.trial_index))
    machine.write_data(sender_page, bytes([trial.byte & 0xFF]) + b"\x00" * 7)
    warm_regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": 256}
    probe_regs = {"r12": sender_page, "r13": NULL_POINTER, "r9": trial.test}
    # One batched run: ``warmup`` training runs then the timed probe, per
    # batch, all through a single run_many call (one signal-handler
    # install, one continuing cycle timeline -- byte-identical to the old
    # run_many/run loop, minus the per-call setup).
    reg_sets = ([warm_regs] * trial.warmup + [probe_regs]) * trial.batches
    results = machine.run_many(program, reg_sets)
    stride = trial.warmup + 1
    totes = tuple(
        result.regs.read("r15") - result.regs.read("r14")
        for result in results[trial.warmup::stride]
    )
    return TrialResult(totes=totes, cycles=machine.core.global_cycle)


# -- TET-KASLR probe trials ----------------------------------------------------


@dataclass(frozen=True)
class KaslrTrial:
    """Double-probe one candidate kernel address."""

    spec: MachineSpec
    va: int
    cr3_switch: bool
    trial_index: int
    eviction: str = "direct"
    warm_probes: int = 1
    suppression: Optional[str] = None


_kaslr_contexts: Dict[Tuple[MachineSpec, str, Optional[str]], object] = {}


def _kaslr_context(spec: MachineSpec, eviction: str, suppression: Optional[str]):
    key = (spec, eviction, suppression)
    attack = _kaslr_contexts.get(key)
    if attack is None:
        from repro.whisper.attacks.kaslr import TetKaslr
        from repro.whisper.gadgets import Suppression

        attack = TetKaslr(
            spec.build(),
            suppression=Suppression(suppression) if suppression else None,
            eviction=eviction,
        )
        _kaslr_contexts[key] = attack
    return attack


def run_kaslr_trial(trial: KaslrTrial) -> TrialResult:
    """One TET-KASLR trial: warm probes on a known-unmapped reference,
    then the timed double-probe of the candidate."""
    from repro.kernel.layout import KERNEL_TEXT_RANGE_START

    attack = _kaslr_context(trial.spec, trial.eviction, trial.suppression)
    machine = attack.machine
    machine.reset_uarch(noise_seed=trial.spec.trial_seed(trial.trial_index))
    reference = KERNEL_TEXT_RANGE_START - 0x200000
    for _ in range(trial.warm_probes):
        attack.probe_tote(reference, cr3_switch=trial.cr3_switch)
    tote = attack.probe_tote(trial.va, cr3_switch=trial.cr3_switch)
    return TrialResult(totes=(tote,), cycles=machine.core.global_cycle)


def run_trial(trial) -> TrialResult:
    """Dispatch any known trial payload to its trial function.

    Campaign batches mix trial kinds (an environment-matrix sweep carries
    channel scans and KASLR sweeps in one task list), so the pool needs a
    single module-level callable that routes on payload type.
    """
    if isinstance(trial, ChannelTrial):
        return run_channel_trial(trial)
    if isinstance(trial, KaslrTrial):
        return run_kaslr_trial(trial)
    raise TypeError(f"unknown trial payload type: {type(trial).__name__}")


def clear_worker_contexts() -> None:
    """Drop all cached machines (tests that need cold workers)."""
    _channel_contexts.clear()
    _kaslr_contexts.clear()
