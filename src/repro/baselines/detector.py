"""A cache-behaviour attack detector -- the defense TET walks past.

The threat model (§4.2) assumes the victim machine deploys
"state-of-art attack detection based on cache behavior": HPC-based
classifiers in the literature key on Flush+Reload's signature -- a high
``clflush`` rate paired with a high long-latency-miss rate on reloads.
This detector implements that rule against the simulator's real counters.

The rule's arithmetic lives in :mod:`repro.defend.features`: the monitor
packs its counter deltas into the same :class:`FeatureVector` the
streaming detector consumes, and every rate is the shared
events-per-kilo-uop implementation -- one definition of "flush rate"
across the batch rule, the calibrated thresholds, and the learned model.

The point of the experiment (bench E11): the classic Flush+Reload
Meltdown trips the detector on every leaked byte; the TET attacks --
which never touch a probe array and flush nothing -- stay under both
thresholds even though they fault just as often.  Stateful channels are
detectable, Whisper is not ("the cache-based mitigation cannot address
the TET side channel", §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.defend.features import FeatureVector


@dataclass
class DetectionReport:
    """What the monitor saw over one attack window."""

    flagged: bool
    clflush_per_kilo_uop: float
    llc_miss_per_kilo_uop: float
    machine_clears_per_kilo_uop: float
    uops: int
    features: Dict[str, float]
    #: The full per-window counter vector (the streaming detector's
    #: input), for consumers that want more than the rule's three rates.
    vector: Optional[FeatureVector] = None

    def __str__(self) -> str:
        verdict = "ATTACK DETECTED" if self.flagged else "nothing suspicious"
        return (
            f"{verdict}: clflush/kuop={self.clflush_per_kilo_uop:.2f}, "
            f"LLC-miss/kuop={self.llc_miss_per_kilo_uop:.2f}, "
            f"clears/kuop={self.machine_clears_per_kilo_uop:.2f}"
        )


class CacheAttackDetector:
    """Flags cache side-channel activity from hardware counters.

    The decision rule mirrors the published HPC detectors: *both* an
    anomalous flush rate and an anomalous long-latency miss rate must be
    present (faults/clears alone are normal application behaviour --
    garbage collectors and JITs trip them constantly, so a detector that
    alarmed on clears would be useless).
    """

    def __init__(
        self,
        clflush_threshold: float = 1.0,
        llc_miss_threshold: float = 5.0,
    ) -> None:
        self.clflush_threshold = clflush_threshold
        self.llc_miss_threshold = llc_miss_threshold

    def monitor(self, machine, attack: Callable[[], object]) -> DetectionReport:
        """Run *attack* under observation; return the verdict."""
        pmu = machine.pmu
        baseline = pmu.snapshot()
        clflush_before = machine.hierarchy.clflush_count
        cycle_before = machine.core.global_cycle
        attack()
        delta = pmu.delta(baseline)
        clflushes = machine.hierarchy.clflush_count - clflush_before
        uops = max(1, delta["UOPS_ISSUED.ANY"])
        vector = FeatureVector(
            cycles=machine.core.global_cycle - cycle_before,
            uops_issued=uops,
            uops_retired=delta["UOPS_RETIRED.RETIRE_SLOTS"],
            machine_clears=delta["MACHINE_CLEARS.COUNT"],
            recovery_cycles=delta["INT_MISC.RECOVERY_CYCLES"],
            resteer_cycles=delta["INT_MISC.CLEAR_RESTEER_CYCLES"],
            dtlb_walks=delta["DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK"],
            llc_misses=delta["LONGEST_LAT_CACHE.MISS"],
            l1_misses=delta["MEM_LOAD_RETIRED.L1_MISS"],
            clflushes=clflushes,
        )
        flagged = (
            vector.clflush_per_kilo_uop > self.clflush_threshold
            and vector.llc_miss_per_kilo_uop > self.llc_miss_threshold
        )
        return DetectionReport(
            flagged=flagged,
            clflush_per_kilo_uop=vector.clflush_per_kilo_uop,
            llc_miss_per_kilo_uop=vector.llc_miss_per_kilo_uop,
            machine_clears_per_kilo_uop=vector.machine_clears_per_kilo_uop,
            uops=uops,
            features={
                "clflush": clflushes,
                "llc_miss": vector.llc_misses,
                "machine_clears": vector.machine_clears,
                "l1_miss": vector.l1_misses,
                "uops": uops,
            },
            vector=vector,
        )
