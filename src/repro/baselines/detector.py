"""A cache-behaviour attack detector -- the defense TET walks past.

The threat model (§4.2) assumes the victim machine deploys
"state-of-art attack detection based on cache behavior": HPC-based
classifiers in the literature key on Flush+Reload's signature -- a high
``clflush`` rate paired with a high long-latency-miss rate on reloads.
This detector implements that rule against the simulator's real counters.

The point of the experiment (bench E11): the classic Flush+Reload
Meltdown trips the detector on every leaked byte; the TET attacks --
which never touch a probe array and flush nothing -- stay under both
thresholds even though they fault just as often.  Stateful channels are
detectable, Whisper is not ("the cache-based mitigation cannot address
the TET side channel", §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict


@dataclass
class DetectionReport:
    """What the monitor saw over one attack window."""

    flagged: bool
    clflush_per_kilo_uop: float
    llc_miss_per_kilo_uop: float
    machine_clears_per_kilo_uop: float
    uops: int
    features: Dict[str, float]

    def __str__(self) -> str:
        verdict = "ATTACK DETECTED" if self.flagged else "nothing suspicious"
        return (
            f"{verdict}: clflush/kuop={self.clflush_per_kilo_uop:.2f}, "
            f"LLC-miss/kuop={self.llc_miss_per_kilo_uop:.2f}, "
            f"clears/kuop={self.machine_clears_per_kilo_uop:.2f}"
        )


class CacheAttackDetector:
    """Flags cache side-channel activity from hardware counters.

    The decision rule mirrors the published HPC detectors: *both* an
    anomalous flush rate and an anomalous long-latency miss rate must be
    present (faults/clears alone are normal application behaviour --
    garbage collectors and JITs trip them constantly, so a detector that
    alarmed on clears would be useless).
    """

    def __init__(
        self,
        clflush_threshold: float = 1.0,
        llc_miss_threshold: float = 5.0,
    ) -> None:
        self.clflush_threshold = clflush_threshold
        self.llc_miss_threshold = llc_miss_threshold

    def monitor(self, machine, attack: Callable[[], object]) -> DetectionReport:
        """Run *attack* under observation; return the verdict."""
        pmu = machine.pmu
        baseline = pmu.snapshot()
        clflush_before = machine.hierarchy.clflush_count
        attack()
        delta = pmu.delta(baseline)
        clflushes = machine.hierarchy.clflush_count - clflush_before
        uops = max(1, delta["UOPS_ISSUED.ANY"])
        kilo = uops / 1000.0
        clflush_rate = clflushes / kilo
        llc_rate = delta["LONGEST_LAT_CACHE.MISS"] / kilo
        clears_rate = delta["MACHINE_CLEARS.COUNT"] / kilo
        flagged = (
            clflush_rate > self.clflush_threshold and llc_rate > self.llc_miss_threshold
        )
        return DetectionReport(
            flagged=flagged,
            clflush_per_kilo_uop=clflush_rate,
            llc_miss_per_kilo_uop=llc_rate,
            machine_clears_per_kilo_uop=clears_rate,
            uops=uops,
            features={
                "clflush": clflushes,
                "llc_miss": delta["LONGEST_LAT_CACHE.MISS"],
                "machine_clears": delta["MACHINE_CLEARS.COUNT"],
                "l1_miss": delta["MEM_LOAD_RETIRED.L1_MISS"],
                "uops": uops,
            },
        )
