"""Flush+Reload and the original cache-channel Meltdown.

This is the covert channel the paper's attacks replace: a 256-page probe
array, a transient access ``probe[secret << 12]``, and a timed reload of
every page.  It is fast and reliable -- and loud: hundreds of ``clflush``
operations and LLC misses per leaked byte, the signature the
cache-behaviour detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.whisper.analysis import error_rate
from repro.whisper.gadgets import RESUME_LABEL, Suppression

PAGE_SHIFT = 12


@dataclass
class FlushReloadStats:
    """Reload timings and the decoded value for one byte."""

    value: int
    reload_cycles: List[int]
    threshold: int


class FlushReloadChannel:
    """The classic three-step channel: flush, transient access, reload."""

    def __init__(self, machine, suppression: Optional[Suppression] = None) -> None:
        self.machine = machine
        if suppression is None:
            suppression = (
                Suppression.TSX if machine.model.has_tsx else Suppression.SIGNAL
            )
        self.suppression = suppression
        self.probe_base = machine.alloc_data(pages=256)
        self._build_programs()
        # Reload threshold: anything at L2 latency or better is a hit.
        self.threshold = machine.model.l2.latency + machine.model.l1d.latency + 2

    def _build_programs(self) -> None:
        transient = f"""
    loadb r8, [r13]         ; the (possibly faulting) secret load
    shl r8, {PAGE_SHIFT}
    add r8, r10             ; probe base
    load r9, [r8]           ; encode into the cache
"""
        if self.suppression is Suppression.TSX:
            source = f"""
    xbegin {RESUME_LABEL}
{transient}
    xend
{RESUME_LABEL}:
    hlt
"""
            self.access_program = self.machine.load_program(source)
        else:
            source = f"""
{transient}
{RESUME_LABEL}:
    hlt
"""
            self.access_program = self.machine.load_program(source)
            self.machine.set_signal_handler(self.access_program, RESUME_LABEL)
        self.reload_program = self.machine.load_program("""
    mfence
    rdtsc
    mov r14, rax
    load r8, [r13]
    rdtsc
    mov r15, rax
    hlt
""")

    def flush(self) -> None:
        """Step 1: flush all 256 probe lines (loud, counted)."""
        for value in range(256):
            self.machine.mmu.clflush(self.probe_base + (value << PAGE_SHIFT))
        # Eviction work costs the attacker real time.
        self.machine.core.global_cycle += 256 * 8

    def access(self, secret_va: int) -> None:
        """Step 2: the transient access that encodes the secret."""
        self.machine.run(
            self.access_program, regs={"r13": secret_va, "r10": self.probe_base}
        )

    def reload(self) -> FlushReloadStats:
        """Step 3: time every probe page; the cached one is the byte.

        Self-calibrating decode: after a flush, 255 reloads come from DRAM
        and one (the transiently touched page) from the cache, so the
        minimum timing is the byte if it clearly separates from the
        population median."""
        timings: List[int] = []
        for value in range(256):
            result = self.machine.run(
                self.reload_program,
                regs={"r13": self.probe_base + (value << PAGE_SHIFT)},
            )
            timings.append(result.regs.read("r15") - result.regs.read("r14"))
        fastest = min(range(256), key=timings.__getitem__)
        population = sorted(timings)
        median = population[128]
        separation = median - timings[fastest]
        value = fastest if separation > self.threshold else 0
        return FlushReloadStats(value=value, reload_cycles=timings, threshold=self.threshold)

    def leak_byte(self, secret_va: int) -> FlushReloadStats:
        """One full flush -> access -> reload round."""
        self.flush()
        self.access(secret_va)
        return self.reload()


class ClassicMeltdown:
    """Meltdown with its original Flush+Reload channel (the baseline the
    detector catches and TET-MD replaces)."""

    def __init__(self, machine, suppression: Optional[Suppression] = None) -> None:
        self.machine = machine
        self.channel = FlushReloadChannel(machine, suppression=suppression)

    def leak(self, va: Optional[int] = None, length: Optional[int] = None):
        """Leak kernel bytes; returns (data, expected, error_rate)."""
        kernel = self.machine.kernel
        if va is None:
            va = kernel.secret_va
        if length is None:
            length = len(kernel.secret)
        out = bytearray()
        for index in range(length):
            self.machine.victim_touch(va + index)
            out.append(self.channel.leak_byte(va + index).value)
        expected = kernel.secret[:length]
        return bytes(out), expected, error_rate(expected, bytes(out))
