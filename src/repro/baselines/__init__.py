"""Baselines the paper compares against or assumes.

* :mod:`repro.baselines.flush_reload` -- the classic Flush+Reload covert
  channel and the original (cache-channel) Meltdown built on it.
* :mod:`repro.baselines.fault_timing_kaslr` -- the pre-TET KASLR timing
  attack (Hund et al., 2013): time the whole fault round-trip instead of
  the transient window.
* :mod:`repro.baselines.detector` -- a cache-behaviour attack detector in
  the spirit of the HPC-based detectors the threat model assumes deployed
  (§4.2); it flags Flush+Reload and misses TET, which is the paper's
  stealth claim.
"""

from repro.baselines.detector import CacheAttackDetector, DetectionReport
from repro.baselines.entrybleed import EntryBleedKaslr
from repro.baselines.fault_timing_kaslr import FaultTimingKaslr
from repro.baselines.flush_reload import ClassicMeltdown, FlushReloadChannel

__all__ = [
    "CacheAttackDetector",
    "ClassicMeltdown",
    "DetectionReport",
    "EntryBleedKaslr",
    "FaultTimingKaslr",
    "FlushReloadChannel",
]
