"""The pre-TET KASLR timing baseline (Hund, Willems & Holz, 2013).

Instead of timing the transient window, the classic attack times the
*whole* fault round-trip -- user access, #PF, kernel fault path, signal
delivery, handler -- and distinguishes mapped from unmapped addresses by
the same TLB/walk asymmetry.  It works, but every probe pays the full
signal-dispatch cost, so it is an order of magnitude slower per probe
than TET's suppressed-fault measurement; the benches compare the two.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kernel.layout import KASLR_SLOTS, KERNEL_TEXT_RANGE_START, slot_base
from repro.whisper.analysis import classify_bimodal
from repro.whisper.attacks.kaslr import KaslrBreakResult
from repro.whisper.gadgets import RESUME_LABEL


class FaultTimingKaslr:
    """Full-fault-latency KASLR probing (signal-handler timing)."""

    def __init__(self, machine) -> None:
        self.machine = machine
        # Timestamp, faulting access, handler lands at the final timestamp.
        self.program = machine.load_program(f"""
    mfence
    rdtsc
    mov r14, rax
    load r8, [r13]          ; faulting probe, NOT suppressed by TSX
    nop
{RESUME_LABEL}:
    rdtsc
    mov r15, rax
    hlt
""")
        machine.set_signal_handler(self.program, RESUME_LABEL)

    def probe_latency(self, va: int) -> int:
        """Fault round-trip time for candidate *va* (double probe)."""
        self.machine.flush_tlb()
        self._probe(va)
        result = self._probe(va)
        return result.regs.read("r15") - result.regs.read("r14")

    def _probe(self, va: int):
        return self.machine.run(self.program, regs={"r13": va})

    def break_kaslr(self) -> KaslrBreakResult:
        """Scan the 512 slot bases by fault-path timing."""
        start_cycle = self.machine.core.global_cycle
        for _ in range(3):
            self.probe_latency(KERNEL_TEXT_RANGE_START - 0x200000)
        totes: Dict[int, int] = {}
        for slot in range(KASLR_SLOTS):
            totes[slot] = self.probe_latency(slot_base(slot))
        threshold, is_low = classify_bimodal(totes)
        mapped = sorted(slot for slot, low in is_low.items() if low)
        found: Optional[int] = None
        if 0 < len(mapped) < KASLR_SLOTS:
            found = slot_base(mapped[0])
        cycles = self.machine.core.global_cycle - start_cycle
        return KaslrBreakResult(
            found_base=found,
            true_base=self.machine.kernel.layout.base,
            strategy="fault-timing-baseline",
            probes=2 * KASLR_SLOTS,
            cycles=cycles,
            seconds=self.machine.seconds(cycles),
            threshold=threshold,
            totes_by_slot=totes,
            mapped_slots=mapped,
        )
