"""EntryBleed (Liu, Ravichandran & Yan, 2023) -- the §2.1 related attack.

EntryBleed breaks KASLR *under KPTI* by abusing the exempted pages of
user/kernel isolation: a syscall executes the KPTI trampoline, leaving
its translation hot in the TLB; a user-mode ``prefetch`` of each
candidate trampoline address is then fast exactly at the real one (TLB
hit) and slow everywhere else (page walk).  Whisper's point of contrast
(§2.1): EntryBleed depends on the *specific* ``prefetch`` instruction and
the syscall residue, while TET-KASLR needs only behavioural timing of an
ordinary faulting access.

Implemented here as the natural baseline to compare probe costs and
mitigation surfaces against TET-KASLR.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kernel.layout import (
    KASLR_SLOTS,
    KERNEL_TEXT_RANGE_START,
    KPTI_TRAMPOLINE_OFFSET,
    slot_base,
)
from repro.whisper.analysis import classify_bimodal
from repro.whisper.attacks.kaslr import KaslrBreakResult


class EntryBleedKaslr:
    """Syscall + prefetch-timing KASLR probing."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.program = machine.load_program("""
    mfence
    rdtsc
    mov r14, rax
    prefetch [r13]
    rdtsc
    mov r15, rax
    hlt
""")

    def probe_latency(self, va: int) -> int:
        """Syscall-primed double-prefetch timing of candidate *va*.

        The first prefetch warms the page-table cache lines (its walk is
        discarded); the timed second prefetch then isolates the TLB
        state: a hit at the real trampoline (refilled by the syscall),
        a uniform warm walk everywhere else."""
        self.machine.flush_tlb()
        self.machine.do_syscall()  # leaves the real trampoline hot
        self.machine.run(self.program, regs={"r13": va})
        result = self.machine.run(self.program, regs={"r13": va})
        return result.regs.read("r15") - result.regs.read("r14")

    def break_kaslr(self) -> KaslrBreakResult:
        """Scan the 512 candidate trampoline addresses."""
        start_cycle = self.machine.core.global_cycle
        for _ in range(3):  # warm the gadget code
            self.probe_latency(KERNEL_TEXT_RANGE_START - 0x200000)
        totes: Dict[int, int] = {}
        for slot in range(KASLR_SLOTS):
            totes[slot] = self.probe_latency(slot_base(slot) + KPTI_TRAMPOLINE_OFFSET)
        threshold, is_low = classify_bimodal(totes)
        mapped = sorted(slot for slot, low in is_low.items() if low)
        found: Optional[int] = None
        if 0 < len(mapped) < KASLR_SLOTS:
            found = slot_base(mapped[0])
        cycles = self.machine.core.global_cycle - start_cycle
        return KaslrBreakResult(
            found_base=found,
            true_base=self.machine.kernel.layout.base,
            strategy="entrybleed-baseline",
            probes=KASLR_SLOTS,
            cycles=cycles,
            seconds=self.machine.seconds(cycles),
            threshold=threshold,
            totes_by_slot=totes,
            mapped_slots=mapped,
        )
