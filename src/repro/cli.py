"""Command-line interface: ``python -m repro <command>``.

A downstream user's fastest route to every headline result:

============  ==========================================================
command       what it does
============  ==========================================================
``demo``      the Figure 1 channel: scan, text plot, decoded byte
``send``      transmit a message through TET-CC (``--fast`` = TET-CC-BS)
``leak``      TET-Meltdown against the simulated kernel secret
``kaslr``     break KASLR (``--kpti`` / ``--flare`` / ``--container``)
``matrix``    the Table 2 attack x CPU matrix (short secrets)
``pmu``       the Figure 2 toolset on a chosen scene
``campaign``  declarative cached sweeps: ``run|status|report|clean|list``,
              plus the distributed tier (``repro.distrib``): ``shard``
              runs one deterministic slice into a store segment,
              ``merge`` combines segments by content address, ``fleet``
              coordinates shard workers end to end
``faults``    the fault-injection layer: ``demo`` proves the
              determinism-of-failure contract live
``perf``      the hot-path harness: ``profile`` a campaign cell under
              cProfile, ``bench`` trial throughput against the committed
              baseline (CI's >30%-regression gate)
``obs``       recorded-run observability: ``report|trace|tail`` replay a
              ``campaign run --trace-out`` JSONL, ``overhead`` gates
              telemetry's cost (disabled <2%, enabled <15%)
``defend``    the detection arms race (``repro.defend``): ``calibrate``
              fits the deterministic detector on seeded benign/attack
              traffic, ``score`` inspects one scenario's windows,
              ``stream`` runs a campaign with the live detector
              attached, ``eval`` renders the ROC/AUC +
              detection-latency report from a finished store
============  ==========================================================
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.sim.machine import Machine
from repro.sim.viz import argmax_series, success_matrix, tote_scan_plot
from repro.uarch.config import CPU_MODELS


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cpu", default="i7-7700", choices=sorted(CPU_MODELS), help="CPU model"
    )
    parser.add_argument("--seed", type=int, default=1, help="KASLR/boot seed")


def _workers_parent() -> argparse.ArgumentParser:
    """The shared ``--workers`` parent parser.

    Every trial-running subcommand (``demo``, ``send``, ``kaslr``,
    ``matrix``, ``campaign run``) takes it via ``parents=``, so the flag
    is spelled and documented once.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan trials across N worker processes (0 = classic serial "
        "path; results are identical at any worker count)",
    )
    return parent


def _trial_pool(args):
    """A TrialPool for ``--workers N`` / ``--batch B``, or None for the
    legacy path (no fan-out, no lockstep batching)."""
    batch = getattr(args, "batch", None)
    if getattr(args, "workers", 0) <= 0 and not (batch and batch > 1):
        return None
    from repro.runtime import TrialPool

    return TrialPool(workers=max(1, getattr(args, "workers", 0)), batch_size=batch)


def _machine(args, **kwargs) -> Machine:
    return Machine(args.cpu, seed=args.seed, **kwargs)


def cmd_demo(args) -> int:
    from repro.whisper import TetCovertChannel

    machine = _machine(args)
    secret = args.byte & 0xFF
    print(f"machine: {machine.model.name}; sending byte {secret:#04x}")
    pool = _trial_pool(args)
    try:
        channel = TetCovertChannel(machine, batches=args.batches, pool=pool)
        machine.write_data(channel.sender_page, bytes([secret]))
        scan = channel.scan_byte()
    finally:
        if pool is not None:
            pool.close()
    print()
    print(tote_scan_plot(scan.totes_by_test, highlight=secret))
    print()
    print(argmax_series(scan.totes_by_test))
    print()
    print(f"decoded: {scan.value:#04x} (confidence {scan.confidence:.0%})")
    return 0 if scan.value == secret else 1


def cmd_send(args) -> int:
    machine = _machine(args)
    payload = args.message.encode()
    pool = _trial_pool(args)
    try:
        if args.fast:
            from repro.whisper.fast_channel import BinarySearchChannel

            channel = BinarySearchChannel(machine)
            label = "TET-CC-BS (binary search)"
        else:
            from repro.whisper import TetCovertChannel

            channel = TetCovertChannel(machine, batches=args.batches, pool=pool)
            label = "TET-CC (linear scan)"
        stats = channel.transmit(payload)
    finally:
        if pool is not None:
            pool.close()
    print(f"{label} on {machine.model.name}")
    print(f"sent     : {payload!r}")
    print(f"received : {stats.received!r}")
    print(f"stats    : {stats}")
    return 0 if stats.error_rate == 0 else 1


def cmd_leak(args) -> int:
    from repro.whisper import TetMeltdown

    machine = _machine(args, kpti=args.kpti)
    attack = TetMeltdown(machine, batches=args.batches)
    result = attack.leak(length=args.length)
    print(f"TET-MD on {machine.model.name} (kpti={args.kpti})")
    print(f"expected : {result.expected!r}")
    print(f"leaked   : {result.data!r}")
    print(f"stats    : {result}")
    print(f"verdict  : {'SUCCESS' if result.success else 'FAILED'}")
    return 0 if result.success else 1


def cmd_kaslr(args) -> int:
    from repro.whisper import TetKaslr

    machine = _machine(
        args, kpti=args.kpti, flare=args.flare, container=args.container
    )
    pool = _trial_pool(args)
    try:
        result = TetKaslr(machine, pool=pool).break_auto()
    finally:
        if pool is not None:
            pool.close()
    print(f"TET-KASLR on {machine.model.name} "
          f"(kpti={args.kpti}, flare={args.flare}, container={args.container})")
    print(result)
    return 0 if result.success else 1


def cmd_matrix(args) -> int:
    from repro.whisper import (
        TetCovertChannel,
        TetKaslr,
        TetMeltdown,
        TetSpectreRsb,
        TetZombieload,
    )

    secret = b"T2"
    attacks = ("TET-CC", "TET-MD", "TET-ZBL", "TET-RSB", "TET-KASLR")
    cpus = sorted(CPU_MODELS) if args.all_cpus else [
        "i7-6700", "i7-7700", "i9-10980XE", "i9-13900K", "ryzen-5600G",
    ]
    pool = _trial_pool(args)
    matrix = {}
    try:
        for cpu in cpus:
            row = {}
            for attack in attacks:
                machine = Machine(cpu, seed=args.seed, secret=secret)
                if attack == "TET-CC":
                    channel = TetCovertChannel(machine, batches=3, pool=pool)
                    row[attack] = channel.transmit(secret).error_rate == 0
                elif attack == "TET-MD":
                    row[attack] = TetMeltdown(machine, batches=3).leak(length=2).success
                elif attack == "TET-ZBL":
                    zbl = TetZombieload(machine, batches=5)
                    zbl.install_victim_secret(secret)
                    row[attack] = zbl.leak().success
                elif attack == "TET-RSB":
                    rsb = TetSpectreRsb(machine)
                    rsb.install_secret(secret)
                    row[attack] = rsb.leak().success
                else:
                    row[attack] = TetKaslr(machine, pool=pool).break_kaslr().success
            matrix[cpu] = row
            print(f"[{cpu}] done", file=sys.stderr)
    finally:
        if pool is not None:
            pool.close()
    print(success_matrix(matrix, row_order=cpus, column_order=attacks))
    return 0


def cmd_faults_demo(args) -> int:
    from repro.faults.demo import run_demo

    return run_demo(
        seed=args.seed,
        rate=args.rate,
        workers=args.workers,
        retries=args.retry,
        campaign=args.campaign,
    )


def cmd_perf_profile(args) -> int:
    from repro.perf import run_profile

    run_profile(
        campaign=args.campaign,
        cell=args.cell,
        trials=args.trials,
        sort=args.sort,
        limit=args.limit,
    )
    return 0


def cmd_perf_bench(args) -> int:
    import os

    from repro.perf import run_bench

    if getattr(args, "no_leader_cache", False):
        os.environ["REPRO_BATCH_LEADER_CACHE"] = "0"
    result = run_bench(
        campaign=args.campaign,
        cell=args.cell,
        trials=args.trials,
        repeats=args.repeats,
        quick=args.quick,
        baseline_path=args.baseline,
        report_path=args.report,
        update_baseline=args.update_baseline,
        batch=args.batch,
    )
    return 1 if result.regressed else 0


def cmd_obs_report(args) -> int:
    from repro.telemetry.live import run_obs_report

    return run_obs_report(args.trace, limit=args.limit)


def cmd_obs_trace(args) -> int:
    from repro.telemetry.live import run_obs_trace

    return run_obs_trace(args.trace, output=args.output, validate=args.validate)


def cmd_obs_tail(args) -> int:
    from repro.telemetry.live import run_obs_tail

    return run_obs_tail(args.trace, count=args.count)


def cmd_obs_top(args) -> int:
    from repro.telemetry.live import run_obs_top

    return run_obs_top(
        args.root,
        once=args.once,
        interval=args.interval,
        timeout=args.timeout,
    )


def cmd_obs_flame(args) -> int:
    from repro.telemetry.live import run_obs_flame

    return run_obs_flame(args.trace, output=args.output)


def cmd_obs_fold(args) -> int:
    from repro.telemetry.live import run_obs_fold

    return run_obs_fold(args.root, output=args.output, check=args.check)


def cmd_obs_overhead(args) -> int:
    from repro.perf import run_overhead

    return run_overhead(
        campaign=args.campaign,
        cell=args.cell,
        trials=args.trials,
        repeats=args.repeats,
        quick=args.quick,
    )


def cmd_pmu(args) -> int:
    from repro.pmutools import OnlineCollector, PmuPipeline
    from repro.pmutools.scenarios import (
        TetCcScenario,
        TetKaslrScenario,
        TetMdScenario,
    )

    scenarios = {
        "tet-cc": TetCcScenario,
        "tet-md": TetMdScenario,
        "tet-kaslr": TetKaslrScenario,
    }
    machine = _machine(args)
    pipeline = PmuPipeline(OnlineCollector(iterations=args.iterations))
    report = pipeline.analyze(scenarios[args.scene](machine))
    print(
        f"prepared {report.prepared_events} events; "
        f"{len(report.survivors)} condition-sensitive after filtering"
    )
    print(report.render())
    return 0


def _campaign_store(args):
    from repro.campaign import ResultStore

    return ResultStore(args.store)


def _campaign_spec(name: str):
    from repro.campaign import builtin_campaign

    return builtin_campaign(name)


def _artifact_paths(store_root: str, name: str):
    base = os.path.join(store_root, name)
    return os.path.join(base, "report.json"), os.path.join(base, "report.txt")


def cmd_campaign_run(args) -> int:
    from repro.campaign import CampaignAborted, CampaignRunner

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    policy = None
    if args.retry > 0 or args.max_failures is not None:
        from repro.faults import ResiliencePolicy

        policy = ResiliencePolicy(max_retries=args.retry)
    renderer = None
    observer = None
    if args.progress:
        from repro.telemetry.live import ProgressRenderer

        renderer = ProgressRenderer(name=spec.name)
        observer = renderer.on_batch
    tracing = bool(args.trace_out)
    trace_data = {}
    if tracing:
        from repro import telemetry

        # Wall clocks make the Chrome trace human-meaningful; every
        # checksum strips them (they are sidecar fields).
        telemetry.enable(wall_clock=True)
    pool = _trial_pool(args)
    try:
        runner = CampaignRunner(
            spec,
            store=_campaign_store(args),
            pool=pool,
            batch_size=args.batch_size,
            progress=lambda message: print(f"[{spec.name}] {message}", file=sys.stderr),
            policy=policy,
            max_failures=args.max_failures,
            observer=observer,
        )
        report, stats = runner.run()
    except CampaignAborted as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.close()
        if renderer is not None:
            renderer.close()
        if tracing:
            from repro import telemetry
            from repro.telemetry.export import write_jsonl

            # Written even when the run aborts: `repro obs tail` on the
            # trace answers "what was the campaign doing when it died?".
            records = telemetry.recorder().drain()
            metrics = telemetry.metrics_registry().drain()
            telemetry.disable()
            trace_data["metrics"] = metrics
            write_jsonl(records, args.trace_out, metrics=metrics)
            print(
                f"[{spec.name}] wrote {len(records)} telemetry records to "
                f"{args.trace_out} (replay with `repro obs report`)",
                file=sys.stderr,
            )
    json_path, text_path = _artifact_paths(args.store, spec.name)
    report.write_json(json_path)
    report.write_text(text_path)
    print(report.render_text())
    print(f"run      : {stats}")
    print(f"artifacts: {json_path}, {text_path}")
    if tracing:
        from repro.campaign.report import render_run_observability

        print(
            render_run_observability(stats, trace_data.get("metrics", {})),
            file=sys.stderr,
        )
    if args.require_cached is not None and stats.hit_rate < args.require_cached:
        print(
            f"cache hit rate {stats.hit_rate:.1%} below required "
            f"{args.require_cached:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_campaign_shard(args) -> int:
    from repro.campaign import CampaignAborted, Shard
    from repro.distrib import manifest_path, run_shard_observed

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        shard = Shard(args.index, args.of)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    policy = None
    if args.retry > 0 or args.max_failures is not None:
        from repro.faults import ResiliencePolicy

        policy = ResiliencePolicy(max_retries=args.retry)
    trace_out = args.trace_out
    if args.stream_out and not trace_out:
        # Streaming without a sidecar would leave nothing for the fold
        # identity check; record the conventional sidecar alongside.
        from repro.distrib import telemetry_sidecar

        trace_out = telemetry_sidecar(args.store)
    pool = _trial_pool(args)
    label = f"{spec.name} {shard}"
    observed = {}
    try:
        store, stats = run_shard_observed(
            spec,
            shard,
            args.store,
            trace_path=trace_out,
            stream_path=args.stream_out,
            stream_every=args.stream_every,
            observed=observed,
            pool=pool,
            batch_size=args.batch_size,
            policy=policy,
            max_failures=args.max_failures,
            progress=lambda message: print(f"[{label}] {message}", file=sys.stderr),
        )
    except CampaignAborted as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.close()
        if trace_out:
            print(
                f"[{label}] wrote {observed.get('records', 0)} telemetry "
                f"records to {trace_out}",
                file=sys.stderr,
            )
        if args.stream_out:
            print(
                f"[{label}] streamed live telemetry to {args.stream_out} "
                f"(tail with `repro obs top`)",
                file=sys.stderr,
            )
    print(f"{label}: {stats}")
    print(f"segment  : {store.path} ({len(store)} records)")
    print(f"manifest : {manifest_path(args.store)}")
    print(f"merge    : `repro campaign merge {spec.name} --store DEST "
          f"{args.store} ...` combines segments")
    return 0


def cmd_campaign_merge(args) -> int:
    from repro.campaign import CampaignRunner, ResultStore
    from repro.distrib import MergeError, merge_stores, merge_telemetry
    from repro.distrib.coordinator import FLEET_TELEMETRY

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        stats = merge_stores(
            args.segments, args.store, check_manifests=not args.no_manifests
        )
    except MergeError as exc:
        print(f"merge refused: {exc}", file=sys.stderr)
        return 2
    print(f"merged   : {stats}")
    sidecars = merge_telemetry(
        args.segments, os.path.join(args.store, FLEET_TELEMETRY)
    )
    if sidecars:
        print(
            f"telemetry: {len(sidecars)} fleet metrics -> "
            f"{os.path.join(args.store, FLEET_TELEMETRY)} "
            f"(render with `repro obs report`)"
        )
    runner = CampaignRunner(spec, store=ResultStore(args.store))
    report = runner.collect()
    if report is None:
        print(runner.status())
        print(
            "merged store does not yet cover the full grid; merge the "
            "remaining segments (or `campaign shard` the missing slices)",
            file=sys.stderr,
        )
        return 0 if args.allow_partial else 1
    json_path, text_path = _artifact_paths(args.store, spec.name)
    report.write_json(json_path)
    report.write_text(text_path)
    print(report.render_text())
    print(f"artifacts: {json_path}, {text_path}")
    return 0


def cmd_campaign_fleet(args) -> int:
    from repro.campaign import ResultStore
    from repro.distrib import Coordinator, FleetError, LocalProcessWorker
    from repro.distrib.coordinator import FLEET_TELEMETRY
    from repro.faults import ResiliencePolicy

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    worker = LocalProcessWorker(
        spec.name,
        workers=args.workers,
        batch_size=args.batch_size,
        retry=args.retry,
        trace=args.trace,
        stream=args.stream,
        stream_every=args.stream_every,
    )
    on_stream = None
    if args.stream:
        def on_stream(view):
            print(view.render(), file=sys.stderr)

    coordinator = Coordinator(
        spec,
        args.store,
        shards=args.shards,
        worker=worker,
        policy=ResiliencePolicy(
            max_retries=args.retry_shards, backoff_base=args.backoff
        ),
        parallel=args.parallel,
        progress=lambda message: print(f"[fleet {spec.name}] {message}",
                                       file=sys.stderr),
        stream=args.stream,
        on_stream=on_stream,
    )
    try:
        result = coordinator.run()
    except FleetError as exc:
        print(f"fleet failed: {exc}", file=sys.stderr)
        return 1
    print(result)
    print(f"store    : {ResultStore(args.store).path}")
    print(
        f"obs      : repro obs report "
        f"{os.path.join(args.store, FLEET_TELEMETRY)}"
    )
    if args.stream:
        print(
            f"stream   : repro obs top {args.store} --once; "
            f"repro obs fold {args.store} --check"
        )
    if result.report is not None:
        json_path, text_path = _artifact_paths(args.store, spec.name)
        result.report.write_json(json_path)
        result.report.write_text(text_path)
        print(result.report.render_text())
        print(f"artifacts: {json_path}, {text_path}")
    return 0


def cmd_campaign_status(args) -> int:
    from repro.campaign import CampaignRunner

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(CampaignRunner(spec, store=_campaign_store(args)).status())
    return 0


def cmd_campaign_report(args) -> int:
    from repro.campaign import CampaignRunner

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    runner = CampaignRunner(spec, store=_campaign_store(args))
    report = runner.collect()
    if report is None:
        print(runner.status())
        print("campaign incomplete; `campaign run` executes the delta",
              file=sys.stderr)
        return 1
    json_path, text_path = _artifact_paths(args.store, spec.name)
    report.write_json(json_path)
    report.write_text(text_path)
    print(report.render_text())
    print(f"artifacts: {json_path}, {text_path}")
    return 0


def cmd_campaign_clean(args) -> int:
    dropped = _campaign_store(args).clear()
    print(f"dropped {dropped} cached trial results from {args.store}")
    return 0


def cmd_campaign_list(args) -> int:
    from repro.campaign import BUILTIN_CAMPAIGNS

    for name in sorted(BUILTIN_CAMPAIGNS):
        spec = BUILTIN_CAMPAIGNS[name]()
        doc = (BUILTIN_CAMPAIGNS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:15} {spec.trial_count():>6} trials  {doc}")
    return 0


def _calibration_path(args) -> str:
    if args.calibration:
        return args.calibration
    return os.path.join(args.store, "defend", "calibration.json")


def _load_calibration(args):
    from repro.defend import Calibration

    path = _calibration_path(args)
    try:
        return Calibration.load(path)
    except FileNotFoundError:
        print(
            f"no calibration at {path}; run `repro defend calibrate` first",
            file=sys.stderr,
        )
        return None


def _defend_artifact_paths(store_root: str, name: str):
    base = os.path.join(store_root, name)
    return os.path.join(base, "defend.json"), os.path.join(base, "defend.txt")


def _print_calibration(calibration) -> None:
    print(f"calibration: {calibration.digest} (threshold {calibration.threshold:.4f})")
    print(f"trained on : " + ", ".join(
        f"{name} x{count}" for name, count in calibration.trained_on
    ))
    for field, weight in zip(calibration.rate_fields, calibration.weights):
        print(f"  {field:28s} weight {weight:+.4f}")


def cmd_defend_calibrate(args) -> int:
    from repro.defend import calibrate

    pool = _trial_pool(args)
    try:
        calibration, stats = calibrate(
            store=_campaign_store(args),
            pool=pool,
            batch_size=args.batch_size,
            progress=lambda message: print(
                f"[defend-calibrate] {message}", file=sys.stderr
            ),
        )
    finally:
        if pool is not None:
            pool.close()
    path = _calibration_path(args)
    calibration.save(path)
    _print_calibration(calibration)
    print(f"run      : {stats}")
    print(f"artifact : {path}")
    return 0


def cmd_defend_score(args) -> int:
    from repro.defend import FeatureVector, get_scenario, scenario_names
    from repro.runtime import DetectTrial, MachineSpec, run_detect_trial

    try:
        scenario = get_scenario(args.scenario)
    except KeyError:
        print(
            f"unknown scenario {args.scenario!r}; "
            f"choose from: {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    calibration = _load_calibration(args)
    if calibration is None:
        return 2
    spec = MachineSpec(model=args.cpu, seed=args.seed)
    print(
        f"{scenario.name} [{scenario.taxonomy}] on {args.cpu} seed {args.seed}: "
        f"{scenario.description}"
    )
    flagged = 0
    for window in range(args.trials):
        result = run_detect_trial(DetectTrial(spec, scenario.name, window))
        features = FeatureVector.from_ints(result.totes)
        score = calibration.score(features)
        flag = score > calibration.threshold
        flagged += int(flag)
        print(
            f"window {window}: score {score:.4f} "
            f"{'FLAG  ' if flag else 'clear '} "
            f"clflush/kuop={features.clflush_per_kilo_uop:.2f} "
            f"llc/kuop={features.llc_miss_per_kilo_uop:.2f} "
            f"clears/kuop={features.machine_clears_per_kilo_uop:.2f}"
        )
    print(
        f"flagged {flagged}/{args.trials} windows "
        f"(threshold {calibration.threshold:.4f}, "
        f"calibration {calibration.digest})"
    )
    return 0


def cmd_defend_eval(args) -> int:
    from repro.defend import StreamingDetector, build_defend_report

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    calibration = _load_calibration(args)
    if calibration is None:
        return 2
    detector = StreamingDetector(calibration, spec)
    ingested = detector.ingest_store(_campaign_store(args))
    expected = spec.trial_count()
    if ingested + detector.failed_windows < expected and not args.allow_partial:
        print(
            f"store covers {ingested}/{expected} windows; run the campaign "
            f"first (`repro campaign run {spec.name}` or `repro defend "
            f"stream {spec.name}`), or pass --allow-partial",
            file=sys.stderr,
        )
        return 1
    report = build_defend_report(detector, min_auc=args.min_auc)
    json_path, text_path = _defend_artifact_paths(args.store, spec.name)
    report.write_json(json_path)
    report.write_text(text_path)
    print(report.render_text())
    print(f"artifacts: {json_path}, {text_path}")
    return 0 if report.passed else 1


def cmd_defend_stream(args) -> int:
    from repro.campaign import CampaignAborted, CampaignRunner
    from repro.defend import StreamingDetector, build_defend_report

    try:
        spec = _campaign_spec(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    calibration = _load_calibration(args)
    if calibration is None:
        return 2
    detector = StreamingDetector(calibration, spec)
    seen = set()

    def sink(ref, outcome):
        verdict = detector.ingest(ref, outcome)
        if verdict is None or not verdict.flagged or verdict.key() in seen:
            return
        seen.add(verdict.key())
        print(
            f"[{spec.name}] FLAG {verdict.scenario} cell {verdict.cell} "
            f"rep {verdict.rep} window {verdict.coord} "
            f"score {verdict.score:.4f}",
            file=sys.stderr,
        )

    pool = _trial_pool(args)
    try:
        runner = CampaignRunner(
            spec,
            store=_campaign_store(args),
            pool=pool,
            batch_size=args.batch_size,
            progress=lambda message: print(
                f"[{spec.name}] {message}", file=sys.stderr
            ),
            sink=sink,
        )
        runner.run()
    except CampaignAborted as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.close()
    report = build_defend_report(detector, min_auc=args.min_auc)
    json_path, text_path = _defend_artifact_paths(args.store, spec.name)
    report.write_json(json_path)
    report.write_text(text_path)
    print(report.render_text())
    print(f"artifacts: {json_path}, {text_path}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Whisper (DAC 2024) reproduction on a simulated CPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    workers = _workers_parent()

    demo = sub.add_parser(
        "demo", parents=[workers], help="see the Figure 1 channel"
    )
    _add_machine_args(demo)
    demo.add_argument("--byte", type=lambda s: int(s, 0), default=0x53)
    demo.add_argument("--batches", type=int, default=5)
    demo.set_defaults(func=cmd_demo)

    send = sub.add_parser(
        "send", parents=[workers], help="transmit a message through TET-CC"
    )
    _add_machine_args(send)
    send.add_argument("message", nargs="?", default="whisper")
    send.add_argument("--batches", type=int, default=3)
    send.add_argument("--fast", action="store_true", help="binary-search mode")
    send.set_defaults(func=cmd_send)

    leak = sub.add_parser("leak", help="TET-Meltdown the kernel secret")
    _add_machine_args(leak)
    leak.add_argument("--length", type=int, default=8)
    leak.add_argument("--batches", type=int, default=3)
    leak.add_argument("--kpti", action="store_true")
    leak.set_defaults(func=cmd_leak)

    kaslr = sub.add_parser("kaslr", parents=[workers], help="break KASLR")
    _add_machine_args(kaslr)
    kaslr.add_argument("--kpti", action="store_true")
    kaslr.add_argument("--flare", action="store_true")
    kaslr.add_argument("--container", action="store_true")
    kaslr.set_defaults(func=cmd_kaslr)

    matrix = sub.add_parser(
        "matrix", parents=[workers], help="the Table 2 attack x CPU matrix"
    )
    matrix.add_argument("--seed", type=int, default=1)
    matrix.add_argument("--all-cpus", action="store_true")
    matrix.set_defaults(func=cmd_matrix)

    campaign = sub.add_parser(
        "campaign", help="declarative cached sweeps (repro.campaign)"
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(sub_parser):
        sub_parser.add_argument(
            "--store",
            default=".campaigns",
            help="result-store directory (default: .campaigns)",
        )

    crun = csub.add_parser(
        "run", parents=[workers],
        help="run a campaign (cached trials replay for free)",
    )
    crun.add_argument("name", help="built-in campaign name (see `campaign list`)")
    _campaign_common(crun)
    crun.add_argument(
        "--batch-size", type=int, default=128,
        help="trials per checkpoint batch (default: 128)",
    )
    crun.add_argument(
        "--batch", type=int, default=None, metavar="B",
        help="step pack-eligible trials B lanes at a time through the "
        "lockstep batch executor (results are byte-identical to the "
        "scalar path; divergent lanes fall back automatically)",
    )
    crun.add_argument(
        "--require-cached", type=float, default=None, metavar="FRACTION",
        help="exit non-zero if the store hit rate is below FRACTION "
        "(CI uses 0.9 to police the cache)",
    )
    crun.add_argument(
        "--retry", type=int, default=0, metavar="N",
        help="retry each failing trial up to N times before quarantining "
        "it as a structured failure (0 = classic fail-fast path)",
    )
    crun.add_argument(
        "--max-failures", type=int, default=None, metavar="M",
        help="abort (after checkpointing) once more than M trials have "
        "failed every retry; implies the resilient path",
    )
    crun.add_argument(
        "--progress", action="store_true",
        help="stream per-cell throughput, ETA and failure counts to "
        "stderr after every checkpointed batch",
    )
    crun.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the run's telemetry (spans, events, metrics) to a "
        "JSONL file for `repro obs report|trace|tail`",
    )
    crun.set_defaults(func=cmd_campaign_run)

    cshard = csub.add_parser(
        "shard", parents=[workers],
        help="run one deterministic slice of a campaign into a store "
        "segment (repro.distrib)",
    )
    cshard.add_argument("name", help="built-in campaign name")
    cshard.add_argument(
        "--index", type=int, required=True, metavar="I",
        help="this shard's index, 0 <= I < N",
    )
    cshard.add_argument(
        "--of", type=int, required=True, metavar="N",
        help="total shard count N (every host must agree on N)",
    )
    cshard.add_argument(
        "--store", default=".campaigns",
        help="segment store directory (one per shard; default: .campaigns)",
    )
    cshard.add_argument(
        "--batch-size", type=int, default=128,
        help="trials per checkpoint batch (default: 128)",
    )
    cshard.add_argument(
        "--retry", type=int, default=0, metavar="N",
        help="retry each failing trial up to N times before quarantining it",
    )
    cshard.add_argument(
        "--max-failures", type=int, default=None, metavar="M",
        help="abort (after checkpointing) once more than M trials failed",
    )
    cshard.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record this shard's telemetry sidecar (fleet merges fold "
        "segment sidecars into one `repro obs` view)",
    )
    cshard.add_argument(
        "--stream-out", default=None, metavar="PATH",
        help="append live framed telemetry (spans, metric snapshots, "
        "heartbeats) to this spool while the shard runs; implies a "
        "telemetry sidecar, and folding the spool is byte-identical to "
        "merging the sidecar",
    )
    cshard.add_argument(
        "--stream-every", type=int, default=None, metavar="N",
        help="heartbeat/snapshot cadence in completed trials (never "
        "wall-clock; default: 32)",
    )
    cshard.set_defaults(func=cmd_campaign_shard)

    cmerge = csub.add_parser(
        "merge",
        help="merge shard store segments (dedup by content address) and "
        "render the whole-campaign artifacts",
    )
    cmerge.add_argument("name", help="built-in campaign name")
    cmerge.add_argument(
        "segments", nargs="+", metavar="SEGMENT",
        help="segment store directories to merge",
    )
    _campaign_common(cmerge)
    cmerge.add_argument(
        "--allow-partial", action="store_true",
        help="exit 0 even if the merged store does not cover the full grid",
    )
    cmerge.add_argument(
        "--no-manifests", action="store_true",
        help="skip manifest fencing (merging bare pre-distrib stores)",
    )
    cmerge.set_defaults(func=cmd_campaign_merge)

    cfleet = csub.add_parser(
        "fleet", parents=[workers],
        help="shard a campaign across local subprocess workers, merge as "
        "segments complete (the asyncio coordinator)",
    )
    cfleet.add_argument("name", help="built-in campaign name")
    _campaign_common(cfleet)
    cfleet.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="how many shards to split the grid into (default: 3)",
    )
    cfleet.add_argument(
        "--parallel", type=int, default=None, metavar="P",
        help="shards in flight at once (default: min(N, 8))",
    )
    cfleet.add_argument(
        "--retry-shards", type=int, default=1, metavar="K",
        help="re-hand a failed shard up to K times (resume is free; "
        "default: 1)",
    )
    cfleet.add_argument(
        "--backoff", type=float, default=0.0, metavar="SECONDS",
        help="seeded exponential backoff base between shard retries "
        "(default: 0, retry immediately)",
    )
    cfleet.add_argument(
        "--batch-size", type=int, default=128,
        help="per-shard trials per checkpoint batch (default: 128)",
    )
    cfleet.add_argument(
        "--retry", type=int, default=0, metavar="N",
        help="per-trial retries inside each shard worker (default: 0)",
    )
    cfleet.add_argument(
        "--trace", action="store_true",
        help="record per-segment telemetry sidecars and aggregate them "
        "into the fleet obs view",
    )
    cfleet.add_argument(
        "--stream", action="store_true",
        help="arm the live plane: shards append framed spools, the "
        "coordinator tails them concurrently (implies --trace; watch "
        "with `repro obs top`, check with `repro obs fold --check`)",
    )
    cfleet.add_argument(
        "--stream-every", type=int, default=None, metavar="N",
        help="per-shard heartbeat/snapshot cadence in completed trials "
        "(default: 32)",
    )
    cfleet.set_defaults(func=cmd_campaign_fleet)

    cstatus = csub.add_parser("status", help="cached/pending trial accounting")
    cstatus.add_argument("name")
    _campaign_common(cstatus)
    cstatus.set_defaults(func=cmd_campaign_status)

    creport = csub.add_parser(
        "report", help="render artifacts purely from the store (no execution)"
    )
    creport.add_argument("name")
    _campaign_common(creport)
    creport.set_defaults(func=cmd_campaign_report)

    cclean = csub.add_parser("clean", help="drop every cached trial result")
    _campaign_common(cclean)
    cclean.set_defaults(func=cmd_campaign_clean)

    clist = csub.add_parser("list", help="list built-in campaigns")
    clist.set_defaults(func=cmd_campaign_list)

    faults = sub.add_parser(
        "faults", help="deterministic fault injection (repro.faults)"
    )
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    fdemo = fsub.add_parser(
        "demo",
        help="inject seeded chaos into a small campaign, serial and "
        "pooled, and verify byte-identical failure behaviour",
    )
    fdemo.add_argument("--seed", type=int, default=7, help="FaultPlan seed")
    fdemo.add_argument(
        "--rate", type=float, default=0.25,
        help="total per-trial fault probability, split evenly over "
        "raise/hang/garbage/kill (default: 0.25)",
    )
    fdemo.add_argument(
        "--workers", type=int, default=4,
        help="worker count for the pooled leg (default: 4)",
    )
    fdemo.add_argument(
        "--retry", type=int, default=2,
        help="retries per trial before quarantine (default: 2)",
    )
    fdemo.add_argument(
        "--campaign", default="ci-smoke",
        help="built-in campaign to torment (default: ci-smoke)",
    )
    fdemo.set_defaults(func=cmd_faults_demo)

    perf = sub.add_parser(
        "perf", help="hot-path profiling and throughput benchmarking"
    )
    psub = perf.add_subparsers(dest="perf_command", required=True)

    def _perf_common(sub_parser):
        sub_parser.add_argument(
            "--campaign", default="e3-matrix",
            help="built-in campaign to draw trials from (default: e3-matrix)",
        )
        sub_parser.add_argument(
            "--cell", type=int, default=0,
            help="cell index inside the campaign (default: 0)",
        )

    pprofile = psub.add_parser(
        "profile", help="cProfile a campaign cell's trial hot path"
    )
    _perf_common(pprofile)
    pprofile.add_argument(
        "--trials", type=int, default=24,
        help="trials to run under the profiler (default: 24)",
    )
    pprofile.add_argument(
        "--sort", default="tottime",
        help="pstats sort key (default: tottime)",
    )
    pprofile.add_argument(
        "--limit", type=int, default=25,
        help="rows of profile output (default: 25)",
    )
    pprofile.set_defaults(func=cmd_perf_profile)

    pbench = psub.add_parser(
        "bench",
        help="measure trials/second and gate against the committed baseline",
    )
    _perf_common(pbench)
    pbench.add_argument(
        "--trials", type=int, default=48,
        help="trials per timed pass (default: 48)",
    )
    pbench.add_argument(
        "--repeats", type=int, default=5,
        help="timed passes; the best one is reported (default: 5)",
    )
    pbench.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: at most 16 trials x 3 passes",
    )
    pbench.add_argument(
        "--baseline", default="benchmarks/perf_baseline.json",
        help="committed baseline path (default: benchmarks/perf_baseline.json)",
    )
    pbench.add_argument(
        "--report", default="benchmarks/reports/reproduction_report.json",
        help="reproduction-report JSON to merge metrics into "
        "('' disables the merge)",
    )
    pbench.add_argument(
        "--update-baseline", action="store_true",
        help="record this measurement as the new baseline instead of "
        "gating against it",
    )
    pbench.add_argument(
        "--batch", type=int, default=None, metavar="B",
        help="time the lockstep batch executor with B lanes per pack "
        "instead of the scalar path (results are byte-identical; gates "
        "against the baseline's batch_scores entry, or kaslr_batch_scores "
        "for a KASLR cell)",
    )
    pbench.add_argument(
        "--no-leader-cache", action="store_true",
        help="disable the cross-pack leader trace cache for this run "
        "(sets REPRO_BATCH_LEADER_CACHE=0; results stay byte-identical, "
        "only the pack leader re-executes)",
    )
    pbench.set_defaults(func=cmd_perf_bench)

    obs = sub.add_parser(
        "obs", help="recorded-run observability (repro.telemetry)"
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)

    oreport = osub.add_parser(
        "report",
        help="summarise a recorded run: span tree, cycle attribution, metrics",
    )
    oreport.add_argument("trace", help="JSONL file from `campaign run --trace-out`")
    oreport.add_argument(
        "--limit", type=int, default=10,
        help="cycle-attribution rows to print (default: 10)",
    )
    oreport.set_defaults(func=cmd_obs_report)

    otrace = osub.add_parser(
        "trace",
        help="convert a recorded run to Chrome trace_event JSON "
        "(chrome://tracing / Perfetto)",
    )
    otrace.add_argument("trace", help="JSONL file from `campaign run --trace-out`")
    otrace.add_argument(
        "--output", default=None, metavar="PATH",
        help="output path (default: <trace>.trace.json)",
    )
    otrace.add_argument(
        "--validate", action="store_true",
        help="check the converted trace against the trace_event schema "
        "and exit non-zero on violations (CI obs-smoke)",
    )
    otrace.set_defaults(func=cmd_obs_trace)

    otail = osub.add_parser(
        "tail", help="print a recorded run's last records (post-mortems)"
    )
    otail.add_argument("trace", help="JSONL file from `campaign run --trace-out`")
    otail.add_argument(
        "--count", type=int, default=20,
        help="records to print (default: 20)",
    )
    otail.set_defaults(func=cmd_obs_tail)

    otop = osub.add_parser(
        "top",
        help="live fleet dashboard: tail every shard's stream spool "
        "(campaign fleet --stream)",
    )
    otop.add_argument(
        "root",
        help="fleet store root (spools under segments/*/stream.jsonl), "
        "a segment root, or a spool file",
    )
    otop.add_argument(
        "--once", action="store_true",
        help="render the current fleet state once and exit (CI mode)",
    )
    otop.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval in follow mode (default: 0.5)",
    )
    otop.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="in follow mode, exit 3 if the fleet has not sealed every "
        "spool after SECONDS (default: wait forever)",
    )
    otop.set_defaults(func=cmd_obs_top)

    oflame = osub.add_parser(
        "flame",
        help="export collapsed stacks (flamegraph.pl / speedscope input) "
        "from a recorded run or a live spool",
    )
    oflame.add_argument(
        "trace",
        help="JSONL trace from --trace-out, or a stream spool",
    )
    oflame.add_argument(
        "--output", default=None, metavar="PATH",
        help="output path (default: <trace>.folded)",
    )
    oflame.set_defaults(func=cmd_obs_flame)

    ofold = osub.add_parser(
        "fold",
        help="fold completed stream spools into one metrics artifact; "
        "--check asserts byte-identity with the sidecar merge",
    )
    ofold.add_argument(
        "root", help="fleet store root, segment root, or spool file"
    )
    ofold.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the folded recorded run here (repro obs report reads it)",
    )
    ofold.add_argument(
        "--check", action="store_true",
        help="also merge the segments' telemetry sidecars and exit "
        "non-zero unless the bytes match (CI obs-stream-smoke)",
    )
    ofold.set_defaults(func=cmd_obs_fold)

    ooverhead = osub.add_parser(
        "overhead",
        help="measure telemetry overhead and gate it (disabled <2%%, "
        "enabled <15%%)",
    )
    _perf_common(ooverhead)
    ooverhead.add_argument(
        "--trials", type=int, default=16,
        help="trials per timed pass (default: 16)",
    )
    ooverhead.add_argument(
        "--repeats", type=int, default=3,
        help="timed passes per arm; the best is kept (default: 3)",
    )
    ooverhead.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: at most 12 trials x 3 passes",
    )
    ooverhead.set_defaults(func=cmd_obs_overhead)

    defend = sub.add_parser(
        "defend", help="the detection arms race (repro.defend)"
    )
    dsub = defend.add_subparsers(dest="defend_command", required=True)

    def _defend_common(sub_parser):
        sub_parser.add_argument(
            "--store",
            default=".campaigns",
            help="result-store directory (default: .campaigns)",
        )
        sub_parser.add_argument(
            "--calibration", default=None, metavar="PATH",
            help="fitted calibration JSON "
            "(default: <store>/defend/calibration.json)",
        )

    dcal = dsub.add_parser(
        "calibrate", parents=[workers],
        help="run the seeded benign/attack training mix and fit the "
        "deterministic detector (TET held out)",
    )
    _defend_common(dcal)
    dcal.add_argument(
        "--batch-size", type=int, default=128,
        help="trials per checkpoint batch (default: 128)",
    )
    dcal.set_defaults(func=cmd_defend_calibrate)

    dscore = dsub.add_parser(
        "score",
        help="run one scenario's observation windows and print the "
        "calibrated model's per-window verdicts",
    )
    _add_machine_args(dscore)
    _defend_common(dscore)
    dscore.add_argument(
        "--scenario", required=True,
        help="traffic scenario name (see docs/DEFEND.md)",
    )
    dscore.add_argument(
        "--trials", type=int, default=4,
        help="observation windows to score (default: 4)",
    )
    dscore.set_defaults(func=cmd_defend_score)

    deval = dsub.add_parser(
        "eval",
        help="render the ROC/AUC + detection-latency report from a "
        "finished campaign store (no execution)",
    )
    deval.add_argument("name", help="built-in campaign name (e.g. e11-detect)")
    _defend_common(deval)
    deval.add_argument(
        "--min-auc", type=float, default=None, metavar="FLOOR",
        help="arm the cache-family AUC gate (CI uses 0.95)",
    )
    deval.add_argument(
        "--allow-partial", action="store_true",
        help="evaluate even if the store does not cover the full grid",
    )
    deval.set_defaults(func=cmd_defend_eval)

    dstream = dsub.add_parser(
        "stream", parents=[workers],
        help="run a campaign with the streaming detector attached "
        "(flags print live, report renders at the end)",
    )
    dstream.add_argument("name", help="built-in campaign name (e.g. e11-detect)")
    _defend_common(dstream)
    dstream.add_argument(
        "--batch-size", type=int, default=128,
        help="trials per checkpoint batch (default: 128)",
    )
    dstream.add_argument(
        "--min-auc", type=float, default=None, metavar="FLOOR",
        help="arm the cache-family AUC gate in the final report",
    )
    dstream.set_defaults(func=cmd_defend_stream)

    pmu = sub.add_parser("pmu", help="the Figure 2 PMU toolset")
    _add_machine_args(pmu)
    pmu.add_argument(
        "--scene", default="tet-cc", choices=("tet-cc", "tet-md", "tet-kaslr")
    )
    pmu.add_argument("--iterations", type=int, default=8)
    pmu.set_defaults(func=cmd_pmu)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
