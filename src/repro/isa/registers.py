"""Architectural register file and status flags.

The simulator keeps architectural state in a :class:`RegisterFile`; the
out-of-order core snapshots and restores it on squashes, and transient
execution operates on a speculative copy so that rolled-back work never
reaches architectural state (the defining property the paper exploits).
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

#: The sixteen x86-64 general-purpose registers, in encoding order.
GPRS = (
    "rax",
    "rbx",
    "rcx",
    "rdx",
    "rsi",
    "rdi",
    "rbp",
    "rsp",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: Status flags modelled from RFLAGS (the subset Jcc conditions consume).
FLAGS = ("zf", "cf", "sf", "of")


class RegisterFile:
    """Sixteen 64-bit general-purpose registers plus ZF/CF/SF/OF.

    Values are always kept wrapped to 64 bits.  Unknown register names
    raise ``KeyError`` immediately -- silent creation of registers would
    hide assembler typos.
    """

    __slots__ = ("_regs", "_flags")

    def __init__(self) -> None:
        self._regs = {name: 0 for name in GPRS}
        self._flags = {name: False for name in FLAGS}

    def read(self, name: str) -> int:
        """Return the 64-bit value of register *name*."""
        return self._regs[name]

    def write(self, name: str, value: int) -> None:
        """Set register *name* to *value*, wrapped to 64 bits."""
        if name not in self._regs:
            raise KeyError(f"unknown register {name!r}")
        self._regs[name] = value & MASK64

    def read_flag(self, name: str) -> bool:
        """Return the boolean value of flag *name* (``zf``/``cf``/``sf``/``of``)."""
        return self._flags[name]

    def write_flag(self, name: str, value: bool) -> None:
        """Set flag *name* to *value*."""
        if name not in self._flags:
            raise KeyError(f"unknown flag {name!r}")
        self._flags[name] = bool(value)

    def set_alu_flags(self, result: int, carry: bool = False, overflow: bool = False) -> None:
        """Update ZF/SF from *result* and CF/OF from the supplied carries."""
        result &= MASK64
        self._flags["zf"] = result == 0
        self._flags["sf"] = bool(result >> 63)
        self._flags["cf"] = carry
        self._flags["of"] = overflow

    def snapshot(self) -> dict:
        """Return a copyable snapshot of the full architectural state."""
        return {"regs": dict(self._regs), "flags": dict(self._flags)}

    def restore(self, snapshot: dict) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._regs = dict(snapshot["regs"])
        self._flags = dict(snapshot["flags"])

    def copy(self) -> "RegisterFile":
        """Return an independent copy (used for speculative state)."""
        clone = RegisterFile()
        clone._regs = dict(self._regs)
        clone._flags = dict(self._flags)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        live = {name: value for name, value in self._regs.items() if value}
        flags = "".join(name[0].upper() if on else "" for name, on in self._flags.items())
        return f"RegisterFile({live}, flags={flags or '-'})"
