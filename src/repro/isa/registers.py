"""Architectural register file and status flags.

The simulator keeps architectural state in a :class:`RegisterFile`; the
out-of-order core snapshots and restores it on squashes, and transient
execution operates on a speculative copy so that rolled-back work never
reaches architectural state (the defining property the paper exploits).
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

#: The sixteen x86-64 general-purpose registers, in encoding order.
GPRS = (
    "rax",
    "rbx",
    "rcx",
    "rdx",
    "rsi",
    "rdi",
    "rbp",
    "rsp",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: Status flags modelled from RFLAGS (the subset Jcc conditions consume).
FLAGS = ("zf", "cf", "sf", "of")

#: Template state dicts (copied per register file; ``dict.copy`` beats a
#: comprehension on the per-run construction path).
_ZERO_REGS = {name: 0 for name in GPRS}
_CLEAR_FLAGS = {name: False for name in FLAGS}


class RegisterFile:
    """Sixteen 64-bit general-purpose registers plus ZF/CF/SF/OF.

    Values are always kept wrapped to 64 bits.  Unknown register names
    raise ``KeyError`` immediately -- silent creation of registers would
    hide assembler typos.
    """

    __slots__ = ("_regs", "_flags", "_journal")

    def __init__(self) -> None:
        self._regs = _ZERO_REGS.copy()
        self._flags = _CLEAR_FLAGS.copy()
        #: Copy-on-write journal: ``None`` when inactive, else a list of
        #: undo entries appended before every mutation (see
        #: :meth:`begin_journal`).  The out-of-order core uses it so a
        #: speculation snapshot is an O(1) mark instead of a full copy.
        self._journal = None

    def read(self, name: str) -> int:
        """Return the 64-bit value of register *name*."""
        return self._regs[name]

    def write(self, name: str, value: int) -> None:
        """Set register *name* to *value*, wrapped to 64 bits."""
        regs = self._regs
        if name not in regs:
            raise KeyError(f"unknown register {name!r}")
        if self._journal is not None:
            self._journal.append((0, name, regs[name]))
        regs[name] = value & MASK64

    def read_flag(self, name: str) -> bool:
        """Return the boolean value of flag *name* (``zf``/``cf``/``sf``/``of``)."""
        return self._flags[name]

    def write_flag(self, name: str, value: bool) -> None:
        """Set flag *name* to *value*."""
        flags = self._flags
        if name not in flags:
            raise KeyError(f"unknown flag {name!r}")
        if self._journal is not None:
            self._journal.append((1, name, flags[name]))
        flags[name] = bool(value)

    def set_alu_flags(self, result: int, carry: bool = False, overflow: bool = False) -> None:
        """Update ZF/SF from *result* and CF/OF from the supplied carries."""
        result &= MASK64
        flags = self._flags
        if self._journal is not None:
            self._journal.append(
                (2, None, (flags["zf"], flags["sf"], flags["cf"], flags["of"]))
            )
        flags["zf"] = result == 0
        flags["sf"] = bool(result >> 63)
        flags["cf"] = carry
        flags["of"] = overflow

    # -- copy-on-write journaling ----------------------------------------------

    def begin_journal(self) -> None:
        """Arm the undo journal: every subsequent mutation records the
        value it overwrites.  :meth:`journal_mark` then captures the
        current state in O(1) and :meth:`journal_rollback` restores it in
        time proportional to the writes since the mark -- the property
        that makes transient-window squashes cost what the transient work
        cost, not what the architectural state weighs.

        The journal lives *inside* the register file (rather than in the
        core) so external mutators -- the kernel's syscall handler gets
        handed the speculative file directly -- are journaled too.
        """
        self._journal = []

    def end_journal(self) -> None:
        """Disarm and drop the journal (mutations stop being recorded)."""
        self._journal = None

    @property
    def journal_active(self) -> bool:
        return self._journal is not None

    def journal_mark(self) -> int:
        """O(1) snapshot: the current journal length."""
        return len(self._journal)

    def journal_clear(self) -> None:
        """Forget recorded undo entries (no live marks reference them)."""
        self._journal.clear()

    def journal_rollback(self, mark: int) -> None:
        """Undo every mutation recorded since :meth:`journal_mark`
        returned *mark*, newest first."""
        journal = self._journal
        regs = self._regs
        flags = self._flags
        while len(journal) > mark:
            kind, name, old = journal.pop()
            if kind == 0:
                regs[name] = old
            elif kind == 1:
                flags[name] = old
            else:  # composite ALU-flags entry
                flags["zf"], flags["sf"], flags["cf"], flags["of"] = old

    def snapshot(self) -> dict:
        """Return a copyable snapshot of the full architectural state."""
        return {"regs": dict(self._regs), "flags": dict(self._flags)}

    def restore(self, snapshot: dict) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._regs = dict(snapshot["regs"])
        self._flags = dict(snapshot["flags"])

    def copy(self) -> "RegisterFile":
        """Return an independent copy (used for speculative state)."""
        clone = RegisterFile()
        clone._regs = dict(self._regs)
        clone._flags = dict(self._flags)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        live = {name: value for name, value in self._regs.items() if value}
        flags = "".join(name[0].upper() if on else "" for name, on in self._flags.items())
        return f"RegisterFile({live}, flags={flags or '-'})"
