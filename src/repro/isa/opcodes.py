"""Opcode and condition-code definitions with static decode metadata.

Each opcode carries the metadata the pipeline needs at decode time: which
execution-port class its uop uses, how many uops it decodes into, whether
it serialises the frontend, and whether it is a branch/memory operation.
Keeping this table static (rather than deriving it in the core's cycle
loop) mirrors how a decoder PLA works and keeps the core readable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """Every instruction the micro-ISA supports."""

    # Data movement
    MOV_RI = "mov_ri"  # mov reg, imm
    MOV_RR = "mov_rr"  # mov reg, reg
    LOAD = "load"  # mov reg, [mem]
    LOAD_BYTE = "loadb"  # movzx reg, byte [mem]
    STORE = "store"  # mov [mem], reg
    LEA = "lea"  # lea reg, [mem]

    # ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"  # reg vs reg/imm
    TEST = "test"

    # Control flow
    JMP = "jmp"
    JCC = "jcc"
    CALL = "call"
    RET = "ret"

    # Timing / ordering / cache control
    NOP = "nop"
    PREFETCH = "prefetch"  # prefetcht0: translate + fill, never faults
    MFENCE = "mfence"
    LFENCE = "lfence"
    SFENCE = "sfence"
    CLFLUSH = "clflush"
    RDTSC = "rdtsc"
    RDTSCP = "rdtscp"

    # Transactional memory (Intel TSX)
    XBEGIN = "xbegin"
    XEND = "xend"

    # Program control
    HLT = "hlt"
    SYSCALL = "syscall"


class Cond(enum.Enum):
    """Jcc condition codes (the subset the paper's gadgets exercise).

    The paper reports JE/JZ, JNE/JNZ and JC working and conjectures all
    x86 conditional jumps do; we implement the full signed/unsigned set so
    that conjecture is testable on the simulator.
    """

    E = "e"  # ZF=1 (alias JZ)
    NE = "ne"  # ZF=0 (alias JNZ)
    C = "c"  # CF=1 (alias JB)
    NC = "nc"  # CF=0 (alias JAE)
    S = "s"  # SF=1
    NS = "ns"  # SF=0
    O = "o"  # OF=1
    NO = "no"  # OF=0
    L = "l"  # SF != OF
    GE = "ge"  # SF == OF
    LE = "le"  # ZF=1 or SF != OF
    G = "g"  # ZF=0 and SF == OF

    def evaluate(self, zf: bool, cf: bool, sf: bool, of: bool) -> bool:
        """Return whether the condition holds for the given flag values."""
        return _COND_EVAL[self](zf, cf, sf, of)


#: Per-condition evaluators, built once at import (``evaluate`` sits on
#: the core's Jcc path; rebuilding a 12-entry dispatch dict per branch
#: was measurable in campaign profiles).
_COND_EVAL = {
    Cond.E: lambda zf, cf, sf, of: zf,
    Cond.NE: lambda zf, cf, sf, of: not zf,
    Cond.C: lambda zf, cf, sf, of: cf,
    Cond.NC: lambda zf, cf, sf, of: not cf,
    Cond.S: lambda zf, cf, sf, of: sf,
    Cond.NS: lambda zf, cf, sf, of: not sf,
    Cond.O: lambda zf, cf, sf, of: of,
    Cond.NO: lambda zf, cf, sf, of: not of,
    Cond.L: lambda zf, cf, sf, of: sf != of,
    Cond.GE: lambda zf, cf, sf, of: sf == of,
    Cond.LE: lambda zf, cf, sf, of: zf or (sf != of),
    Cond.G: lambda zf, cf, sf, of: (not zf) and (sf == of),
}


#: Mnemonic aliases accepted by the assembler (jz -> je, jnz -> jne, ...).
COND_ALIASES = {
    "z": Cond.E,
    "nz": Cond.NE,
    "b": Cond.C,
    "ae": Cond.NC,
    "nae": Cond.C,
    "nb": Cond.NC,
}


class UopClass(enum.Enum):
    """Execution-port class a uop is scheduled to."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"
    FENCE = "fence"
    SYSTEM = "system"  # rdtsc, syscall, tsx markers


@dataclass(frozen=True)
class OpInfo:
    """Static decode metadata for one opcode."""

    uop_class: UopClass
    uop_count: int = 1
    is_branch: bool = False
    is_load: bool = False
    is_store: bool = False
    serialising: bool = False  # drains the pipeline at dispatch (fences, rdtsc-ish)
    microcoded: bool = False  # delivered by the MS rather than DSB/MITE
    base_latency: int = 1


OP_INFO = {
    Op.MOV_RI: OpInfo(UopClass.ALU),
    Op.MOV_RR: OpInfo(UopClass.ALU),
    Op.LOAD: OpInfo(UopClass.LOAD, is_load=True, base_latency=4),
    Op.LOAD_BYTE: OpInfo(UopClass.LOAD, is_load=True, base_latency=4),
    Op.STORE: OpInfo(UopClass.STORE, is_store=True, uop_count=2, base_latency=1),
    Op.LEA: OpInfo(UopClass.ALU),
    Op.ADD: OpInfo(UopClass.ALU),
    Op.SUB: OpInfo(UopClass.ALU),
    Op.AND: OpInfo(UopClass.ALU),
    Op.OR: OpInfo(UopClass.ALU),
    Op.XOR: OpInfo(UopClass.ALU),
    Op.SHL: OpInfo(UopClass.ALU),
    Op.SHR: OpInfo(UopClass.ALU),
    Op.CMP: OpInfo(UopClass.ALU),
    Op.TEST: OpInfo(UopClass.ALU),
    Op.JMP: OpInfo(UopClass.BRANCH, is_branch=True),
    Op.JCC: OpInfo(UopClass.BRANCH, is_branch=True),
    Op.CALL: OpInfo(UopClass.BRANCH, uop_count=2, is_branch=True, is_store=True),
    Op.RET: OpInfo(UopClass.BRANCH, uop_count=2, is_branch=True, is_load=True, base_latency=2),
    Op.NOP: OpInfo(UopClass.NOP),
    Op.PREFETCH: OpInfo(UopClass.LOAD, base_latency=2),
    Op.MFENCE: OpInfo(UopClass.FENCE, uop_count=2, serialising=True, microcoded=True, base_latency=4),
    Op.LFENCE: OpInfo(UopClass.FENCE, serialising=True, base_latency=2),
    Op.SFENCE: OpInfo(UopClass.FENCE, serialising=True, base_latency=2),
    Op.CLFLUSH: OpInfo(UopClass.STORE, uop_count=2, microcoded=True, base_latency=6),
    Op.RDTSC: OpInfo(UopClass.SYSTEM, uop_count=2, serialising=True, microcoded=True, base_latency=20),
    Op.RDTSCP: OpInfo(UopClass.SYSTEM, uop_count=3, serialising=True, microcoded=True, base_latency=25),
    Op.XBEGIN: OpInfo(UopClass.SYSTEM, uop_count=2, microcoded=True, base_latency=8),
    Op.XEND: OpInfo(UopClass.SYSTEM, uop_count=2, microcoded=True, base_latency=8),
    Op.HLT: OpInfo(UopClass.SYSTEM, serialising=True),
    Op.SYSCALL: OpInfo(UopClass.SYSTEM, uop_count=4, serialising=True, microcoded=True, base_latency=60),
}
