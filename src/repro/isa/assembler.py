"""A two-pass text assembler for the micro-ISA.

Gadgets in this project are written as assembly text so they read like the
paper's listings::

    assemble('''
        rdtsc
        mov r15, rax          ; start_time = rdtsc()
        xbegin abort          ; transient_begin()
        load rax, [rcx]       ; faulting access
        cmp rax, 'S'
        jne skip
        nop                   ; Jcc-guarded nop, as in Figure 1a
    skip:
        xend
    abort:
        rdtsc
    ''')

Supported syntax: one instruction per line; ``label:`` lines (or a label
and an instruction on the same line); ``;`` or ``#`` comments; register,
immediate (decimal, hex, ``'c'`` char) and ``[base + index*scale + disp]``
memory operands; ``jz``/``jnz``/``jb``-style condition aliases.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, MemRef
from repro.isa.opcodes import COND_ALIASES, Cond, Op
from repro.isa.program import Program
from repro.isa.registers import GPRS


class AssemblyError(ValueError):
    """Raised for any malformed assembly input, with line context."""


_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s*:\s*(.*)$")
_MEM_TERM_RE = re.compile(r"^([A-Za-z_]\w*)(?:\s*\*\s*(\d+))?$")

_ZERO_OPERAND = {
    "nop": Op.NOP,
    "mfence": Op.MFENCE,
    "lfence": Op.LFENCE,
    "sfence": Op.SFENCE,
    "rdtsc": Op.RDTSC,
    "rdtscp": Op.RDTSCP,
    "xend": Op.XEND,
    "ret": Op.RET,
    "hlt": Op.HLT,
    "syscall": Op.SYSCALL,
}

_ALU_OPS = {
    "add": Op.ADD,
    "sub": Op.SUB,
    "and": Op.AND,
    "or": Op.OR,
    "xor": Op.XOR,
    "shl": Op.SHL,
    "shr": Op.SHR,
    "cmp": Op.CMP,
    "test": Op.TEST,
}


def parse_immediate(text: str) -> Optional[int]:
    """Parse an immediate operand; return ``None`` if *text* is not one.

    Accepts decimal, ``0x`` hex, binary ``0b``, and single-quoted character
    literals (``'S'`` assembles to 83, as in the Figure 1a gadget).
    """
    text = text.strip()
    if len(text) == 3 and text[0] == text[2] == "'":
        return ord(text[1])
    try:
        return int(text, 0)
    except ValueError:
        return None


def parse_memref(text: str) -> Optional[MemRef]:
    """Parse a ``[...]`` memory operand; return ``None`` if not one."""
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        return None
    inner = text[1:-1].strip()
    if not inner:
        raise AssemblyError("empty memory operand []")
    # Split into signed terms on + / - while keeping the sign.
    terms: List[Tuple[int, str]] = []
    sign, start = 1, 0
    depth_terms = re.split(r"([+-])", inner)
    pending_sign = 1
    for piece in depth_terms:
        piece = piece.strip()
        if piece == "+":
            pending_sign = 1
        elif piece == "-":
            pending_sign = -1
        elif piece:
            terms.append((pending_sign, piece))
            pending_sign = 1
    del sign, start

    base = index = None
    scale = 1
    disp = 0
    for term_sign, term in terms:
        immediate = parse_immediate(term)
        if immediate is not None:
            disp += term_sign * immediate
            continue
        match = _MEM_TERM_RE.match(term)
        if not match:
            raise AssemblyError(f"bad memory-operand term {term!r}")
        register, scale_text = match.group(1).lower(), match.group(2)
        if register not in GPRS:
            raise AssemblyError(f"unknown register {register!r} in memory operand")
        if term_sign < 0:
            raise AssemblyError(f"cannot subtract register {register!r} in memory operand")
        if scale_text is not None:
            if index is not None:
                raise AssemblyError("memory operand has two index registers")
            index, scale = register, int(scale_text)
        elif base is None:
            base = register
        elif index is None:
            index = register
        else:
            raise AssemblyError("memory operand has too many registers")
    return MemRef(base=base, index=index, scale=scale, disp=disp)


def _split_operands(text: str) -> List[str]:
    """Split an operand string on commas that are outside brackets."""
    operands, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _parse_cond(mnemonic: str) -> Optional[Cond]:
    """Map a ``j<cc>`` mnemonic to its :class:`Cond`, or ``None``."""
    if not mnemonic.startswith("j") or mnemonic in ("jmp",):
        return None
    suffix = mnemonic[1:]
    if suffix in COND_ALIASES:
        return COND_ALIASES[suffix]
    try:
        return Cond(suffix)
    except ValueError:
        return None


def _assemble_line(mnemonic: str, operands: List[str], comment: str) -> Instruction:
    """Assemble one mnemonic + operand list into an :class:`Instruction`."""

    def expect(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}"
            )

    if mnemonic in _ZERO_OPERAND:
        expect(0)
        return Instruction(_ZERO_OPERAND[mnemonic], comment=comment)

    if mnemonic in ("jmp", "call", "xbegin"):
        expect(1)
        op = {"jmp": Op.JMP, "call": Op.CALL, "xbegin": Op.XBEGIN}[mnemonic]
        return Instruction(op, target=operands[0], comment=comment)

    cond = _parse_cond(mnemonic)
    if cond is not None:
        expect(1)
        return Instruction(Op.JCC, cond=cond, target=operands[0], comment=comment)

    if mnemonic == "clflush":
        expect(1)
        mem = parse_memref(operands[0])
        if mem is None:
            raise AssemblyError("clflush requires a memory operand")
        return Instruction(Op.CLFLUSH, mem=mem, comment=comment)

    if mnemonic in ("prefetch", "prefetcht0", "prefetchnta"):
        expect(1)
        mem = parse_memref(operands[0])
        if mem is None:
            raise AssemblyError(f"{mnemonic} requires a memory operand")
        return Instruction(Op.PREFETCH, mem=mem, comment=comment)

    if mnemonic == "lea":
        expect(2)
        mem = parse_memref(operands[1])
        if operands[0].lower() not in GPRS or mem is None:
            raise AssemblyError("lea requires `lea reg, [mem]`")
        return Instruction(Op.LEA, dst=operands[0].lower(), mem=mem, comment=comment)

    if mnemonic in ("loadb", "movzx"):
        expect(2)
        mem = parse_memref(operands[1])
        if operands[0].lower() not in GPRS or mem is None:
            raise AssemblyError(f"{mnemonic} requires `{mnemonic} reg, [mem]`")
        return Instruction(Op.LOAD_BYTE, dst=operands[0].lower(), mem=mem, comment=comment)

    if mnemonic in ("mov", "load", "store"):
        expect(2)
        left, right = operands
        left_mem, right_mem = parse_memref(left), parse_memref(right)
        if left_mem is not None and right_mem is not None:
            raise AssemblyError("mov cannot have two memory operands")
        if left_mem is not None:
            source = right.lower()
            if source in GPRS:
                return Instruction(Op.STORE, mem=left_mem, src=source, comment=comment)
            immediate = parse_immediate(right)
            if immediate is None:
                raise AssemblyError(f"bad store source {right!r}")
            return Instruction(Op.STORE, mem=left_mem, imm=immediate, comment=comment)
        destination = left.lower()
        if destination not in GPRS:
            raise AssemblyError(f"unknown destination register {left!r}")
        if right_mem is not None:
            return Instruction(Op.LOAD, dst=destination, mem=right_mem, comment=comment)
        if right.startswith("@"):
            # `mov reg, @label` -- load a code label's address (the
            # `movabs $2f, %rax` of the paper's Listing 1).
            return Instruction(Op.MOV_RI, dst=destination, target=right[1:], comment=comment)
        if right.lower() in GPRS:
            return Instruction(Op.MOV_RR, dst=destination, src=right.lower(), comment=comment)
        immediate = parse_immediate(right)
        if immediate is None:
            raise AssemblyError(f"bad mov source operand {right!r}")
        return Instruction(Op.MOV_RI, dst=destination, imm=immediate, comment=comment)

    if mnemonic in _ALU_OPS:
        expect(2)
        destination = operands[0].lower()
        if destination not in GPRS:
            raise AssemblyError(f"unknown register {operands[0]!r}")
        right = operands[1]
        if right.lower() in GPRS:
            return Instruction(_ALU_OPS[mnemonic], dst=destination, src=right.lower(), comment=comment)
        immediate = parse_immediate(right)
        if immediate is None:
            raise AssemblyError(f"bad {mnemonic} operand {right!r}")
        return Instruction(_ALU_OPS[mnemonic], dst=destination, imm=immediate, comment=comment)

    raise AssemblyError(f"unknown mnemonic {mnemonic!r}")


#: Parse cache: source text -> (instruction tuple, labels).  Instructions
#: are immutable and :class:`Program` copies the label map, so the parse
#: may be shared between programs; each :func:`assemble` call still
#: returns a fresh ``Program`` (target resolution depends on *base*).
#: Gadget builders re-assemble identical sources once per machine, which
#: put the parser on campaign warm-up profiles.
_PARSE_CACHE: Dict[str, Tuple[Tuple[Instruction, ...], Dict[str, int]]] = {}
_PARSE_CACHE_MAX = 256


def assemble(source: str, base: int = 0x400000) -> Program:
    """Assemble *source* text into a :class:`Program` at virtual *base*.

    Raises :class:`AssemblyError` with a line number on any syntax error.
    """
    cached = _PARSE_CACHE.get(source)
    if cached is None:
        parsed = _parse(source)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[source] = cached = parsed
    instructions, labels = cached
    return Program(list(instructions), labels=labels, base=base, source=source)


def _parse(source: str) -> Tuple[Tuple[Instruction, ...], Dict[str, int]]:
    """Parse *source* into (instructions, labels), base-independent."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].split("#", 1)[0].strip()
        comment = ""
        if ";" in raw_line:
            comment = raw_line.split(";", 1)[1].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label, rest = match.group(1), match.group(2).strip()
            if label in labels:
                raise AssemblyError(f"line {line_number}: duplicate label {label!r}")
            labels[label] = len(instructions)
            if not rest:
                continue
            line = rest
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text)
        try:
            instructions.append(_assemble_line(mnemonic, operands, comment))
        except AssemblyError as error:
            raise AssemblyError(f"line {line_number}: {error}") from None

    for label, target_index in labels.items():
        if target_index > len(instructions):
            raise AssemblyError(f"label {label!r} points past end of program")

    return tuple(instructions), labels
