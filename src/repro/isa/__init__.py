"""Micro-ISA substrate: an x86-64-flavoured instruction set for the simulator.

The Whisper paper's gadgets (Figure 1a, Listing 1, Listing 2) are short
sequences of x86 instructions: loads, compares, conditional jumps, fences,
``clflush``, ``rdtsc``, ``call``/``ret`` and TSX transactions.  This package
defines a miniature ISA that covers exactly that surface:

* :mod:`repro.isa.registers` -- architectural register file and RFLAGS.
* :mod:`repro.isa.opcodes` -- opcode and condition-code enumerations plus
  static per-opcode metadata (uop class, latency class, serialising, ...).
* :mod:`repro.isa.instructions` -- the :class:`Instruction` value type.
* :mod:`repro.isa.assembler` -- a two-pass text assembler with labels so
  gadgets can be written the way the paper's listings read.
* :mod:`repro.isa.program` -- an assembled :class:`Program` bound to a
  virtual base address.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Instruction, MemRef
from repro.isa.opcodes import Cond, Op, UopClass
from repro.isa.program import Program
from repro.isa.registers import GPRS, RegisterFile

__all__ = [
    "AssemblyError",
    "Cond",
    "GPRS",
    "Instruction",
    "MemRef",
    "Op",
    "Program",
    "RegisterFile",
    "UopClass",
    "assemble",
]
