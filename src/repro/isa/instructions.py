"""The :class:`Instruction` value type and memory-operand representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.isa.opcodes import OP_INFO, Cond, Op, OpInfo


@dataclass(frozen=True)
class MemRef:
    """A ``[base + index*scale + disp]`` memory operand.

    ``base``/``index`` are register names or ``None``; ``disp`` is a byte
    displacement.  Effective-address computation lives here so the load/
    store unit and ``lea`` share one definition.
    """

    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    disp: int = 0

    def effective_address(self, read_reg) -> int:
        """Compute the effective address using *read_reg* (name -> value)."""
        address = self.disp
        if self.base is not None:
            address += read_reg(self.base)
        if self.index is not None:
            address += read_reg(self.index) * self.scale
        return address & ((1 << 64) - 1)

    def __str__(self) -> str:
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}" if self.scale != 1 else self.index)
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}" if self.disp >= 0 else f"-{-self.disp:#x}")
        return "[" + " + ".join(parts) + "]"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields are operand slots -- which are populated depends on ``op``:

    * ``dst``/``src``: register names for register operands.
    * ``imm``: immediate value.
    * ``mem``: a :class:`MemRef` for memory operands (LOAD/STORE/CLFLUSH/LEA).
    * ``target``: label name for control flow (resolved to an address by the
      assembler and stored in ``target_addr``).
    * ``cond``: condition code for JCC.
    """

    op: Op
    dst: Optional[str] = None
    src: Optional[str] = None
    imm: Optional[int] = None
    mem: Optional[MemRef] = None
    target: Optional[str] = None
    target_addr: Optional[int] = None
    cond: Optional[Cond] = None
    #: Source-line comment carried through for traces (purely cosmetic).
    comment: str = field(default="", compare=False)

    @cached_property
    def info(self) -> OpInfo:
        """Static decode metadata for this opcode (cached: the opcode
        table lookup sat on the core's dispatch path)."""
        return OP_INFO[self.op]

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_memory(self) -> bool:
        return self.info.is_load or self.info.is_store

    @property
    def uop_count(self) -> int:
        return self.info.uop_count

    def with_target_addr(self, addr: int) -> "Instruction":
        """Return a copy with the branch target resolved to *addr*."""
        return Instruction(
            op=self.op,
            dst=self.dst,
            src=self.src,
            imm=self.imm,
            mem=self.mem,
            target=self.target,
            target_addr=addr,
            cond=self.cond,
            comment=self.comment,
        )

    def __str__(self) -> str:
        mnemonic = self.op.value
        if self.op is Op.JCC and self.cond is not None:
            mnemonic = "j" + self.cond.value
        operands = []
        if self.dst is not None:
            operands.append(self.dst)
        if self.mem is not None:
            operands.append(str(self.mem))
        if self.src is not None:
            operands.append(self.src)
        if self.imm is not None:
            operands.append(f"{self.imm:#x}" if abs(self.imm) > 9 else str(self.imm))
        if self.target is not None:
            operands.append(self.target)
        elif self.target_addr is not None:
            operands.append(f"{self.target_addr:#x}")
        text = mnemonic + (" " + ", ".join(operands) if operands else "")
        return text
