"""Assembled programs: instruction sequences bound to virtual addresses."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import Instruction

#: Fixed encoded size of every instruction, in bytes.  x86 is variable
#: length; a fixed size keeps PC arithmetic trivial without affecting any
#: behaviour the paper measures (alignment effects are modelled at the
#: fetch-line granularity, not per instruction).
INSTRUCTION_SIZE = 4


class Program:
    """A sequence of instructions bound to a base virtual address.

    The core fetches by virtual address; :meth:`fetch` maps an address back
    to its instruction.  Labels survive assembly so tests and traces can
    refer to gadget landmarks symbolically.
    """

    def __init__(
        self,
        instructions: List[Instruction],
        labels: Optional[Dict[str, int]] = None,
        base: int = 0x400000,
        source: str = "",
    ) -> None:
        self.base = base
        self.source = source
        self.labels = dict(labels or {})
        self.instructions = self._resolve_targets(instructions)

    def _resolve_targets(self, instructions: List[Instruction]) -> List[Instruction]:
        resolved = []
        for instruction in instructions:
            if instruction.target is not None and instruction.target_addr is None:
                if instruction.target not in self.labels:
                    raise KeyError(f"undefined label {instruction.target!r}")
                addr = self.address_of_index(self.labels[instruction.target])
                instruction = instruction.with_target_addr(addr)
            resolved.append(instruction)
        return resolved

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def address_of_index(self, index: int) -> int:
        """Virtual address of the instruction at *index*."""
        return self.base + index * INSTRUCTION_SIZE

    def index_of_address(self, address: int) -> int:
        """Instruction index for virtual *address* (must be in range)."""
        offset = address - self.base
        index, remainder = divmod(offset, INSTRUCTION_SIZE)
        if remainder or not 0 <= index < len(self.instructions):
            raise IndexError(f"address {address:#x} is not inside this program")
        return index

    def contains_address(self, address: int) -> bool:
        """Whether *address* points at an instruction of this program."""
        offset = address - self.base
        if offset < 0 or offset % INSTRUCTION_SIZE:
            return False
        return offset // INSTRUCTION_SIZE < len(self.instructions)

    def fetch(self, address: int) -> Instruction:
        """Return the instruction at virtual *address*."""
        return self.instructions[self.index_of_address(address)]

    def label_address(self, name: str) -> int:
        """Virtual address of label *name*."""
        return self.address_of_index(self.labels[name])

    @property
    def end_address(self) -> int:
        """Address one past the last instruction."""
        return self.address_of_index(len(self.instructions))

    def listing(self) -> str:
        """Return a human-readable disassembly listing with labels."""
        by_index: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for index, instruction in enumerate(self.instructions):
            for name in sorted(by_index.get(index, [])):
                lines.append(f"{name}:")
            address = self.address_of_index(index)
            lines.append(f"  {address:#x}: {instruction}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Program({len(self.instructions)} instructions at {self.base:#x})"
