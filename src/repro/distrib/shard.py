"""Shard execution: one deterministic slice of a campaign per host.

A shard run is just a :class:`~repro.campaign.runner.CampaignRunner`
bound to a :class:`~repro.campaign.spec.Shard`: it expands the full
grid, keeps only the expansion positions the shard covers, and fills a
perfectly normal checkpointed :class:`~repro.campaign.store.ResultStore`
segment with their outcomes.  Everything the single-host runner earned
-- resume after interruption, structured failure records, retry
policies, torn-checkpoint recovery -- applies to a shard segment
unchanged, because it *is* a store.

The one distributed addition is the **manifest**: a small
``manifest.json`` written into the segment root *before* any trial
runs, naming exactly what the segment slices (campaign, spec digest,
shard arithmetic) and under which schema/store/format versions it was
produced.  :mod:`repro.distrib.merge` uses manifests to refuse merges
that would silently mix incompatible runs; a segment that died before
its first checkpoint still carries one.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro import __version__ as REPRO_VERSION
from repro.campaign.report import REPORT_SCHEMA_VERSION
from repro.campaign.runner import CampaignRunner, RunStats
from repro.campaign.spec import CampaignSpec, Shard
from repro.campaign.store import STORE_FORMAT, ResultStore, spec_digest

MANIFEST_NAME = "manifest.json"

#: Telemetry sidecar recorded next to a segment's ``results.jsonl`` by
#: ``campaign shard --trace-out`` (the coordinator's ``trace`` mode);
#: :func:`repro.distrib.merge.merge_telemetry` folds these into the
#: fleet-wide ``repro obs`` view.
TELEMETRY_SIDECAR = "telemetry.jsonl"


def telemetry_sidecar(root: str) -> str:
    """The conventional telemetry sidecar path inside a segment root."""
    return os.path.join(root, TELEMETRY_SIDECAR)


def telemetry_sidecar_args(root: str) -> List[str]:
    """The ``campaign shard`` CLI arguments that record the sidecar."""
    return ["--trace-out", telemetry_sidecar(root)]


def stream_spool_args(root: str, every: int) -> List[str]:
    """The ``campaign shard`` CLI arguments that arm the live spool."""
    from repro.telemetry.stream import stream_spool

    return ["--stream-out", stream_spool(root), "--stream-every", str(every)]


@dataclass(frozen=True)
class ShardManifest:
    """What one store segment sliced, and under which format versions.

    ``shard_index``/``shard_of`` are None for a merged (whole-campaign)
    store -- :func:`repro.distrib.merge.merge_stores` writes such a
    manifest into its destination so merged stores can themselves be
    merged further (tree reductions across racks) under the same
    version fencing.
    """

    campaign: str
    spec_digest: str
    schema_version: int
    store_format: int
    repro_version: str
    shard_index: Optional[int]
    shard_of: Optional[int]
    trials: int

    @classmethod
    def for_shard(
        cls, spec: CampaignSpec, shard: Optional[Shard]
    ) -> "ShardManifest":
        total = spec.trial_count()
        return cls(
            campaign=spec.name,
            spec_digest=spec_digest(spec),
            schema_version=REPORT_SCHEMA_VERSION,
            store_format=STORE_FORMAT,
            repro_version=REPRO_VERSION,
            shard_index=shard.index if shard is not None else None,
            shard_of=shard.of if shard is not None else None,
            trials=shard.size(total) if shard is not None else total,
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"


def manifest_path(root: str) -> str:
    return os.path.join(root, MANIFEST_NAME)


def write_manifest(root: str, manifest: ShardManifest) -> str:
    """Write *manifest* into the segment *root*; returns the path."""
    os.makedirs(root, exist_ok=True)
    path = manifest_path(root)
    with open(path, "w") as handle:
        handle.write(manifest.to_json())
    return path


def read_manifest(root: str) -> Optional[ShardManifest]:
    """The segment's manifest, or None for a bare (pre-distrib) store."""
    path = manifest_path(root)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        record = json.load(handle)
    return ShardManifest(
        campaign=str(record["campaign"]),
        spec_digest=str(record["spec_digest"]),
        schema_version=int(record["schema_version"]),
        store_format=int(record["store_format"]),
        repro_version=str(record["repro_version"]),
        shard_index=(
            None if record["shard_index"] is None else int(record["shard_index"])
        ),
        shard_of=(
            None if record["shard_of"] is None else int(record["shard_of"])
        ),
        trials=int(record["trials"]),
    )


def segment_root(dest_root: str, shard: Shard) -> str:
    """The conventional segment directory for *shard* under a fleet root."""
    return os.path.join(dest_root, "segments", shard.label)


def shard_spec_positions(spec: CampaignSpec, shard: Shard) -> List[int]:
    """The expansion positions *shard* covers for *spec* (diagnostics)."""
    return list(shard.positions(spec.trial_count()))


def run_shard(
    spec: CampaignSpec,
    shard: Shard,
    store_root: str,
    **runner_kwargs,
) -> Tuple[ResultStore, RunStats]:
    """Execute one shard into its segment store; returns (store, stats).

    Writes the manifest first -- a worker killed before its first
    checkpoint still leaves a segment that names what it was doing --
    then runs the shard-filtered campaign with normal per-batch
    checkpointing.  Re-invoking on an existing segment resumes it: only
    the missing outcomes execute.  *runner_kwargs* pass through to
    :class:`~repro.campaign.runner.CampaignRunner` (pool, policy,
    batch_size, trial_fn, ...).
    """
    write_manifest(store_root, ShardManifest.for_shard(spec, shard))
    store = ResultStore(store_root)
    runner = CampaignRunner(spec, store=store, shard=shard, **runner_kwargs)
    _, stats = runner.run()
    return store, stats


def run_shard_observed(
    spec: CampaignSpec,
    shard: Shard,
    store_root: str,
    trace_path: Optional[str] = None,
    stream_path: Optional[str] = None,
    stream_every: Optional[int] = None,
    observed: Optional[dict] = None,
    **runner_kwargs,
) -> Tuple[ResultStore, RunStats]:
    """:func:`run_shard` with the observability plane armed around it.

    One code path seals both telemetry artifacts so their contents can
    never drift apart:

    * *trace_path* -- the end-of-shard sidecar (``telemetry.jsonl``),
      written from a **single** drain of the recorder and registry;
    * *stream_path* -- the live spool (``stream.jsonl``): a
      :class:`~repro.telemetry.stream.StreamWriter` is fed from the
      runner's per-batch ``stream`` hook and its ``end`` frame carries
      the *same* drained metrics snapshot the sidecar was written from.
      That shared dict is the whole byte-identity contract: folding the
      spool reproduces exactly what ``merge_telemetry`` reads.

    Streaming also arms the pool heartbeat cadence (trial counts, never
    wall clocks) for the duration of the run and disarms it after.
    Artifacts are sealed in a ``finally`` -- an aborted or crashed shard
    still leaves a tailable spool and a replayable sidecar.  *observed*,
    when given, is filled with ``{"records": N, "metrics": {...}}`` so
    callers can report what was sealed even when the run raised.
    """
    from repro import telemetry
    from repro.telemetry.export import write_jsonl
    from repro.telemetry.stream import DEFAULT_STREAM_EVERY, StreamWriter

    if trace_path is None and stream_path is None:
        return run_shard(spec, shard, store_root, **runner_kwargs)
    every = DEFAULT_STREAM_EVERY if stream_every is None else stream_every
    telemetry.enable(wall_clock=True)
    writer = None
    if stream_path is not None:
        telemetry.set_heartbeat_cadence(every)
        writer = StreamWriter(
            stream_path,
            shard=shard.label,
            campaign=spec.name,
            total=shard.size(spec.trial_count()),
            every=every,
        )
        runner_kwargs["stream"] = writer.on_batch
    try:
        return run_shard(spec, shard, store_root, **runner_kwargs)
    finally:
        metrics = telemetry.metrics_registry().drain()
        # Seal the spool before draining the recorder: close() collects
        # the final span delta (spans closed since the last cadence
        # flush) straight from the live recorder.
        if writer is not None:
            writer.close(snapshot=metrics)
        records = telemetry.recorder().drain()
        telemetry.disable()
        telemetry.set_heartbeat_cadence(0)
        if trace_path is not None:
            write_jsonl(records, trace_path, metrics=metrics)
        if observed is not None:
            observed["records"] = len(records)
            observed["metrics"] = metrics
