"""repro.distrib -- distributed campaign execution over shared-nothing hosts.

Whisper's evaluation is embarrassingly parallel: millions of independent
TET timing trials per environment cell, each a pure function of its
payload.  This package is the step from "one box" to "a fleet", built
entirely on two contracts the campaign layer already enforces:

* the :class:`~repro.campaign.store.ResultStore` is content-addressed
  (a trial's outcome lives under the SHA-256 of its canonical payload),
  so results computed anywhere can be combined by key with no
  coordination; and
* the report artifact is a pure function of ``(spec, outcomes)``, so a
  merged fleet run renders *byte-identical* artifacts to a single-host
  run.

Three moving parts:

* :mod:`repro.distrib.shard` -- deterministic partitioning of a frozen
  :class:`~repro.campaign.spec.CampaignSpec` grid into ``n`` disjoint
  shards (``campaign shard --index i --of n``), each producing a normal
  checkpointed store segment plus a manifest naming what it sliced;
* :mod:`repro.distrib.merge` -- dedup-by-key merge of JSONL store
  segments (``campaign merge``), with hard conflict detection on
  mismatched bodies and schema-version fencing across heterogeneous
  runs; the merged segment is written in sorted-key order, so it is
  byte-identical for any segment order and any completion interleaving;
* :mod:`repro.distrib.coordinator` -- an asyncio coordinator
  (``campaign fleet``) that hands shards to local subprocess or
  remote-stub workers, retries failed shards with the seeded backoff
  from :mod:`repro.faults.resilience` (resume is free: segments are
  checkpointed stores), ingests completed segments as they land, and
  aggregates fleet-wide metrics into the existing ``repro obs`` view.

The load-bearing invariant -- ``merge(shard_0 .. shard_{n-1})`` yields a
report byte-identical to a single-host run for any ``n`` and any
interleaving -- is pinned three ways: golden byte-identity suites
(``tests/test_distrib_identity.py``), property tests that sharding is a
disjoint exact cover and merge is order-insensitive and idempotent
(``tests/test_distrib_properties.py``), and a chaos suite that kills
shard workers mid-run and tears segments
(``tests/test_distrib_chaos.py``).  See ``docs/DISTRIBUTED.md``.
"""

from repro.campaign.spec import Shard
from repro.distrib.coordinator import (
    Coordinator,
    FleetError,
    FleetResult,
    LocalProcessWorker,
    ShardAttempt,
    ShardWorkerError,
    StubWorker,
)
from repro.distrib.merge import (
    MergeConflict,
    MergeError,
    MergeStats,
    SchemaMismatch,
    merge_stores,
    merge_telemetry,
)
from repro.distrib.shard import (
    ShardManifest,
    manifest_path,
    read_manifest,
    run_shard,
    run_shard_observed,
    segment_root,
    shard_spec_positions,
    stream_spool_args,
    telemetry_sidecar,
    write_manifest,
)

__all__ = [
    "Coordinator",
    "FleetError",
    "FleetResult",
    "LocalProcessWorker",
    "MergeConflict",
    "MergeError",
    "MergeStats",
    "SchemaMismatch",
    "Shard",
    "ShardAttempt",
    "ShardManifest",
    "ShardWorkerError",
    "StubWorker",
    "manifest_path",
    "merge_stores",
    "merge_telemetry",
    "read_manifest",
    "run_shard",
    "run_shard_observed",
    "segment_root",
    "shard_spec_positions",
    "stream_spool_args",
    "telemetry_sidecar",
    "write_manifest",
]
