"""The fleet coordinator: hand out shards, survive workers, ingest segments.

An asyncio loop in the ``repro.serve`` style: the coordinator owns the
campaign's shard arithmetic and a destination store; workers own
nothing but the shard they were handed.  Because every shard writes a
checkpointed, content-addressed segment, the coordinator's failure
handling is deliberately dumb -- a failed worker is simply *re-handed
the same shard* after the seeded backoff from
:mod:`repro.faults.resilience`, and the retried run resumes from the
segment's last checkpoint.  No work tracking, no partial-result
protocol, no idempotence bookkeeping: the store's keys are the
bookkeeping.

Two worker shapes ship here:

* :class:`LocalProcessWorker` -- spawns ``python -m repro campaign
  shard`` subprocesses, the one-box fleet (and the shape a real
  multi-host dispatcher would wrap with ssh/k8s);
* :class:`StubWorker` -- an in-process stand-in for a remote host, with
  scriptable mid-run deaths, used by the chaos suite and the ``faults``
  style demos.

Completed segments are ingested (merged into the destination) the
moment they land; merge order cannot matter because the merged bytes
are canonical (see :mod:`repro.distrib.merge`).  Fleet-wide metrics --
shard attempts, retries, merged record counts, per-shard wall times,
plus every segment's telemetry sidecar -- aggregate into one recorded
run that the existing ``repro obs report`` view renders.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.report import CampaignReport
from repro.campaign.runner import CampaignRunner, RunStats
from repro.campaign.spec import CampaignSpec, Shard
from repro.campaign.store import ResultStore
from repro.distrib.merge import MergeStats, merge_stores, merge_telemetry
from repro.distrib.shard import (
    run_shard,
    run_shard_observed,
    segment_root,
    stream_spool_args,
    telemetry_sidecar,
    telemetry_sidecar_args,
)
from repro.faults.resilience import ResiliencePolicy

FLEET_TELEMETRY = "fleet_telemetry.jsonl"


class ShardWorkerError(RuntimeError):
    """A worker failed (or died) before completing its shard."""

    def __init__(self, shard: Shard, attempt: int, detail: str) -> None:
        super().__init__(f"{shard} attempt {attempt} failed: {detail}")
        self.shard = shard
        self.attempt = attempt
        self.detail = detail


class FleetError(RuntimeError):
    """Some shard exhausted every retry.

    Everything completed -- including the failing shard's checkpointed
    prefix -- is durable in the destination and segment stores; a later
    ``fleet`` or ``shard`` run resumes from it.
    """

    def __init__(self, failed: List["ShardAttempt"]) -> None:
        shards = ", ".join(str(a.shard) for a in failed)
        super().__init__(
            f"{len(failed)} shard(s) failed every retry: {shards} "
            f"(segments are checkpointed; rerun to resume)"
        )
        self.failed = failed


@dataclass
class ShardAttempt:
    """One worker attempt at one shard (fleet provenance)."""

    shard: Shard
    attempt: int
    ok: bool
    wall_seconds: float
    detail: str = ""


@dataclass
class FleetResult:
    """What a coordinator run produced."""

    name: str
    shards: int
    attempts: List[ShardAttempt] = field(default_factory=list)
    merge: Optional[MergeStats] = None
    #: The whole-campaign report collected from the merged store, or
    #: None if the merged store does not yet cover the full grid.
    report: Optional[CampaignReport] = None
    #: The aggregated fleet metrics snapshot (``repro obs`` shape).
    metrics: Dict[str, dict] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(1 for a in self.attempts if a.ok)

    @property
    def retries(self) -> int:
        return sum(1 for a in self.attempts if not a.ok)

    def __str__(self) -> str:
        text = (
            f"fleet {self.name}: {self.completed}/{self.shards} shards "
            f"({self.retries} failed attempts)"
        )
        if self.merge is not None:
            text += f"; merged {self.merge.unique} unique records"
        return text


# -- workers -------------------------------------------------------------------


class LocalProcessWorker:
    """Run each shard as a ``python -m repro campaign shard`` subprocess.

    The subprocess is a completely ordinary shard run: it resolves the
    builtin campaign by name, fills its segment store with per-batch
    checkpoints, and exits non-zero on failure.  A killed or crashed
    subprocess therefore costs at most one batch, and the coordinator's
    retry resumes the rest.
    """

    def __init__(
        self,
        campaign: str,
        workers: int = 0,
        batch_size: Optional[int] = None,
        retry: int = 0,
        trace: bool = False,
        stream: bool = False,
        stream_every: Optional[int] = None,
        python: str = sys.executable,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        self.campaign = campaign
        self.workers = workers
        self.batch_size = batch_size
        self.retry = retry
        # Streaming implies tracing: the spool's end frame must carry
        # the same snapshot the sidecar is written from (fold identity).
        self.trace = trace or stream
        self.stream = stream
        self.stream_every = stream_every
        self.python = python
        self.env = env

    def _environment(self) -> Dict[str, str]:
        if self.env is not None:
            return dict(self.env)
        env = dict(os.environ)
        # The worker must resolve the same `repro` this process runs.
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src + (os.pathsep + existing if existing else "")
            )
        return env

    def command(self, shard: Shard, segment: str) -> List[str]:
        cmd = [
            self.python, "-m", "repro", "campaign", "shard", self.campaign,
            "--index", str(shard.index), "--of", str(shard.of),
            "--store", segment,
        ]
        if self.workers > 0:
            cmd += ["--workers", str(self.workers)]
        if self.batch_size is not None:
            cmd += ["--batch-size", str(self.batch_size)]
        if self.retry > 0:
            cmd += ["--retry", str(self.retry)]
        if self.trace:
            cmd += telemetry_sidecar_args(segment)
        if self.stream:
            from repro.telemetry.stream import DEFAULT_STREAM_EVERY

            every = self.stream_every or DEFAULT_STREAM_EVERY
            cmd += stream_spool_args(segment, every)
        return cmd

    async def __call__(self, shard: Shard, segment: str, attempt: int) -> None:
        process = await asyncio.create_subprocess_exec(
            *self.command(shard, segment),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=self._environment(),
        )
        _, stderr = await process.communicate()
        if process.returncode != 0:
            tail = stderr.decode(errors="replace").strip().splitlines()[-6:]
            raise ShardWorkerError(
                shard,
                attempt,
                f"exit code {process.returncode}: " + " | ".join(tail),
            )


class StubWorker:
    """An in-process stand-in for a remote host (tests, chaos, demos).

    Runs the shard through :func:`~repro.distrib.shard.run_shard` in
    this interpreter.  ``chaos(shard, attempt)`` scripts failures: None
    means run to completion; an integer ``k`` means the worker "dies"
    after ``k`` checkpointed batches -- the segment keeps those batches,
    exactly like a real host losing power mid-run, and the retried
    attempt resumes past them.

    ``stream=True`` (optionally with ``trace=True`` for the sidecar)
    routes through :func:`~repro.distrib.shard.run_shard_observed`, so
    chaos suites can exercise the live spool's attempt/dedup machinery
    without subprocesses: a scripted death still seals the partial
    attempt, and the retry appends a fresh (higher) attempt whose end
    frame supersedes it in the fold.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        chaos: Optional[Callable[[Shard, int], Optional[int]]] = None,
        trace: bool = False,
        stream: bool = False,
        stream_every: Optional[int] = None,
        **runner_kwargs,
    ) -> None:
        self.spec = spec
        self.chaos = chaos
        self.trace = trace or stream
        self.stream = stream
        self.stream_every = stream_every
        self.runner_kwargs = runner_kwargs

    async def __call__(self, shard: Shard, segment: str, attempt: int) -> None:
        surviving = self.chaos(shard, attempt) if self.chaos else None
        kwargs = dict(self.runner_kwargs)
        if surviving is not None:
            seen = {"batches": 0}
            inner = kwargs.get("progress")

            def _killer(message: str) -> None:
                if inner is not None:
                    inner(message)
                seen["batches"] += 1
                if seen["batches"] > surviving:
                    raise _WorkerDied(message)

            kwargs["progress"] = _killer
        try:
            if self.trace:
                from repro.telemetry.stream import stream_spool

                run_shard_observed(
                    self.spec,
                    shard,
                    segment,
                    trace_path=telemetry_sidecar(segment),
                    stream_path=(
                        stream_spool(segment) if self.stream else None
                    ),
                    stream_every=self.stream_every,
                    **kwargs,
                )
            else:
                run_shard(self.spec, shard, segment, **kwargs)
        except _WorkerDied as died:
            raise ShardWorkerError(
                shard, attempt, f"worker died mid-run ({died})"
            ) from None


class _WorkerDied(BaseException):
    """The stub worker's scripted mid-run death (never absorbable)."""


# -- the coordinator -----------------------------------------------------------


class Coordinator:
    """Fan a campaign's shards across workers and merge what lands.

    *worker* is any async callable ``(shard, segment_root, attempt)``
    that raises :class:`ShardWorkerError` (or any ``Exception``) on
    failure.  *policy* governs shard-level retry and backoff --
    ``max_retries`` re-hands a failed shard that many times, with
    :func:`~repro.faults.resilience.backoff_delay` seconds between
    attempts.  *parallel* bounds in-flight shards (default: shard
    count, capped at 8).

    *detector* is the fleet's ingest-on-completion hook: a
    :class:`~repro.defend.online.StreamingDetector` (or anything with
    its ``ingest_store(store, shard=...)`` shape) fed each shard's
    segment the moment it lands.  Detector ingestion deduplicates per
    trial coordinate, so retried shards and the round-robin cover's
    interleaving cannot change what the detector concludes.

    ``stream=True`` arms the live plane: the coordinator builds a
    :class:`~repro.telemetry.stream.FleetView` over every shard's
    conventional spool path and tails all of them *concurrently with
    shard execution* -- an asyncio task polls the spools every
    *stream_interval* seconds and hands the refreshed view to
    *on_stream* (the ``repro obs top`` renderer, a test probe, ...).
    Tailing is read-only and purely additive: the merge/ingest path and
    every final artifact are byte-identical with streaming on or off.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        dest_root: str,
        shards: int,
        worker: Callable,
        policy: Optional[ResiliencePolicy] = None,
        parallel: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        detector=None,
        stream: bool = False,
        stream_interval: float = 0.2,
        on_stream: Optional[Callable] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.spec = spec
        self.dest_root = dest_root
        self.shards = [Shard(index, shards) for index in range(shards)]
        self.worker = worker
        self.policy = policy if policy is not None else ResiliencePolicy(
            max_retries=1, backoff_base=0.0
        )
        self.parallel = parallel if parallel else min(shards, 8)
        self.detector = detector
        self.stream = stream
        self.stream_interval = stream_interval
        #: The live fleet view (populated only for streaming runs); kept
        #: on the instance so callers can inspect the final tailed state
        #: after :meth:`run` returns.
        self.stream_view = None
        self._on_stream = on_stream or (lambda view: None)
        self._progress = progress or (lambda message: None)
        self._lock: Optional[asyncio.Lock] = None
        self._semaphore: Optional[asyncio.Semaphore] = None

    # -- driving one shard -----------------------------------------------------

    async def _drive(
        self, shard: Shard, result: FleetResult
    ) -> Optional[ShardAttempt]:
        segment = segment_root(self.dest_root, shard)
        assert self._semaphore is not None and self._lock is not None
        async with self._semaphore:
            last: Optional[ShardAttempt] = None
            for attempt in range(self.policy.attempts):
                started = time.perf_counter()
                try:
                    await self.worker(shard, segment, attempt)
                except Exception as exc:  # worker failed; shard survives
                    wall = time.perf_counter() - started
                    last = ShardAttempt(shard, attempt, False, wall, str(exc))
                    result.attempts.append(last)
                    self._progress(
                        f"{shard} attempt {attempt} failed: {exc}"
                    )
                    if attempt + 1 < self.policy.attempts:
                        delay = self.policy.delay(attempt)
                        if delay > 0:
                            await asyncio.sleep(delay)
                    continue
                wall = time.perf_counter() - started
                async with self._lock:
                    result.merge = merge_stores([segment], self.dest_root)
                    if self.detector is not None:
                        self.detector.ingest_store(
                            ResultStore(segment), shard=shard
                        )
                attempt_record = ShardAttempt(shard, attempt, True, wall)
                result.attempts.append(attempt_record)
                self._progress(
                    f"{shard} completed on attempt {attempt} "
                    f"({result.merge.unique} records merged so far)"
                )
                return attempt_record
            return last

    # -- the fleet run ---------------------------------------------------------

    async def run_async(self) -> FleetResult:
        self._lock = asyncio.Lock()
        self._semaphore = asyncio.Semaphore(self.parallel)
        result = FleetResult(name=self.spec.name, shards=len(self.shards))
        tail_task = None
        tail_done: Optional[asyncio.Event] = None
        if self.stream:
            from repro.telemetry.stream import FleetView, stream_spool

            self.stream_view = FleetView(
                {
                    shard.label: stream_spool(
                        segment_root(self.dest_root, shard)
                    )
                    for shard in self.shards
                },
                campaign=self.spec.name,
            )
            tail_done = asyncio.Event()
            tail_task = asyncio.create_task(
                self._tail_spools(self.stream_view, tail_done)
            )
        try:
            outcomes = await asyncio.gather(
                *(self._drive(shard, result) for shard in self.shards)
            )
        finally:
            if tail_task is not None and tail_done is not None:
                tail_done.set()
                await tail_task
        failed = [a for a in outcomes if a is not None and not a.ok]
        self._aggregate_metrics(result)
        if failed:
            raise FleetError(failed)
        result.report = CampaignRunner(
            self.spec, store=ResultStore(self.dest_root)
        ).collect()
        return result

    async def _tail_spools(self, view, done: asyncio.Event) -> None:
        """Tail every shard spool until the fleet finishes.

        Runs concurrently with ``_drive``: each tick polls the spools
        (cheap incremental reads from the persisted cursor offsets) and
        hands the refreshed view to the ``on_stream`` consumer.  A final
        poll after ``done`` fires guarantees the consumer sees the
        sealed end frames, so the last rendered state is the complete
        stream -- the prefix property ends at the full fold.
        """
        while not done.is_set():
            if view.poll():
                self._on_stream(view)
            try:
                await asyncio.wait_for(
                    done.wait(), timeout=self.stream_interval
                )
            except asyncio.TimeoutError:
                continue
        view.poll()
        self._on_stream(view)

    def run(self) -> FleetResult:
        return asyncio.run(self.run_async())

    def _aggregate_metrics(self, result: FleetResult) -> None:
        """Fold fleet counters and segment sidecars into one obs view."""
        from repro.telemetry.export import write_jsonl
        from repro.telemetry.metrics import MetricsRegistry, merge_snapshots

        registry = MetricsRegistry()
        registry.gauge("fleet.shards.of").set(len(self.shards))
        for attempt in result.attempts:
            registry.counter("fleet.attempts", det=False).add()
            if attempt.ok:
                registry.counter("fleet.shards.completed", det=False).add()
            else:
                registry.counter("fleet.shards.retried", det=False).add()
            registry.histogram("fleet.shard.wall_seconds", det=False).observe(
                attempt.wall_seconds
            )
        if result.merge is not None:
            registry.gauge("fleet.records.merged").set(result.merge.unique)
            registry.gauge("fleet.records.failures").set(result.merge.failures)
        sidecars = merge_telemetry(
            segment_root(self.dest_root, shard) for shard in self.shards
        )
        result.metrics = merge_snapshots(registry.snapshot(), sidecars)
        write_jsonl(
            [],
            os.path.join(self.dest_root, FLEET_TELEMETRY),
            metrics=result.metrics,
        )
