"""Lossless merge of content-addressed store segments.

The merge contract, and why it can be this simple: every record in a
:class:`~repro.campaign.store.ResultStore` lives under the SHA-256 of
its trial's canonical payload, and every outcome -- success or
:class:`~repro.runtime.tasks.TrialFailure` -- is a deterministic
function of that payload.  Two segments can therefore only ever agree
about a shared key; a disagreement is not a statistics problem to paper
over but evidence that one side violated the determinism contract (or
was tampered with), and the merge refuses loudly
(:class:`MergeConflict`) rather than pick a winner.

The merged segment is written **in sorted-key order with the canonical
record encoding**, so its bytes are identical for any segment order,
any shard count, and any completion interleaving -- merge is
commutative, associative, and idempotent on the nose, not just up to
semantics (``tests/test_distrib_properties.py`` pins all three).  The
write goes through a temp file and ``os.replace``, so a coordinator
killed mid-ingest leaves the previous merged state intact, never a torn
one.

Version fencing: segments carrying a
:class:`~repro.distrib.shard.ShardManifest` must agree on campaign,
spec digest, schema version and store format before any record is read
(:class:`SchemaMismatch` for version skew).  Bare stores -- e.g. a
pre-distrib single-host ``.campaigns`` directory -- merge without
fencing, trusting their record checksums.

Telemetry sidecars merge separately (:func:`merge_telemetry`): metric
snapshots are commutative monoids (see ``repro.telemetry.metrics``), so
fleet-wide counters fold into one snapshot the existing ``repro obs``
view renders.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.store import ResultStore, StoredOutcome
from repro.distrib.shard import (
    ShardManifest,
    read_manifest,
    telemetry_sidecar,
    write_manifest,
)
from repro.runtime.tasks import TrialFailure


class MergeError(RuntimeError):
    """The segments cannot be combined (inconsistent manifests)."""


class SchemaMismatch(MergeError):
    """Segments were produced under different schema/store versions.

    Raised before any record is read: a fleet whose hosts disagree on
    the artifact schema cannot produce one trustworthy report, so the
    merge refuses instead of emitting a chimera.
    """


class MergeConflict(MergeError):
    """One key maps to different bodies in different segments.

    Content addresses name computations; a key collision with divergent
    outcomes means some host broke the determinism contract.  The merge
    names the key and both sources so the offending host can be found.
    """

    def __init__(self, key: str, first_root: str, second_root: str) -> None:
        super().__init__(
            f"merge conflict on key {key}: {second_root} disagrees with "
            f"{first_root} about the stored body (determinism violation "
            f"or tampering; refusing to merge)"
        )
        self.key = key
        self.first_root = first_root
        self.second_root = second_root


@dataclass
class MergeStats:
    """What one merge did (provenance only -- never part of artifacts)."""

    segments: int = 0
    #: Well-formed records read across all segments (duplicates included).
    records: int = 0
    #: Distinct keys in the merged output.
    unique: int = 0
    #: Failure records among the merged output.
    failures: int = 0
    #: Shard indices seen per shard count, e.g. ``{3: [0, 1, 2]}``.
    coverage: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def deduped(self) -> int:
        """Duplicate records dropped (identical key *and* body)."""
        return self.records - self.unique

    def __str__(self) -> str:
        text = (
            f"{self.segments} segments, {self.records} records -> "
            f"{self.unique} unique ({self.deduped} deduped, "
            f"{self.failures} failures)"
        )
        for of in sorted(self.coverage):
            indices = self.coverage[of]
            text += f"; shards {len(indices)}/{of} of {of}-way split"
        return text


def _check_manifests(
    manifests: Sequence[Tuple[str, ShardManifest]]
) -> Optional[ShardManifest]:
    """Fence the merge on manifest consistency; returns the reference."""
    if not manifests:
        return None
    first_root, first = manifests[0]
    for root, manifest in manifests[1:]:
        if manifest.schema_version != first.schema_version:
            raise SchemaMismatch(
                f"cannot merge {root} (schema_version "
                f"{manifest.schema_version}) with {first_root} "
                f"(schema_version {first.schema_version}); re-run the "
                f"older shards under the current schema"
            )
        if manifest.store_format != first.store_format:
            raise SchemaMismatch(
                f"cannot merge {root} (store format {manifest.store_format}) "
                f"with {first_root} (store format {first.store_format})"
            )
        if (
            manifest.campaign != first.campaign
            or manifest.spec_digest != first.spec_digest
        ):
            raise MergeError(
                f"cannot merge {root} (campaign {manifest.campaign}, spec "
                f"{manifest.spec_digest[:16]}) with {first_root} (campaign "
                f"{first.campaign}, spec {first.spec_digest[:16]}): "
                f"segments slice different campaigns"
            )
    return first


def merge_stores(
    segment_roots: Iterable[str],
    dest_root: str,
    check_manifests: bool = True,
) -> MergeStats:
    """Merge *segment_roots* (plus any existing *dest_root* content)
    into a sorted, canonical store at *dest_root*; returns the stats.

    Ingest is incremental by construction: the destination's current
    records participate as one more segment, so a coordinator can merge
    each shard the moment it completes and the final bytes equal a
    single end-of-fleet merge of all segments in any order.  Corrupt
    records inside a segment are skipped by the store's checksum path
    exactly as on load (they degrade to re-execution on the shard's
    resume, never to wrong merged data).
    """
    roots = list(segment_roots)
    stats = MergeStats(segments=len(roots))
    dest = ResultStore(dest_root)
    sources: List[Tuple[str, Dict[str, StoredOutcome]]] = []
    if os.path.exists(dest.path):
        # Incremental ingest: current merged state is one more segment.
        sources.append((dest_root, dict(ResultStore(dest_root)._load())))
    manifests: List[Tuple[str, ShardManifest]] = []
    dest_manifest = read_manifest(dest_root)
    if dest_manifest is not None:
        manifests.append((dest_root, dest_manifest))
    for root in roots:
        manifest = read_manifest(root)
        if manifest is not None:
            manifests.append((root, manifest))
            if manifest.shard_of is not None and manifest.shard_index is not None:
                seen = stats.coverage.setdefault(manifest.shard_of, [])
                if manifest.shard_index not in seen:
                    seen.append(manifest.shard_index)
                    seen.sort()
        sources.append((root, dict(ResultStore(root)._load())))
    reference = _check_manifests(manifests) if check_manifests else None

    merged: Dict[str, StoredOutcome] = {}
    origin: Dict[str, str] = {}
    for root, records in sources:
        if root != dest_root:
            stats.records += len(records)
        for key, outcome in records.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = outcome
                origin[key] = root
            elif existing != outcome:
                raise MergeConflict(key, origin[key], root)

    stats.unique = len(merged)
    stats.failures = sum(
        1 for outcome in merged.values() if isinstance(outcome, TrialFailure)
    )

    # Canonical output: sorted keys, canonical encoding, atomic replace.
    os.makedirs(dest_root, exist_ok=True)
    temp_path = dest.path + ".merge"
    with open(temp_path, "w") as handle:
        for key in sorted(merged):
            handle.write(dest._encode_record(key, merged[key]) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, dest.path)
    if reference is not None:
        write_manifest(
            dest_root,
            ShardManifest(
                campaign=reference.campaign,
                spec_digest=reference.spec_digest,
                schema_version=reference.schema_version,
                store_format=reference.store_format,
                repro_version=reference.repro_version,
                shard_index=None,
                shard_of=None,
                trials=stats.unique,
            ),
        )
    return stats


def merge_telemetry(
    segment_roots: Iterable[str],
    dest_path: Optional[str] = None,
) -> Dict[str, dict]:
    """Fold the segments' telemetry sidecars into one metrics snapshot.

    Reads each segment's ``telemetry.jsonl`` (recorded by ``campaign
    shard --trace-out``; segments without one contribute nothing) and
    merges their metric snapshots -- a commutative, associative fold, so
    the fleet-wide view is independent of completion order.  When
    *dest_path* is given the merged snapshot is written as a recorded
    run that ``repro obs report`` renders directly.
    """
    from repro.telemetry.export import read_jsonl, split_metrics, write_jsonl
    from repro.telemetry.metrics import merge_snapshots

    snapshots = []
    for root in segment_roots:
        path = telemetry_sidecar(root)
        if not os.path.exists(path):
            continue
        _, metrics = split_metrics(read_jsonl(path))
        if metrics:
            snapshots.append(metrics)
    merged = merge_snapshots(*snapshots)
    if dest_path is not None:
        write_jsonl([], dest_path, metrics=merged)
    return merged
