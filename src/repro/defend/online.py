"""The streaming detector: per-trial verdicts as a campaign executes.

A :class:`StreamingDetector` binds one fitted
:class:`~repro.defend.calibrate.Calibration` to one campaign spec and
consumes ``(TrialRef, outcome)`` pairs as they complete -- via the
:class:`~repro.campaign.runner.CampaignRunner` ``sink=`` hook on a single
host, or via :meth:`ingest_store` against the segment stores a
:class:`~repro.distrib.coordinator.Coordinator` merges as shards finish.

Verdict-level determinism is structural, not incidental: each verdict is
a pure function of the calibration and that one trial's stored feature
vector, ingestion deduplicates on the trial's grid coordinate, and every
read-out (:meth:`verdicts`, :meth:`detection_latencies`) sorts by
coordinate.  Serial, pooled, resumed, and shard-merged executions of the
same campaign therefore stream *different orders* of the same pairs into
the detector and read *identical* conclusions back out -- the property
``tests/test_defend_properties.py`` pins.

Detection latency follows the online-detection literature: for each
attack stream (one ``(cell, rep)`` of a detect cell), the number of
observation windows from the start of the stream until the first flagged
window, or ``None`` if the stream was never flagged.  The E11 claim in
streaming terms: Flush+Reload streams flag within a window or two, TET
streams never flag at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.defend.calibrate import Calibration
from repro.defend.features import FeatureVector
from repro.defend.scenarios import get_scenario


@dataclass(frozen=True)
class Verdict:
    """The detector's call on one observation window."""

    cell: int
    rep: int
    coord: int
    scenario: str
    taxonomy: str
    #: Ground truth (from the scenario registry, not visible to the model).
    attack: bool
    #: The calibrated model's probability-like score in [0, 1].
    score: float
    #: ``score > calibration.threshold``.
    flagged: bool

    def key(self) -> Tuple[int, int, int]:
        return (self.cell, self.rep, self.coord)


class StreamingDetector:
    """Score one campaign's detect trials as their outcomes arrive."""

    def __init__(self, calibration: Calibration, spec) -> None:
        self.calibration = calibration
        self.spec = spec
        #: cell index -> scenario, for the spec's detect cells only.
        self._cell_scenarios: Dict[int, object] = {
            index: get_scenario(cell.param("scenario"))
            for index, cell in enumerate(spec.cells)
            if cell.kind == "detect"
        }
        self._verdicts: Dict[Tuple[int, int, int], Verdict] = {}
        #: Windows skipped because their outcome was a TrialFailure.
        self.failed_windows = 0

    # -- ingestion -------------------------------------------------------------

    def ingest(self, ref, outcome) -> Optional[Verdict]:
        """Score one completed trial; idempotent per grid coordinate.

        Non-detect trials (a mixed campaign's channel/KASLR cells) and
        quarantined failures pass through unscored.  Re-ingesting a
        coordinate returns the existing verdict -- replay-then-execute
        resumes and at-least-once fleet delivery cannot double-count.
        """
        scenario = self._cell_scenarios.get(ref.cell)
        if scenario is None:
            return None
        key = (ref.cell, ref.rep, ref.coord)
        existing = self._verdicts.get(key)
        if existing is not None:
            return existing
        totes = getattr(outcome, "totes", None)
        if totes is None:  # TrialFailure: no window to score
            self.failed_windows += 1
            return None
        features = FeatureVector.from_ints(totes)
        score = self.calibration.score(features)
        verdict = Verdict(
            cell=ref.cell,
            rep=ref.rep,
            coord=ref.coord,
            scenario=scenario.name,
            taxonomy=scenario.taxonomy,
            attack=scenario.attack,
            score=score,
            flagged=score > self.calibration.threshold,
        )
        self._verdicts[key] = verdict
        return verdict

    def sink(self, ref, outcome) -> None:
        """:class:`CampaignRunner` ``sink=`` adapter (drops the return)."""
        self.ingest(ref, outcome)

    def ingest_store(self, store, shard=None) -> int:
        """Ingest every stored outcome of the bound spec; returns the count.

        With *shard*, only that shard's expansion positions are read --
        the coordinator's ingest-on-completion path calls this once per
        finished segment, and the dedup above makes the full-store merge
        pass at the end a no-op for already-seen trials.
        """
        from repro.campaign.store import trial_key

        refs = self.spec.expand()
        if shard is not None:
            refs = [
                ref for position, ref in enumerate(refs) if shard.covers(position)
            ]
        keys = [trial_key(ref.trial) for ref in refs]
        cached = store.get_many(keys)
        ingested = 0
        for ref, key in zip(refs, keys):
            outcome = cached.get(key)
            if outcome is not None and self.ingest(ref, outcome) is not None:
                ingested += 1
        return ingested

    # -- read-outs (all coordinate-sorted, never arrival-ordered) --------------

    def verdicts(self) -> List[Verdict]:
        return [self._verdicts[key] for key in sorted(self._verdicts)]

    def detection_latencies(self) -> Dict[Tuple[int, int], Optional[int]]:
        """Windows-to-first-flag per attack stream (``None`` = never).

        Keyed by ``(cell, rep)``; benign streams are excluded (a flag
        there is a false positive, not a detection).
        """
        streams: Dict[Tuple[int, int], List[Verdict]] = {}
        for verdict in self.verdicts():
            if verdict.attack:
                streams.setdefault((verdict.cell, verdict.rep), []).append(verdict)
        latencies: Dict[Tuple[int, int], Optional[int]] = {}
        for stream_key, stream in streams.items():
            flagged = [v.coord for v in stream if v.flagged]
            latencies[stream_key] = min(flagged) + 1 if flagged else None
        return latencies


__all__ = ["StreamingDetector", "Verdict"]
