"""Deterministic detector calibration: thresholds plus a learned model.

The defender's training protocol, as the published HPC detectors run it:
collect labelled windows of *known* traffic -- cache-channel attacks as
positives, benign workloads as negatives -- and fit (1) the classic E11
rule thresholds as diagnostics and (2) a small logistic regression over
the :data:`~repro.defend.features.RATE_FIELDS` rate vector.  TET windows
are deliberately absent from training (see
:attr:`~repro.defend.scenarios.Scenario.training_label`): the evaluation
then asks whether the *unseen* channel clears the fitted bar, which is
the paper's E11 question.

Everything is a pure function of the training campaign's stored feature
vectors, consumed in expansion order: gradient descent runs a fixed
number of full-batch epochs in plain Python floats with a fixed
summation order, so the fitted weights -- and the serialised calibration
artifact -- are byte-identical whether the training campaign ran
serially, pooled, resumed, or shard-merged.  No numpy, no platform
nondeterminism, no dependence on sample arrival order.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.defend.features import (
    FEATURE_SCHEMA_VERSION,
    RATE_FIELDS,
    FeatureVector,
)

#: Version of every ``repro.defend`` artifact layout (calibration files
#: and eval reports).  Bump on any key-level change.
DEFEND_SCHEMA_VERSION = 1

#: The E11 rule's published defaults (diagnostic thresholds carried in
#: every calibration so the rule and the model are always co-reported).
DEFAULT_CLFLUSH_THRESHOLD = 1.0
DEFAULT_LLC_MISS_THRESHOLD = 5.0

_EPOCHS = 300
_LEARNING_RATE = 0.5
_SIGMOID_CLAMP = 35.0
_MIN_SCALE = 1e-12


def _sigmoid(z: float) -> float:
    z = max(-_SIGMOID_CLAMP, min(_SIGMOID_CLAMP, z))
    return 1.0 / (1.0 + math.exp(-z))


@dataclass(frozen=True)
class Calibration:
    """A fitted, serialisable detector configuration."""

    schema_version: int
    feature_schema: int
    rate_fields: Tuple[str, ...]
    #: Z-score normalisation fitted on the training windows.
    means: Tuple[float, ...]
    scales: Tuple[float, ...]
    #: Logistic-regression weights over the normalised rate vector.
    weights: Tuple[float, ...]
    bias: float
    #: Verdict threshold on the model score (midpoint of the training
    #: margin when the classes separate, 0.5 otherwise).
    threshold: float
    #: The classic rule's thresholds (diagnostics, not the verdict).
    clflush_threshold: float
    llc_miss_threshold: float
    #: Sorted ``(scenario, windows)`` provenance of the training set.
    trained_on: Tuple[Tuple[str, int], ...]

    # -- scoring ---------------------------------------------------------------

    def score(self, features: FeatureVector) -> float:
        """The model's probability-like score for one window."""
        z = self.bias
        for rate, mean, scale, weight in zip(
            features.rates(), self.means, self.scales, self.weights
        ):
            z += weight * ((rate - mean) / scale)
        return _sigmoid(z)

    def flag(self, features: FeatureVector) -> bool:
        return self.score(features) > self.threshold

    def rule_flag(self, features: FeatureVector) -> bool:
        """The classic E11 rule (both rates anomalous), for comparison."""
        return (
            features.clflush_per_kilo_uop > self.clflush_threshold
            and features.llc_miss_per_kilo_uop > self.llc_miss_threshold
        )

    # -- serialisation ---------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "feature_schema": self.feature_schema,
            "rate_fields": list(self.rate_fields),
            "means": list(self.means),
            "scales": list(self.scales),
            "weights": list(self.weights),
            "bias": self.bias,
            "threshold": self.threshold,
            "clflush_threshold": self.clflush_threshold,
            "llc_miss_threshold": self.llc_miss_threshold,
            "trained_on": [list(pair) for pair in self.trained_on],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"

    @property
    def digest(self) -> str:
        """Content address of the fitted configuration (report provenance)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_json_dict(cls, data: dict) -> "Calibration":
        if data.get("schema_version") != DEFEND_SCHEMA_VERSION:
            raise ValueError(
                f"calibration schema_version {data.get('schema_version')!r} "
                f"!= supported {DEFEND_SCHEMA_VERSION}"
            )
        if data.get("feature_schema") != FEATURE_SCHEMA_VERSION or tuple(
            data.get("rate_fields", ())
        ) != RATE_FIELDS:
            raise ValueError(
                "calibration was fitted under a different feature schema; "
                "re-run `repro defend calibrate`"
            )
        return cls(
            schema_version=data["schema_version"],
            feature_schema=data["feature_schema"],
            rate_fields=tuple(data["rate_fields"]),
            means=tuple(data["means"]),
            scales=tuple(data["scales"]),
            weights=tuple(data["weights"]),
            bias=data["bias"],
            threshold=data["threshold"],
            clflush_threshold=data["clflush_threshold"],
            llc_miss_threshold=data["llc_miss_threshold"],
            trained_on=tuple(
                (str(name), int(count)) for name, count in data["trained_on"]
            ),
        )

    @classmethod
    def load(cls, path: str) -> "Calibration":
        with open(path) as handle:
            return cls.from_json_dict(json.load(handle))


# -- fitting -------------------------------------------------------------------


def fit_calibration(
    samples: Sequence[Tuple[str, FeatureVector, bool]],
    clflush_threshold: float = DEFAULT_CLFLUSH_THRESHOLD,
    llc_miss_threshold: float = DEFAULT_LLC_MISS_THRESHOLD,
) -> Calibration:
    """Fit a calibration from ``(scenario, features, is_attack)`` samples.

    *samples* must arrive in a deterministic order (campaign expansion
    order); every arithmetic step below iterates that order, so the fit
    is byte-stable.
    """
    if not samples:
        raise ValueError("cannot calibrate on an empty training set")
    labels = [1.0 if attack else 0.0 for _, _, attack in samples]
    if len(set(labels)) < 2:
        raise ValueError("training set needs both attack and benign windows")
    rows = [features.rates() for _, features, _ in samples]
    count = len(rows)
    dims = len(RATE_FIELDS)

    means = tuple(sum(row[d] for row in rows) / count for d in range(dims))
    scale_list = []
    for d in range(dims):
        variance = sum((row[d] - means[d]) ** 2 for row in rows) / count
        # A constant feature carries no signal; scale 1.0 leaves its
        # centred value at 0 instead of dividing by ~0.
        scale_list.append(math.sqrt(variance) if variance > _MIN_SCALE else 1.0)
    scales = tuple(scale_list)
    normalised = [
        tuple((row[d] - means[d]) / scales[d] for d in range(dims)) for row in rows
    ]

    weights = [0.0] * dims
    bias = 0.0
    for _ in range(_EPOCHS):
        grad_w = [0.0] * dims
        grad_b = 0.0
        for row, label in zip(normalised, labels):
            z = bias
            for d in range(dims):
                z += weights[d] * row[d]
            error = _sigmoid(z) - label
            for d in range(dims):
                grad_w[d] += error * row[d]
            grad_b += error
        for d in range(dims):
            weights[d] -= _LEARNING_RATE * grad_w[d] / count
        bias -= _LEARNING_RATE * grad_b / count

    scores = [
        _sigmoid(bias + sum(w * x for w, x in zip(weights, row)))
        for row in normalised
    ]
    benign_max = max(s for s, label in zip(scores, labels) if label == 0.0)
    attack_min = min(s for s, label in zip(scores, labels) if label == 1.0)
    # Split the training margin when the classes separate; a detector
    # thresholded at the midpoint is maximally robust to the unseen mix.
    threshold = (
        (benign_max + attack_min) / 2.0 if attack_min > benign_max else 0.5
    )

    counts: Dict[str, int] = {}
    for scenario, _, _ in samples:
        counts[scenario] = counts.get(scenario, 0) + 1
    return Calibration(
        schema_version=DEFEND_SCHEMA_VERSION,
        feature_schema=FEATURE_SCHEMA_VERSION,
        rate_fields=RATE_FIELDS,
        means=means,
        scales=scales,
        weights=tuple(weights),
        bias=bias,
        threshold=threshold,
        clflush_threshold=clflush_threshold,
        llc_miss_threshold=llc_miss_threshold,
        trained_on=tuple(sorted(counts.items())),
    )


# -- the training campaign -----------------------------------------------------


def calibration_campaign():
    """The seeded benign/attack training mix, as an ordinary campaign.

    Only scenarios with a training label (cache attacks and benign
    traffic -- never TET) appear; seeds are disjoint from ``e11-detect``
    so evaluation traffic is always unseen.
    """
    from repro.campaign.spec import CampaignSpec, detect_cell
    from repro.defend.scenarios import SCENARIOS
    from repro.runtime.spec import MachineSpec

    cells = []
    index = 0
    for scenario in SCENARIOS.values():
        if scenario.training_label is None:
            continue
        for noise in (0, 2):
            machine = MachineSpec(
                model="i7-7700", seed=2200 + index, noise_amplitude=noise
            )
            cells.append(detect_cell(machine, scenario=scenario.name, trials=8))
        index += 1
    return CampaignSpec(name="defend-calibrate", cells=tuple(cells))


def training_samples(spec, store) -> List[Tuple[str, FeatureVector, bool]]:
    """Collect ``(scenario, features, label)`` from a completed campaign.

    Expansion order, successes only -- quarantined windows are dropped
    (deterministically: a failure record replays as the same failure).
    """
    from repro.campaign.store import trial_key
    from repro.defend.scenarios import get_scenario

    refs = spec.expand()
    cached = store.get_many([trial_key(ref.trial) for ref in refs])
    samples: List[Tuple[str, FeatureVector, bool]] = []
    for ref in refs:
        cell = spec.cells[ref.cell]
        if cell.kind != "detect":
            continue
        scenario = get_scenario(cell.param("scenario"))
        if scenario.training_label is None:
            continue
        outcome = cached.get(trial_key(ref.trial))
        if outcome is None or not hasattr(outcome, "totes"):
            continue
        samples.append(
            (
                scenario.name,
                FeatureVector.from_ints(outcome.totes),
                scenario.training_label,
            )
        )
    return samples


def calibrate(
    store=None,
    pool=None,
    spec=None,
    progress=None,
    **runner_kwargs,
):
    """Run (or resume) the training campaign and fit; returns
    ``(Calibration, RunStats)``."""
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.store import ResultStore

    if spec is None:
        spec = calibration_campaign()
    if store is None:
        store = ResultStore()
    runner = CampaignRunner(
        spec, store=store, pool=pool, progress=progress, **runner_kwargs
    )
    _, stats = runner.run()
    calibration = fit_calibration(training_samples(spec, store))
    return calibration, stats


__all__ = [
    "Calibration",
    "DEFEND_SCHEMA_VERSION",
    "calibrate",
    "calibration_campaign",
    "fit_calibration",
    "training_samples",
]
