"""repro.defend -- the defense side of the arms race, at traffic scale.

The paper's threat model (§4.2) grants the victim state-of-the-art
HPC-based cache-attack detection; Whisper's claim is that the TET channel
stays under it.  This package makes that claim *measured* instead of
asserted:

* :mod:`repro.defend.features` -- the deterministic per-window
  :class:`FeatureVector` (PMU deltas + clflush traffic + timing shape)
  and the one shared rate implementation every detector uses;
* :mod:`repro.defend.scenarios` -- the attack/benign traffic mix
  (cache-channel attacks, TET attacks, benign look-alikes);
* :mod:`repro.defend.calibrate` -- seeded threshold calibration and a
  byte-deterministic logistic regression trained on cache-vs-benign
  traffic (TET held out, as honesty demands);
* :mod:`repro.defend.online` -- the :class:`StreamingDetector` that
  scores trials as campaigns execute (runner ``sink=`` hook, coordinator
  ingest-on-completion) with order-independent verdicts;
* :mod:`repro.defend.eval` -- ROC/AUC + detection-latency artifacts
  under the campaign byte-identity contract.

The ``e11-detect`` builtin campaign plus ``repro defend
calibrate|score|eval|stream`` turn bench E11 into a campaign-scale
evaluation that shards and merges through :mod:`repro.distrib`.  See
``docs/DEFEND.md``.
"""

from repro.defend.calibrate import (
    DEFEND_SCHEMA_VERSION,
    Calibration,
    calibrate,
    calibration_campaign,
    fit_calibration,
    training_samples,
)
from repro.defend.eval import DefendReport, auc, build_defend_report, roc_curve
from repro.defend.features import (
    FEATURE_FIELDS,
    FEATURE_SCHEMA_VERSION,
    RATE_FIELDS,
    FeatureVector,
    per_kilo_uop,
)
from repro.defend.online import StreamingDetector, Verdict
from repro.defend.scenarios import SCENARIOS, Scenario, get_scenario, scenario_names

__all__ = [
    "Calibration",
    "DEFEND_SCHEMA_VERSION",
    "DefendReport",
    "FEATURE_FIELDS",
    "FEATURE_SCHEMA_VERSION",
    "FeatureVector",
    "RATE_FIELDS",
    "SCENARIOS",
    "Scenario",
    "StreamingDetector",
    "Verdict",
    "auc",
    "build_defend_report",
    "calibrate",
    "calibration_campaign",
    "fit_calibration",
    "get_scenario",
    "per_kilo_uop",
    "roc_curve",
    "scenario_names",
    "training_samples",
]
