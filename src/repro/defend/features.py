"""Deterministic per-trial feature extraction for the detection service.

A :class:`FeatureVector` is the detector's whole view of one observation
window: the PMU deltas :meth:`repro.uarch.core.Core.telemetry_counters`
exposes (uops, machine clears, recovery/resteer cycles, TLB walks, cache
misses) plus the cache hierarchy's ``clflush`` traffic -- the same
snapshot the telemetry layer ships per trial, so an online detector
consuming the ``repro obs`` stream and a batch detector replaying a
campaign store see byte-for-byte the same numbers.

Everything here is integer counts and the *one* shared piece of rate
arithmetic (:func:`per_kilo_uop`) the published HPC detectors normalise
with.  :class:`repro.baselines.detector.CacheAttackDetector` computes its
E11 verdict through this module, and so do the calibrated thresholds and
the learned model in :mod:`repro.defend.calibrate` -- one rate
implementation, one set of semantics, batch or streaming.

Feature vectors round-trip losslessly through the campaign result store:
:meth:`FeatureVector.to_ints` packs the counters into the ``totes`` tuple
of an ordinary :class:`~repro.runtime.tasks.TrialResult`, so detect
trials ride the content-addressed store, the shard/merge byte-identity
contract, and the resumable runner without any new record type.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping, Sequence, Tuple

#: Version of the feature schema.  Bump on any change to the field set,
#: field order, or rate definitions; calibrations refuse to score feature
#: vectors produced under a different schema (a model fitted on one
#: feature layout is meaningless applied to another).
FEATURE_SCHEMA_VERSION = 1

#: Field order of the packed representation (``to_ints``/``from_ints``)
#: and of every serialised feature mapping.  Matches the key names of
#: :meth:`Core.telemetry_counters` so extraction is a straight copy.
FEATURE_FIELDS: Tuple[str, ...] = (
    "cycles",
    "uops_issued",
    "uops_retired",
    "machine_clears",
    "recovery_cycles",
    "resteer_cycles",
    "dtlb_walks",
    "llc_misses",
    "l1_misses",
    "clflushes",
)

#: The derived rate features the calibrated detectors consume, in model
#: input order (part of the feature schema).
RATE_FIELDS: Tuple[str, ...] = (
    "clflush_per_kilo_uop",
    "llc_miss_per_kilo_uop",
    "l1_miss_per_kilo_uop",
    "machine_clears_per_kilo_uop",
    "recovery_per_kilo_uop",
    "dtlb_walks_per_kilo_uop",
    "cycles_per_uop",
)


def per_kilo_uop(count: float, uops: int) -> float:
    """*count* normalised to events per thousand issued uops.

    The one shared rate implementation (division order matters for
    byte-identical artifacts: ``count / (uops / 1000)``, uops floored at
    one, exactly as the E11 detector has always computed it).
    """
    kilo = max(1, int(uops)) / 1000.0
    return count / kilo


@dataclass(frozen=True)
class FeatureVector:
    """One observation window's deterministic counter deltas."""

    cycles: int
    uops_issued: int
    uops_retired: int
    machine_clears: int
    recovery_cycles: int
    resteer_cycles: int
    dtlb_walks: int
    llc_misses: int
    l1_misses: int
    clflushes: int

    # -- extraction ------------------------------------------------------------

    @classmethod
    def from_counters(cls, counters: Mapping[str, int]) -> "FeatureVector":
        """Build from a :meth:`Core.telemetry_counters` snapshot."""
        return cls(**{name: int(counters[name]) for name in FEATURE_FIELDS})

    @classmethod
    def from_machine(cls, machine) -> "FeatureVector":
        """The current window of *machine* (counters since ``reset_uarch``)."""
        return cls.from_counters(machine.core.telemetry_counters())

    # -- store packing ---------------------------------------------------------

    def to_ints(self) -> Tuple[int, ...]:
        """Pack into the ``TrialResult.totes`` tuple (FEATURE_FIELDS order)."""
        return tuple(getattr(self, name) for name in FEATURE_FIELDS)

    @classmethod
    def from_ints(cls, values: Sequence[int]) -> "FeatureVector":
        """Unpack a :meth:`to_ints` tuple (a stored detect trial's totes)."""
        if len(values) != len(FEATURE_FIELDS):
            raise ValueError(
                f"feature tuple has {len(values)} values, "
                f"schema {FEATURE_SCHEMA_VERSION} expects {len(FEATURE_FIELDS)}"
            )
        return cls(**{name: int(v) for name, v in zip(FEATURE_FIELDS, values)})

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain mapping (report artifacts)."""
        return {name: getattr(self, name) for name in FEATURE_FIELDS}

    # -- derived rates ---------------------------------------------------------

    @property
    def clflush_per_kilo_uop(self) -> float:
        return per_kilo_uop(self.clflushes, self.uops_issued)

    @property
    def llc_miss_per_kilo_uop(self) -> float:
        return per_kilo_uop(self.llc_misses, self.uops_issued)

    @property
    def l1_miss_per_kilo_uop(self) -> float:
        return per_kilo_uop(self.l1_misses, self.uops_issued)

    @property
    def machine_clears_per_kilo_uop(self) -> float:
        return per_kilo_uop(self.machine_clears, self.uops_issued)

    @property
    def recovery_per_kilo_uop(self) -> float:
        return per_kilo_uop(self.recovery_cycles, self.uops_issued)

    @property
    def dtlb_walks_per_kilo_uop(self) -> float:
        return per_kilo_uop(self.dtlb_walks, self.uops_issued)

    @property
    def cycles_per_uop(self) -> float:
        """The window's timing shape: how stretched execution was.

        Transient-window attacks spend cycles *waiting* (fault recovery,
        long-latency loads), so their windows run far more cycles per
        issued uop than straight-line compute -- the span-level signal the
        trial telemetry carries as ``(cycles, uops)``.
        """
        return self.cycles / max(1, self.uops_issued)

    def rates(self) -> Tuple[float, ...]:
        """The model input vector, in :data:`RATE_FIELDS` order."""
        return tuple(getattr(self, name) for name in RATE_FIELDS)

    def rates_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in RATE_FIELDS}


def feature_vector_from_result(result) -> FeatureVector:
    """Unpack a stored detect-trial outcome back into its features."""
    return FeatureVector.from_ints(result.totes)


__all__ = [
    "FEATURE_FIELDS",
    "FEATURE_SCHEMA_VERSION",
    "RATE_FIELDS",
    "FeatureVector",
    "feature_vector_from_result",
    "per_kilo_uop",
]
