"""The traffic mix a detector is judged against: attack and benign scenarios.

The Survey of Transient Execution Attacks' critique of one-gadget
evaluations applies to defenses too: a detector scored only against the
window it was tuned on tells you nothing.  Each scenario here is one
*kind* of observation window -- a cache-channel attack leaking a byte, a
TET attack doing the same without touching a probe array, or a benign
workload that happens to share one of the attack's symptoms (streaming
misses, suppressed faults).  The ``e11-detect`` campaign crosses this
registry with victim/noise mixes so every trial doubles as a detector
sample.

A scenario is *bound* to a machine once (programs assembled, pages
allocated) and then run many times; each run is one observation window
driven purely by the per-trial RNG, so the resulting
:class:`~repro.defend.features.FeatureVector` is a function of
``(spec, scenario, trial_index)`` alone -- the detect-trial determinism
contract.

Taxonomy labels follow the paper's split: ``cache`` scenarios leave the
stateful footprint the E11 detector keys on, ``tet`` scenarios are the
transient-only channels that walk past it, ``benign`` is the background
traffic that sets the false-positive floor.  Training labels implement
the threat model honestly: the defender calibrates on cache attacks vs.
benign traffic (the published detectors' setting); TET scenarios are the
*held-out adversary*, never seen in training.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: The paper's faulting address for window-opening loads.
_NULL_POINTER = 0x0

_PAGE_SHIFT = 12

#: One bound scenario: call it with the per-trial RNG to run one window.
ScenarioRunner = Callable[[random.Random], None]


@dataclass(frozen=True)
class Scenario:
    """One entry in the detector's evaluation mix."""

    name: str
    #: ``cache`` | ``tet`` | ``benign`` -- the paper's attack-taxonomy split.
    taxonomy: str
    #: Whether the window is hostile at all (detection ground truth).
    attack: bool
    description: str
    #: Build the per-machine context; returns the window runner.
    bind: Callable[[object], ScenarioRunner]

    @property
    def training_label(self) -> Optional[bool]:
        """The calibration-time label, or None if held out of training.

        The defender can only train on what it knows about: cache-channel
        attacks (positive) against benign traffic (negative).  TET
        windows are the test-time adversary -- including them in training
        would assume the defense already knows the attack it is meant to
        discover.
        """
        if self.taxonomy == "cache":
            return True
        if self.taxonomy == "benign":
            return False
        return None


# -- cache-channel attacks (the detectable baseline) ---------------------------


def _bind_fr_meltdown(machine) -> ScenarioRunner:
    from repro.baselines.flush_reload import ClassicMeltdown

    attack = ClassicMeltdown(machine)

    def run(rng: random.Random) -> None:
        kernel = machine.kernel
        va = kernel.secret_va + rng.randrange(len(kernel.secret))
        machine.victim_touch(va)
        attack.channel.leak_byte(va)

    return run


def _bind_fr_user(machine) -> ScenarioRunner:
    from repro.baselines.flush_reload import FlushReloadChannel

    channel = FlushReloadChannel(machine)
    secret_page = machine.alloc_data()

    def run(rng: random.Random) -> None:
        machine.write_data(secret_page, bytes([rng.randrange(256)]) + b"\x00" * 7)
        channel.leak_byte(secret_page)

    return run


# -- TET attacks (the channel the rule-based defense cannot see) ---------------


def _bind_tet_cc(machine) -> ScenarioRunner:
    from repro.whisper.gadgets import GadgetBuilder

    builder = GadgetBuilder(machine)
    program = builder.figure1()
    sender_page = machine.alloc_data()

    def run(rng: random.Random) -> None:
        machine.write_data(sender_page, bytes([rng.randrange(256)]) + b"\x00" * 7)
        warm = {"r12": sender_page, "r13": _NULL_POINTER, "r9": 256}
        reg_sets = [warm, warm] + [
            {"r12": sender_page, "r13": _NULL_POINTER, "r9": rng.randrange(256)}
            for _ in range(6)
        ]
        machine.run_many(program, reg_sets)

    return run


def _bind_tet_md(machine) -> ScenarioRunner:
    from repro.whisper.attacks.meltdown import TetMeltdown

    attack = TetMeltdown(machine, batches=2, values=range(0, 256, 16))

    def run(rng: random.Random) -> None:
        # Warm-up must happen inside *every* window: the attack object is
        # long-lived per worker, and a first-window-only warm-up would
        # make features depend on which trial a worker ran first.
        attack._warmed = False
        kernel = machine.kernel
        attack.scan_byte(kernel.secret_va + rng.randrange(len(kernel.secret)))

    return run


def _bind_tet_kaslr(machine) -> ScenarioRunner:
    from repro.kernel.layout import (
        KASLR_SLOTS,
        KERNEL_TEXT_RANGE_START,
        slot_base,
    )
    from repro.whisper.attacks.kaslr import TetKaslr

    attack = TetKaslr(machine)
    reference = KERNEL_TEXT_RANGE_START - 0x200000

    def run(rng: random.Random) -> None:
        attack.probe_tote(reference)
        for _ in range(3):
            attack.probe_tote(slot_base(rng.randrange(KASLR_SLOTS)))

    return run


# -- benign traffic (the false-positive floor) ---------------------------------


def _bind_benign_compute(machine) -> ScenarioRunner:
    program = machine.load_program("""
    mov rcx, 64
compute_loop:
    add rax, 3
    shl rax, 1
    xor rax, rcx
    sub rcx, 1
    cmp rcx, 0
    jne compute_loop
    hlt
""")

    def run(rng: random.Random) -> None:
        for _ in range(4):
            machine.run(program, regs={"rax": rng.randrange(1 << 16)})

    return run


def _bind_benign_stream(machine) -> ScenarioRunner:
    # A working set larger than L1: streaming reads miss like an attack's
    # reload phase but never flush anything -- the workload that keeps a
    # miss-rate-only detector honest.
    base = machine.alloc_data(pages=16)
    program = machine.load_program("""
    load r8, [r13]
    hlt
""")

    def run(rng: random.Random) -> None:
        reg_sets = [
            {"r13": base + (rng.randrange(16) << _PAGE_SHIFT)} for _ in range(24)
        ]
        machine.run_many(program, reg_sets)

    return run


def _bind_benign_fault(machine) -> ScenarioRunner:
    from repro.whisper.gadgets import RESUME_LABEL

    # Suppressed faults without any channel: the GC/JIT-style traffic the
    # E11 rule deliberately tolerates (clears alone are normal behaviour).
    program = machine.load_program(f"""
    loadb r8, [r13]
{RESUME_LABEL}:
    hlt
""")
    machine.set_signal_handler(program, RESUME_LABEL)

    def run(rng: random.Random) -> None:
        for _ in range(2 + rng.randrange(4)):
            machine.run(program, regs={"r13": _NULL_POINTER})

    return run


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="fr-meltdown",
            taxonomy="cache",
            attack=True,
            description="classic Meltdown over Flush+Reload, one kernel byte",
            bind=_bind_fr_meltdown,
        ),
        Scenario(
            name="fr-user",
            taxonomy="cache",
            attack=True,
            description="Flush+Reload covert channel on a user page",
            bind=_bind_fr_user,
        ),
        Scenario(
            name="tet-cc",
            taxonomy="tet",
            attack=True,
            description="Figure 1a TET covert channel, warmed probe burst",
            bind=_bind_tet_cc,
        ),
        Scenario(
            name="tet-md",
            taxonomy="tet",
            attack=True,
            description="TET-Meltdown byte scan (coarse value grid)",
            bind=_bind_tet_md,
        ),
        Scenario(
            name="tet-kaslr",
            taxonomy="tet",
            attack=True,
            description="TET-KASLR double-probe sweep over random slots",
            bind=_bind_tet_kaslr,
        ),
        Scenario(
            name="benign-compute",
            taxonomy="benign",
            attack=False,
            description="straight arithmetic loops, no memory pressure",
            bind=_bind_benign_compute,
        ),
        Scenario(
            name="benign-stream",
            taxonomy="benign",
            attack=False,
            description="streaming loads over a 16-page working set",
            bind=_bind_benign_stream,
        ),
        Scenario(
            name="benign-fault",
            taxonomy="benign",
            attack=False,
            description="suppressed-fault bursts (GC/JIT-style clears)",
            bind=_bind_benign_fault,
        ),
    )
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown detect scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None


__all__ = ["SCENARIOS", "Scenario", "ScenarioRunner", "get_scenario", "scenario_names"]
