"""ROC/AUC and detection-latency evaluation of a detector campaign.

Consumes the verdicts a :class:`~repro.defend.online.StreamingDetector`
accumulated over one campaign (live, replayed, or shard-merged -- the
verdict set is identical by construction) and renders the defense-side
artifact the arms race is judged on:

* per-scenario score statistics, flag rates, and AUC against the pooled
  benign traffic (Mann-Whitney rank statistic, ties at half credit, so
  the number is exact and deterministic -- no trapezoid approximation);
* per-taxonomy ROC curves (every distinct score a cut point);
* detection latency per attack stream, in observation windows;
* the E11 gates: cache-channel AUC against a floor, and the TET family's
  maximum score against the calibrated threshold.

Artifacts follow the campaign-report discipline exactly: built purely
from deterministic inputs, ``schema_version``-stamped, rendered with
sorted keys and fixed indentation, byte-identical across worker counts
and shard topologies.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import __version__ as REPRO_VERSION
from repro.defend.calibrate import DEFEND_SCHEMA_VERSION, Calibration
from repro.defend.online import StreamingDetector, Verdict


def auc(positives: Sequence[float], negatives: Sequence[float]) -> Optional[float]:
    """The exact Mann-Whitney AUC: P(pos > neg) with ties at 0.5.

    Quadratic in the sample counts, which is nothing at campaign scale,
    and -- unlike threshold-sweep trapezoids -- has no binning choices to
    destabilise the artifact bytes.
    """
    if not positives or not negatives:
        return None
    wins = 0.0
    for pos in positives:
        for neg in negatives:
            if pos > neg:
                wins += 1.0
            elif pos == neg:
                wins += 0.5
    return wins / (len(positives) * len(negatives))


def roc_curve(
    positives: Sequence[float], negatives: Sequence[float]
) -> List[Dict[str, float]]:
    """ROC points at every distinct observed score (plus the endpoints)."""
    if not positives or not negatives:
        return []
    cuts = sorted(set(positives) | set(negatives), reverse=True)
    points = [{"threshold": 1.0, "fpr": 0.0, "tpr": 0.0}]
    for cut in cuts:
        points.append(
            {
                "threshold": cut,
                "fpr": sum(1 for neg in negatives if neg >= cut) / len(negatives),
                "tpr": sum(1 for pos in positives if pos >= cut) / len(positives),
            }
        )
    return points


@dataclass
class DefendReport:
    """The deterministic defense-side artifact of one detector campaign."""

    campaign: str
    spec_digest: str
    calibration_digest: str
    threshold: float
    version: str
    min_auc: Optional[float]
    scenarios: List[dict] = field(default_factory=list)
    taxonomies: Dict[str, dict] = field(default_factory=dict)
    latencies: List[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    gates: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(
            value for key, value in self.gates.items() if key.endswith("_ok")
        )

    def to_json_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "schema_version": DEFEND_SCHEMA_VERSION,
            "spec_digest": self.spec_digest,
            "calibration_digest": self.calibration_digest,
            "threshold": self.threshold,
            "repro_version": self.version,
            "summary": self.summary,
            "scenarios": self.scenarios,
            "taxonomies": self.taxonomies,
            "latencies": self.latencies,
            "gates": self.gates,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def render_text(self) -> str:
        lines = [
            f"defend   : {self.campaign}",
            f"spec     : {self.spec_digest[:16]} (repro {self.version})",
            f"model    : calibration {self.calibration_digest}, "
            f"threshold {self.threshold:.4f}",
            "",
        ]
        for record in self.scenarios:
            flag = f"{record['flagged']}/{record['windows']}"
            auc_text = (
                f"AUC {record['auc']:.4f}" if record["auc"] is not None else "benign"
            )
            lines.append(
                f"{record['scenario']:16s} [{record['taxonomy']:6s}] "
                f"flagged {flag:>5s}  mean score {record['mean_score']:.4f}  "
                f"{auc_text}"
            )
        lines.append("")
        for taxonomy in sorted(self.taxonomies):
            record = self.taxonomies[taxonomy]
            auc_text = (
                f"{record['auc']:.4f}" if record["auc"] is not None else "n/a"
            )
            lines.append(
                f"{taxonomy:8s} : AUC {auc_text} over {record['windows']} windows"
            )
        detected = [lat for lat in self.latencies if lat["latency"] is not None]
        if detected:
            mean = sum(lat["latency"] for lat in detected) / len(detected)
            lines.append(
                f"latency  : {len(detected)}/{len(self.latencies)} attack "
                f"streams detected, mean {mean:.1f} windows to first flag"
            )
        elif self.latencies:
            lines.append(
                f"latency  : 0/{len(self.latencies)} attack streams detected"
            )
        lines.append("")
        for key in sorted(self.gates):
            if key.endswith("_ok"):
                status = "ok" if self.gates[key] else "FAIL"
                lines.append(f"gate     : {key} {status}")
        lines.append(f"verdict  : {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines) + "\n"

    def write_text(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.render_text())


def build_defend_report(
    detector: StreamingDetector,
    min_auc: Optional[float] = None,
) -> DefendReport:
    """Aggregate a detector's verdicts into the defense artifact.

    *min_auc*, when given, arms the cache-family AUC gate (the CI floor);
    the TET-under-threshold gate is always armed -- it *is* the paper's
    claim.
    """
    from repro.campaign.store import spec_digest

    calibration: Calibration = detector.calibration
    verdicts = detector.verdicts()
    benign_scores = [v.score for v in verdicts if not v.attack]

    by_scenario: Dict[str, List[Verdict]] = {}
    for verdict in verdicts:
        by_scenario.setdefault(verdict.scenario, []).append(verdict)
    scenarios = []
    for name in sorted(by_scenario):
        group = by_scenario[name]
        scores = [v.score for v in group]
        record = {
            "scenario": name,
            "taxonomy": group[0].taxonomy,
            "attack": group[0].attack,
            "windows": len(group),
            "flagged": sum(1 for v in group if v.flagged),
            "flag_rate": sum(1 for v in group if v.flagged) / len(group),
            "mean_score": sum(scores) / len(scores),
            "max_score": max(scores),
            "auc": auc(scores, benign_scores) if group[0].attack else None,
        }
        scenarios.append(record)

    taxonomies: Dict[str, dict] = {}
    for taxonomy in sorted({v.taxonomy for v in verdicts if v.attack}):
        scores = [v.score for v in verdicts if v.taxonomy == taxonomy]
        taxonomies[taxonomy] = {
            "windows": len(scores),
            "auc": auc(scores, benign_scores),
            "roc": roc_curve(scores, benign_scores),
        }

    cell_scenarios = {
        index: cell.param("scenario")
        for index, cell in enumerate(detector.spec.cells)
        if cell.kind == "detect"
    }
    latencies = [
        {
            "cell": cell,
            "rep": rep,
            "scenario": cell_scenarios.get(cell),
            "latency": latency,
        }
        for (cell, rep), latency in sorted(
            detector.detection_latencies().items()
        )
    ]

    cache_auc = taxonomies.get("cache", {}).get("auc")
    tet_scores = [v.score for v in verdicts if v.taxonomy == "tet"]
    tet_max = max(tet_scores) if tet_scores else None
    gates = {
        "min_auc": min_auc,
        "cache_auc": cache_auc,
        "tet_max_score": tet_max,
        "tet_under_threshold_ok": (
            tet_max is None or tet_max <= calibration.threshold
        ),
    }
    if min_auc is not None:
        gates["cache_auc_ok"] = cache_auc is not None and cache_auc >= min_auc

    summary = {
        "windows": len(verdicts),
        "attack_windows": sum(1 for v in verdicts if v.attack),
        "benign_windows": len(benign_scores),
        "failed_windows": detector.failed_windows,
        "false_positive_rate": (
            sum(1 for v in verdicts if not v.attack and v.flagged)
            / len(benign_scores)
            if benign_scores
            else 0.0
        ),
    }

    return DefendReport(
        campaign=detector.spec.name,
        spec_digest=spec_digest(detector.spec),
        calibration_digest=calibration.digest,
        threshold=calibration.threshold,
        version=REPRO_VERSION,
        min_auc=min_auc,
        scenarios=scenarios,
        taxonomies=taxonomies,
        latencies=latencies,
        summary=summary,
        gates=gates,
    )


__all__ = ["DefendReport", "auc", "build_defend_report", "roc_curve"]
