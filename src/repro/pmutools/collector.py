"""Online collection stage: run scenes and harvest counter deltas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.pmutools.events import counter_groups
from repro.uarch.pmu import PmuEvent
from repro.pmutools.scenarios import Scenario


@dataclass
class CollectionResult:
    """Raw per-event means for both conditions of one scenario."""

    scenario: str
    condition_names: tuple
    iterations: int
    #: event name -> (mean under condition 0, mean under condition 1)
    means: Dict[str, tuple] = field(default_factory=dict)


class OnlineCollector:
    """Runs a scenario under PMU observation, a counter group at a time.

    The simulator's PMU could count every event in one run, but the stage
    mimics the real methodology: program a group of ~4 counters, run the
    scene N times per condition, read, move to the next group.
    """

    def __init__(self, iterations: int = 16, group_size: int = 4) -> None:
        self.iterations = iterations
        self.group_size = group_size

    def collect(self, scenario: Scenario, events: List[PmuEvent]) -> CollectionResult:
        """Measure *events* under both conditions of *scenario*."""
        scenario.warm_up()
        pmu = scenario.machine.pmu
        result = CollectionResult(
            scenario=scenario.name,
            condition_names=scenario.condition_names,
            iterations=self.iterations,
        )
        for group in counter_groups(events, self.group_size):
            names = [event.name for event in group]
            per_condition: List[Dict[str, float]] = []
            for condition in (0, 1):
                sums = {name: 0.0 for name in names}
                for _ in range(self.iterations):
                    # Re-create the sweep context (predictor trained to the
                    # common direction) outside the measured bracket.
                    scenario.retrain()
                    baseline = pmu.snapshot()
                    scenario.run_condition(condition)
                    delta = pmu.delta(baseline)
                    for name in names:
                        sums[name] += delta[name]
                per_condition.append(
                    {name: sums[name] / self.iterations for name in names}
                )
            for name in names:
                result.means[name] = (per_condition[0][name], per_condition[1][name])
        return result
