"""Offline stage, part 1: differential filtering.

"This raw data can be filtered out by simple differential methods to
filter out the irrelevant parts" (§5.1): an event is interesting when its
mean differs between the two conditions by more than noise."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.pmutools.collector import CollectionResult
from repro.uarch.pmu import EVENTS_BY_NAME


@dataclass(frozen=True)
class FilteredEvent:
    """One event that survived the differential filter."""

    name: str
    domain: str
    condition0: float
    condition1: float

    @property
    def difference(self) -> float:
        return self.condition1 - self.condition0

    @property
    def relative_difference(self) -> float:
        base = max(abs(self.condition0), 1e-9)
        return self.difference / base


class DifferentialFilter:
    """Keeps events whose two-condition difference clears a threshold."""

    def __init__(self, absolute_threshold: float = 0.5, relative_threshold: float = 0.02) -> None:
        self.absolute_threshold = absolute_threshold
        self.relative_threshold = relative_threshold

    def filter(self, collection: CollectionResult) -> List[FilteredEvent]:
        """Return the condition-sensitive events, largest difference first."""
        survivors: List[FilteredEvent] = []
        for name, (mean0, mean1) in collection.means.items():
            difference = abs(mean1 - mean0)
            relative = difference / max(abs(mean0), 1e-9)
            if difference < self.absolute_threshold:
                continue
            if relative < self.relative_threshold:
                continue
            survivors.append(
                FilteredEvent(
                    name=name,
                    domain=EVENTS_BY_NAME[name].domain,
                    condition0=mean0,
                    condition1=mean1,
                )
            )
        survivors.sort(key=lambda event: -abs(event.difference))
        return survivors

    def rejected(self, collection: CollectionResult) -> List[str]:
        """Event names the filter discarded (the 'irrelevant parts')."""
        kept = {event.name for event in self.filter(collection)}
        return [name for name in collection.means if name not in kept]
