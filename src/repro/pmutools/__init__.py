"""The automated PMU analysis toolset of §5 (Figure 2).

Manual inspection of hundreds of PMU events is "a daunting task and
challenge", so the paper builds a three-stage pipeline; this package is
that pipeline against the simulator's PMU:

1. **Preparation** (:mod:`repro.pmutools.events`): enumerate the events a
   CPU model exposes, as the paper does from Intel Perfmon / Linux perf.
2. **Online collection** (:mod:`repro.pmutools.collector`): run a scenario
   under both of its conditions (Jcc trigger / no trigger, or mapped /
   unmapped) and record per-event counter deltas.
3. **Offline analysis** (:mod:`repro.pmutools.differential` and
   :mod:`repro.pmutools.report`): differential filtering to discard
   condition-insensitive events, then grouping by microarchitectural
   domain to answer RQ1-RQ3 -- the content of Table 3.

:mod:`repro.pmutools.scenarios` defines the measured scenes (TET-CC,
TET-MD, the transient-flow experiment, TET-KASLR) and
:mod:`repro.pmutools.pipeline` glues all stages together.
"""

from repro.pmutools.collector import CollectionResult, OnlineCollector
from repro.pmutools.differential import DifferentialFilter, FilteredEvent
from repro.pmutools.events import prepare_events
from repro.pmutools.pipeline import PmuPipeline, PipelineReport
from repro.pmutools.report import Table3Row, render_table3
from repro.pmutools.scenarios import (
    Scenario,
    TetCcScenario,
    TetKaslrScenario,
    TetMdScenario,
    TransientFlowScenario,
)

__all__ = [
    "CollectionResult",
    "DifferentialFilter",
    "FilteredEvent",
    "OnlineCollector",
    "PipelineReport",
    "PmuPipeline",
    "Scenario",
    "Table3Row",
    "TetCcScenario",
    "TetKaslrScenario",
    "TetMdScenario",
    "TransientFlowScenario",
    "prepare_events",
    "render_table3",
]
