"""The complete three-stage flow of Figure 2, as one object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.pmutools.collector import CollectionResult, OnlineCollector
from repro.pmutools.differential import DifferentialFilter, FilteredEvent
from repro.pmutools.events import prepare_events
from repro.pmutools.report import Table3Row, answers_by_domain, render_table3, rows_from_filtered
from repro.pmutools.scenarios import Scenario


@dataclass
class PipelineReport:
    """Everything one pipeline run produced, stage by stage."""

    scenario: str
    cpu: str
    prepared_events: int
    collection: CollectionResult
    survivors: List[FilteredEvent]
    rejected: List[str]
    rows: List[Table3Row] = field(default_factory=list)

    def render(self) -> str:
        return render_table3(self.rows)

    def domains(self):
        """RQ1-RQ3 grouping of the surviving evidence."""
        return answers_by_domain(self.rows)


class PmuPipeline:
    """Prepare -> collect -> filter -> report (Figure 2)."""

    def __init__(
        self,
        collector: Optional[OnlineCollector] = None,
        differential: Optional[DifferentialFilter] = None,
    ) -> None:
        self.collector = collector or OnlineCollector()
        self.differential = differential or DifferentialFilter()

    def analyze(self, scenario: Scenario) -> PipelineReport:
        """Run the full flow for one scenario on its machine."""
        model = scenario.machine.model
        events = prepare_events(model)
        collection = self.collector.collect(scenario, events)
        survivors = self.differential.filter(collection)
        rejected = self.differential.rejected(collection)
        scene = f"{model.name} / {scenario.name}"
        rows = rows_from_filtered(scene, survivors, collection.condition_names)
        return PipelineReport(
            scenario=scenario.name,
            cpu=model.name,
            prepared_events=len(events),
            collection=collection,
            survivors=survivors,
            rejected=rejected,
            rows=rows,
        )
