"""The measured scenes of Table 3.

A :class:`Scenario` owns a machine, knows its two *conditions* (the
columns of Table 3: Jcc trigger / no trigger, or mapped / unmapped) and
runs one iteration of the scene under a chosen condition.  The collector
brackets those runs with PMU snapshots.
"""

from __future__ import annotations

from typing import Tuple

from repro.sim.machine import Machine
from repro.whisper.gadgets import GadgetBuilder

#: A test value no byte can match (keeps a Jcc direction constant).
NEVER_MATCH = 256


class Scenario:
    """Base class: a named scene with two PMU-compared conditions."""

    name = "scenario"
    condition_names: Tuple[str, str] = ("Jcc not Trigger", "Jcc Trigger")

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._prepare()

    def _prepare(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def warm_up(self, rounds: int = 8) -> None:
        """Run both conditions a few times to settle predictors/caches."""
        for _ in range(rounds):
            self.run_condition(0)
            self.run_condition(1)

    def run_condition(self, index: int) -> None:  # pragma: no cover - overridden
        """Run one iteration under condition *index* (0 or 1)."""
        raise NotImplementedError

    def retrain(self) -> None:
        """Restore the ambient microarchitectural state between measured
        iterations.

        In the paper the trigger case is one rare value inside a 0..255
        sweep, so the predictor is always trained toward the common
        (no-trigger) direction when the trigger lands; three no-trigger
        runs recreate that context.  Collectors call this *outside* the
        PMU bracket.
        """
        for _ in range(3):
            self.run_condition(0)


class TetCcScenario(Scenario):
    """TET-CC (Figure 1a): compare a sent byte against a test value."""

    name = "TET-CC"

    def _prepare(self) -> None:
        self.builder = GadgetBuilder(self.machine)
        self.program = self.builder.figure1()
        self.sender_page = self.machine.alloc_data()
        self.sent_byte = ord("S")
        self.machine.write_data(self.sender_page, bytes([self.sent_byte]))

    def run_condition(self, index: int) -> None:
        test = self.sent_byte if index else NEVER_MATCH
        self.machine.run(
            self.program, regs={"r12": self.sender_page, "r13": 0, "r9": test}
        )


class TetMdScenario(Scenario):
    """TET-MD: the Jcc consumes the transiently forwarded kernel byte."""

    name = "TET-MD"

    def _prepare(self) -> None:
        self.builder = GadgetBuilder(self.machine)
        self.program = self.builder.meltdown()
        self.secret_va = self.machine.kernel.secret_va
        self.secret_byte = self.machine.kernel.secret[0]
        self.machine.warm_kernel_secret()

    def run_condition(self, index: int) -> None:
        self.machine.victim_touch(self.secret_va)
        test = self.secret_byte if index else NEVER_MATCH
        self.machine.run(self.program, regs={"r13": self.secret_va, "r9": test})


class TransientFlowScenario(Scenario):
    """§5.2.5's branch-reachability experiment (Figure 4).

    The gadget is the Figure 1a shape with a configurable nop sled before
    the transient block's end; sweeping the sled length flips the sign of
    the UOPS_ISSUED.ANY difference, as the paper observes.
    """

    name = "Transient Execution Flow"

    def __init__(self, machine: Machine, sled: int = 0) -> None:
        self.sled = sled
        super().__init__(machine)

    def _prepare(self) -> None:
        self.builder = GadgetBuilder(self.machine)
        nops = "\n".join("    nop" for _ in range(self.sled))
        transient = f"""
    loadb r8, [r13]
    cmp r8, r9
    je flow_trigger          ; (3) the trigger path
{nops}
    mfence                   ; the fence the not-trigger path meets
    nop
flow_trigger:
    nop
    nop"""
        self.program = self.builder._load(self.builder._wrap_transient(transient))
        self.secret_va = self.machine.kernel.secret_va
        self.secret_byte = self.machine.kernel.secret[0]
        self.machine.warm_kernel_secret()

    def run_condition(self, index: int) -> None:
        self.machine.victim_touch(self.secret_va)
        test = self.secret_byte if index else NEVER_MATCH
        self.machine.run(self.program, regs={"r13": self.secret_va, "r9": test})


class TetKaslrScenario(Scenario):
    """TET-KASLR: conditions are *unmapped* vs *mapped* probe targets."""

    name = "TET-KASLR"
    condition_names = ("unmapped", "mapped")

    def _prepare(self) -> None:
        self.builder = GadgetBuilder(self.machine)
        self.program = self.builder.kaslr_probe()
        layout = self.machine.kernel.layout
        self.mapped_va = layout.base + 0x1000
        # A guaranteed-unmapped neighbour: just below the image, or just
        # above it when the image sits at slot 0.
        if layout.slot > 0:
            self.unmapped_va = layout.base - 0x200000
        else:
            self.unmapped_va = layout.end + 0x200000

    def run_condition(self, index: int) -> None:
        va = self.mapped_va if index else self.unmapped_va
        self.machine.flush_tlb(charge_cycles=False)
        # Double probe, as the attack does: fill, then measure.
        self.machine.run(self.program, regs={"r13": va, "r9": NEVER_MATCH})
        self.machine.run(self.program, regs={"r13": va, "r9": NEVER_MATCH})
