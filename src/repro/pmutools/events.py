"""Preparation stage: enumerate the PMU events a CPU exposes.

On real hardware this stage parses Intel's Perfmon JSON and ``perf list``;
here the catalogue lives in :mod:`repro.uarch.pmu` and is filtered by
vendor, exactly the information the online stage needs to program the
counters.
"""

from __future__ import annotations

from typing import List

from repro.uarch.config import CpuModel
from repro.uarch.pmu import PmuEvent, events_for_vendor


def prepare_events(model: CpuModel, domains: List[str] = None) -> List[PmuEvent]:
    """Events available on *model*, optionally filtered by domain.

    Domains are ``"frontend"``, ``"backend"``, ``"memory"`` -- the RQ1-RQ3
    split of §5.2.
    """
    events = events_for_vendor(model.vendor)
    if domains:
        unknown = set(domains) - {"frontend", "backend", "memory"}
        if unknown:
            raise ValueError(f"unknown domains: {sorted(unknown)}")
        events = [event for event in events if event.domain in domains]
    return events


def counter_groups(events: List[PmuEvent], group_size: int = 4) -> List[List[PmuEvent]]:
    """Partition events into programmable counter groups.

    Real PMUs expose a handful of programmable counters, so the collection
    stage measures a few events per run and repeats the scenario; the
    simulator could count everything at once, but we keep the grouping so
    the pipeline's run count matches the real methodology.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    return [events[i : i + group_size] for i in range(0, len(events), group_size)]
