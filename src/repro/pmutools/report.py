"""Offline stage, part 2: the Table 3 report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.pmutools.differential import FilteredEvent


@dataclass(frozen=True)
class Table3Row:
    """One row of the paper's Table 3."""

    cpu_scene: str
    event: str
    domain: str
    condition0: float
    condition1: float
    condition_names: tuple

    def formatted(self) -> str:
        return (
            f"{self.cpu_scene:28} | {self.event:48} | "
            f"{self.condition0:10.1f} | {self.condition1:10.1f}"
        )


def rows_from_filtered(
    cpu_scene: str, filtered: List[FilteredEvent], condition_names: tuple
) -> List[Table3Row]:
    """Turn filter survivors into report rows."""
    return [
        Table3Row(
            cpu_scene=cpu_scene,
            event=event.name,
            domain=event.domain,
            condition0=event.condition0,
            condition1=event.condition1,
            condition_names=condition_names,
        )
        for event in filtered
    ]


def render_table3(rows: List[Table3Row]) -> str:
    """Format rows the way the paper's Table 3 reads."""
    if not rows:
        return "(no condition-sensitive events)"
    lines = []
    header_names = rows[0].condition_names
    lines.append(
        f"{'CPU & Scene':28} | {'Event Name':48} | "
        f"{header_names[0]:>10} | {header_names[1]:>10}"
    )
    lines.append("-" * 106)
    last_scene = None
    for row in rows:
        scene = row.cpu_scene if row.cpu_scene != last_scene else ""
        last_scene = row.cpu_scene
        lines.append(
            f"{scene:28} | {row.event:48} | "
            f"{row.condition0:10.1f} | {row.condition1:10.1f}"
        )
    return "\n".join(lines)


def answers_by_domain(rows: List[Table3Row]) -> Dict[str, List[Table3Row]]:
    """Group survivors by domain -- the RQ1/RQ2/RQ3 structure of §5.2."""
    grouped: Dict[str, List[Table3Row]] = {"frontend": [], "backend": [], "memory": []}
    for row in rows:
        grouped.setdefault(row.domain, []).append(row)
    return grouped
