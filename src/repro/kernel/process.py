"""User processes: address space view, memory allocation, signals."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.paging import AddressSpace, PageSize


@dataclass
class SignalDisposition:
    """Registered handler for one signal (we only model SIGSEGV)."""

    handler_pc: int


@dataclass
class Process:
    """One user process.

    ``space`` is the page table the process runs on (the KPTI *user* table
    when KPTI is enabled -- the kernel keeps its full table separately).
    ``container`` marks Docker-style namespacing; it intentionally changes
    nothing about translation, which is the paper's §4.5 point about
    breaking KASLR from inside a container.
    """

    pid: int
    name: str
    space: AddressSpace
    kernel_space: AddressSpace
    container: bool = False
    signal_handlers: Dict[str, SignalDisposition] = field(default_factory=dict)
    #: Next free user virtual address for allocations.
    brk: int = 0x0000_7000_0000_0000
    #: Next free virtual address for code mappings.
    code_brk: int = 0x40_0000

    def register_signal_handler(self, signal: str, handler_pc: int) -> None:
        """Install *handler_pc* for *signal* (``"SIGSEGV"``)."""
        self.signal_handlers[signal] = SignalDisposition(handler_pc)

    def signal_handler(self, signal: str) -> Optional[int]:
        """Handler PC for *signal*, or ``None``."""
        disposition = self.signal_handlers.get(signal)
        return disposition.handler_pc if disposition else None

    def take_data_va(self, pages: int, size: PageSize = PageSize.SIZE_4K) -> int:
        """Reserve *pages* of user data address space; return the base."""
        alignment = int(size)
        base = (self.brk + alignment - 1) & ~(alignment - 1)
        self.brk = base + pages * alignment
        return base

    def take_code_va(self, pages: int) -> int:
        """Reserve *pages* of executable address space; return the base."""
        base = (self.code_brk + 0xFFF) & ~0xFFF
        self.code_brk = base + pages * int(PageSize.SIZE_4K)
        return base
