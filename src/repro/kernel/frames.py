"""Physical frame allocation for the kernel substrate."""

from __future__ import annotations

from repro.memory.paging import PageSize


class FrameAllocator:
    """A bump allocator handing out physical frames.

    Simulated physical memory is sparse, so a bump allocator is all the
    substrate needs; alignment is honoured for 2 MiB pages.
    """

    def __init__(self, start: int = 0x0100_0000, limit: int = 0x8000_0000) -> None:
        self._next = start
        self._limit = limit

    def alloc(self, size: PageSize = PageSize.SIZE_4K, count: int = 1) -> int:
        """Allocate *count* contiguous pages of *size*; return base paddr."""
        alignment = int(size)
        base = (self._next + alignment - 1) & ~(alignment - 1)
        end = base + alignment * count
        if end > self._limit:
            raise MemoryError("simulated physical memory exhausted")
        self._next = end
        return base

    @property
    def allocated_bytes(self) -> int:
        return self._next
