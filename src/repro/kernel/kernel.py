"""The :class:`Kernel` facade: image placement, page tables, defenses.

A "boot" builds the kernel page tables with the selected defense
combination; processes then get their own address-space clones.  The three
configurations the paper attacks:

* plain KASLR (the kernel image is mapped supervisor-only at a random
  slot -- user probes fault with *protection* errors, which is exactly the
  mapped/unmapped oracle TET-KASLR reads);
* KPTI: the user-visible table keeps only the trampoline remnant at
  ``base + 0xe00000`` (probing 512 candidate trampolines finds it);
* FLARE on top of KPTI: dummy pages blanket the rest of the range so every
  probe faults with a *protection* error.  The residual distinguisher we
  model is page size: real kernel text is 2 MiB pages, FLARE dummies are
  4 KiB pages, so the first walk after a TLB flush differs by one level.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.frames import FrameAllocator
from repro.kernel.kaslr import randomize_layout
from repro.kernel.layout import (
    KASLR_ALIGN,
    KASLR_SLOTS,
    KERNEL_SECRET_OFFSET,
    KERNEL_TEXT_RANGE_START,
    KPTI_TRAMPOLINE_OFFSET,
    KernelLayout,
)
from repro.kernel.process import Process
from repro.memory.paging import AddressSpace, PageSize
from repro.memory.physical import PhysicalMemory

DEFAULT_SECRET = b"The Magic Words are Squeamish Ossifrage!"


class Kernel:
    """A booted kernel: layout, page tables and process management."""

    def __init__(
        self,
        physical: PhysicalMemory,
        kaslr: bool = True,
        kpti: bool = False,
        flare: bool = False,
        fgkaslr: bool = False,
        seed: Optional[int] = None,
        flare_coverage: str = "probe-offsets",
        secret: bytes = DEFAULT_SECRET,
    ) -> None:
        if flare and not kpti:
            # FLARE is a KPTI add-on in its paper and in ours.
            kpti = True
        self.physical = physical
        self.frames = FrameAllocator()
        self.kpti = kpti
        self.flare = flare
        self.fgkaslr = fgkaslr
        self.layout: KernelLayout = randomize_layout(seed=seed, kaslr=kaslr, fgkaslr=fgkaslr)
        self.kernel_space = AddressSpace("kernel")
        self._map_kernel_image()
        self.user_template: Optional[AddressSpace] = None
        if kpti:
            self.user_template = self._build_kpti_user_template()
            if flare:
                self._apply_flare(self.user_template, flare_coverage)
        self._processes: List[Process] = []
        self._secret = b""
        self.set_secret(secret)

    # -- boot-time construction --------------------------------------------------

    def _map_kernel_image(self) -> None:
        """Map the image as supervisor 2 MiB global pages."""
        huge = PageSize.SIZE_2M
        pages = self.layout.image_size // int(huge)
        paddr = self.frames.alloc(huge, count=pages)
        self.kernel_text_paddr = paddr
        for index in range(pages):
            self.kernel_space.map_page(
                self.layout.base + index * int(huge),
                paddr + index * int(huge),
                size=huge,
                writable=True,
                user=False,
                global_=True,
                nx=False,
                tag="kernel-text",
            )

    def _build_kpti_user_template(self) -> AddressSpace:
        """The user-side table: only the trampoline remnant is kernel-mapped."""
        template = AddressSpace("kpti-user")
        trampoline_va = self.layout.trampoline_va
        trampoline_pa = self.kernel_text_paddr + KPTI_TRAMPOLINE_OFFSET
        template.map_page(
            trampoline_va,
            trampoline_pa,
            size=PageSize.SIZE_4K,
            writable=False,
            user=False,  # still supervisor-only: user probes get #PF(prot)
            global_=True,
            tag="kpti-trampoline",
        )
        return template

    def _apply_flare(self, space: AddressSpace, coverage: str) -> None:
        """Blanket unmapped kernel-range addresses with dummy mappings.

        ``coverage="probe-offsets"`` maps dummies at every slot base and
        every candidate trampoline address -- the offsets any slot-scanning
        attack probes -- which keeps boot cheap.  ``coverage="full"`` maps
        the entire range at 4 KiB granularity (262,144 PTEs) for the
        dedicated FLARE benchmark.
        """
        dummy_pa = self.frames.alloc(PageSize.SIZE_4K)
        if coverage == "full":
            candidates = range(
                KERNEL_TEXT_RANGE_START,
                KERNEL_TEXT_RANGE_START + KASLR_SLOTS * KASLR_ALIGN,
                int(PageSize.SIZE_4K),
            )
        elif coverage == "probe-offsets":
            candidates = []
            for slot in range(KASLR_SLOTS):
                base = KERNEL_TEXT_RANGE_START + slot * KASLR_ALIGN
                candidates.append(base)
                candidates.append(base + KPTI_TRAMPOLINE_OFFSET)
        else:
            raise ValueError(f"unknown FLARE coverage {coverage!r}")
        for va in candidates:
            if space.lookup(va) is not None:
                continue
            # Dummies share one frame, as FLARE does, and are *not* marked
            # global: the real trampoline must survive CR3 switches (it is
            # the syscall entry path), while FLARE's blanket dummies are
            # ordinary kernel-range fillers.  This asymmetry is the
            # residual our TET-KASLR FLARE bypass measures -- see
            # DESIGN.md's substitution table.
            space.map_page(
                va,
                dummy_pa,
                size=PageSize.SIZE_4K,
                writable=False,
                user=False,
                global_=False,
                nx=True,
                tag="flare-dummy",
            )

    # -- secrets -------------------------------------------------------------------

    def set_secret(self, data: bytes) -> None:
        """Place *data* in the kernel secret page (Meltdown's target)."""
        self._secret = bytes(data)
        self.physical.write_bytes(self.kernel_text_paddr + KERNEL_SECRET_OFFSET, self._secret)

    @property
    def secret(self) -> bytes:
        return self._secret

    @property
    def secret_va(self) -> int:
        """Kernel virtual address of the secret."""
        return self.layout.secret_va

    def secret_paddr(self) -> int:
        """Physical address of the secret (for cache warming)."""
        return self.kernel_text_paddr + KERNEL_SECRET_OFFSET

    # -- processes -----------------------------------------------------------------

    def create_process(self, name: str, container: bool = False) -> Process:
        """Fork-lite: a fresh process with its own page-table clone."""
        if self.kpti:
            assert self.user_template is not None
            space = self.user_template.clone_shared(f"{name}-user")
        else:
            space = self.kernel_space.clone_shared(f"{name}-space")
        process = Process(
            pid=len(self._processes) + 1,
            name=name,
            space=space,
            kernel_space=self.kernel_space,
            container=container,
        )
        self._processes.append(process)
        return process

    def map_user_memory(
        self,
        process: Process,
        pages: int,
        size: PageSize = PageSize.SIZE_4K,
        executable: bool = False,
        va: Optional[int] = None,
    ) -> int:
        """Map *pages* of fresh user memory into *process*; return base va."""
        if va is None:
            va = process.take_data_va(pages, size)
        paddr = self.frames.alloc(size, count=pages)
        for index in range(pages):
            process.space.map_page(
                va + index * int(size),
                paddr + index * int(size),
                size=size,
                writable=True,
                user=True,
                nx=not executable,
                tag="user",
            )
        return va

    def map_user_code(self, process: Process, pages: int, va: int) -> int:
        """Map executable user pages at a fixed *va* (program loading)."""
        paddr = self.frames.alloc(PageSize.SIZE_4K, count=pages)
        for index in range(pages):
            process.space.map_page(
                va + index * int(PageSize.SIZE_4K),
                paddr + index * int(PageSize.SIZE_4K),
                size=PageSize.SIZE_4K,
                writable=False,
                user=True,
                nx=False,
                tag="user-code",
            )
        return va
