"""KASLR slot selection and FGKASLR function shuffling."""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Optional

from repro.kernel.layout import (
    DEFAULT_SYMBOL_OFFSETS,
    KASLR_ALIGN,
    KASLR_SLOTS,
    KERNEL_IMAGE_SIZE,
    KernelLayout,
    slot_base,
)


def user_mapped_slots(
    layout: KernelLayout, kpti: bool, probe_offset: int = 0
) -> FrozenSet[int]:
    """Sweep slots whose probe address the *user* page table maps.

    A TET-KASLR sweep probes ``slot_base(slot) + probe_offset`` for all
    512 slots; this predicts which of those candidates resolve to a
    mapped page from user space -- the whole image without KPTI, exactly
    the 4 KiB trampoline remnant with it.  The batch executor's KASLR
    packs evict precisely these lanes to the scalar path (a mapped
    candidate's walk cannot be isomorphic to an unmapped leader's), so
    tests and capacity planning read the expected eviction set from
    here.
    """
    trampoline_page = layout.trampoline_va & ~0xFFF
    mapped = set()
    for slot in range(KASLR_SLOTS):
        va = slot_base(slot) + probe_offset
        if kpti:
            if va & ~0xFFF == trampoline_page:
                mapped.add(slot)
        elif layout.contains(va):
            mapped.add(slot)
    return frozenset(mapped)


def randomize_layout(
    seed: Optional[int] = None,
    kaslr: bool = True,
    fgkaslr: bool = False,
) -> KernelLayout:
    """Pick this boot's kernel placement.

    With ``kaslr=False`` the kernel sits at slot 0 (the pre-KASLR world).
    With ``fgkaslr=True`` the function symbols are additionally shuffled
    inside the image, so learning ``base`` no longer reveals where any
    particular function is -- the §6.2 mitigation.
    """
    rng = random.Random(seed)
    image_slots = KERNEL_IMAGE_SIZE // KASLR_ALIGN
    slot = rng.randrange(0, KASLR_SLOTS - image_slots) if kaslr else 0
    symbols: Dict[str, int] = dict(DEFAULT_SYMBOL_OFFSETS)
    if fgkaslr:
        symbols = _shuffle_functions(symbols, rng)
    return KernelLayout(base=slot_base(slot), slot=slot, symbols=symbols)


def _shuffle_functions(symbols: Dict[str, int], rng: random.Random) -> Dict[str, int]:
    """Scatter every non-pinned symbol to a random offset in the image.

    ``startup_64`` (the image base) and ``entry_SYSCALL_64`` (the KPTI
    trampoline entry, which must stay at its fixed physical location) keep
    their offsets, exactly as FGKASLR pins them.
    """
    pinned = {"startup_64", "entry_SYSCALL_64"}
    shuffled: Dict[str, int] = {}
    used = set()
    for name, offset in symbols.items():
        if name in pinned:
            shuffled[name] = offset
            continue
        while True:
            candidate = rng.randrange(0x1000, KERNEL_IMAGE_SIZE, 0x10)
            if candidate not in used:
                used.add(candidate)
                shuffled[name] = candidate
                break
    return shuffled
