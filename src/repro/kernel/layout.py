"""Kernel address-space constants and the image layout description.

Linux maps its text into ``0xffffffff80000000 .. 0xffffffffc0000000`` with
2 MiB (CONFIG_PHYSICAL_ALIGN) granularity, giving the 512 possible KASLR
offsets the paper's KPTI experiment scans (§4.5).  The paper's prose
quotes the upper bound as ``0xfffffffffc000000`` with 4 KiB alignment but
then speaks of "the 512 possible offsets of KASLR"; we implement the
512-slot/2 MiB reading, which matches Linux and the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

KERNEL_TEXT_RANGE_START = 0xFFFF_FFFF_8000_0000
KERNEL_TEXT_RANGE_END = 0xFFFF_FFFF_C000_0000
KASLR_ALIGN = 2 * 1024 * 1024  # one slot per 2 MiB
KASLR_SLOTS = (KERNEL_TEXT_RANGE_END - KERNEL_TEXT_RANGE_START) // KASLR_ALIGN  # 512

#: KPTI keeps the entry trampoline mapped in the user page table at this
#: fixed offset from the (randomised) kernel base (§4.5).
KPTI_TRAMPOLINE_OFFSET = 0xE0_0000

#: Size of the mapped kernel image (text+rodata+data) in our substrate.
KERNEL_IMAGE_SIZE = 32 * 1024 * 1024  # 16 huge pages

#: Offset of the kernel data page holding the simulated secrets.
KERNEL_SECRET_OFFSET = 0x120_0000

#: A few named kernel symbols at fixed offsets from base -- what a code
#: reuse attack needs once KASLR is broken (and what FGKASLR scrambles).
DEFAULT_SYMBOL_OFFSETS: Dict[str, int] = {
    "startup_64": 0x0,
    "entry_SYSCALL_64": 0xE0_0040,
    "commit_creds": 0x10_E5A0,
    "prepare_kernel_cred": 0x10_E8C0,
    "native_write_cr4": 0x06_1A30,
    "do_syscall_64": 0x0A_2B10,
}


@dataclass
class KernelLayout:
    """Where the kernel landed this boot."""

    base: int
    slot: int
    image_size: int = KERNEL_IMAGE_SIZE
    symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def trampoline_va(self) -> int:
        """The KPTI trampoline page's virtual address."""
        return self.base + KPTI_TRAMPOLINE_OFFSET

    @property
    def secret_va(self) -> int:
        """Virtual address of the kernel secret page."""
        return self.base + KERNEL_SECRET_OFFSET

    @property
    def end(self) -> int:
        return self.base + self.image_size

    def contains(self, va: int) -> bool:
        """Whether *va* falls inside the mapped image."""
        return self.base <= va < self.end

    def symbol_va(self, name: str) -> int:
        """Runtime virtual address of kernel symbol *name*."""
        return self.base + self.symbols[name]


def slot_base(slot: int) -> int:
    """Virtual base address of KASLR *slot* (0..511)."""
    if not 0 <= slot < KASLR_SLOTS:
        raise ValueError(f"KASLR slot {slot} out of range 0..{KASLR_SLOTS - 1}")
    return KERNEL_TEXT_RANGE_START + slot * KASLR_ALIGN


def slot_of(va: int) -> int:
    """KASLR slot index containing *va*."""
    if not KERNEL_TEXT_RANGE_START <= va < KERNEL_TEXT_RANGE_END:
        raise ValueError(f"{va:#x} is outside the KASLR range")
    return (va - KERNEL_TEXT_RANGE_START) // KASLR_ALIGN
