"""Miniature OS substrate: kernel layout, KASLR and its defenses.

TET-KASLR's target lives here.  The kernel image is placed at one of the
512 2 MiB-aligned slots of the canonical Linux text range; KPTI builds a
user-visible page table that keeps only the trampoline remnant mapped at a
fixed offset inside the image; FLARE blankets the rest of the range with
dummy mappings; FGKASLR shuffles function offsets inside the image.  The
simulated attacks probe exactly these structures.

* :mod:`repro.kernel.frames` -- physical frame allocator.
* :mod:`repro.kernel.layout` -- address-space constants and the image map.
* :mod:`repro.kernel.kaslr` -- slot randomisation (and FGKASLR shuffling).
* :mod:`repro.kernel.kernel` -- the :class:`Kernel` facade.
* :mod:`repro.kernel.process` -- user processes, signals, containers.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.layout import (
    KASLR_ALIGN,
    KASLR_SLOTS,
    KERNEL_TEXT_RANGE_END,
    KERNEL_TEXT_RANGE_START,
    KPTI_TRAMPOLINE_OFFSET,
    KernelLayout,
)
from repro.kernel.process import Process

__all__ = [
    "KASLR_ALIGN",
    "KASLR_SLOTS",
    "KERNEL_TEXT_RANGE_END",
    "KERNEL_TEXT_RANGE_START",
    "KPTI_TRAMPOLINE_OFFSET",
    "Kernel",
    "KernelLayout",
    "Process",
]
