"""Typed metrics: counters, gauges, fixed-bucket histograms.

The registry is the aggregate half of ``repro.telemetry`` (spans are
the per-occurrence half).  Three types, chosen because every one of
them has a *mergeable snapshot*:

* :class:`Counter` -- monotonically increasing int; merge = sum;
* :class:`Gauge` -- last-written value; merge = max (the only
  commutative, associative choice that needs no timestamps);
* :class:`Histogram` -- fixed upper-bound buckets plus an overflow
  bucket, with ``sum`` and ``count``; merge = element-wise sum.

Merging is commutative and associative with an empty-snapshot identity
(``tests/test_telemetry_properties.py`` pins this with Hypothesis), so
worker snapshots can fold into the coordinator's registry in whatever
order the result pipes deliver them and still produce one well-defined
campaign total.

Every metric carries a ``det`` flag: ``True`` means the value is part
of the determinism contract -- identical at any worker count for a
fixed seed (trial counts, retry/quarantine counts, PMU-derived sums).
``False`` marks host-dependent measurements (fsync latency, trials/sec,
adaptive chunk sizes); :func:`deterministic_view` strips them, and that
view is what the determinism tests compare across worker counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "deterministic_view",
    "merge_snapshots",
]

#: Default histogram bucket upper bounds -- a wide geometric ladder that
#: fits both microsecond latencies and million-cycle trial costs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0,
    100_000.0, 1_000_000.0, 10_000_000.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "det", "value")

    def __init__(self, name: str, det: bool = True) -> None:
        self.name = name
        self.det = det
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "det": self.det, "value": self.value}


class Gauge:
    """A last-written value; merges by max (see module docstring)."""

    __slots__ = ("name", "det", "value")

    def __init__(self, name: str, det: bool = True) -> None:
        self.name = name
        self.det = det
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "det": self.det, "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus overflow.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts everything larger.  Bounds are fixed at creation so any two
    snapshots of the same metric merge by element-wise addition.
    """

    __slots__ = ("name", "det", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        det: bool = True,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.det = det
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "det": self.det,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A named collection of metrics with mergeable snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, det: bool = True) -> Counter:
        return self._get(name, Counter, det=det)

    def gauge(self, name: str, det: bool = True) -> Gauge:
        return self._get(name, Gauge, det=det)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        det: bool = True,
    ) -> Histogram:
        return self._get(name, Histogram, buckets=buckets, det=det)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, dict]:
        """JSON-ready ``{name: metric snapshot}`` in sorted name order."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def drain(self) -> Dict[str, dict]:
        """Snapshot, then reset the registry (the worker shipping mode)."""
        out = self.snapshot()
        self._metrics.clear()
        return out

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold one snapshot into the live registry (commutative)."""
        for name, entry in snapshot.items():
            kind = entry["type"]
            if kind == "counter":
                self.counter(name, det=entry.get("det", True)).value += entry["value"]
            elif kind == "gauge":
                gauge = self.gauge(name, det=entry.get("det", True))
                value = entry["value"]
                if value is not None and (gauge.value is None or value > gauge.value):
                    gauge.value = value
            elif kind == "histogram":
                histogram = self.histogram(
                    name,
                    buckets=entry["buckets"],
                    det=entry.get("det", True),
                )
                if list(histogram.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


def merge_snapshots(*snapshots: Dict[str, dict]) -> Dict[str, dict]:
    """Pure merge of snapshots (the property under test: commutative,
    associative, with ``{}`` as identity)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


def deterministic_view(snapshot: Dict[str, dict]) -> Dict[str, dict]:
    """The snapshot with every host-dependent (``det=False``) metric
    removed -- the view the cross-worker-count determinism tests compare."""
    return {
        name: entry for name, entry in snapshot.items() if entry.get("det", True)
    }
