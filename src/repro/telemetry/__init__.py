"""repro.telemetry -- structured spans, metrics, live introspection.

The reproduction system's own prepare->collect->filter->analyse loop:
the PMU toolset observes the *simulated* CPU, this package observes the
*reproduction stack* -- campaigns, cells, trials, workers, the core's
hot path -- with the same discipline the paper applies to its own
measurements (a timing result is only as good as the instrumentation
around it).

Five modules:

* :mod:`repro.telemetry.spans` -- the span/event recorder and the
  worker-batch ingest that merges pooled traces;
* :mod:`repro.telemetry.metrics` -- the typed registry (counters,
  gauges, fixed-bucket histograms) with mergeable snapshots;
* :mod:`repro.telemetry.export` -- JSONL logs, Chrome ``trace_event``
  JSON, text cycle attribution, collapsed flamegraph stacks,
  sidecar-stripped checksums;
* :mod:`repro.telemetry.stream` -- the live fleet plane: framed
  per-shard spools, deterministic heartbeats, the tail-then-fold
  contract (fold == end-of-shard ``merge_telemetry``, byte for byte);
* :mod:`repro.telemetry.live` -- the ``--progress`` renderer and the
  ``repro obs report|trace|tail|top|flame|fold|overhead`` CLI bodies.

This module owns the *process-global* switch.  Telemetry is **off by
default** and the disabled path is near-free: every hook in the
runtime/campaign/fault layers is an ``is None`` check (`enabled()`)
or a call that returns the shared no-op span.  ``enable()`` installs a
:class:`~repro.telemetry.spans.Recorder` and arms the global
:class:`~repro.telemetry.metrics.MetricsRegistry`; worker processes are
armed per task by the pool (see ``repro.runtime.pool``) and ship their
records back over the existing result pipes.

Hard invariant: telemetry observes, never perturbs.  Seeds, trial
payloads, store keys and report bytes are identical with telemetry on
or off, at any worker count (``tests/test_telemetry.py`` pins it).
See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    deterministic_view,
    merge_snapshots,
)
from repro.telemetry.spans import NULL_SPAN, Recorder, Span, orphan_records

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "Span",
    "add",
    "annotate",
    "deterministic_view",
    "disable",
    "drain_worker_batch",
    "enable",
    "enable_in_worker",
    "enabled",
    "event",
    "gauge_set",
    "heartbeat_cadence",
    "ingest_batches",
    "merge_snapshots",
    "merge_worker_metrics",
    "metrics_registry",
    "observe",
    "orphan_records",
    "recorder",
    "set_heartbeat_cadence",
    "span",
]

#: The active recorder, or None (telemetry off -- the default).
_RECORDER: Optional[Recorder] = None

#: The process-global registry.  Always importable; hook sites only
#: touch it when a recorder is active, so a disabled run never pays for
#: metric lookups.
_METRICS = MetricsRegistry()

#: Heartbeat cadence in completed trials (0 = off, the default).  Armed
#: by the streaming path (``campaign shard --stream-out``): the pool's
#: executors then emit ``pool.heartbeat`` events every N completions.
#: The cadence is a *trial count*, never a wall-clock timer, so the
#: heartbeat stream's deterministic attributes are identical at any
#: worker count.  Off by default because heartbeat events interleave
#: differently between the serial and pooled trace streams (serial
#: records trial spans inline; pooled ingests them at end-of-map), and
#: the serial-vs-pooled trace checksum identity must hold whenever the
#: caller has not opted into streaming.
_HEARTBEAT_EVERY = 0


def set_heartbeat_cadence(every: int) -> None:
    """Arm (or, with 0, disarm) pool heartbeat events every N trials."""
    global _HEARTBEAT_EVERY
    if every < 0:
        raise ValueError("heartbeat cadence cannot be negative")
    _HEARTBEAT_EVERY = int(every)


def heartbeat_cadence() -> int:
    """The armed heartbeat cadence in trials (0 = off)."""
    return _HEARTBEAT_EVERY


def enable(wall_clock: bool = False, origin: str = "m") -> Recorder:
    """Arm telemetry in this process; returns the fresh recorder.

    Re-enabling replaces the recorder and clears the registry -- each
    enable starts a clean recorded run.
    """
    global _RECORDER
    _RECORDER = Recorder(origin=origin, wall_clock=wall_clock)
    _METRICS.drain()
    return _RECORDER


def disable() -> None:
    """Disarm telemetry (the recorder and its records are dropped)."""
    global _RECORDER
    _RECORDER = None


def enabled() -> bool:
    """Is a recorder active in this process?  The disabled-path hook."""
    return _RECORDER is not None


def recorder() -> Optional[Recorder]:
    """The active recorder, or None."""
    return _RECORDER


def metrics_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


# -- recording conveniences (all no-ops when disabled) ---------------------


def span(name: str, **attrs):
    """Open a span on the active recorder, or the shared no-op span."""
    if _RECORDER is None:
        return NULL_SPAN
    return _RECORDER.span(name, **attrs)


def event(name: str, host: Optional[dict] = None, **attrs) -> None:
    """Record a point event (no-op when disabled)."""
    if _RECORDER is not None:
        _RECORDER.event(name, host=host, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span (no-op when disabled)."""
    if _RECORDER is not None:
        _RECORDER.annotate(**attrs)


def add(name: str, amount: int = 1, det: bool = True) -> None:
    """Increment a counter (no-op when disabled)."""
    if _RECORDER is not None:
        _METRICS.counter(name, det=det).add(amount)


def gauge_set(name: str, value: float, det: bool = True) -> None:
    """Set a gauge (no-op when disabled)."""
    if _RECORDER is not None:
        _METRICS.gauge(name, det=det).set(value)


def observe(
    name: str,
    value: float,
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    det: bool = True,
) -> None:
    """Observe a histogram sample (no-op when disabled)."""
    if _RECORDER is not None:
        _METRICS.histogram(name, buckets=buckets, det=det).observe(value)


# -- worker-side shipping (used by repro.runtime.pool) ---------------------


def enable_in_worker() -> None:
    """Arm telemetry inside a worker process (idempotent).

    Worker recorders never carry wall clocks: their records are merged
    into the coordinator's trace, whose ordering must depend only on
    payload identity.
    """
    if _RECORDER is None:
        enable(wall_clock=False, origin="w")


def drain_worker_batch() -> Optional[dict]:
    """The telemetry a worker ships after one task, or None if empty.

    Records drain with sequence reset (each batch is a self-contained
    stream keyed only by the trial that produced it) and the worker's
    metrics drain alongside; the coordinator merges both.
    """
    if _RECORDER is None:
        return None
    records = _RECORDER.drain(reset_seq=True)
    metrics = _METRICS.drain()
    if not records and not metrics:
        return None
    return {"records": records, "metrics": metrics}


def merge_worker_metrics(batch: Optional[dict]) -> None:
    """Fold one worker batch's metrics into the coordinator registry."""
    if batch and batch.get("metrics"):
        _METRICS.merge(batch["metrics"])


def ingest_batches(batches: Iterable[Tuple[str, List[dict]]]) -> None:
    """Merge worker record batches (pre-sorted by the caller) into the
    coordinator's trace under the currently open span."""
    if _RECORDER is not None:
        _RECORDER.ingest(list(batches))
