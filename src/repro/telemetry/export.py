"""Exporters: JSONL event logs, Chrome ``trace_event`` JSON, and text
cycle-attribution summaries.

Three consumers, three formats:

* **JSONL** -- the canonical recorded-run artifact (`repro campaign run
  --trace-out run.jsonl`).  One record per line, ending with a single
  ``{"kind": "metrics", ...}`` record carrying the run's merged metrics
  snapshot.  ``repro obs report|trace|tail`` all replay this file.
* **Chrome trace JSON** -- load the converted file in
  ``chrome://tracing`` or https://ui.perfetto.dev to see the campaign
  as a flame chart.  When records carry ``wall`` sidecar times those
  drive the timeline; otherwise a deterministic preorder timeline is
  synthesised from sequence numbers (every span still nests correctly).
* **Cycle attribution** -- a flamegraph-style text rollup of simulated
  cycles by span path, the summary the perf regression gate prints so a
  CI failure names *where* the cycles went.

:func:`records_checksum` hashes a trace with the ``wall``/``host``
sidecar fields stripped: telemetry-on runs of the same seed at the same
worker count produce identical checksums, which is how the determinism
suite pins the trace format.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "TraceUnreadable",
    "chrome_trace",
    "collapsed_stacks",
    "cycle_attribution",
    "load_trace",
    "read_jsonl",
    "records_checksum",
    "render_attribution",
    "split_metrics",
    "strip_sidecar",
    "validate_chrome_trace",
    "write_jsonl",
]

#: Sidecar fields: host-and-wall-clock facts excluded from checksums.
SIDECAR_FIELDS = ("wall", "host")


def strip_sidecar(record: dict) -> dict:
    """A copy of *record* without the nondeterministic sidecar fields."""
    return {key: value for key, value in record.items() if key not in SIDECAR_FIELDS}


def records_checksum(records: Iterable[dict]) -> str:
    """SHA-256 over the sidecar-stripped canonical JSON of *records*."""
    text = json.dumps(
        [strip_sidecar(record) for record in records],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode()).hexdigest()


# -- JSONL -----------------------------------------------------------------


def write_jsonl(
    records: Sequence[dict],
    path: str,
    metrics: Optional[Dict[str, dict]] = None,
) -> None:
    """Write a recorded run: one record per line, metrics record last."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if metrics is not None:
            handle.write(
                json.dumps({"kind": "metrics", "snapshot": metrics}, sort_keys=True)
                + "\n"
            )


def read_jsonl(path: str) -> List[dict]:
    """Load every record of a recorded run (metrics record included)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class TraceUnreadable(RuntimeError):
    """A recorded run the obs CLI cannot replay (missing/empty/garbled).

    Carries the one-line operator-facing explanation; ``repro obs``
    commands print it and exit non-zero instead of dumping a traceback.
    """


def load_trace(path: str, warn=None) -> List[dict]:
    """:func:`read_jsonl` with operator-grade damage handling.

    The obs CLI's loader: a missing, empty or wholly undecodable file
    raises :class:`TraceUnreadable` with a one-line diagnosis, and a
    torn record -- a writer killed mid-append, exactly the damage the
    store's torn-tail healing absorbs -- is skipped with a *warn*
    callback note rather than poisoning the whole replay.
    """
    if not os.path.exists(path):
        raise TraceUnreadable(
            f"no recorded run at {path} (record one with --trace-out)"
        )
    records: List[dict] = []
    torn = 0
    with open(path) as handle:
        lines = handle.readlines()
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except ValueError:
            torn += 1
            if warn is not None:
                warn(
                    f"{path}:{number}: skipping torn telemetry record "
                    f"(writer died mid-append?)"
                )
            continue
        if isinstance(record, dict):
            records.append(record)
    if not records:
        if torn:
            raise TraceUnreadable(
                f"{path}: every record is damaged ({torn} torn lines)"
            )
        raise TraceUnreadable(f"{path} is empty (the run recorded nothing)")
    return records


def split_metrics(records: Sequence[dict]) -> Tuple[List[dict], Dict[str, dict]]:
    """Partition a loaded run into (trace records, merged metrics)."""
    from repro.telemetry.metrics import merge_snapshots

    trace = [r for r in records if r.get("kind") != "metrics"]
    snapshots = [r["snapshot"] for r in records if r.get("kind") == "metrics"]
    return trace, merge_snapshots(*snapshots) if snapshots else {}


# -- Chrome trace_event ----------------------------------------------------


def _preorder_extents(records: Sequence[dict]) -> Dict[str, int]:
    """For each span id, the largest seq among it and its descendants.

    Sequence numbers are assigned in preorder, so ``[seq, extent]`` is a
    valid nesting interval: children start after their parent and end at
    or before it.  This synthesises a deterministic timeline for traces
    recorded without wall clocks.
    """
    extents: Dict[str, int] = {}
    parents: Dict[str, Optional[str]] = {}
    for record in records:
        parents[record["id"]] = record.get("parent")
        extents[record["id"]] = record["seq"]
    for record in records:
        seq = record["seq"]
        node = record.get("parent")
        while node is not None:
            if extents.get(node, -1) < seq:
                extents[node] = seq
            node = parents.get(node)
    return extents


def chrome_trace(records: Sequence[dict]) -> dict:
    """Convert trace records to Chrome ``trace_event`` JSON (dict form).

    Spans become complete (``"X"``) events, events become instants
    (``"i"``).  With ``wall`` sidecars present, timestamps are real
    (microseconds since the earliest record); otherwise the preorder
    fallback timeline is used.  Record attributes ride in ``args``.
    """
    records = [r for r in records if r.get("kind") in ("span", "event")]
    walls = [
        r["wall"][0]
        for r in records
        if r.get("wall") and r["wall"][0] is not None
    ]
    epoch = min(walls) if walls else None
    extents = _preorder_extents(records)

    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro campaign"},
        }
    ]
    for record in records:
        wall = record.get("wall")
        if epoch is not None and wall and wall[0] is not None:
            ts = (wall[0] - epoch) * 1e6
            dur = max(((wall[1] or wall[0]) - wall[0]) * 1e6, 1.0)
        else:
            ts = float(record["seq"])
            dur = float(extents[record["id"]] - record["seq"]) + 1.0
        args = dict(record.get("attrs", {}))
        args["id"] = record["id"]
        if record.get("parent"):
            args["parent"] = record["parent"]
        event = {
            "name": record["name"],
            "cat": record["kind"],
            "pid": 1,
            "tid": 1,
            "ts": round(ts, 3),
            "args": args,
        }
        if record["kind"] == "span":
            event["ph"] = "X"
            event["dur"] = round(dur, 3)
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Phases the validator accepts (the subset this exporter emits, plus
#: the duration pair for hand-written traces).
_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C"}


def validate_chrome_trace(trace: dict) -> List[str]:
    """Check *trace* against the ``trace_event`` format; return problems.

    An empty list means the trace is loadable by ``chrome://tracing`` /
    Perfetto: a ``traceEvents`` array whose entries carry ``name``,
    ``ph``, ``pid``, ``tid``, a numeric ``ts`` (metadata excepted), and
    a numeric ``dur`` for complete events.  The CI ``obs-smoke`` step
    gates on this.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: ts must be a number")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete event needs numeric dur")
    return problems


# -- cycle attribution -----------------------------------------------------


def cycle_attribution(records: Sequence[dict]) -> List[Tuple[str, int, int]]:
    """Aggregate simulated *self*-cycles by span name path.

    Returns ``(path, cycles, spans)`` rows sorted by descending cycles.
    A span's cycles are its ``cycles`` attribute; self-cycles subtract
    whatever its child spans claim, so the rollup attributes each cycle
    exactly once (the flamegraph discipline).
    """
    spans = [r for r in records if r.get("kind") == "span"]
    by_id = {r["id"]: r for r in spans}
    child_cycles: Dict[str, int] = {}
    for record in spans:
        cycles = record.get("attrs", {}).get("cycles")
        parent = record.get("parent")
        if isinstance(cycles, int) and parent in by_id:
            child_cycles[parent] = child_cycles.get(parent, 0) + cycles

    def path_of(record: dict) -> str:
        names = [record["name"]]
        node = record.get("parent")
        while node in by_id:
            names.append(by_id[node]["name"])
            node = by_id[node].get("parent")
        return "/".join(reversed(names))

    buckets: Dict[str, List[int]] = {}
    for record in spans:
        cycles = record.get("attrs", {}).get("cycles")
        if not isinstance(cycles, int):
            continue
        self_cycles = max(cycles - child_cycles.get(record["id"], 0), 0)
        bucket = buckets.setdefault(path_of(record), [0, 0])
        bucket[0] += self_cycles
        bucket[1] += 1
    rows = [(path, cycles, count) for path, (cycles, count) in buckets.items()]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def collapsed_stacks(records: Sequence[dict]) -> List[str]:
    """Self-cycle attribution as collapsed-stack lines.

    One ``frame;frame;frame count`` line per span path -- the input
    format of ``flamegraph.pl`` and the speedscope importer, so a
    recorded run (or a live spool's span frames) renders as a real
    flamegraph.  Lines sort lexicographically: the export is a pure
    function of the deterministic trace content.
    """
    return sorted(
        f"{path.replace('/', ';')} {cycles}"
        for path, cycles, _ in cycle_attribution(records)
    )


def render_attribution(
    rows: Sequence[Tuple[str, int, int]], limit: int = 10
) -> str:
    """The text cycle-attribution summary (flamegraph-style rollup)."""
    if not rows:
        return "cycle attribution: no spans carried cycle counts"
    total = sum(cycles for _, cycles, _ in rows) or 1
    lines = ["cycle attribution (self-cycles by span path):"]
    for path, cycles, count in rows[:limit]:
        share = cycles / total
        bar = "#" * max(int(share * 40), 1 if cycles else 0)
        lines.append(
            f"  {cycles:>14,}  {share:6.1%}  {count:>6}x  {path}  {bar}"
        )
    if len(rows) > limit:
        lines.append(f"  ... and {len(rows) - limit} more paths")
    return "\n".join(lines)
