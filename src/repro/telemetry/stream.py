"""The live fleet telemetry plane: framed, tail-able shard spools.

PR 6 made fleet telemetry an *end-of-shard* artifact: every shard
writes its ``telemetry.jsonl`` sidecar when it exits, and
:func:`repro.distrib.merge.merge_telemetry` folds the sidecars after
the fact.  This module makes the same telemetry *streamable while the
shard runs* without touching a single artifact byte.

A shard armed with ``--stream-out`` appends **frames** -- one JSON
object per line -- to a per-shard spool (``stream.jsonl`` in the
segment root).  Frames are sequence-numbered per attempt and carry one
of five kinds:

* ``open`` -- the attempt started (campaign, shard arithmetic, trial
  counts);
* ``spans`` -- a delta batch of newly closed span/event records (the
  same record dicts the sidecar will eventually contain);
* ``metrics`` -- a **cumulative** snapshot of the shard's metrics
  registry at a trial-count boundary;
* ``heartbeat`` -- the deterministic progress pulse: done/total/cached/
  failure counts, batch-eviction and stand-down counters, retry and
  detector counters, with host-dependent facts (trials/sec, wall
  seconds) quarantined under the frame body's ``host`` key exactly like
  the span sidecar fields;
* ``end`` -- the attempt completed; its body carries the *exact*
  metrics snapshot the end-of-shard sidecar records.

Everything is emitted at a **deterministic trial-count cadence**
(``--stream-every N``), never on a wall-clock timer: two runs of the
same shard produce frame streams whose deterministic content is
identical, so the stream is as replayable as every other artifact.

The determinism contract (pinned by ``tests/test_obs_stream.py`` and
the CI ``obs-stream-smoke`` checksum diff):

1. **Prefix property** -- metrics frames are cumulative, so the live
   fold after any frame prefix is a *prefix* of the final fold: every
   deterministic counter is ``<=`` its final value and nothing appears
   that the final fold lacks.
2. **Fold identity** -- :func:`fold_streams` over completed spools
   writes bytes identical to :func:`~repro.distrib.merge.merge_telemetry`
   over the same segments' sidecars, at any shard count, any retry
   interleaving, with torn tails and duplicated frames healed.

Chaos-safety falls out of the frame keying: a retried attempt appends
with a higher ``attempt`` number (the spool is append-only across
worker deaths), replayed frames dedup by ``(attempt, seq)`` first-write
wins, and a torn trailing line -- a worker killed mid-append -- is
skipped exactly like the store's torn-tail healing.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro import telemetry
from repro.telemetry.metrics import merge_snapshots

__all__ = [
    "DEFAULT_STREAM_EVERY",
    "STREAM_SPOOL",
    "FleetView",
    "ShardStreamView",
    "StreamCursor",
    "StreamWriter",
    "discover_spools",
    "fold_frames",
    "fold_stream",
    "fold_streams",
    "read_frames",
    "spool_records",
    "stream_spool",
]

#: The conventional spool filename inside a segment root (next to the
#: segment's ``results.jsonl`` and ``telemetry.jsonl``).
STREAM_SPOOL = "stream.jsonl"

#: Default heartbeat/snapshot cadence in completed trials.
DEFAULT_STREAM_EVERY = 32

#: Frame kinds a well-formed spool may contain.
FRAME_KINDS = ("open", "spans", "metrics", "heartbeat", "end")

#: Registry counters a heartbeat frame carries (cumulative values).  The
#: prefixes cover throughput, retries, batch-eviction/stand-down and
#: detector-verdict counters without hard-coding every metric name.
HEARTBEAT_COUNTER_PREFIXES = ("pool.", "batch.", "campaign.", "defend.")


def stream_spool(root: str) -> str:
    """The conventional spool path inside a segment root."""
    return os.path.join(root, STREAM_SPOOL)


# -- writing ---------------------------------------------------------------


class StreamWriter:
    """Append framed telemetry deltas to one shard's spool.

    The writer is armed by the shard process (``campaign shard
    --stream-out``) next to -- never instead of -- the end-of-shard
    sidecar.  ``on_batch`` is the runner's post-checkpoint hook: when
    the completed-trial count crosses a cadence boundary it emits a
    ``spans`` delta, a cumulative ``metrics`` snapshot and a
    ``heartbeat``.  ``close`` seals the attempt with an ``end`` frame
    carrying the exact snapshot the sidecar records, which is what makes
    :func:`fold_streams` byte-identical to the sidecar fold.

    Resume-safety: a fresh writer on an existing spool (a retried shard
    attempt) heals any torn trailing line and continues under the next
    attempt number -- it never truncates what a dead worker managed to
    append.
    """

    def __init__(
        self,
        path: str,
        shard: Optional[str] = None,
        campaign: str = "",
        total: int = 0,
        every: int = DEFAULT_STREAM_EVERY,
    ) -> None:
        if every < 1:
            raise ValueError("stream cadence must be at least 1 trial")
        self.path = path
        self.shard = shard
        self.campaign = campaign
        self.total = total
        self.every = every
        self.frames_written = 0
        self._seq = 0
        self._next_boundary = every
        self._started = time.perf_counter()
        self._closed = False
        # Span-delta bookkeeping over the live recorder: records are
        # append-only and never reordered, so a scan position plus the
        # still-open stragglers is an O(new) delta.
        self._scan_pos = 0
        self._open_pending: List[dict] = []
        self._last_update: Dict = {}
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.attempt = self._next_attempt()
        self._emit(
            "open",
            {
                "campaign": campaign,
                "shard": shard,
                "total": total,
                "every": every,
            },
        )

    def _next_attempt(self) -> int:
        """Continue an existing spool under the next attempt number."""
        if not os.path.exists(self.path):
            return 0
        frames, _ = read_frames(self.path, dedup=False)
        if not frames:
            return 0
        return max(frame["attempt"] for frame in frames) + 1

    def _emit(self, kind: str, body: dict) -> None:
        frame = {
            "kind": kind,
            "shard": self.shard,
            "attempt": self.attempt,
            "seq": self._seq,
            "body": body,
        }
        self._seq += 1
        with open(self.path, "a+b") as handle:
            # Torn-tail healing, store-style: terminate a partial
            # trailing record before appending so one torn line never
            # poisons the frames behind it.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(
                json.dumps(frame, sort_keys=True).encode() + b"\n"
            )
            handle.flush()
        self.frames_written += 1

    # -- span deltas -------------------------------------------------------

    def _collect_spans(self) -> List[dict]:
        """Newly closed records since the last flush (non-destructive).

        The recorder is never drained here -- the end-of-shard sidecar
        still receives every record -- so the spool is a live *mirror*
        of the trace, not a competing owner of it.
        """
        recorder = telemetry.recorder()
        if recorder is None:
            return []
        fresh: List[dict] = []
        still_open: List[dict] = []
        for record in self._open_pending:
            if "open" in record:
                still_open.append(record)
            else:
                fresh.append(record)
        records = recorder.records
        for record in records[self._scan_pos:]:
            if "open" in record:
                still_open.append(record)
            else:
                fresh.append(record)
        self._scan_pos = len(records)
        self._open_pending = still_open
        fresh.sort(key=lambda record: record["seq"])
        return [dict(record) for record in fresh]

    # -- the runner hook ---------------------------------------------------

    def on_batch(self, update: Dict) -> None:
        """The runner's post-checkpoint hook: flush at cadence boundaries."""
        if self._closed:
            return
        self._last_update = dict(update)
        done = int(update.get("done", 0))
        if done < self._next_boundary:
            return
        while self._next_boundary <= done:
            self._next_boundary += self.every
        self.flush(update)

    def flush(self, update: Optional[Dict] = None) -> None:
        """Emit a spans delta, a cumulative snapshot and a heartbeat."""
        spans = self._collect_spans()
        if spans:
            self._emit("spans", {"records": spans})
        self._emit(
            "metrics", {"snapshot": telemetry.metrics_registry().snapshot()}
        )
        self._emit("heartbeat", self._heartbeat_body(update or {}))

    def _heartbeat_body(
        self, update: Dict, snapshot: Optional[Dict[str, dict]] = None
    ) -> dict:
        """One deterministic progress pulse.

        Everything outside ``host`` is a pure function of the completed
        trial set; ``host`` quarantines wall-clock facts the same way
        span records quarantine ``wall``/``host`` sidecar fields.
        """
        if snapshot is None:
            snapshot = telemetry.metrics_registry().snapshot()
        counters = {
            name: entry["value"]
            for name, entry in snapshot.items()
            if entry["type"] == "counter"
            and entry.get("det", True)
            and name.startswith(HEARTBEAT_COUNTER_PREFIXES)
        }
        elapsed = time.perf_counter() - self._started
        done = int(update.get("done", 0))
        return {
            "done": done,
            "pending": int(update.get("pending", 0)),
            "total": int(update.get("total", self.total)),
            "cached": int(update.get("cached", 0)),
            "failures": int(update.get("failures", 0)),
            "evictions": int(update.get("evictions", 0)),
            "standdowns": dict(update.get("standdowns", {})),
            "cell": update.get("cell"),
            "cells": int(update.get("cells", 0)),
            "counters": counters,
            "host": {
                "wall_seconds": round(elapsed, 3),
                "trials_per_sec": (
                    round(done / elapsed, 1) if elapsed > 0 else 0.0
                ),
            },
        }

    def close(
        self,
        snapshot: Optional[Dict[str, dict]] = None,
        update: Optional[Dict] = None,
    ) -> None:
        """Seal the attempt: final spans delta plus the ``end`` frame.

        *snapshot* must be the exact metrics snapshot the end-of-shard
        sidecar records (the CLI computes it once and hands it to both
        writers) -- that equality is the whole fold-identity contract.
        """
        if self._closed:
            return
        spans = self._collect_spans()
        if spans:
            self._emit("spans", {"records": spans})
        if snapshot is None:
            snapshot = telemetry.metrics_registry().snapshot()
        body = {"snapshot": snapshot}
        final_update = update if update is not None else self._last_update
        if final_update:
            # Counters come from the sealed snapshot: the registry may
            # already be drained by the sidecar writer at close time.
            body["heartbeat"] = self._heartbeat_body(
                final_update, snapshot=snapshot
            )
        self._emit("end", body)
        self._closed = True
        try:
            with open(self.path, "rb") as handle:
                os.fsync(handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass


# -- reading ---------------------------------------------------------------


def _parse_frame(line: str) -> Optional[dict]:
    """One spool line as a validated frame, or None for damage."""
    try:
        frame = json.loads(line)
    except ValueError:
        return None
    if not isinstance(frame, dict):
        return None
    if frame.get("kind") not in FRAME_KINDS:
        return None
    if not isinstance(frame.get("attempt"), int):
        return None
    if not isinstance(frame.get("seq"), int):
        return None
    if not isinstance(frame.get("body"), dict):
        return None
    return frame


class StreamCursor:
    """Incremental reader over one spool: hand back new complete frames.

    The coordinator polls cursors while shards run.  Only complete
    (newline-terminated) lines are consumed; a partial tail stays
    buffered until its writer finishes it, so tailing never observes a
    torn frame.  Damaged complete lines (a line the writer healed over)
    count in :attr:`torn` and are skipped -- the reader-side mirror of
    the writer's torn-tail healing.
    """

    def __init__(self, path: str, dedup: bool = True) -> None:
        self.path = path
        self.offset = 0
        self.torn = 0
        self._dedup = dedup
        self._seen: set = set()

    def poll(self) -> List[dict]:
        """Every new complete frame appended since the last poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                data = handle.read()
        except OSError:
            return []
        if not data:
            return []
        # Consume only through the last newline: a torn tail stays put.
        cut = data.rfind(b"\n")
        if cut < 0:
            return []
        data = data[: cut + 1]
        self.offset += len(data)
        frames: List[dict] = []
        for raw in data.split(b"\n"):
            line = raw.strip()
            if not line:
                continue
            frame = _parse_frame(line.decode(errors="replace"))
            if frame is None:
                self.torn += 1
                continue
            if self._dedup:
                key = (frame["attempt"], frame["seq"])
                if key in self._seen:
                    continue
                self._seen.add(key)
            frames.append(frame)
        return frames


def read_frames(path: str, dedup: bool = True) -> Tuple[List[dict], int]:
    """Load a whole spool; returns ``(frames, torn_line_count)``.

    With *dedup* (the default), replayed frames drop by first-write-wins
    on ``(attempt, seq)`` and frames order by that same key -- the
    canonical view any reader interleaving converges to.
    """
    frames: List[dict] = []
    torn = 0
    seen: set = set()
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    # A spool without a trailing newline ends in a torn frame.
    if lines and lines[-1].strip():
        torn += 1
    for raw in lines[:-1]:
        line = raw.strip()
        if not line:
            continue
        frame = _parse_frame(line.decode(errors="replace"))
        if frame is None:
            torn += 1
            continue
        if dedup:
            key = (frame["attempt"], frame["seq"])
            if key in seen:
                continue
            seen.add(key)
        frames.append(frame)
    if dedup:
        frames.sort(key=lambda frame: (frame["attempt"], frame["seq"]))
    return frames, torn


def spool_records(frames: Iterable[dict]) -> List[dict]:
    """Every span/event record carried by ``spans`` frames, in frame
    order -- lets ``repro obs flame``/``report`` consume a spool
    directly."""
    records: List[dict] = []
    for frame in frames:
        if frame.get("kind") == "spans":
            records.extend(frame["body"].get("records", []))
    return records


# -- folding (the determinism contract) ------------------------------------


def fold_frames(frames: Iterable[dict]) -> Dict[str, dict]:
    """The final metrics snapshot one spool's frames resolve to.

    Snapshots are cumulative, so folding is *selection*, not
    accumulation: the ``end`` frame of the highest attempt that has one
    wins outright (that snapshot is byte-for-byte what the sidecar
    recorded).  A spool whose every attempt died mid-run falls back to
    the latest ``metrics`` frame of its highest attempt -- the best
    prefix available -- and an empty or span-only spool folds to ``{}``,
    contributing nothing, exactly like a segment without a sidecar.
    """
    ends: Dict[int, Dict[str, dict]] = {}
    latest: Dict[int, Dict[str, dict]] = {}
    for frame in frames:
        attempt = frame["attempt"]
        if frame["kind"] == "end":
            ends[attempt] = frame["body"].get("snapshot", {})
        elif frame["kind"] == "metrics":
            latest[attempt] = frame["body"].get("snapshot", {})
    if ends:
        return ends[max(ends)]
    if latest:
        return latest[max(latest)]
    return {}


def fold_stream(path: str) -> Dict[str, dict]:
    """Fold one spool file (missing file folds to ``{}``)."""
    if not os.path.exists(path):
        return {}
    frames, _ = read_frames(path)
    return fold_frames(frames)


def fold_streams(
    segment_roots: Iterable[str],
    dest_path: Optional[str] = None,
) -> Dict[str, dict]:
    """Fold every segment's spool into one fleet snapshot.

    The streaming twin of :func:`repro.distrib.merge.merge_telemetry`:
    same commutative snapshot merge, same recorded-run output format,
    and -- for completed streams -- byte-identical output, because each
    spool's ``end`` frame carries the exact snapshot its sidecar holds.
    """
    from repro.telemetry.export import write_jsonl

    snapshots = []
    for root in segment_roots:
        folded = fold_stream(stream_spool(root))
        if folded:
            snapshots.append(folded)
    merged = merge_snapshots(*snapshots)
    if dest_path is not None:
        write_jsonl([], dest_path, metrics=merged)
    return merged


def discover_spools(root: str) -> Dict[str, str]:
    """Spool paths under a fleet root (or a single segment/spool path).

    Accepts the fleet destination root (spools live under
    ``segments/<label>/stream.jsonl``), a single segment root, or a
    spool file itself; returns ``{label: path}`` sorted by label.
    """
    if os.path.isfile(root):
        return {os.path.basename(os.path.dirname(root)) or root: root}
    spools: Dict[str, str] = {}
    segments = os.path.join(root, "segments")
    if os.path.isdir(segments):
        for label in sorted(os.listdir(segments)):
            path = stream_spool(os.path.join(segments, label))
            if os.path.exists(path):
                spools[label] = path
    direct = stream_spool(root)
    if os.path.exists(direct):
        spools[os.path.basename(os.path.normpath(root))] = direct
    return spools


# -- the live fleet view ---------------------------------------------------


class ShardStreamView:
    """Aggregated live state of one shard's spool."""

    def __init__(self, label: str, path: str) -> None:
        self.label = label
        self.cursor = StreamCursor(path)
        self.status = "waiting"
        self.attempt = 0
        self.total = 0
        self.spans = 0
        self.events = 0
        self.frames = 0
        self.heartbeat: Optional[dict] = None
        self.snapshot: Dict[str, dict] = {}
        self._snapshot_attempt = -1

    def poll(self) -> int:
        frames = self.cursor.poll()
        for frame in frames:
            self.apply(frame)
        return len(frames)

    def apply(self, frame: dict) -> None:
        self.frames += 1
        attempt = frame["attempt"]
        kind = frame["kind"]
        if attempt > self.attempt:
            self.attempt = attempt
        if kind == "open":
            self.total = int(frame["body"].get("total", self.total))
            if self.status != "done":
                self.status = "running"
        elif kind == "spans":
            for record in frame["body"].get("records", []):
                if record.get("kind") == "span":
                    self.spans += 1
                elif record.get("kind") == "event":
                    self.events += 1
        elif kind == "metrics":
            if attempt >= self._snapshot_attempt:
                self.snapshot = frame["body"].get("snapshot", {})
                self._snapshot_attempt = attempt
        elif kind == "heartbeat":
            self.heartbeat = frame["body"]
            if self.status != "done":
                self.status = "running"
        elif kind == "end":
            self.snapshot = frame["body"].get("snapshot", {})
            self._snapshot_attempt = attempt
            if "heartbeat" in frame["body"]:
                self.heartbeat = frame["body"]["heartbeat"]
            self.status = "done"

    @property
    def done(self) -> int:
        if self.status == "done" and self.heartbeat is None:
            return self.total
        return int(self.heartbeat.get("done", 0)) if self.heartbeat else 0

    @property
    def torn(self) -> int:
        return self.cursor.torn

    def row(self) -> str:
        beat = self.heartbeat or {}
        host = beat.get("host", {})
        rate = host.get("trials_per_sec")
        standdowns = beat.get("standdowns") or {}
        standdown_text = (
            ",".join(sorted(standdowns)) if standdowns else "-"
        )
        return (
            f"{self.label:<12} {self.status:<8} a{self.attempt} "
            f"{self.done:>6}/{self.total or '?':<6} "
            f"{(f'{rate:8.1f}/s' if rate is not None else '       -')} "
            f"fail {beat.get('failures', 0):<4} "
            f"evict {beat.get('evictions', 0):<4} "
            f"standdown {standdown_text}"
        )


class FleetView:
    """The ``repro obs top`` model: every shard's spool, one dashboard.

    The coordinator (and the standalone CLI) polls :meth:`poll`; the
    merged metrics of the latest cumulative snapshots are the *live
    fold* -- by the prefix property, always a prefix of the final
    :func:`fold_streams` result.
    """

    def __init__(self, spools: Dict[str, str], campaign: str = "") -> None:
        self.campaign = campaign
        self.shards = {
            label: ShardStreamView(label, path)
            for label, path in sorted(spools.items())
        }

    def poll(self) -> int:
        return sum(view.poll() for view in self.shards.values())

    def merged_metrics(self) -> Dict[str, dict]:
        return merge_snapshots(
            *(view.snapshot for view in self.shards.values() if view.snapshot)
        )

    def all_done(self) -> bool:
        return bool(self.shards) and all(
            view.status == "done" for view in self.shards.values()
        )

    @property
    def torn(self) -> int:
        return sum(view.torn for view in self.shards.values())

    def render(self, name: Optional[str] = None) -> str:
        name = self.campaign if name is None else name
        running = sum(
            1 for view in self.shards.values() if view.status == "running"
        )
        done = sum(1 for view in self.shards.values() if view.status == "done")
        lines = [
            f"fleet{f' {name}' if name else ''}: {len(self.shards)} shards "
            f"({running} running, {done} done)"
        ]
        for label in sorted(self.shards):
            lines.append("  " + self.shards[label].row())
        totals = self.merged_metrics()
        executed = totals.get("pool.trials.executed", {}).get("value", 0)
        evicted = totals.get("batch.lanes.evicted", {}).get("value", 0)
        lines.append(
            f"  {'fleet':<12} {'':8} -- {executed:>6} executed, "
            f"{evicted} lanes evicted, {len(totals)} metrics in live fold"
        )
        if self.torn:
            lines.append(f"  ({self.torn} torn spool lines skipped)")
        return "\n".join(lines)
