"""Structured spans and events: the trace half of ``repro.telemetry``.

A *span* is one timed region of work -- a campaign, a cell, a trial, a
core run -- recorded as a plain JSON-ready dict so traces can be dumped
as JSONL, shipped over worker pipes, and replayed by ``repro obs``.
An *event* is a point record (a worker death, a respawn, a checkpoint).

The determinism contract mirrors the rest of the stack: a record is
keyed by deterministic coordinates only -- its merged sequence number,
its name and attributes (trial seed, trial index, simulated cycles).
Wall-clock timestamps and host facts (worker pid, slot) live in the
optional ``wall`` / ``host`` sidecar fields, which every checksum and
comparison path strips (:func:`repro.telemetry.export.strip_sidecar`),
so telemetry can carry real times for humans without ever becoming a
source of nondeterminism for machines.

Worker processes run their own :class:`Recorder`; the pool drains it
after every trial and ships the batch back over the existing result
pipes.  :meth:`Recorder.ingest` merges those batches into the
coordinator's trace: records are re-keyed under a deterministic payload
address (``p<index>.<attempt>``), re-sequenced in payload order, and
re-parented under whatever span the coordinator has open (the campaign
cell), so a pooled run yields one causally-ordered tree with no orphan
spans at any worker count.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Recorder",
    "Span",
    "NULL_SPAN",
]


class Span:
    """Handle for one open span: lets the body attach attributes.

    Returned by ``Recorder.span(...)`` as a context manager; the record
    dict it fills is appended to the recorder at *entry* (so the record
    list is in preorder) and marked closed at exit.
    """

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "Recorder", record: dict) -> None:
        self._recorder = recorder
        self.record = record

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (deterministic values only)."""
        self.record["attrs"].update(attrs)
        return self

    @property
    def id(self) -> str:
        return self.record["id"]

    def close(self, failed: bool = False) -> None:
        """Close explicitly (for spans whose extent crosses loop bodies)."""
        self._recorder._close(self, failed=failed)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._close(self, failed=exc_type is not None)


class _NullSpan:
    """The disabled-path span: every operation is a no-op.

    A single shared instance backs ``telemetry.span(...)`` when no
    recorder is active, so the disabled hot path costs one ``is None``
    check and one attribute load -- no allocation, no branching inside
    the simulator.
    """

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    @property
    def id(self) -> None:
        return None

    def close(self, failed: bool = False) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Recorder:
    """A process-local buffer of span/event records.

    ``origin`` prefixes record ids (``m`` for the coordinator, ``w`` for
    workers; worker ids are rewritten at ingest).  ``wall_clock=True``
    stamps spans with real begin/end times in the ``wall`` sidecar field
    -- useful for humans and Chrome traces, stripped by every checksum.
    """

    def __init__(self, origin: str = "m", wall_clock: bool = False) -> None:
        self.origin = origin
        self.wall_clock = wall_clock
        self.records: List[dict] = []
        self._seq = 0
        self._stack: List[dict] = []

    # -- recording -------------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def span(self, name: str, **attrs) -> Span:
        """Open a span under the current one; use as a context manager."""
        seq = self._next_seq()
        record = {
            "kind": "span",
            "name": name,
            "id": f"{self.origin}:{seq}",
            "parent": self._stack[-1]["id"] if self._stack else None,
            "seq": seq,
            "attrs": dict(attrs),
            "open": True,
        }
        if self.wall_clock:
            record["wall"] = [time.time(), None]
        self.records.append(record)
        self._stack.append(record)
        return Span(self, record)

    def _close(self, span: Span, failed: bool = False) -> None:
        record = span.record
        if "open" not in record:
            return  # already closed (explicit close inside a with-block)
        # Close any forgotten children first (exceptions unwinding past
        # sub-spans): the trace must never contain dangling open spans.
        while self._stack and self._stack[-1] is not record:
            dangling = self._stack.pop()
            dangling.pop("open", None)
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        if failed:
            record["attrs"].setdefault("failed", True)
        if self.wall_clock and record.get("wall"):
            record["wall"][1] = time.time()
        record.pop("open", None)

    def event(self, name: str, host: Optional[dict] = None, **attrs) -> dict:
        """Record a point event under the current span.

        *host* carries host-dependent facts (pid, worker slot, stderr
        tails); like ``wall`` it is a sidecar field stripped from every
        checksum.
        """
        seq = self._next_seq()
        record = {
            "kind": "event",
            "name": name,
            "id": f"{self.origin}:{seq}",
            "parent": self._stack[-1]["id"] if self._stack else None,
            "seq": seq,
            "attrs": dict(attrs),
        }
        if host:
            record["host"] = dict(host)
        if self.wall_clock:
            record["wall"] = [time.time(), time.time()]
        self.records.append(record)
        return record

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (if any)."""
        if self._stack:
            self._stack[-1]["attrs"].update(attrs)

    def current_id(self) -> Optional[str]:
        """Id of the innermost open span, or None at the root."""
        return self._stack[-1]["id"] if self._stack else None

    # -- draining and merging --------------------------------------------------

    def drain(self, reset_seq: bool = False) -> List[dict]:
        """Remove and return every *closed* record.

        Open spans (and their preorder positions) stay buffered until
        they close.  ``reset_seq=True`` additionally rewinds the
        sequence counter -- the worker-side mode, which makes each
        shipped batch a self-contained stream whose numbering depends
        only on the trial that produced it, never on which worker ran
        it or what ran there before.
        """
        if self._stack:
            closed = [r for r in self.records if "open" not in r]
            self.records = [r for r in self.records if "open" in r]
        else:
            closed = self.records
            self.records = []
            if reset_seq:
                self._seq = 0
        return closed

    def ingest(
        self,
        batches: Sequence[Tuple[str, Iterable[dict]]],
        parent: Optional[str] = None,
    ) -> None:
        """Merge worker-shipped record batches into this trace.

        *batches* is a sequence of ``(key, records)`` pairs where *key*
        is a deterministic address for the batch (``p<index>.<attempt>``
        in the pool).  Callers sort batches into payload order first, so
        the merged stream's sequence numbers depend only on the work,
        not on scheduling.  Each batch's records are re-identified under
        its key, re-sequenced into this recorder's stream, and roots are
        re-parented under *parent* (default: the currently open span) --
        the seam that hangs worker trial spans off the coordinator's
        campaign/cell spans with no orphans.
        """
        if parent is None:
            parent = self.current_id()
        for key, records in batches:
            id_map: Dict[str, str] = {}
            for record in records:
                old_id = record["id"]
                new_id = f"{key}:{record['seq']}"
                id_map[old_id] = new_id
            for record in records:
                record = dict(record)
                record["id"] = id_map[record["id"]]
                old_parent = record.get("parent")
                record["parent"] = id_map.get(old_parent, parent)
                record["seq"] = self._next_seq()
                self.records.append(record)


def span_index(records: Iterable[dict]) -> Dict[str, dict]:
    """Index records by id (spans and events alike)."""
    return {record["id"]: record for record in records}


def orphan_records(records: Sequence[dict]) -> List[dict]:
    """Records whose parent id is missing from the trace (should be
    empty for any merged trace -- the acceptance criterion's check)."""
    index = span_index(records)
    return [
        record
        for record in records
        if record.get("parent") is not None and record["parent"] not in index
    ]
