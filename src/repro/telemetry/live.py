"""Live campaign introspection and recorded-run replay.

Three consumers:

* ``repro campaign run --progress`` installs a :class:`ProgressRenderer`
  as the runner's observer: per-cell throughput, ETA, failure counts and
  the batch layer's eviction/stand-down counters stream to stderr while
  the campaign executes (stderr only -- the report artifact stays
  byte-identical).
* ``repro obs report|trace|tail`` replay a run recorded with
  ``--trace-out``: ``report`` prints the span-tree rollup, cycle
  attribution and metrics table; ``trace`` converts to Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto; ``tail``
  prints the last N records (what was the campaign doing when it
  died?).  All three load through the tolerant
  :func:`~repro.telemetry.export.load_trace`: a missing or empty file
  is a one-line error, a torn trailing record a skipped warning.
* ``repro obs top|flame|fold`` consume the live plane
  (:mod:`repro.telemetry.stream`): ``top`` tails every shard spool
  under a fleet root into one refreshing dashboard, ``flame`` exports
  collapsed stacks (``flamegraph.pl`` / speedscope input) from a trace
  or a spool, and ``fold`` folds completed spools -- with ``--check``
  asserting the fold is byte-identical to the end-of-shard
  ``merge_telemetry`` artifact (the CI determinism gate).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.telemetry.export import (
    TraceUnreadable,
    chrome_trace,
    collapsed_stacks,
    cycle_attribution,
    load_trace,
    render_attribution,
    split_metrics,
    validate_chrome_trace,
)

__all__ = [
    "ProgressRenderer",
    "render_metrics",
    "run_obs_flame",
    "run_obs_fold",
    "run_obs_report",
    "run_obs_tail",
    "run_obs_top",
    "run_obs_trace",
]


class ProgressRenderer:
    """Streams per-cell campaign progress from runner observer updates.

    The runner calls :meth:`on_batch` after every checkpointed batch
    with a structured update (see ``CampaignRunner``).  Throughput is
    live trials per wall second over this run; the ETA extrapolates it
    over the remaining pending trials.  Output goes to *stream*
    (default stderr) and never into any artifact.
    """

    def __init__(self, stream=None, name: str = "") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.name = name
        self._started = time.perf_counter()
        self._done = 0

    def on_batch(self, update: Dict) -> None:
        self._done = update.get("done", self._done)
        pending = update.get("pending", 0)
        elapsed = time.perf_counter() - self._started
        rate = self._done / elapsed if elapsed > 0 else 0.0
        remaining = pending - self._done
        eta = remaining / rate if rate > 0 else float("inf")
        eta_text = f"{eta:6.1f}s" if eta != float("inf") else "    ??s"
        total = update.get("total", 0)
        cached = update.get("cached", 0)
        cell = update.get("cell")
        cells = update.get("cells", 0)
        failures = update.get("failures", 0)
        line = (
            f"[{self.name or update.get('name', 'campaign')}] "
            f"cell {cell if cell is not None else '?'}/{cells} | "
            f"{self._done + cached}/{total} trials "
            f"({cached} cached) | {rate:7.1f} trials/s | "
            f"ETA {eta_text} | {failures} failures"
        )
        # Batch-layer health rides along when the runner observes it
        # (telemetry on): eviction volume and why packs stood down.
        evictions = update.get("evictions", 0)
        if evictions:
            line += f" | {evictions} evicted"
        standdowns = update.get("standdowns") or {}
        if standdowns:
            reasons = ",".join(
                f"{reason}x{count}"
                for reason, count in sorted(standdowns.items())
            )
            line += f" | standdown {reasons}"
        self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        elapsed = time.perf_counter() - self._started
        rate = self._done / elapsed if elapsed > 0 else 0.0
        self.stream.write(
            f"[{self.name}] done: {self._done} live trials in "
            f"{elapsed:.1f}s ({rate:.1f} trials/s)\n"
        )
        self.stream.flush()


def render_metrics(snapshot: Dict[str, dict], out=print) -> None:
    """Print a metrics snapshot as an aligned name/type/value table."""
    if not snapshot:
        out("metrics  : (none recorded)")
        return
    width = max(len(name) for name in snapshot)
    out("metrics:")
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        det = "" if entry.get("det", True) else "  [host-dependent]"
        if kind == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            value = f"n={count} mean={mean:g}"
        else:
            value = f"{entry['value']}"
        out(f"  {name:<{width}}  {kind:<9}  {value}{det}")


def _span_rollup(records: List[dict], out=print) -> None:
    """Per-name span counts (the shape of the recorded tree)."""
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    by_name: Dict[str, int] = {}
    for record in spans:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    out(f"trace    : {len(spans)} spans, {len(events)} events")
    for name in sorted(by_name):
        out(f"  {by_name[name]:>8}x span {name}")
    for name in sorted({r["name"] for r in events}):
        count = sum(1 for r in events if r["name"] == name)
        out(f"  {count:>8}x event {name}")


def _load_tolerant(path: str, out) -> Optional[List[dict]]:
    """Load a recorded run for an obs command, or None after reporting.

    The satellite contract for every replay command: damage becomes a
    one-line diagnosis (the caller exits 2), never a traceback.
    """
    try:
        return load_trace(
            path, warn=lambda message: out(f"warning: {message}")
        )
    except TraceUnreadable as exc:
        out(f"error: {exc}")
        return None


def run_obs_report(path: str, limit: int = 10, out=print) -> int:
    """The ``repro obs report`` body: summarise a recorded run."""
    records = _load_tolerant(path, out)
    if records is None:
        return 2
    trace, metrics = split_metrics(records)
    out(f"recorded run: {path}")
    _span_rollup(trace, out=out)
    out("")
    out(render_attribution(cycle_attribution(trace), limit=limit))
    out("")
    render_metrics(metrics, out=out)
    return 0


def run_obs_trace(
    path: str,
    output: Optional[str] = None,
    validate: bool = False,
    out=print,
) -> int:
    """The ``repro obs trace`` body: convert a recorded run to Chrome
    ``trace_event`` JSON (optionally validating it against the schema)."""
    records = _load_tolerant(path, out)
    if records is None:
        return 2
    trace_records, _ = split_metrics(records)
    trace = chrome_trace(trace_records)
    target = output or (path.rsplit(".", 1)[0] + ".trace.json")
    with open(target, "w") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    out(
        f"wrote {len(trace['traceEvents'])} trace events to {target} "
        f"(load in chrome://tracing or ui.perfetto.dev)"
    )
    if validate:
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems[:20]:
                out(f"trace_event schema violation: {problem}")
            return 1
        out("trace_event schema: ok")
    return 0


def run_obs_tail(path: str, count: int = 20, out=print) -> int:
    """The ``repro obs tail`` body: the last *count* records of a run."""
    records = _load_tolerant(path, out)
    if records is None:
        return 2
    trace, _ = split_metrics(records)
    for record in trace[-count:]:
        attrs = record.get("attrs", {})
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        out(
            f"{record['seq']:>8}  {record['kind']:<5}  "
            f"{record['name']:<24}  {attr_text}"
        )
    if not trace:
        out("(empty trace)")
    return 0


# -- the live plane (repro obs top|flame|fold) ------------------------------


def run_obs_top(
    root: str,
    once: bool = False,
    interval: float = 0.5,
    timeout: Optional[float] = None,
    out=print,
) -> int:
    """The ``repro obs top`` body: tail a fleet's spools as a dashboard.

    *root* is a fleet destination root, a segment root, or a spool file.
    ``once`` renders the current state and exits (the CI mode); follow
    mode re-renders every *interval* seconds until every shard's spool
    is sealed (or *timeout* elapses -- exit 3, the fleet is still
    running or died without sealing).
    """
    from repro.telemetry.stream import FleetView, discover_spools

    spools = discover_spools(root)
    if not spools:
        out(
            f"error: no stream spools under {root} "
            f"(start the fleet with --stream)"
        )
        return 2
    view = FleetView(spools)
    started = time.perf_counter()
    view.poll()
    out(view.render(name=os.path.basename(os.path.normpath(root))))
    if once:
        return 0
    while not view.all_done():
        if (
            timeout is not None
            and time.perf_counter() - started > timeout
        ):
            out(f"error: fleet not sealed after {timeout:.0f}s")
            return 3
        time.sleep(interval)
        if view.poll():
            out("")
            out(view.render(name=os.path.basename(os.path.normpath(root))))
    return 0


def run_obs_flame(
    path: str, output: Optional[str] = None, out=print
) -> int:
    """The ``repro obs flame`` body: collapsed-stack cycle export.

    Accepts a recorded sidecar *or* a live spool (span frames are
    unwrapped); writes one ``frame;frame count`` line per span path --
    pipe straight into ``flamegraph.pl`` or import into speedscope.
    """
    from repro.telemetry.stream import FRAME_KINDS, spool_records

    records = _load_tolerant(path, out)
    if records is None:
        return 2
    first = records[0]
    if first.get("kind") in FRAME_KINDS and isinstance(
        first.get("body"), dict
    ):
        records = spool_records(records)
    trace, _ = split_metrics(records)
    stacks = collapsed_stacks(trace)
    if not stacks:
        out(f"error: {path} carries no spans with cycle counts")
        return 2
    target = output or (path.rsplit(".", 1)[0] + ".folded")
    with open(target, "w") as handle:
        for line in stacks:
            handle.write(line + "\n")
    total = sum(int(line.rsplit(" ", 1)[1]) for line in stacks)
    out(
        f"wrote {len(stacks)} collapsed stacks ({total:,} self-cycles) "
        f"to {target} (flamegraph.pl/speedscope input)"
    )
    return 0


def run_obs_fold(
    root: str,
    output: Optional[str] = None,
    check: bool = False,
    out=print,
) -> int:
    """The ``repro obs fold`` body: fold spools; ``--check`` pins identity.

    Folds every segment spool under *root* into one recorded-run
    metrics artifact.  With *check*, also folds the segments'
    end-of-shard sidecars through ``merge_telemetry`` and asserts the
    two artifacts are byte-identical -- the streaming determinism
    contract, run standalone by the CI ``obs-stream-smoke`` step.
    """
    import hashlib

    from repro.distrib.merge import merge_telemetry
    from repro.telemetry.stream import discover_spools, fold_streams

    spools = discover_spools(root)
    if not spools:
        out(
            f"error: no stream spools under {root} "
            f"(start the fleet with --stream)"
        )
        return 2
    segments = sorted(os.path.dirname(path) for path in spools.values())
    folded = fold_streams(segments, dest_path=output)

    def artifact_bytes(snapshot: Dict[str, dict]) -> bytes:
        return (
            json.dumps(
                {"kind": "metrics", "snapshot": snapshot}, sort_keys=True
            )
            + "\n"
        ).encode()

    fold_bytes = artifact_bytes(folded)
    fold_sum = hashlib.sha256(fold_bytes).hexdigest()
    out(
        f"folded {len(spools)} spool(s): {len(folded)} metrics, "
        f"sha256 {fold_sum}"
    )
    if output:
        out(f"wrote fold to {output}")
    if check:
        merged = merge_telemetry(segments)
        merge_bytes = artifact_bytes(merged)
        merge_sum = hashlib.sha256(merge_bytes).hexdigest()
        if fold_bytes != merge_bytes:
            out(
                f"FOLD MISMATCH: stream fold sha256 {fold_sum} != "
                f"sidecar merge sha256 {merge_sum}"
            )
            return 1
        out(f"fold == merge_telemetry: ok (sha256 {merge_sum})")
    return 0
