"""Live campaign introspection and recorded-run replay.

Two consumers:

* ``repro campaign run --progress`` installs a :class:`ProgressRenderer`
  as the runner's observer: per-cell throughput, ETA and failure counts
  stream to stderr while the campaign executes (stderr only -- the
  report artifact stays byte-identical).
* ``repro obs report|trace|tail`` replay a run recorded with
  ``--trace-out``: ``report`` prints the span-tree rollup, cycle
  attribution and metrics table; ``trace`` converts to Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto; ``tail``
  prints the last N records (what was the campaign doing when it
  died?).
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, List, Optional

from repro.telemetry.export import (
    chrome_trace,
    cycle_attribution,
    read_jsonl,
    render_attribution,
    split_metrics,
    validate_chrome_trace,
)

__all__ = [
    "ProgressRenderer",
    "render_metrics",
    "run_obs_report",
    "run_obs_tail",
    "run_obs_trace",
]


class ProgressRenderer:
    """Streams per-cell campaign progress from runner observer updates.

    The runner calls :meth:`on_batch` after every checkpointed batch
    with a structured update (see ``CampaignRunner``).  Throughput is
    live trials per wall second over this run; the ETA extrapolates it
    over the remaining pending trials.  Output goes to *stream*
    (default stderr) and never into any artifact.
    """

    def __init__(self, stream=None, name: str = "") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.name = name
        self._started = time.perf_counter()
        self._done = 0

    def on_batch(self, update: Dict) -> None:
        self._done = update.get("done", self._done)
        pending = update.get("pending", 0)
        elapsed = time.perf_counter() - self._started
        rate = self._done / elapsed if elapsed > 0 else 0.0
        remaining = pending - self._done
        eta = remaining / rate if rate > 0 else float("inf")
        eta_text = f"{eta:6.1f}s" if eta != float("inf") else "    ??s"
        total = update.get("total", 0)
        cached = update.get("cached", 0)
        cell = update.get("cell")
        cells = update.get("cells", 0)
        failures = update.get("failures", 0)
        line = (
            f"[{self.name or update.get('name', 'campaign')}] "
            f"cell {cell if cell is not None else '?'}/{cells} | "
            f"{self._done + cached}/{total} trials "
            f"({cached} cached) | {rate:7.1f} trials/s | "
            f"ETA {eta_text} | {failures} failures"
        )
        self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        elapsed = time.perf_counter() - self._started
        rate = self._done / elapsed if elapsed > 0 else 0.0
        self.stream.write(
            f"[{self.name}] done: {self._done} live trials in "
            f"{elapsed:.1f}s ({rate:.1f} trials/s)\n"
        )
        self.stream.flush()


def render_metrics(snapshot: Dict[str, dict], out=print) -> None:
    """Print a metrics snapshot as an aligned name/type/value table."""
    if not snapshot:
        out("metrics  : (none recorded)")
        return
    width = max(len(name) for name in snapshot)
    out("metrics:")
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        det = "" if entry.get("det", True) else "  [host-dependent]"
        if kind == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            value = f"n={count} mean={mean:g}"
        else:
            value = f"{entry['value']}"
        out(f"  {name:<{width}}  {kind:<9}  {value}{det}")


def _span_rollup(records: List[dict], out=print) -> None:
    """Per-name span counts (the shape of the recorded tree)."""
    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    by_name: Dict[str, int] = {}
    for record in spans:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    out(f"trace    : {len(spans)} spans, {len(events)} events")
    for name in sorted(by_name):
        out(f"  {by_name[name]:>8}x span {name}")
    for name in sorted({r["name"] for r in events}):
        count = sum(1 for r in events if r["name"] == name)
        out(f"  {count:>8}x event {name}")


def run_obs_report(path: str, limit: int = 10, out=print) -> int:
    """The ``repro obs report`` body: summarise a recorded run."""
    records = read_jsonl(path)
    trace, metrics = split_metrics(records)
    out(f"recorded run: {path}")
    _span_rollup(trace, out=out)
    out("")
    out(render_attribution(cycle_attribution(trace), limit=limit))
    out("")
    render_metrics(metrics, out=out)
    return 0


def run_obs_trace(
    path: str,
    output: Optional[str] = None,
    validate: bool = False,
    out=print,
) -> int:
    """The ``repro obs trace`` body: convert a recorded run to Chrome
    ``trace_event`` JSON (optionally validating it against the schema)."""
    records = read_jsonl(path)
    trace_records, _ = split_metrics(records)
    trace = chrome_trace(trace_records)
    target = output or (path.rsplit(".", 1)[0] + ".trace.json")
    with open(target, "w") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    out(
        f"wrote {len(trace['traceEvents'])} trace events to {target} "
        f"(load in chrome://tracing or ui.perfetto.dev)"
    )
    if validate:
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems[:20]:
                out(f"trace_event schema violation: {problem}")
            return 1
        out("trace_event schema: ok")
    return 0


def run_obs_tail(path: str, count: int = 20, out=print) -> int:
    """The ``repro obs tail`` body: the last *count* records of a run."""
    records = read_jsonl(path)
    trace, _ = split_metrics(records)
    for record in trace[-count:]:
        attrs = record.get("attrs", {})
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        out(
            f"{record['seq']:>8}  {record['kind']:<5}  "
            f"{record['name']:<24}  {attr_text}"
        )
    if not trace:
        out("(empty trace)")
    return 0
