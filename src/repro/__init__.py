"""Whisper reproduction: the transient-execution-timing (TET) side channel.

This package reproduces *"Whisper: Timing the Transient Execution to Leak
Secrets and Break KASLR"* (DAC 2024) on a from-scratch, cycle-level
out-of-order CPU simulator, because real transient-execution gadgets and
cycle-precise timing cannot be expressed in Python.

Layers, bottom-up:

* :mod:`repro.isa` -- the x86-flavoured micro-ISA and assembler.
* :mod:`repro.memory` -- physical memory, paging, TLBs, caches, LFBs.
* :mod:`repro.uarch` -- the out-of-order core, BPU, frontend, PMU, SMT.
* :mod:`repro.kernel` -- kernel layout, KASLR, KPTI, FLARE, processes.
* :mod:`repro.sim` -- the :class:`~repro.sim.machine.Machine` harness.
* :mod:`repro.whisper` -- the paper's contribution: TET gadgets, the
  covert channel, TET-MD/ZBL/RSB/KASLR attacks, the SMT channel.
* :mod:`repro.pmutools` -- the automated PMU analysis toolset (Figure 2).
* :mod:`repro.baselines` -- Flush+Reload-based classic attacks and the
  cache-behaviour detector TET evades.

Quickstart::

    from repro.sim import Machine
    from repro.whisper import TetCovertChannel

    machine = Machine("i7-7700")
    channel = TetCovertChannel(machine)
    received = channel.transmit(b"hi")
"""

__version__ = "1.0.0"
__all__ = ["__version__"]
