"""Simultaneous multithreading: two logical threads on one physical core.

Section 4.4 of the paper builds a covert channel out of *pipeline flushes*:
the Trojan thread triggers (and suppresses) a page fault to send a ``1``,
and the spy thread's nop loop slows down because the flush and its
recovery occupy shared frontend/allocation resources.

Model: the two threads share the physical core's MMU (so LFB leakage
across threads also works) but run on separate :class:`Core` timing
engines; every disruption window the Trojan produces (flushes, mispredict
recoveries, signal dispatches) is replayed onto the spy's timeline as
stolen dispatch slots.  That is an abstraction of SMT arbitration -- a
disrupting thread monopolises allocation during clears -- and it is the
part of the paper's mechanism the covert channel actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.program import Program
from repro.memory.mmu import Mmu
from repro.uarch.config import CpuModel
from repro.uarch.core import Core, RunResult, SimulationError


@dataclass
class SmtRunResult:
    """Outcome of one co-scheduled pair of runs."""

    trojan: RunResult
    spy: RunResult
    spy_effective_cycles: int
    disruption_cycles: int


class SmtCore:
    """A physical core exposing two logical threads.

    Thread 0 is the Trojan/sender, thread 1 the spy/receiver.  Both share
    one :class:`~repro.memory.mmu.Mmu` (same caches, TLBs and line fill
    buffers -- the ZombieLoad cross-thread channel needs exactly that).
    """

    def __init__(self, model: CpuModel, mmu: Mmu) -> None:
        if not model.smt:
            raise SimulationError(f"{model.name} has SMT disabled")
        self.model = model
        self.mmu = mmu
        self.thread0 = Core(model, mmu, thread_id=0)
        self.thread1 = Core(model, mmu, thread_id=1)
        # Share one PMU bank: SMT counters are core-scoped on real parts.
        self.thread1.pmu = self.thread0.pmu
        self.thread1.frontend.pmu = self.thread0.pmu
        #: Fraction of dispatch bandwidth the spy loses inside a
        #: disruption window (flush recovery monopolises allocation).
        self.disruption_steal = 0.9

    @property
    def pmu(self):
        return self.thread0.pmu

    def run_pair(
        self,
        trojan_program: Program,
        spy_program: Program,
        trojan_regs: Optional[dict] = None,
        spy_regs: Optional[dict] = None,
        align_clocks: bool = True,
    ) -> SmtRunResult:
        """Run the Trojan and the spy as co-resident threads.

        The Trojan runs first on its own timing engine, accumulating
        disruption windows; the spy's run is then stretched by the overlap
        between its busy period and those windows.  Returns both results
        plus the spy's *effective* (stretched) cycle count -- the quantity
        the §4.4 receiver thresholds.
        """
        if align_clocks:
            start = max(self.thread0.global_cycle, self.thread1.global_cycle)
            self.thread0.global_cycle = start
            self.thread1.global_cycle = start
        self.thread0.disruptions = []
        trojan_result = self.thread0.run(trojan_program, regs=trojan_regs)
        spy_result = self.thread1.run(spy_program, regs=spy_regs)
        overlap = _overlap_cycles(
            self.thread0.disruptions, spy_result.start_cycle, spy_result.end_cycle
        )
        stretch = int(overlap * self.disruption_steal)
        effective = spy_result.cycles + stretch
        self.thread1.global_cycle += stretch
        return SmtRunResult(
            trojan=trojan_result,
            spy=spy_result,
            spy_effective_cycles=effective,
            disruption_cycles=overlap,
        )


def _overlap_cycles(windows: List[Tuple[int, int]], start: int, end: int) -> int:
    """Cycles of [start, end) covered by the union of *windows*."""
    if not windows:
        return 0
    clipped = sorted(
        (max(start, lo), min(end, hi)) for lo, hi in windows if hi > start and lo < end
    )
    total = 0
    cur_lo: Optional[int] = None
    cur_hi = start
    for lo, hi in clipped:
        if cur_lo is None:
            cur_lo, cur_hi = lo, hi
        elif lo <= cur_hi:
            cur_hi = max(cur_hi, hi)
        else:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
    if cur_lo is not None:
        total += cur_hi - cur_lo
    return total
